// Prepare a Dicke state |D^k_n> with every method in the repository and
// compare CNOT counts against the best manual design.
//
//   ./prepare_dicke [n] [k]        (default n=4 k=2, the paper's headline)

#include <cstdlib>
#include <iostream>

#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "flow/methods.hpp"
#include "prep/dicke.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qsp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;
  if (n < 2 || n > 10 || k < 1 || k >= n) {
    std::cerr << "usage: prepare_dicke [n in 2..10] [k in 1..n-1]\n";
    return 1;
  }

  const QuantumState target = make_dicke(n, k);
  std::cout << "Dicke state |D^" << k << "_" << n << ">, cardinality "
            << target.cardinality() << "\n\n";

  TextTable table({"method", "CNOTs", "verified"});
  if (2 * k <= n) {
    table.add_row({"manual formula (Mukherjee et al.)",
                   TextTable::fmt(mukherjee_dicke_cnot_count(n, k)), "-"});
  }
  {
    const Circuit c = dicke_manual_circuit(n, k);
    const auto v = verify_preparation(c, target);
    table.add_row({"manual circuit (Bartschi-Eidenbenz)",
                   TextTable::fmt(count_cnots_after_lowering(c)),
                   v.ok ? "yes" : "NO"});
  }
  for (const Method m :
       {Method::kMFlow, Method::kNFlow, Method::kHybrid, Method::kOurs}) {
    const MethodRun run = run_method(m, target, /*time_budget=*/60.0);
    if (!run.ok) {
      table.add_row({method_name(m), "TLE", "-"});
      continue;
    }
    const auto v = verify_preparation(run.circuit, target);
    table.add_row({method_name(m) + std::string(m == Method::kOurs
                                                    ? " (workflow)"
                                                    : ""),
                   TextTable::fmt(run.cnots), v.ok ? "yes" : "NO"});
  }
  // The direct exact/beam synthesis (what Table IV's "ours" column runs).
  {
    ExactSynthesisOptions options;
    options.astar.time_budget_seconds = n <= 4 ? 60.0 : 6.0;
    options.beam.time_budget_seconds = 60.0;
    options.beam.beam_width = 200;
    const ExactSynthesizer exact(options);
    const SynthesisResult res = exact.synthesize(target);
    if (res.found) {
      const auto v = verify_preparation(res.circuit, target);
      table.add_row({res.optimal ? "ours (exact, optimal)" : "ours (beam)",
                     TextTable::fmt(res.cnot_cost), v.ok ? "yes" : "NO"});
    }
  }
  std::cout << table.render() << "\n";

  // Show the exact circuit when the kernel can solve the instance whole.
  if (n <= 4) {
    const ExactSynthesizer exact;
    const SynthesisResult res = exact.synthesize(target);
    if (res.found) {
      std::cout << "Exact circuit (" << res.cnot_cost << " CNOTs):\n"
                << res.circuit.draw();
    }
  }
  return 0;
}
