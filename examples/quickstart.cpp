// Quickstart: synthesize a CNOT-optimal preparation circuit for a small
// state, print it, and verify it on the simulator.
//
//   ./quickstart

#include <cstdio>
#include <iostream>

#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"

int main() {
  using namespace qsp;

  // The motivating example of the paper (Section III):
  // |psi> = (|000> + |011> + |101> + |110>) / 2.
  const QuantumState target =
      make_uniform(3, {0b000, 0b011, 0b101, 0b110});
  std::cout << "Target state: " << target.to_string() << "\n\n";

  // Exact CNOT synthesis: A* over the state transition graph.
  const ExactSynthesizer synthesizer;
  const SynthesisResult result = synthesizer.synthesize(target);
  if (!result.found) {
    std::cerr << "synthesis failed\n";
    return 1;
  }

  std::cout << "Synthesized circuit (" << result.cnot_cost << " CNOTs, "
            << (result.optimal ? "provably optimal" : "heuristic")
            << "):\n";
  std::cout << result.circuit.draw() << "\n";
  std::cout << "Gate list:\n" << result.circuit.to_string() << "\n";

  // Map to {U(2), CNOT} and count.
  std::cout << "CNOTs after lowering: "
            << count_cnots_after_lowering(result.circuit) << "\n";

  // Verify on the statevector simulator.
  const VerificationResult v = verify_preparation(result.circuit, target);
  std::cout << "Verification: " << (v.ok ? "OK" : "FAILED")
            << " (fidelity " << v.fidelity << ")\n";
  return v.ok ? 0 : 1;
}
