// Service demo: a long-lived SynthesisService with the cross-request
// equivalence cache. The first batch pays a kernel search per canonical
// class; re-submitting the same family (plus a "per-user" permuted
// variant) is served from cache — bit-identical circuits on repeats,
// rewired-at-equal-cost circuits on variants.
//
//   ./service_demo

#include <iostream>
#include <utility>
#include <vector>

#include "service/synthesis_service.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/bitops.hpp"
#include "util/timer.hpp"

int main() {
  using namespace qsp;

  SynthesisServiceOptions options;
  options.num_workers = 2;
  SynthesisService service(options);

  // GHZ/W/Dicke family plus one asymmetric sparse state (the symmetric
  // families are invariant under relabeling, so only the asymmetric one
  // can demonstrate a rewired same-class hit below).
  std::vector<QuantumState> family{
      make_ghz(4), make_w(4), make_dicke(4, 2),
      make_uniform(4, {0b0001, 0b0011, 0b0111, 0b1111, 0b1000})};
  const auto batch_for = [&](const std::vector<QuantumState>& states) {
    std::vector<ServiceRequest> batch;
    for (const QuantumState& state : states) {
      ServiceRequest request;
      request.state = state;
      batch.push_back(std::move(request));
    }
    return batch;
  };

  const Timer cold_timer;
  const std::vector<ServiceResponse> cold =
      service.run_batch(batch_for(family));
  const double cold_seconds = cold_timer.seconds();

  // Same family again, plus a relabeled copy of the asymmetric state — a
  // different member of the same equivalence class, served by rewiring
  // the cached template through the canonical witness.
  std::vector<QuantumState> again = family;
  std::vector<Term> relabeled;
  for (const Term& t : family.back().terms()) {
    relabeled.push_back(Term{permute_bits(t.index, {3, 2, 1, 0}),
                             t.amplitude});
  }
  again.push_back(QuantumState(4, std::move(relabeled)));

  const Timer warm_timer;
  const std::vector<ServiceResponse> warm =
      service.run_batch(batch_for(again));
  const double warm_seconds = warm_timer.seconds();

  for (std::size_t i = 0; i < family.size(); ++i) {
    if (!(warm[i].result.circuit == cold[i].result.circuit)) {
      std::cerr << "warm result differs from cold result\n";
      return 1;
    }
  }
  for (std::size_t i = 0; i < again.size(); ++i) {
    if (!verify_preparation(warm[i].result.circuit, again[i]).ok) {
      std::cerr << "verification failed\n";
      return 1;
    }
  }

  const EquivalenceCacheStats stats = service.cache_stats();
  std::cout << "cold batch: " << cold.size() << " requests in "
            << cold_seconds << "s\n";
  std::cout << "warm batch: " << warm.size() << " requests in "
            << warm_seconds << "s (repeats bit-identical, variant "
            << "rewired)\n";
  std::cout << "cache: " << stats.exact_hits << " exact hits, "
            << stats.rewired_hits << " rewired hits, " << stats.misses
            << " misses, " << stats.entries << " entries\n";
  return 0;
}
