// Synthesize a state and export the lowered circuit as OpenQASM 2.0 for
// consumption by external toolchains (qiskit, tket, ...).
//
//   ./export_qasm [n] [m] [seed] > circuit.qasm

#include <cstdlib>
#include <iostream>

#include "circuit/qasm.hpp"
#include "flow/solver.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"

int main(int argc, char** argv) {
  using namespace qsp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const int m = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;
  if (n < 2 || n > 16 || m < 1 || m > (1 << n)) {
    std::cerr << "usage: export_qasm [n<=16] [m<=2^n] [seed]\n";
    return 1;
  }

  Rng rng(seed);
  const QuantumState target = make_random_uniform(n, m, rng);
  const Solver solver;
  const WorkflowResult res = solver.prepare(target);
  if (!res.found) {
    std::cerr << "synthesis failed\n";
    return 1;
  }
  verify_preparation_or_throw(res.circuit, target);

  std::cerr << "// target: " << target.to_string() << "\n";
  LoweringOptions lowering;
  lowering.elide_zero_rotations = true;
  std::cout << to_qasm(res.circuit, lowering);
  return 0;
}
