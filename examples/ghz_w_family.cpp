// Exact synthesis on the classic entangled families: GHZ and W states.
// Demonstrates the optimality certificates of the A* kernel (GHZ_n takes
// exactly n-1 CNOTs) and the anytime beam fallback for larger W states.
//
//   ./ghz_w_family [max_n]          (default 6)

#include <cstdlib>
#include <iostream>

#include "core/exact_synthesizer.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qsp;
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 6;
  if (max_n < 2 || max_n > 8) {
    std::cerr << "usage: ghz_w_family [max_n in 2..8]\n";
    return 1;
  }

  ExactSynthesisOptions options;
  options.astar.time_budget_seconds = 20.0;
  const ExactSynthesizer synth(options);

  TextTable table({"state", "n", "CNOTs", "optimal?", "classes", "verified"});
  for (int n = 2; n <= max_n; ++n) {
    for (const bool is_ghz : {true, false}) {
      const QuantumState target = is_ghz ? make_ghz(n) : make_w(n);
      const SynthesisResult res = synth.synthesize(target);
      if (!res.found) {
        table.add_row({is_ghz ? "GHZ" : "W", TextTable::fmt(n), "-", "-",
                       "-", "-"});
        continue;
      }
      const auto v = verify_preparation(res.circuit, target);
      table.add_row({is_ghz ? "GHZ" : "W", TextTable::fmt(n),
                     TextTable::fmt(res.cnot_cost),
                     res.optimal ? "yes" : "beam",
                     TextTable::fmt(res.stats.classes_stored),
                     v.ok ? "yes" : "NO"});
    }
  }
  std::cout << table.render();
  std::cout << "\nGHZ_n requires exactly n-1 CNOTs; the component-bound "
               "heuristic makes these searches immediate.\n";
  return 0;
}
