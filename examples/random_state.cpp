// Prepare a random uniform state with the Fig.-5 workflow and compare all
// methods, mirroring one cell of Table V.
//
//   ./random_state [n] [m] [seed]   (default n=10, m=10, seed=1)

#include <cstdlib>
#include <iostream>

#include "flow/methods.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qsp;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int m = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  if (n < 2 || n > 20 || m < 1 || (n < 20 && m > (1 << n))) {
    std::cerr << "usage: random_state [n<=20] [m<=2^n] [seed]\n";
    return 1;
  }

  Rng rng(seed);
  const QuantumState target = make_random_uniform(n, m, rng);
  const bool sparse =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m) <
      (std::uint64_t{1} << n);
  std::cout << "Random uniform state: n=" << n << " m=" << m << " seed="
            << seed << "  (" << (sparse ? "sparse" : "dense")
            << " per the paper's n*m < 2^n test)\n\n";

  TextTable table({"method", "CNOTs", "time [s]", "verified"});
  for (const Method method :
       {Method::kMFlow, Method::kNFlow, Method::kHybrid, Method::kOurs}) {
    const MethodRun run = run_method(method, target, /*time_budget=*/120.0);
    if (!run.ok) {
      table.add_row({method_name(method), "TLE",
                     TextTable::fmt(run.seconds, 2), "-"});
      continue;
    }
    std::string verified = "skipped";
    if (n <= 16) {
      verified = verify_preparation(run.circuit, target).ok ? "yes" : "NO";
    }
    table.add_row({method_name(method), TextTable::fmt(run.cnots),
                   TextTable::fmt(run.seconds, 3), verified});
  }
  std::cout << table.render();
  return 0;
}
