// 4-qubit GHZ chain: (|0000> + |1111>)/sqrt(2).
// ry(pi/2) puts q[0] into (|0> + |1>)/sqrt(2); the CNOT chain copies it.
// Every two-qubit gate is nearest-neighbor, so this also lints clean
// against --coupling line:4.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
ry(1.5707963267948966) q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
