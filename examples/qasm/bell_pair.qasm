// Bell pair (|00> + |11>)/sqrt(2) in the real-amplitude gate subset.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
ry(1.5707963267948966) q[0];
cx q[0],q[1];
