// Synthesize for a constrained device: optimize the preparation against a
// coupling graph's routed-CNOT costs and emit a routed circuit that only
// uses native edges.
//
//   ./coupled_device [topology: line|ring|star|grid|full] [n] [m] [seed]

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "arch/routing.hpp"
#include "circuit/lowering.hpp"
#include "core/astar.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"

int main(int argc, char** argv) {
  using namespace qsp;
  const std::string topology = argc > 1 ? argv[1] : "line";
  const int n = argc > 2 ? std::atoi(argv[2]) : 4;
  const int m = argc > 3 ? std::atoi(argv[3]) : 5;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 5;
  if (n < 2 || n > 6 || m < 1 || m > (1 << n)) {
    std::cerr << "usage: coupled_device [line|ring|star|grid|full] [n<=6] "
                 "[m] [seed]\n";
    return 1;
  }

  std::shared_ptr<CouplingGraph> graph;
  if (topology == "line") {
    graph = std::make_shared<CouplingGraph>(CouplingGraph::line(n));
  } else if (topology == "ring") {
    graph = std::make_shared<CouplingGraph>(CouplingGraph::ring(n));
  } else if (topology == "star") {
    graph = std::make_shared<CouplingGraph>(CouplingGraph::star(n));
  } else if (topology == "grid" && n == 4) {
    graph = std::make_shared<CouplingGraph>(CouplingGraph::grid(2, 2));
  } else {
    graph = std::make_shared<CouplingGraph>(CouplingGraph::full(n));
  }

  Rng rng(seed);
  const QuantumState target = make_random_uniform(n, m, rng);
  std::cout << "Target: " << target.to_string() << "\n";
  std::cout << "Device: " << graph->to_string() << "\n\n";

  SearchOptions options;
  options.coupling = graph;
  options.time_budget_seconds = 60.0;
  const AStarSynthesizer synth(options);
  const SynthesisResult res = synth.synthesize(target);
  if (!res.found) {
    std::cerr << "synthesis failed within budget\n";
    return 1;
  }

  std::cout << "Logical circuit (routed cost " << res.cnot_cost << "):\n"
            << res.circuit.draw() << "\n";
  const Circuit routed = route_circuit(res.circuit, *graph);
  std::cout << "Routed circuit: " << lowered_cnot_count(routed)
            << " CNOTs, coupling-conformant: "
            << (respects_coupling(routed, *graph) ? "yes" : "NO") << "\n";
  const auto v = verify_preparation(routed, target);
  std::cout << "Verification: " << (v.ok ? "OK" : "FAILED") << "\n";

  // Compare against the unconstrained optimum.
  const AStarSynthesizer free_synth;
  const SynthesisResult free_res = free_synth.synthesize(target);
  if (free_res.found) {
    std::cout << "\nAll-to-all optimum: " << free_res.cnot_cost
              << " CNOTs (topology overhead: "
              << res.cnot_cost - free_res.cnot_cost << ")\n";
  }
  return v.ok ? 0 : 1;
}
