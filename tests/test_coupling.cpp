#include "arch/coupling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "arch/routing.hpp"
#include "circuit/lowering.hpp"
#include "core/astar.hpp"
#include "core/exact_synthesizer.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

void expect_same_unitary(const Circuit& a, const Circuit& b, int n) {
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ASSERT_NEAR(sa.amplitudes()[i], sb.amplitudes()[i], 1e-9);
    }
  }
}

TEST(Coupling, FactoriesAndDistances) {
  const CouplingGraph line = CouplingGraph::line(5);
  EXPECT_TRUE(line.has_edge(0, 1));
  EXPECT_FALSE(line.has_edge(0, 2));
  EXPECT_EQ(line.distance(0, 4), 4);
  EXPECT_FALSE(line.is_complete());
  EXPECT_TRUE(line.is_connected());

  const CouplingGraph ring = CouplingGraph::ring(6);
  EXPECT_EQ(ring.distance(0, 3), 3);
  EXPECT_EQ(ring.distance(0, 5), 1);

  const CouplingGraph star = CouplingGraph::star(5);
  EXPECT_EQ(star.distance(1, 4), 2);
  EXPECT_EQ(star.distance(0, 4), 1);

  const CouplingGraph grid = CouplingGraph::grid(2, 3);
  EXPECT_EQ(grid.num_qubits(), 6);
  EXPECT_EQ(grid.distance(0, 5), 3);  // (0,0) -> (1,2)

  EXPECT_TRUE(CouplingGraph::full(4).is_complete());
  EXPECT_THROW(CouplingGraph(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(CouplingGraph(2, {{0, 3}}), std::invalid_argument);
}

TEST(Coupling, DisconnectedGraphDetected) {
  const CouplingGraph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
  EXPECT_THROW(g.distance(0, 2), std::invalid_argument);
}

TEST(Coupling, HeavyHexFactory) {
  // d = 3: three heavy rows of five qubits (ids 0-4, 5-9, 10-14) plus
  // bridges 15 (gap 0, col 0), 16 (gap 0, col 4), 17 (gap 1, col 2).
  const CouplingGraph hh = CouplingGraph::heavy_hex(3);
  EXPECT_EQ(hh.num_qubits(), 18);
  EXPECT_TRUE(hh.is_connected());
  EXPECT_FALSE(hh.is_complete());
  EXPECT_TRUE(hh.has_edge(0, 1));
  EXPECT_TRUE(hh.has_edge(0, 15));
  EXPECT_TRUE(hh.has_edge(15, 5));
  EXPECT_TRUE(hh.has_edge(4, 16));
  EXPECT_TRUE(hh.has_edge(16, 9));
  EXPECT_TRUE(hh.has_edge(7, 17));
  EXPECT_TRUE(hh.has_edge(17, 12));
  EXPECT_FALSE(hh.has_edge(0, 5));  // rows only meet through bridges
  // Heavy-hex is degree <= 3 everywhere.
  for (int q = 0; q < hh.num_qubits(); ++q) {
    int degree = 0;
    for (int p = 0; p < hh.num_qubits(); ++p) {
      if (p != q && hh.has_edge(q, p)) ++degree;
    }
    EXPECT_LE(degree, 3) << "qubit " << q;
  }
  // (0,0) -> (2,0): down bridge 15, across row 1 to col 2, down bridge
  // 17, back across row 2.
  EXPECT_EQ(hh.distance(0, 10), 8);
  EXPECT_EQ(hh.distance(0, 9), 6);  // 0-15-5-6-7-8-9
  EXPECT_EQ(CouplingGraph::heavy_hex(1).num_qubits(), 1);
  EXPECT_THROW(CouplingGraph::heavy_hex(2), std::invalid_argument);
  EXPECT_THROW(CouplingGraph::heavy_hex(0), std::invalid_argument);
  // d = 5 would need 45+ qubits, beyond kMaxQubits.
  EXPECT_THROW(CouplingGraph::heavy_hex(5), std::invalid_argument);
}

TEST(Coupling, InducedSubgraph) {
  const CouplingGraph hh = CouplingGraph::heavy_hex(3);
  // The 7-qubit hook: row-0 prefix, bridge 15, row-1 prefix.
  const CouplingGraph hook = hh.induced({0, 1, 2, 5, 6, 7, 15});
  EXPECT_EQ(hook.num_qubits(), 7);
  EXPECT_TRUE(hook.is_connected());
  // New ids follow the argument order: 0,1,2 -> 0,1,2; 5,6,7 -> 3,4,5;
  // 15 -> 6.
  EXPECT_TRUE(hook.has_edge(0, 1));
  EXPECT_TRUE(hook.has_edge(1, 2));
  EXPECT_TRUE(hook.has_edge(0, 6));
  EXPECT_TRUE(hook.has_edge(6, 3));
  EXPECT_TRUE(hook.has_edge(3, 4));
  EXPECT_TRUE(hook.has_edge(4, 5));
  EXPECT_FALSE(hook.has_edge(2, 5));
  EXPECT_THROW(hh.induced({}), std::invalid_argument);
  EXPECT_THROW(hh.induced({0, 0}), std::invalid_argument);
  EXPECT_THROW(hh.induced({99}), std::invalid_argument);
  // Induced subgraphs may be disconnected; that is the caller's problem.
  EXPECT_FALSE(hh.induced({0, 10}).is_connected());
}

TEST(Coupling, ConnectedSuperset) {
  const CouplingGraph line = CouplingGraph::line(6);
  EXPECT_EQ(line.connected_superset({0, 5}),
            (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(line.connected_superset({2, 3}), (std::vector<int>{2, 3}));
  EXPECT_EQ(line.connected_superset({4}), (std::vector<int>{4}));

  const CouplingGraph star = CouplingGraph::star(5);
  EXPECT_EQ(star.connected_superset({1, 4}), (std::vector<int>{0, 1, 4}));

  const CouplingGraph grid = CouplingGraph::grid(2, 3);
  // Corners (0,0) and (1,2): one shortest path is added, nothing more.
  const std::vector<int> hosted = grid.connected_superset({0, 5});
  EXPECT_EQ(hosted.size(), 4u);
  EXPECT_TRUE(grid.induced(hosted).is_connected());

  const CouplingGraph hh = CouplingGraph::heavy_hex(3);
  for (const std::vector<int>& seed :
       {std::vector<int>{0, 14}, std::vector<int>{0, 9, 10},
        std::vector<int>{2, 12}}) {
    const std::vector<int> host = hh.connected_superset(seed);
    EXPECT_TRUE(hh.induced(host).is_connected());
    for (const int q : seed) {
      EXPECT_NE(std::find(host.begin(), host.end(), q), host.end());
    }
  }
  EXPECT_THROW(line.connected_superset({}), std::invalid_argument);
  EXPECT_THROW(line.connected_superset({7}), std::invalid_argument);
  // No superset can connect fragments of a disconnected device.
  const CouplingGraph split(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(split.connected_superset({0, 3}), std::invalid_argument);
}

namespace steiner_reference {

/// Brute-force unit Steiner size: min over every Steiner-vertex subset W
/// of the metric-closure MST of terminals + W (exact for these sizes).
int brute_force(const CouplingGraph& g, std::uint32_t terminals) {
  const int n = g.num_qubits();
  std::vector<int> base;
  for (int q = 0; q < n; ++q) {
    if ((terminals >> q) & 1u) base.push_back(q);
  }
  if (base.size() <= 1) return 0;
  std::uint32_t rest = 0;
  for (int q = 0; q < n; ++q) {
    if (((terminals >> q) & 1u) == 0) rest |= 1u << q;
  }
  int best = std::numeric_limits<int>::max();
  for (std::uint32_t w = rest;; w = (w - 1) & rest) {
    std::vector<int> nodes = base;
    for (int q = 0; q < n; ++q) {
      if ((w >> q) & 1u) nodes.push_back(q);
    }
    // Prim over the metric closure.
    std::vector<bool> in_tree(nodes.size(), false);
    std::vector<int> cost(nodes.size(), std::numeric_limits<int>::max());
    cost[0] = 0;
    int total = 0;
    for (std::size_t round = 0; round < nodes.size(); ++round) {
      std::size_t pick = nodes.size();
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!in_tree[i] && (pick == nodes.size() || cost[i] < cost[pick])) {
          pick = i;
        }
      }
      in_tree[pick] = true;
      total += cost[pick];
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!in_tree[i]) {
          cost[i] = std::min(cost[i], g.distance(nodes[pick], nodes[i]));
        }
      }
    }
    best = std::min(best, total);
    if (w == 0) break;
  }
  return best;
}

}  // namespace steiner_reference

TEST(Coupling, SteinerEdgesKnownValues) {
  const CouplingGraph line = CouplingGraph::line(5);
  EXPECT_EQ(line.steiner_edges(0), 0);
  EXPECT_EQ(line.steiner_edges(0b00001), 0);
  EXPECT_EQ(line.steiner_edges(0b10001), 4);  // whole line
  EXPECT_EQ(line.steiner_edges(0b10101), 4);  // interior terminal is free
  EXPECT_EQ(line.steiner_edges(0b00011), 1);

  const CouplingGraph star = CouplingGraph::star(5);
  EXPECT_EQ(star.steiner_edges(0b11110), 4);  // leaves need the center
  EXPECT_EQ(star.steiner_edges(0b00110), 2);

  const CouplingGraph grid = CouplingGraph::grid(2, 3);
  EXPECT_EQ(grid.steiner_edges(0b101101), 4);  // all four corners

  EXPECT_EQ(CouplingGraph::full(6).steiner_edges(0b111000), 2);
  EXPECT_THROW(line.steiner_edges(0b100000), std::invalid_argument);
}

TEST(Coupling, SteinerEdgesMatchesBruteForce) {
  Rng rng(71);
  std::vector<CouplingGraph> graphs;
  graphs.push_back(CouplingGraph::line(6));
  graphs.push_back(CouplingGraph::ring(6));
  graphs.push_back(CouplingGraph::star(6));
  graphs.push_back(CouplingGraph::grid(2, 3));
  // Random connected graphs: a random spanning tree plus extra edges.
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(2));
    std::vector<std::pair<int, int>> edges;
    for (int q = 1; q < n; ++q) {
      edges.emplace_back(q, static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(q))));
    }
    for (int extra = 0; extra < 2; ++extra) {
      const int a =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int b =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (a != b) edges.emplace_back(a, b);
    }
    graphs.emplace_back(n, std::move(edges));
  }
  for (const CouplingGraph& g : graphs) {
    const std::uint32_t all = (1u << g.num_qubits()) - 1;
    for (std::uint32_t mask = 0; mask <= all; ++mask) {
      ASSERT_EQ(g.steiner_edges(mask), steiner_reference::brute_force(g, mask))
          << g.to_string() << " mask " << mask;
    }
  }
}

TEST(Coupling, RoutedCnotCost) {
  const CouplingGraph line = CouplingGraph::line(6);
  EXPECT_EQ(line.routed_cnot_cost(0, 1), 1);
  EXPECT_EQ(line.routed_cnot_cost(0, 2), 4);
  EXPECT_EQ(line.routed_cnot_cost(0, 3), 8);
  EXPECT_EQ(line.routed_cnot_cost(0, 5), 16);
}

TEST(Coupling, RoutedRotationPrefersNearControls) {
  const CouplingGraph line = CouplingGraph::line(6);
  std::vector<ControlLiteral> controls{{0, true}, {1, true}, {4, true}};
  const std::int64_t cost = line.routed_rotation_cost(controls, 2);
  // Distances to target 2: q0 at 2 hops (routed cost 4), q1 adjacent
  // (cost 1), q4 at 2 hops (cost 4). Gray-code uses per bit for c = 3:
  // bit0 fires 4x, bit1 2x, bit2 1x + the closing CNOT = 2x. Near-first
  // assignment: 4*1 + 2*4 + 2*4 = 20.
  EXPECT_EQ(cost, 20);
  // A far control on the frequent bit would cost 4*4 + 2*4 + 2*1 = 26;
  // the model must beat that.
  EXPECT_LT(cost, 26);
}

TEST(Routing, LongRangeCnotLadder) {
  // The 4(d-1) parity ladder must equal a plain CNOT for d = 2..4.
  for (int d = 2; d <= 4; ++d) {
    const int n = d + 1;
    const CouplingGraph line = CouplingGraph::line(n);
    Circuit logical(n);
    logical.append(Gate::cnot(0, n - 1));
    const Circuit routed = route_circuit(logical, line);
    EXPECT_TRUE(respects_coupling(routed, line));
    EXPECT_EQ(lowered_cnot_count(routed), 4 * (d - 1));
    expect_same_unitary(logical, routed, n);
  }
}

TEST(Routing, NegativeControlLongRange) {
  const CouplingGraph line = CouplingGraph::line(3);
  Circuit logical(3);
  logical.append(Gate::cnot(0, 2, /*positive=*/false));
  const Circuit routed = route_circuit(logical, line);
  EXPECT_TRUE(respects_coupling(routed, line));
  expect_same_unitary(logical, routed, 3);
}

TEST(Routing, McryRoutedCostMatchesModel) {
  // The routed circuit's CNOT count must equal the cost model the search
  // uses (this also pins the near-control-first reordering).
  Rng rng(61);
  const CouplingGraph line = CouplingGraph::line(5);
  for (int trial = 0; trial < 8; ++trial) {
    const int target = static_cast<int>(rng.next_below(5));
    std::vector<ControlLiteral> controls;
    for (int q = 0; q < 5; ++q) {
      if (q != target && rng.next_bool(0.6)) {
        controls.push_back(ControlLiteral{q, rng.next_bool()});
      }
    }
    if (controls.size() < 2) continue;
    Circuit logical(5);
    logical.append(Gate::mcry(controls, target, rng.next_double(-2, 2)));
    const Circuit routed = route_circuit(logical, line);
    EXPECT_TRUE(respects_coupling(routed, line));
    EXPECT_EQ(lowered_cnot_count(routed),
              line.routed_rotation_cost(controls, target));
    expect_same_unitary(logical, routed, 5);
  }
}

TEST(Routing, ReorderUcryControlsPreservesUnitary) {
  Rng rng(62);
  std::vector<double> angles(8);
  for (double& a : angles) a = rng.next_double(-2, 2);
  Circuit original(4);
  original.append(Gate::ucry({0, 1, 2}, 3, angles));
  Circuit reordered(4);
  reordered.append(
      reorder_ucry_controls(original.gates()[0], {2, 0, 1}));
  expect_same_unitary(original, reordered, 4);
  EXPECT_THROW(reorder_ucry_controls(original.gates()[0], {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(reorder_ucry_controls(original.gates()[0], {0, 1, 3}),
               std::invalid_argument);
}

TEST(CouplingSearch, GhzOnLineIsChainOfNeighbours) {
  SearchOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer synth(options);
  const QuantumState ghz = make_ghz(4);
  const SynthesisResult res = synth.synthesize(ghz);
  ASSERT_TRUE(res.found);
  // The neighbour chain costs 3 even on a line.
  EXPECT_EQ(res.cnot_cost, 3);
  verify_preparation_or_throw(res.circuit, ghz);
  const Circuit routed = route_circuit(res.circuit, *options.coupling);
  EXPECT_TRUE(respects_coupling(routed, *options.coupling));
  EXPECT_EQ(lowered_cnot_count(routed), res.cnot_cost);
}

TEST(CouplingSearch, RoutedCostMatchesSearchCost) {
  // End-to-end agreement: whatever the search reports must equal the CNOT
  // count of the routed circuit.
  Rng rng(63);
  SearchOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer synth(options);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 4, rng);
    const SynthesisResult res = synth.synthesize(target);
    ASSERT_TRUE(res.found);
    verify_preparation_or_throw(res.circuit, target);
    const Circuit routed = route_circuit(res.circuit, *options.coupling);
    EXPECT_TRUE(respects_coupling(routed, *options.coupling));
    EXPECT_EQ(lowered_cnot_count(routed), res.cnot_cost)
        << target.to_string();
    // The routed circuit still prepares the state.
    verify_preparation_or_throw(routed, target);
  }
}

TEST(Routing, WiderDeviceThanCircuit) {
  // Regression: a 2-qubit CNOT routed on a 3-qubit star centered at qubit
  // 2 must traverse the center, which lies above the logical register.
  // The routed output is sized by the device, with the extra qubit acting
  // as an ancilla that returns to |0>.
  const CouplingGraph star_center_2(3, {{0, 2}, {1, 2}});
  Circuit logical(2);
  logical.append(Gate::cnot(0, 1));
  const Circuit routed = route_circuit(logical, star_center_2);
  EXPECT_EQ(routed.num_qubits(), 3);
  EXPECT_TRUE(respects_coupling(routed, star_center_2));
  EXPECT_EQ(lowered_cnot_count(routed), 4);  // distance 2 -> 4(d-1)
  Circuit embedded(3);
  embedded.append(logical);
  expect_same_unitary(embedded, routed, 3);
}

TEST(Routing, RespectsCouplingRequiresNativeGates) {
  const CouplingGraph line = CouplingGraph::line(3);
  // An un-lowered single-control rotation is not native even on an edge.
  Circuit cry(3);
  cry.append(Gate::cry(0, 1, 0.7));
  EXPECT_FALSE(respects_coupling(cry, line));
  Circuit mcry(3);
  mcry.append(Gate::mcry({{0, true}, {2, true}}, 1, 0.7));
  EXPECT_FALSE(respects_coupling(mcry, line));
  // Negative controls are not native either; lowering removes them.
  Circuit negative(3);
  negative.append(Gate::cnot(0, 1, /*positive=*/false));
  EXPECT_FALSE(respects_coupling(negative, line));
  EXPECT_TRUE(respects_coupling(lower(negative), line));
  // 1-qubit gates and on-edge CNOTs pass.
  Circuit native(3);
  native.append(Gate::x(0));
  native.append(Gate::ry(2, 0.3));
  native.append(Gate::cnot(1, 2));
  EXPECT_TRUE(respects_coupling(native, line));
  Circuit off_edge(3);
  off_edge.append(Gate::cnot(0, 2));
  EXPECT_FALSE(respects_coupling(off_edge, line));
}

TEST(Routing, RandomCircuitsConformAndVerifyOnEveryTopology) {
  // Property: routing any logical circuit onto any topology yields a
  // conformant circuit preparing the same state (device qubits above the
  // logical register are ancillas and must return to |0>).
  Rng rng(65);
  std::vector<std::pair<std::string, CouplingGraph>> devices;
  devices.emplace_back("line5", CouplingGraph::line(5));
  devices.emplace_back("ring5", CouplingGraph::ring(5));
  devices.emplace_back("star5", CouplingGraph::star(5));
  devices.emplace_back("grid23", CouplingGraph::grid(2, 3));
  devices.emplace_back("heavy_hex7",
                       CouplingGraph::heavy_hex(3).induced(
                           {0, 1, 2, 5, 6, 7, 15}));
  const int n = 4;  // logical register, strictly narrower than any device
  for (int trial = 0; trial < 6; ++trial) {
    Circuit logical(n);
    const int gates = 6 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < gates; ++i) {
      const int target = static_cast<int>(rng.next_below(n));
      switch (rng.next_below(5)) {
        case 0:
          logical.append(Gate::x(target));
          break;
        case 1:
          logical.append(Gate::ry(target, rng.next_double(-2, 2)));
          break;
        case 2: {
          const int control = static_cast<int>(rng.next_below(n));
          if (control != target) {
            logical.append(Gate::cnot(control, target, rng.next_bool()));
          }
          break;
        }
        case 3: {
          const int control = static_cast<int>(rng.next_below(n));
          if (control != target) {
            logical.append(Gate::cry(control, target,
                                     rng.next_double(-2, 2),
                                     rng.next_bool()));
          }
          break;
        }
        default: {
          std::vector<ControlLiteral> controls;
          for (int q = 0; q < n; ++q) {
            if (q != target && rng.next_bool(0.6)) {
              controls.push_back(ControlLiteral{q, rng.next_bool()});
            }
          }
          if (controls.size() >= 2) {
            logical.append(
                Gate::mcry(controls, target, rng.next_double(-2, 2)));
          }
          break;
        }
      }
    }
    // The state the logical circuit prepares from |0...0>.
    Statevector sv(n);
    sv.apply(logical);
    const QuantumState prepared =
        QuantumState::from_dense(n, sv.amplitudes());
    for (const auto& [name, device] : devices) {
      const Circuit routed = route_circuit(logical, device);
      EXPECT_EQ(routed.num_qubits(), device.num_qubits()) << name;
      EXPECT_TRUE(respects_coupling(routed, device)) << name;
      const auto v = verify_preparation(routed, prepared);
      EXPECT_TRUE(v.ok) << name << ": " << v.message;
    }
  }
}

TEST(CouplingSearch, DisconnectedCouplingRejectedUpFront) {
  SearchOptions options;
  options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph(4, {{0, 1}, {2, 3}}));
  EXPECT_THROW(AStarSynthesizer{options}, std::invalid_argument);
  options.num_threads = 4;
  EXPECT_THROW(AStarSynthesizer{options}, std::invalid_argument);
  ExactSynthesisOptions exact;
  exact.astar.coupling = options.coupling;
  EXPECT_THROW(ExactSynthesizer{exact}, std::invalid_argument);
  BeamOptions beam;
  beam.coupling = options.coupling;
  EXPECT_THROW(BeamSynthesizer{beam}, std::invalid_argument);
}

TEST(CouplingSearch, RoutedHeuristicKeepsDijkstraOptimum) {
  // Admissibility corpus: the coupling-aware component heuristic must
  // return exactly the optimal routed cost that an uninformed search
  // (kZero = Dijkstra) certifies, at 1 and at 4 threads, while never
  // expanding more nodes serially. The spread-out Bell products are the
  // instances where the routed bound really bites.
  Rng rng(66);
  std::vector<std::pair<std::string, std::shared_ptr<CouplingGraph>>>
      devices;
  devices.emplace_back(
      "line4", std::make_shared<CouplingGraph>(CouplingGraph::line(4)));
  devices.emplace_back(
      "star4", std::make_shared<CouplingGraph>(CouplingGraph::star(4)));
  devices.emplace_back(
      "ring5", std::make_shared<CouplingGraph>(CouplingGraph::ring(5)));
  devices.emplace_back(
      "grid23", std::make_shared<CouplingGraph>(CouplingGraph::grid(2, 3)));
  std::vector<std::pair<std::string, QuantumState>> cases;
  cases.emplace_back("ghz4", make_ghz(4));
  cases.emplace_back("parity4",
                     make_uniform(4, {0b0000, 0b0011, 0b0101, 0b0110}));
  cases.emplace_back("bell03x12",
                     make_uniform(4, {0b0000, 0b1001, 0b0110, 0b1111}));
  for (int i = 0; i < 3; ++i) {
    cases.emplace_back("rand4#" + std::to_string(i),
                       make_random_uniform(4, 4, rng));
  }
  std::uint64_t expanded_zero = 0;
  std::uint64_t expanded_aware = 0;
  for (const auto& [device_name, device] : devices) {
    for (const auto& [case_name, state] : cases) {
      SearchOptions zero;
      zero.coupling = device;
      zero.heuristic = HeuristicMode::kZero;
      const SynthesisResult base = AStarSynthesizer(zero).synthesize(state);
      ASSERT_TRUE(base.found && base.optimal)
          << device_name << "/" << case_name;

      SearchOptions aware;
      aware.coupling = device;
      const SynthesisResult res = AStarSynthesizer(aware).synthesize(state);
      ASSERT_TRUE(res.found && res.optimal)
          << device_name << "/" << case_name;
      EXPECT_EQ(res.cnot_cost, base.cnot_cost)
          << device_name << "/" << case_name;
      EXPECT_LE(res.stats.nodes_expanded, base.stats.nodes_expanded)
          << device_name << "/" << case_name;
      verify_preparation_or_throw(res.circuit, state);
      expanded_zero += base.stats.nodes_expanded;
      expanded_aware += res.stats.nodes_expanded;

      SearchOptions parallel = aware;
      parallel.num_threads = 4;
      const SynthesisResult par =
          AStarSynthesizer(parallel).synthesize(state);
      ASSERT_TRUE(par.found && par.optimal)
          << device_name << "/" << case_name;
      EXPECT_EQ(par.cnot_cost, base.cnot_cost)
          << device_name << "/" << case_name;
    }
  }
  // The routed bound must actually prune somewhere on this corpus.
  EXPECT_LT(expanded_aware, expanded_zero);
}

TEST(CouplingSearch, LineNeverCheaperThanFull) {
  Rng rng(64);
  SearchOptions full_opts;
  SearchOptions line_opts;
  line_opts.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer full_synth(full_opts);
  const AStarSynthesizer line_synth(line_opts);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 5, rng);
    const SynthesisResult f = full_synth.synthesize(target);
    const SynthesisResult l = line_synth.synthesize(target);
    ASSERT_TRUE(f.found && l.found);
    EXPECT_GE(l.cnot_cost, f.cnot_cost);
    verify_preparation_or_throw(l.circuit, target);
  }
}

}  // namespace
}  // namespace qsp
