#include "arch/coupling.hpp"

#include <gtest/gtest.h>

#include "arch/routing.hpp"
#include "circuit/lowering.hpp"
#include "core/astar.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

void expect_same_unitary(const Circuit& a, const Circuit& b, int n) {
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ASSERT_NEAR(sa.amplitudes()[i], sb.amplitudes()[i], 1e-9);
    }
  }
}

TEST(Coupling, FactoriesAndDistances) {
  const CouplingGraph line = CouplingGraph::line(5);
  EXPECT_TRUE(line.has_edge(0, 1));
  EXPECT_FALSE(line.has_edge(0, 2));
  EXPECT_EQ(line.distance(0, 4), 4);
  EXPECT_FALSE(line.is_complete());
  EXPECT_TRUE(line.is_connected());

  const CouplingGraph ring = CouplingGraph::ring(6);
  EXPECT_EQ(ring.distance(0, 3), 3);
  EXPECT_EQ(ring.distance(0, 5), 1);

  const CouplingGraph star = CouplingGraph::star(5);
  EXPECT_EQ(star.distance(1, 4), 2);
  EXPECT_EQ(star.distance(0, 4), 1);

  const CouplingGraph grid = CouplingGraph::grid(2, 3);
  EXPECT_EQ(grid.num_qubits(), 6);
  EXPECT_EQ(grid.distance(0, 5), 3);  // (0,0) -> (1,2)

  EXPECT_TRUE(CouplingGraph::full(4).is_complete());
  EXPECT_THROW(CouplingGraph(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(CouplingGraph(2, {{0, 3}}), std::invalid_argument);
}

TEST(Coupling, DisconnectedGraphDetected) {
  const CouplingGraph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
  EXPECT_THROW(g.distance(0, 2), std::invalid_argument);
}

TEST(Coupling, RoutedCnotCost) {
  const CouplingGraph line = CouplingGraph::line(6);
  EXPECT_EQ(line.routed_cnot_cost(0, 1), 1);
  EXPECT_EQ(line.routed_cnot_cost(0, 2), 4);
  EXPECT_EQ(line.routed_cnot_cost(0, 3), 8);
  EXPECT_EQ(line.routed_cnot_cost(0, 5), 16);
}

TEST(Coupling, RoutedRotationPrefersNearControls) {
  const CouplingGraph line = CouplingGraph::line(6);
  std::vector<ControlLiteral> controls{{0, true}, {1, true}, {4, true}};
  const std::int64_t cost = line.routed_rotation_cost(controls, 2);
  // Distances to target 2: q0 at 2 hops (routed cost 4), q1 adjacent
  // (cost 1), q4 at 2 hops (cost 4). Gray-code uses per bit for c = 3:
  // bit0 fires 4x, bit1 2x, bit2 1x + the closing CNOT = 2x. Near-first
  // assignment: 4*1 + 2*4 + 2*4 = 20.
  EXPECT_EQ(cost, 20);
  // A far control on the frequent bit would cost 4*4 + 2*4 + 2*1 = 26;
  // the model must beat that.
  EXPECT_LT(cost, 26);
}

TEST(Routing, LongRangeCnotLadder) {
  // The 4(d-1) parity ladder must equal a plain CNOT for d = 2..4.
  for (int d = 2; d <= 4; ++d) {
    const int n = d + 1;
    const CouplingGraph line = CouplingGraph::line(n);
    Circuit logical(n);
    logical.append(Gate::cnot(0, n - 1));
    const Circuit routed = route_circuit(logical, line);
    EXPECT_TRUE(respects_coupling(routed, line));
    EXPECT_EQ(lowered_cnot_count(routed), 4 * (d - 1));
    expect_same_unitary(logical, routed, n);
  }
}

TEST(Routing, NegativeControlLongRange) {
  const CouplingGraph line = CouplingGraph::line(3);
  Circuit logical(3);
  logical.append(Gate::cnot(0, 2, /*positive=*/false));
  const Circuit routed = route_circuit(logical, line);
  EXPECT_TRUE(respects_coupling(routed, line));
  expect_same_unitary(logical, routed, 3);
}

TEST(Routing, McryRoutedCostMatchesModel) {
  // The routed circuit's CNOT count must equal the cost model the search
  // uses (this also pins the near-control-first reordering).
  Rng rng(61);
  const CouplingGraph line = CouplingGraph::line(5);
  for (int trial = 0; trial < 8; ++trial) {
    const int target = static_cast<int>(rng.next_below(5));
    std::vector<ControlLiteral> controls;
    for (int q = 0; q < 5; ++q) {
      if (q != target && rng.next_bool(0.6)) {
        controls.push_back(ControlLiteral{q, rng.next_bool()});
      }
    }
    if (controls.size() < 2) continue;
    Circuit logical(5);
    logical.append(Gate::mcry(controls, target, rng.next_double(-2, 2)));
    const Circuit routed = route_circuit(logical, line);
    EXPECT_TRUE(respects_coupling(routed, line));
    EXPECT_EQ(lowered_cnot_count(routed),
              line.routed_rotation_cost(controls, target));
    expect_same_unitary(logical, routed, 5);
  }
}

TEST(Routing, ReorderUcryControlsPreservesUnitary) {
  Rng rng(62);
  std::vector<double> angles(8);
  for (double& a : angles) a = rng.next_double(-2, 2);
  Circuit original(4);
  original.append(Gate::ucry({0, 1, 2}, 3, angles));
  Circuit reordered(4);
  reordered.append(
      reorder_ucry_controls(original.gates()[0], {2, 0, 1}));
  expect_same_unitary(original, reordered, 4);
  EXPECT_THROW(reorder_ucry_controls(original.gates()[0], {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(reorder_ucry_controls(original.gates()[0], {0, 1, 3}),
               std::invalid_argument);
}

TEST(CouplingSearch, GhzOnLineIsChainOfNeighbours) {
  SearchOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer synth(options);
  const QuantumState ghz = make_ghz(4);
  const SynthesisResult res = synth.synthesize(ghz);
  ASSERT_TRUE(res.found);
  // The neighbour chain costs 3 even on a line.
  EXPECT_EQ(res.cnot_cost, 3);
  verify_preparation_or_throw(res.circuit, ghz);
  const Circuit routed = route_circuit(res.circuit, *options.coupling);
  EXPECT_TRUE(respects_coupling(routed, *options.coupling));
  EXPECT_EQ(lowered_cnot_count(routed), res.cnot_cost);
}

TEST(CouplingSearch, RoutedCostMatchesSearchCost) {
  // End-to-end agreement: whatever the search reports must equal the CNOT
  // count of the routed circuit.
  Rng rng(63);
  SearchOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer synth(options);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 4, rng);
    const SynthesisResult res = synth.synthesize(target);
    ASSERT_TRUE(res.found);
    verify_preparation_or_throw(res.circuit, target);
    const Circuit routed = route_circuit(res.circuit, *options.coupling);
    EXPECT_TRUE(respects_coupling(routed, *options.coupling));
    EXPECT_EQ(lowered_cnot_count(routed), res.cnot_cost)
        << target.to_string();
    // The routed circuit still prepares the state.
    verify_preparation_or_throw(routed, target);
  }
}

TEST(CouplingSearch, LineNeverCheaperThanFull) {
  Rng rng(64);
  SearchOptions full_opts;
  SearchOptions line_opts;
  line_opts.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer full_synth(full_opts);
  const AStarSynthesizer line_synth(line_opts);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 5, rng);
    const SynthesisResult f = full_synth.synthesize(target);
    const SynthesisResult l = line_synth.synthesize(target);
    ASSERT_TRUE(f.found && l.found);
    EXPECT_GE(l.cnot_cost, f.cnot_cost);
    verify_preparation_or_throw(l.circuit, target);
  }
}

}  // namespace
}  // namespace qsp
