#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qsp {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"n", "method", "cnots"});
  t.add_row({"3", "ours", "5"});
  t.add_row({"12", "m-flow", "178996"});
  const std::string out = t.render();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("178996"), std::string::npos);
  EXPECT_NE(out.find("ours"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SeparatorAddsRule) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + top + bottom + explicit separator = 4 horizontal rules.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TextTable, Formatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(std::uint64_t{12870}), "12870");
  EXPECT_EQ(TextTable::fmt(-7), "-7");
  EXPECT_EQ(TextTable::fmt_percent(0.321, 0), "32%");
  EXPECT_EQ(TextTable::fmt_percent(-0.05, 1), "-5.0%");
}

}  // namespace
}  // namespace qsp
