#include "circuit/target.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/circuit.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/lowering.hpp"

namespace qsp {
namespace {

TEST(Target, BuiltinListsCnotFirst) {
  const auto& all = Target::builtin();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name(), "cnot");
  EXPECT_TRUE(all[0].is_cnot());
  EXPECT_EQ(all[1].name(), "cz");
  EXPECT_EQ(all[2].name(), "iswap");
  EXPECT_EQ(all[3].name(), "rzz");
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].is_cnot()) << all[i].name();
  }
}

TEST(Target, ByNameRoundTripsAndRejectsUnknown) {
  for (const Target& t : Target::builtin()) {
    EXPECT_EQ(Target::by_name(t.name()), t);
  }
  EXPECT_THROW(Target::by_name("sycamore"), std::invalid_argument);
  EXPECT_THROW(Target::by_name(""), std::invalid_argument);
  EXPECT_THROW(Target::by_name("CNOT"), std::invalid_argument);
}

TEST(Target, TwoQubitKindAndNativesPerCnot) {
  EXPECT_EQ(Target::cnot().two_qubit_kind(), GateKind::kCNOT);
  EXPECT_EQ(Target::cz().two_qubit_kind(), GateKind::kCZ);
  EXPECT_EQ(Target::iswap().two_qubit_kind(), GateKind::kISwap);
  EXPECT_EQ(Target::rzz().two_qubit_kind(), GateKind::kRZZ);
  EXPECT_EQ(Target::cnot().natives_per_cnot(), 1);
  EXPECT_EQ(Target::cz().natives_per_cnot(), 1);
  EXPECT_EQ(Target::iswap().natives_per_cnot(), 2);
  EXPECT_EQ(Target::rzz().natives_per_cnot(), 1);
}

TEST(Target, SingleQubitSetNativeEverywhere) {
  for (const Target& t : Target::builtin()) {
    EXPECT_TRUE(t.is_native(Gate::x(0))) << t.name();
    EXPECT_TRUE(t.is_native(Gate::ry(1, 0.3))) << t.name();
    EXPECT_TRUE(t.is_native(Gate::rz(0, -0.7))) << t.name();
  }
}

TEST(Target, TwoQubitNativeOnlyOnOwnBackend) {
  const Gate cx = Gate::cnot(0, 1);
  const Gate cz = Gate::cz(0, 1);
  const Gate is = Gate::iswap(0, 1);
  const Gate zz = Gate::rzz(0, 1, 0.4);
  for (const Target& t : Target::builtin()) {
    EXPECT_EQ(t.is_native(cx), t.two_qubit_kind() == GateKind::kCNOT);
    EXPECT_EQ(t.is_native(cz), t.two_qubit_kind() == GateKind::kCZ);
    EXPECT_EQ(t.is_native(is), t.two_qubit_kind() == GateKind::kISwap);
    EXPECT_EQ(t.is_native(zz), t.two_qubit_kind() == GateKind::kRZZ);
  }
}

TEST(Target, NegativeControlCnotIsNotNative) {
  // The legalized stream carries positive controls only; a negative
  // literal still needs the X-conjugation rewrite.
  EXPECT_FALSE(Target::cnot().is_native(Gate::cnot(0, 1, /*positive=*/false)));
}

TEST(Target, CompositeGatesNeverNative) {
  const Gate cry = Gate::cry(0, 1, 0.5);
  const Gate mcry = Gate::mcry(
      {ControlLiteral{0, true}, ControlLiteral{1, false}}, 2, 0.5);
  const Gate ucry = Gate::ucry({0}, 1, {0.1, 0.2});
  for (const Target& t : Target::builtin()) {
    EXPECT_FALSE(t.is_native(cry)) << t.name();
    EXPECT_FALSE(t.is_native(mcry)) << t.name();
    EXPECT_FALSE(t.is_native(ucry)) << t.name();
  }
}

TEST(Target, IsNativeCircuitHoldsAfterLowering) {
  Circuit c(3);
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, false}}, 2,
                      0.8));
  c.append(Gate::cnot(1, 0, /*positive=*/false));
  c.append(Gate::ucrz({0}, 2, {0.3, -0.4}));
  for (const Target& t : Target::builtin()) {
    EXPECT_FALSE(t.is_native_circuit(c)) << t.name();
    EXPECT_TRUE(t.is_native_circuit(lower_onto(c, t))) << t.name();
  }
}

TEST(Target, GateCostWeighsNativesAndEstimatesComposites) {
  Target t = Target::cz();
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::cz(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::ry(0, 0.5)), 0.0);
  // A CNOT on the CZ backend legalizes to one CZ.
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::cnot(0, 1)), 1.0);
  // CRy lowers to 2 CNOTs -> 2 natives on cz/rzz, 4 on iswap.
  EXPECT_DOUBLE_EQ(Target::cz().gate_cost(Gate::cry(0, 1, 0.5)), 2.0);
  EXPECT_DOUBLE_EQ(Target::iswap().gate_cost(Gate::cry(0, 1, 0.5)), 4.0);
  // Tuned weights flow through.
  t.two_qubit_cost = 3.0;
  t.single_qubit_cost = 0.25;
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::cz(0, 1)), 3.0);
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::x(0)), 0.25);
  EXPECT_DOUBLE_EQ(t.gate_cost(Gate::cry(0, 1, 0.5)), 6.0);
}

TEST(Target, CircuitCostSumsGateCosts) {
  Circuit c(2);
  c.append(Gate::ry(0, 0.5));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  Target t = Target::iswap();
  EXPECT_DOUBLE_EQ(circuit_cost(c, t), 4.0);  // 2 CNOTs x 2 iSwaps each
  t.single_qubit_cost = 1.0;
  // Weighted model now also bills the Ry.
  EXPECT_DOUBLE_EQ(circuit_cost(c, t), 5.0);
}

TEST(Target, TwoQubitGateCountMatchesBackend) {
  Circuit c(3);
  c.append(Gate::cry(0, 1, 0.6));
  c.append(Gate::cnot(1, 2));
  for (const Target& t : Target::builtin()) {
    const Circuit low = lower_onto(c, t);
    EXPECT_EQ(two_qubit_gate_count(low, t),
              3 * static_cast<std::int64_t>(t.natives_per_cnot()))
        << t.name();
  }
}

TEST(Target, TwoQubitGateCountRejectsForeignGates) {
  Circuit cz_circuit(2);
  cz_circuit.append(Gate::cz(0, 1));
  EXPECT_EQ(two_qubit_gate_count(cz_circuit, Target::cz()), 1);
  // Counting a CZ stream against the CNOT (or any other) backend fails
  // loudly instead of silently miscounting.
  EXPECT_THROW(two_qubit_gate_count(cz_circuit, Target::cnot()),
               std::invalid_argument);
  EXPECT_THROW(two_qubit_gate_count(cz_circuit, Target::iswap()),
               std::invalid_argument);
  Circuit composite(2);
  composite.append(Gate::cry(0, 1, 0.4));
  EXPECT_THROW(two_qubit_gate_count(composite, Target::cz()),
               std::invalid_argument);
}

TEST(Target, EqualityCoversKindAndWeights) {
  EXPECT_EQ(Target::cz(), Target::cz());
  EXPECT_FALSE(Target::cz() == Target::rzz());
  Target tuned = Target::cz();
  tuned.two_qubit_cost = 2.0;
  EXPECT_FALSE(tuned == Target::cz());
}

TEST(Target, SymmetricNativesCanonicalizeWireOrder) {
  EXPECT_EQ(Gate::cz(2, 0), Gate::cz(0, 2));
  EXPECT_EQ(Gate::iswap(3, 1), Gate::iswap(1, 3));
  EXPECT_EQ(Gate::rzz(2, 0, 0.9), Gate::rzz(0, 2, 0.9));
  // Canonical layout: lower wire as the positive control literal.
  const Gate g = Gate::cz(4, 2);
  ASSERT_EQ(g.controls().size(), 1u);
  EXPECT_EQ(g.controls()[0].qubit, 2);
  EXPECT_TRUE(g.controls()[0].positive);
  EXPECT_EQ(g.target(), 4);
}

TEST(Target, AdjointOfNatives) {
  // CZ is self-inverse; RZZ negates its angle; iSwap's inverse is outside
  // the gate set and must refuse rather than silently return iSwap.
  EXPECT_EQ(Gate::cz(0, 1).adjoint(), Gate::cz(0, 1));
  EXPECT_EQ(Gate::rzz(0, 1, 0.8).adjoint(), Gate::rzz(0, 1, -0.8));
  EXPECT_THROW(Gate::iswap(0, 1).adjoint(), std::logic_error);
}

TEST(Target, ToStringNamesNatives) {
  EXPECT_EQ(Gate::cz(0, 1).to_string(), "CZ(q0, q1)");
  EXPECT_EQ(Gate::iswap(0, 1).to_string(), "iSWAP(q0, q1)");
  EXPECT_NE(Gate::rzz(0, 1, 0.5).to_string().find("RZZ(q0, q1"),
            std::string::npos);
}

}  // namespace
}  // namespace qsp
