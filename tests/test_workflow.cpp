#include "flow/solver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/routing.hpp"
#include "circuit/lowering.hpp"
#include "flow/methods.hpp"
#include "service/equivalence_cache.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

TEST(Workflow, TinyStatesUseExactDirectly) {
  // Unbudgeted kernels: the pinned CNOT count needs the exact tail to
  // complete, and under ctest load the default 1 s / 0.5 s wall budgets
  // can exhaust and divert to a fallback.
  WorkflowOptions options;
  options.exact.astar.time_budget_seconds = 0.0;
  options.exact.beam.time_budget_seconds = 0.0;
  const Solver solver(options);
  const QuantumState target = make_dicke(4, 2);
  const WorkflowResult res = solver.prepare(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.used_exact_tail);
  verify_preparation_or_throw(res.circuit, target);
  EXPECT_EQ(count_cnots_after_lowering(res.circuit), 6);
}

TEST(Workflow, NumThreadsReachesExactTail) {
  // WorkflowOptions::num_threads must flow into the exact tail's A*
  // kernel without changing the certified result.
  WorkflowOptions options;
  options.num_threads = 4;
  const Solver solver(options);
  const QuantumState target = make_dicke(4, 2);
  const WorkflowResult res = solver.prepare(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.used_exact_tail);
  verify_preparation_or_throw(res.circuit, target);
  EXPECT_EQ(count_cnots_after_lowering(res.circuit), 6);
}

TEST(Workflow, SparseDispatch) {
  Rng rng(401);
  const Solver solver;
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 6 + static_cast<int>(rng.next_below(5));
    const QuantumState target = make_random_uniform(n, n, rng);
    const WorkflowResult res = solver.prepare(target);
    ASSERT_TRUE(res.found) << target.to_string();
    EXPECT_TRUE(res.sparse_path);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(Workflow, DenseDispatch) {
  Rng rng(402);
  const Solver solver;
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(3));
    const QuantumState target = make_random_uniform(n, 1 << (n - 1), rng);
    const WorkflowResult res = solver.prepare(target);
    ASSERT_TRUE(res.found);
    EXPECT_FALSE(res.sparse_path);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(Workflow, BeatsOrMatchesBestBaselinePerCategory) {
  Rng rng(403);
  // Sparse: ours vs m-flow.
  double ours_sparse = 0, mflow_sparse = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(9, 9, rng);
    const MethodRun ours = run_method(Method::kOurs, target);
    const MethodRun mflow = run_method(Method::kMFlow, target);
    ASSERT_TRUE(ours.ok && mflow.ok);
    ours_sparse += static_cast<double>(ours.cnots);
    mflow_sparse += static_cast<double>(mflow.cnots);
  }
  EXPECT_LT(ours_sparse, mflow_sparse);

  // Dense: ours vs n-flow.
  double ours_dense = 0, nflow_dense = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const QuantumState target = make_random_uniform(6, 32, rng);
    const MethodRun ours = run_method(Method::kOurs, target);
    const MethodRun nflow = run_method(Method::kNFlow, target);
    ASSERT_TRUE(ours.ok && nflow.ok);
    ours_dense += static_cast<double>(ours.cnots);
    nflow_dense += static_cast<double>(nflow.cnots);
  }
  EXPECT_LE(ours_dense, nflow_dense);
}

TEST(Workflow, HandlesSignedStatesViaFallback) {
  Rng rng(404);
  const Solver solver;
  for (int trial = 0; trial < 5; ++trial) {
    const QuantumState target = make_random_real(7, 7, rng);
    const WorkflowResult res = solver.prepare(target);
    ASSERT_TRUE(res.found);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(Workflow, ExactTailHelperVerifies) {
  Rng rng(405);
  // Generous budgets so the exact kernel always completes regardless of
  // machine load (the default wall-clock budgets can expire when the test
  // suite runs highly parallel).
  WorkflowOptions options;
  options.exact.astar.time_budget_seconds = 0.0;
  options.exact.astar.node_budget = 5'000'000;
  const Solver solver(options);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 8, rng);
    bool used_exact = false;
    const Circuit c = solver.prepare_via_exact_tail(target, &used_exact);
    EXPECT_TRUE(used_exact);
    verify_preparation_or_throw(c, target);
  }
}

TEST(Workflow, ExactTailPeelsSeparableQubits) {
  // 6-qubit state with a 2-qubit entangled core: tail must peel and use
  // the exact kernel despite n > exact_max_qubits.
  const QuantumState target = make_uniform(
      6, {0b000000, 0b000011, 0b110000, 0b110011, 0b001000, 0b001011,
          0b111000, 0b111011});
  // Support = Bell(q0,q1) x |+>(q3) x Bell(q4,q5)... cardinality 8.
  const Solver solver;
  const WorkflowResult res = solver.prepare(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(Workflow, MethodRegistryNamesAndRuns) {
  EXPECT_EQ(method_name(Method::kMFlow), "m-flow");
  EXPECT_EQ(method_name(Method::kNFlow), "n-flow");
  EXPECT_EQ(method_name(Method::kHybrid), "hybrid");
  EXPECT_EQ(method_name(Method::kOurs), "ours");
  Rng rng(406);
  const QuantumState target = make_random_uniform(6, 6, rng);
  for (const Method m :
       {Method::kMFlow, Method::kNFlow, Method::kHybrid, Method::kOurs}) {
    const MethodRun run = run_method(m, target);
    ASSERT_TRUE(run.ok) << method_name(m);
    EXPECT_GE(run.cnots, 0) << method_name(m);
    verify_preparation_or_throw(run.circuit, target);
  }
}

TEST(Workflow, BorderlineDenseDualPathBeatsQubitReduction) {
  // |D^2_6> has n*m = 90 >= 2^6, so the fixed Fig.-5 dispatch would pay
  // the dense 2^6 - 2 = 62 CNOTs; the dual-path refinement runs the
  // sparse machinery too and must come in strictly cheaper.
  const QuantumState target = make_dicke(6, 2);
  const Solver solver;
  const WorkflowResult res = solver.prepare(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  EXPECT_LT(count_cnots_after_lowering(res.circuit, elide), 62);
}

TEST(Workflow, CouplingOutputConformsAndVerifies) {
  // End-to-end coupling awareness: with a device set, the workflow output
  // must be native for the device (tightened respects_coupling) and still
  // prepare the target, with spare device wires back in |0>.
  WorkflowOptions options;
  options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::grid(2, 3));
  const Solver solver(options);
  Rng rng(408);
  std::vector<QuantumState> targets;
  targets.push_back(make_ghz(5));
  targets.push_back(make_dicke(4, 2));
  targets.push_back(make_random_uniform(5, 5, rng));
  targets.push_back(make_random_uniform(6, 12, rng));
  for (const QuantumState& target : targets) {
    const WorkflowResult res = solver.prepare(target);
    ASSERT_TRUE(res.found) << target.to_string();
    EXPECT_EQ(res.circuit.num_qubits(), 6);
    EXPECT_TRUE(respects_coupling(res.circuit, *options.coupling))
        << target.to_string();
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(Workflow, BackendTargetProducesNativeVerifiedCircuit) {
  // End-to-end backend awareness: with a non-CNOT target the workflow
  // output is native for that backend (the staged lowering ran inside the
  // pipeline) and still prepares the state; the result names its target.
  Rng rng(415);
  const QuantumState dense = make_random_uniform(5, 20, rng);
  for (const Target& target : Target::builtin()) {
    WorkflowOptions options;
    options.target = target;
    const Solver solver(options);
    for (const QuantumState& state :
         {make_ghz(4), make_dicke(4, 2), dense}) {
      const WorkflowResult res = solver.prepare(state);
      ASSERT_TRUE(res.found) << target.name() << " " << state.to_string();
      EXPECT_EQ(res.target, target.name());
      if (!target.is_cnot()) {
        // The identity target keeps the historical contract (composite
        // rotations allowed, benches lower afterwards); every other
        // backend gets a fully legalized stream.
        EXPECT_TRUE(target.is_native_circuit(res.circuit))
            << target.name() << " " << state.to_string();
      }
      verify_preparation_or_throw(res.circuit, state);
    }
  }
}

TEST(Workflow, BackendTargetComposesWithCoupling) {
  // Routing then legalization: the legalized output must stay on the
  // device edges (native decompositions never leave the CNOT's wire pair)
  // and conform under the target-aware respects_coupling.
  for (const Target& target : {Target::cz(), Target::iswap()}) {
    WorkflowOptions options;
    options.target = target;
    options.coupling =
        std::make_shared<CouplingGraph>(CouplingGraph::line(5));
    const Solver solver(options);
    const QuantumState state = make_ghz(5);
    const WorkflowResult res = solver.prepare(state);
    ASSERT_TRUE(res.found) << target.name();
    EXPECT_TRUE(target.is_native_circuit(res.circuit)) << target.name();
    EXPECT_TRUE(respects_coupling(res.circuit, *options.coupling, target))
        << target.name();
    verify_preparation_or_throw(res.circuit, state);
  }
}

TEST(Workflow, CouplingExactTailHostsCoreOnConnectedSubgraph) {
  // Bell(0,5) on a line: the core's wires {0, 5} induce a disconnected
  // subgraph, so the tail must grow a connected host through the middle
  // wires and still verify; the routed workflow output must conform.
  WorkflowOptions options;
  options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(6));
  const Solver solver(options);
  const QuantumState far_bell = make_uniform(6, {0b000000, 0b100001});
  bool used_exact = false;
  const Circuit tail = solver.prepare_via_exact_tail(far_bell, &used_exact);
  EXPECT_TRUE(used_exact);
  verify_preparation_or_throw(tail, far_bell);

  const WorkflowResult res = solver.prepare(far_bell);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.used_exact_tail);
  EXPECT_TRUE(respects_coupling(res.circuit, *options.coupling));
  verify_preparation_or_throw(res.circuit, far_bell);
}

TEST(Workflow, CouplingHeavyHexDevice) {
  // A 6-qubit GHZ hosted on the 18-qubit heavy-hex patch: the device is
  // wider than the target, so the routed result carries ancilla wires.
  WorkflowOptions options;
  options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::heavy_hex(3));
  const Solver solver(options);
  const QuantumState target = make_ghz(6);
  const WorkflowResult res = solver.prepare(target);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.circuit.num_qubits(), 18);
  EXPECT_TRUE(respects_coupling(res.circuit, *options.coupling));
  verify_preparation_or_throw(res.circuit, target);
}

TEST(Workflow, CouplingHostCapFallsBackWhenCoreTooSpread) {
  // Bell(0,14) across the heavy-hex lattice: only two entangled wires,
  // but connecting them needs ~9 host qubits — beyond
  // exact_max_host_qubits, so the tail must skip the exact kernel (the
  // thresholds were sized for <= exact_max_qubits-entangled cores) and
  // the workflow must still deliver a conformant, verified circuit.
  WorkflowOptions options;
  options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::heavy_hex(3));
  const Solver solver(options);
  const QuantumState far_bell =
      make_uniform(15, {0, (BasisIndex{1} << 14) | 1});
  const WorkflowResult res = solver.prepare(far_bell);
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.used_exact_tail);
  EXPECT_TRUE(respects_coupling(res.circuit, *options.coupling));
  verify_preparation_or_throw(res.circuit, far_bell);

  // Raising the cap re-enables the exact kernel on the same instance.
  WorkflowOptions wide = options;
  wide.exact_max_host_qubits = 12;
  const WorkflowResult exact_res = Solver(wide).prepare(far_bell);
  ASSERT_TRUE(exact_res.found);
  EXPECT_TRUE(exact_res.used_exact_tail);
  EXPECT_TRUE(respects_coupling(exact_res.circuit, *options.coupling));
  verify_preparation_or_throw(exact_res.circuit, far_bell);
}

TEST(Workflow, CouplingValidation) {
  WorkflowOptions disconnected;
  disconnected.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph(4, {{0, 1}, {2, 3}}));
  EXPECT_THROW(Solver{disconnected}, std::invalid_argument);

  WorkflowOptions narrow;
  narrow.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  const Solver solver(narrow);
  EXPECT_THROW(solver.prepare(make_ghz(5)), std::invalid_argument);
}

TEST(Workflow, TimedOutReported) {
  Rng rng(407);
  const QuantumState target = make_random_uniform(14, 128, rng);
  WorkflowOptions options;
  options.time_budget_seconds = 1e-9;
  const Solver solver(options);
  const WorkflowResult res = solver.prepare(target);
  // Sparse path (14*128 < 2^14): the reduction must hit the deadline.
  EXPECT_TRUE(res.timed_out || res.found);
}

TEST(Workflow, TimeBudgetAbortsRunawayKernelSearch) {
  // Regression: time_budget_seconds used to be checked only *between*
  // workflow stages, so an exact-tail search with unlimited per-search
  // budgets would blow the whole budget (minutes on this instance). The
  // deadline must now be wired into the kernels' SearchBudget: the search
  // aborts mid-flight and the search-free reduction fallback still
  // returns a verified circuit.
  Rng rng(408);
  const QuantumState target = make_random_uniform(5, 16, rng);
  WorkflowOptions options;
  options.exact_max_qubits = 5;          // fits-thresholds direct path
  options.exact.astar.time_budget_seconds = 0.0;  // "runaway": unlimited
  options.exact.astar.node_budget = 0;
  options.exact.beam.time_budget_seconds = 0.0;
  options.time_budget_seconds = 0.05;
  const Solver solver(options);
  const Timer timer;
  const WorkflowResult res = solver.prepare(target);
  // Generous bound: the budget is 50ms, the fallback is search-free; the
  // margin absorbs sanitizer slowdowns. Without in-search enforcement
  // this instance searches for minutes.
  EXPECT_LT(timer.seconds(), 10.0);
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.used_exact_tail);  // aborted mid-search, fell back
  // The budget truncation must be visible on the workflow result, not
  // just silently swallowed by the fallback.
  EXPECT_TRUE(res.budget_exhausted);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(Workflow, UnconstrainedRunIsNotBudgetExhausted) {
  // Truly unconstrained: zero the per-kernel wall budgets too, or a
  // loaded ctest run can exhaust the default 1 s A* budget and set the
  // very flag this test asserts is clear.
  WorkflowOptions options;
  options.exact.astar.time_budget_seconds = 0.0;
  options.exact.beam.time_budget_seconds = 0.0;
  const Solver solver(options);
  const WorkflowResult res = solver.prepare(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.budget_exhausted);
}

TEST(Workflow, NumThreadsReachesBeamFallback) {
  // WorkflowOptions::num_threads must also drive the exact tail's beam
  // fallback (the sharded parallel beam), and the result must stay
  // bit-identical to the single-threaded workflow: the beam kernel is
  // deterministic across thread counts.
  WorkflowOptions serial_options;
  serial_options.exact_max_qubits = 5;
  serial_options.exact.astar.node_budget = 50;  // force the beam fallback
  serial_options.exact.astar.time_budget_seconds = 0.0;
  // Unbudgeted beam: a deadline-truncated descent is (deliberately) not
  // deterministic, and this test pins bit-identity.
  serial_options.exact.beam.time_budget_seconds = 0.0;
  serial_options.exact.beam.beam_width = 256;
  serial_options.exact.beam.max_controls = -1;  // W_5 needs wide merges
  const QuantumState target = make_dicke(5, 1);
  const WorkflowResult ref = Solver(serial_options).prepare(target);
  ASSERT_TRUE(ref.found);
  ASSERT_TRUE(ref.used_exact_tail);  // beam result, via the fallback

  WorkflowOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  const WorkflowResult res = Solver(parallel_options).prepare(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.used_exact_tail);
  EXPECT_TRUE(res.circuit == ref.circuit);
  // Both runs aborted the A* stage on its node budget before falling
  // back, so both must carry the flag.
  EXPECT_TRUE(ref.budget_exhausted);
  EXPECT_TRUE(res.budget_exhausted);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(Workflow, SharedCacheModeServesRepeatsBitIdentically) {
  // Solver::cache: the second prepare() of the same target must serve the
  // exact tail from the equivalence cache and produce the identical
  // circuit.
  auto cache = std::make_shared<EquivalenceCache>();
  WorkflowOptions options;
  options.cache = cache;
  // Unbudgeted kernels: the insert/hit assertions need the exact tail to
  // run on both prepares even when ctest load would exhaust the default
  // wall budgets.
  options.exact.astar.time_budget_seconds = 0.0;
  options.exact.beam.time_budget_seconds = 0.0;
  const Solver solver(options);
  const QuantumState target = make_dicke(4, 2);
  const WorkflowResult cold = solver.prepare(target);
  ASSERT_TRUE(cold.found);
  const auto cold_stats = cache->stats();
  EXPECT_GE(cold_stats.insertions, 1u);
  const WorkflowResult warm = solver.prepare(target);
  ASSERT_TRUE(warm.found);
  const auto warm_stats = cache->stats();
  EXPECT_GE(warm_stats.exact_hits, cold_stats.exact_hits + 1);
  EXPECT_EQ(cold.circuit, warm.circuit);
  verify_preparation_or_throw(warm.circuit, target);
}

}  // namespace
}  // namespace qsp
