// Unit and property tests for the static circuit linter (circuit/lint.hpp):
// one positive and one negative case per rule QL000..QL010, the
// pass-contract gate the pipeline runs in release builds, and the
// whole-program properties the linter is meant to enforce — workflow and
// service outputs over the seeded random corpora lint clean, and the QASM
// front door rejects requests the engine could not honor.

#include "circuit/lint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"
#include "circuit/pass.hpp"
#include "circuit/pass_pipeline.hpp"
#include "circuit/qasm.hpp"
#include "flow/solver.hpp"
#include "pass_test_util.hpp"
#include "service/synthesis_service.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

bool has_rule(const LintReport& report, LintRule rule) {
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string rules_fired(const LintReport& report) {
  std::string out;
  for (const LintDiagnostic& d : report.diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

// The pipeline gate's configuration: error rules only, warnings off (the
// gray-code lowering legitimately emits zero rotations when elision is
// disabled, and pre-peephole streams legitimately carry identity pairs).
LintOptions gate_style_options() {
  LintOptions options;
  options.degenerate_rotations = false;
  options.identity_pairs = false;
  return options;
}

// ---------------------------------------------------------------------------
// Rule catalog metadata.

TEST(Lint, RuleCatalogCodesNamesSeverities) {
  EXPECT_EQ(lint_rule_code(LintRule::kParseError), "QL000");
  EXPECT_EQ(lint_rule_code(LintRule::kUnsupportedGate), "QL010");
  EXPECT_EQ(lint_rule_name(LintRule::kNoncanonicalSymmetric),
            "canonical-wire-order");
  EXPECT_EQ(lint_rule_severity(LintRule::kWireBounds), LintSeverity::kError);
  EXPECT_EQ(lint_rule_severity(LintRule::kDegenerateRotation),
            LintSeverity::kWarning);
  EXPECT_EQ(lint_rule_severity(LintRule::kIdentityPair),
            LintSeverity::kWarning);
  // The flow-sensitive rules (scanned by circuit/dataflow.hpp) share the
  // catalog: QL011..QL013 are optimizer hints, QL014 breaks the
  // workspace-register contract and stays an error.
  EXPECT_EQ(lint_rule_code(LintRule::kDeadControl), "QL011");
  EXPECT_EQ(lint_rule_code(LintRule::kAncillaReleasedDirty), "QL014");
  EXPECT_EQ(lint_rule_name(LintRule::kDeadControl), "dead-control");
  EXPECT_EQ(lint_rule_name(LintRule::kConstantOneControl),
            "constant-one-control");
  EXPECT_EQ(lint_rule_name(LintRule::kRedundantCnot), "redundant-cnot");
  EXPECT_EQ(lint_rule_name(LintRule::kAncillaReleasedDirty),
            "ancilla-released-dirty");
  EXPECT_EQ(lint_rule_severity(LintRule::kDeadControl),
            LintSeverity::kWarning);
  EXPECT_EQ(lint_rule_severity(LintRule::kConstantOneControl),
            LintSeverity::kWarning);
  EXPECT_EQ(lint_rule_severity(LintRule::kRedundantCnot),
            LintSeverity::kWarning);
  EXPECT_EQ(lint_rule_severity(LintRule::kAncillaReleasedDirty),
            LintSeverity::kError);
  EXPECT_EQ(lint_severity_name(LintSeverity::kError), "error");
}

// ---------------------------------------------------------------------------
// QL000 parse-error.

TEST(Lint, QasmParseErrorIsReported) {
  const LintReport report = lint_qasm("qreg q[2];\nnot_a_gate q[0];\n");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(has_rule(report, LintRule::kParseError));
}

TEST(Lint, QasmWellFormedTextLintsClean) {
  std::optional<Circuit> parsed;
  const LintReport report = lint_qasm(
      "OPENQASM 2.0;\nqreg q[2];\nry(0.5) q[0];\ncx q[0],q[1];\n", {},
      &parsed);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_qubits(), 2);
  EXPECT_EQ(parsed->size(), 2u);
}

// ---------------------------------------------------------------------------
// QL001 wire-bounds. The Gate factories reject out-of-range wires at
// construction, so the raw-gate seam is the only way this state exists.

TEST(Lint, WireBoundsRejectsOutOfRangeTarget) {
  RawGate raw;
  raw.kind = GateKind::kX;
  raw.target = 3;
  LintReport report;
  lint_raw_gate(raw, 0, 3, {}, report);
  EXPECT_TRUE(has_rule(report, LintRule::kWireBounds)) << rules_fired(report);
}

TEST(Lint, WireBoundsAcceptsInRangeGate) {
  const RawGate raw = RawGate::from(Gate::cnot(0, 2));
  LintReport report;
  lint_raw_gate(raw, 0, 3, {}, report);
  EXPECT_FALSE(has_rule(report, LintRule::kWireBounds)) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL002 overlapping-controls.

TEST(Lint, OverlappingControlsRejectsControlOnTarget) {
  RawGate raw;
  raw.kind = GateKind::kCNOT;
  raw.target = 1;
  raw.controls = {{1, true}};
  LintReport report;
  lint_raw_gate(raw, 0, 3, {}, report);
  EXPECT_TRUE(has_rule(report, LintRule::kOverlappingControls))
      << rules_fired(report);
}

TEST(Lint, OverlappingControlsRejectsDuplicateControl) {
  RawGate raw;
  raw.kind = GateKind::kMCRy;
  raw.target = 2;
  raw.theta = 0.4;
  raw.controls = {{0, true}, {0, false}};
  LintReport report;
  lint_raw_gate(raw, 0, 4, {}, report);
  EXPECT_TRUE(has_rule(report, LintRule::kOverlappingControls))
      << rules_fired(report);
}

TEST(Lint, DistinctControlsLintClean) {
  const RawGate raw =
      RawGate::from(Gate::mcry({{0, true}, {1, false}}, 2, 0.4));
  LintReport report;
  lint_raw_gate(raw, 0, 4, {}, report);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL003 canonical-wire-order. Gate::remapped re-validates but does not
// re-canonicalize symmetric gates, so a permutation that swaps the stored
// wire pair leaves the gate in the non-canonical order the adjacency
// peepholes would miss.

TEST(Lint, NoncanonicalSymmetricGateIsFlagged) {
  Circuit circuit(2);
  circuit.append(Gate::cz(0, 1).remapped({1, 0}));
  const LintReport report = lint_circuit(circuit);
  EXPECT_TRUE(has_rule(report, LintRule::kNoncanonicalSymmetric))
      << rules_fired(report);
}

TEST(Lint, CanonicalSymmetricGateLintsClean) {
  Circuit circuit(2);
  circuit.append(Gate::cz(0, 1));
  circuit.append(Gate::iswap(0, 1));
  circuit.append(Gate::rzz(0, 1, 0.3));
  const LintReport report = lint_circuit(circuit);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL004 non-native-gate.

TEST(Lint, NonNativeGateAgainstTargetIsFlagged) {
  Circuit circuit(2);
  circuit.append(Gate::cnot(0, 1));
  LintOptions options;
  options.target = Target::cz();
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_TRUE(has_rule(report, LintRule::kNonNativeGate))
      << rules_fired(report);
}

TEST(Lint, NativeCircuitForTargetLintsClean) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.5));
  circuit.append(Gate::cz(0, 1));
  LintOptions options;
  options.target = Target::cz();
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL005 coupling-violation. Native two-qubit gates only; composite gates
// are exempt (they are routed during lowering, not here).

TEST(Lint, CouplingViolationOffDeviceEdgeIsFlagged) {
  Circuit circuit(3);
  circuit.append(Gate::cnot(0, 2));
  LintOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_TRUE(has_rule(report, LintRule::kCouplingViolation))
      << rules_fired(report);
}

TEST(Lint, CouplingCheckAcceptsEdgesAndSkipsComposites) {
  Circuit circuit(3);
  circuit.append(Gate::cnot(0, 1));
  circuit.append(Gate::cz(1, 2));
  // Composite multiplexor spanning non-adjacent wires: exempt by design.
  circuit.append(Gate::ucry({0, 2}, 1, {0.1, 0.2, 0.3, 0.4}));
  LintOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL006 degenerate-rotation (warning).

TEST(Lint, DegenerateRotationWarns) {
  Circuit circuit(1);
  circuit.append(Gate::ry(0, 1e-15));
  const LintReport report = lint_circuit(circuit);
  EXPECT_TRUE(has_rule(report, LintRule::kDegenerateRotation))
      << rules_fired(report);
  EXPECT_FALSE(report.has_errors());

  // The pipeline-gate configuration disables the rule.
  const LintReport gated = lint_circuit(circuit, gate_style_options());
  EXPECT_TRUE(gated.diagnostics.empty()) << rules_fired(gated);
}

TEST(Lint, LiveRotationDoesNotWarn) {
  Circuit circuit(1);
  circuit.append(Gate::ry(0, 0.5));
  const LintReport report = lint_circuit(circuit);
  EXPECT_FALSE(has_rule(report, LintRule::kDegenerateRotation))
      << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL007 identity-pair (warning).

TEST(Lint, AdjacentSelfInversePairWarns) {
  Circuit circuit(2);
  circuit.append(Gate::cnot(0, 1));
  circuit.append(Gate::cnot(0, 1));
  const LintReport report = lint_circuit(circuit);
  EXPECT_TRUE(has_rule(report, LintRule::kIdentityPair))
      << rules_fired(report);
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, NonAdjacentOrDistinctPairsDoNotWarn) {
  Circuit circuit(2);
  circuit.append(Gate::x(0));
  circuit.append(Gate::x(1));
  circuit.append(Gate::cnot(0, 1));
  circuit.append(Gate::cnot(1, 0));
  const LintReport report = lint_circuit(circuit);
  EXPECT_FALSE(has_rule(report, LintRule::kIdentityPair))
      << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL008 pass-contract, via lint_pass_application directly.

class KindIntroducingPass final : public Pass {
 public:
  std::string_view name() const override { return "kind-introducing-test"; }
  unsigned preserves() const override { return kPreservesAll; }
  bool run(Circuit& circuit, const PassOptions&) const override {
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      out.append(g.kind() == GateKind::kRy ? Gate::rz(g.target(), g.theta())
                                           : g);
    }
    circuit = std::move(out);
    return true;
  }
};

class OffEdgePass final : public Pass {
 public:
  std::string_view name() const override { return "off-edge-test"; }
  unsigned preserves() const override { return kPreservesAll; }
  bool run(Circuit& circuit, const PassOptions&) const override {
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      out.append(g.kind() == GateKind::kCNOT ? Gate::cnot(0, 2) : g);
    }
    circuit = std::move(out);
    return true;
  }
};

TEST(Lint, PassContractCatchesIntroducedKind) {
  Circuit before(2);
  before.append(Gate::ry(0, 0.4));
  Circuit after = before;
  const KindIntroducingPass pass;
  pass.run(after, {});
  const LintReport report = lint_pass_application(pass, before, after);
  EXPECT_TRUE(has_rule(report, LintRule::kPassContract))
      << rules_fired(report);
}

TEST(Lint, PassContractCatchesCouplingBreak) {
  Circuit before(3);
  before.append(Gate::cnot(0, 1));
  Circuit after = before;
  const OffEdgePass pass;
  pass.run(after, {});
  LintOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  const LintReport report = lint_pass_application(pass, before, after, options);
  EXPECT_TRUE(has_rule(report, LintRule::kPassContract))
      << rules_fired(report);
}

TEST(Lint, PassContractAcceptsHonestShrink) {
  Circuit before(2);
  before.append(Gate::x(0));
  before.append(Gate::x(0));
  before.append(Gate::cnot(0, 1));
  Circuit after(2);
  after.append(Gate::cnot(0, 1));
  // Any registered optimization pass claims kPreservesAll; a shrink that
  // drops gates without new kinds satisfies the contract.
  ASSERT_FALSE(PassPipeline::registry().empty());
  const Pass& pass = *PassPipeline::registry().front();
  const LintReport report = lint_pass_application(pass, before, after);
  EXPECT_FALSE(has_rule(report, LintRule::kPassContract))
      << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL009 malformed-angles.

TEST(Lint, NonFiniteAngleIsFlagged) {
  RawGate raw;
  raw.kind = GateKind::kRy;
  raw.target = 0;
  raw.theta = std::numeric_limits<double>::quiet_NaN();
  LintReport report;
  lint_raw_gate(raw, 0, 1, {}, report);
  EXPECT_TRUE(has_rule(report, LintRule::kMalformedAngles))
      << rules_fired(report);
}

TEST(Lint, WrongMultiplexorTableSizeIsFlagged) {
  RawGate raw;
  raw.kind = GateKind::kUCRy;
  raw.target = 2;
  raw.controls = {{0, true}, {1, true}};
  raw.angles = {0.1, 0.2, 0.3};  // needs 2^2 = 4 entries
  LintReport report;
  lint_raw_gate(raw, 0, 3, {}, report);
  EXPECT_TRUE(has_rule(report, LintRule::kMalformedAngles))
      << rules_fired(report);
}

TEST(Lint, FiniteAnglesAndFullTableLintClean) {
  LintReport report;
  lint_raw_gate(RawGate::from(Gate::ry(0, 0.7)), 0, 1, {}, report);
  lint_raw_gate(RawGate::from(Gate::ucry({0, 1}, 2, {0.1, 0.2, 0.3, 0.4})), 1,
                3, {}, report);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// QL010 unsupported-gate (policy mask).

TEST(Lint, PolicyMaskRejectsDisallowedKind) {
  Circuit circuit(1);
  circuit.append(Gate::rz(0, 0.5));
  LintOptions options;
  options.allowed_kinds = lint_kind_bit(GateKind::kX) |
                          lint_kind_bit(GateKind::kRy) |
                          lint_kind_bit(GateKind::kCNOT);
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_TRUE(has_rule(report, LintRule::kUnsupportedGate))
      << rules_fired(report);
}

TEST(Lint, PolicyMaskAcceptsAllowedKinds) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.5));
  circuit.append(Gate::cnot(0, 1));
  LintOptions options;
  options.allowed_kinds =
      lint_kind_bit(GateKind::kRy) | lint_kind_bit(GateKind::kCNOT);
  const LintReport report = lint_circuit(circuit, options);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
}

// ---------------------------------------------------------------------------
// Report formatting.

TEST(Lint, ReportToStringAndJsonCarryCodes) {
  Circuit circuit(3);
  circuit.append(Gate::cnot(0, 2));
  LintOptions options;
  options.coupling = std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  const LintReport report = lint_circuit(circuit, options);
  ASSERT_TRUE(report.has_errors());
  EXPECT_NE(report.to_string().find("QL005"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"code\":\"QL005\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The pipeline's release-mode gate: a pass whose output breaks its own
// preserves() declaration must be named in a std::logic_error even with
// the debug simulation verify off.

class GrowingPass final : public Pass {
 public:
  std::string_view name() const override { return "growing-test-pass"; }
  unsigned preserves() const override { return kPreservesAll; }
  bool run(Circuit& circuit, const PassOptions&) const override {
    circuit.append(Gate::rz(0, 0.25));
    return true;
  }
};

TEST(Lint, PipelineGateThrowsOnContractViolation) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.4));
  const GrowingPass growing;
  PipelineOptions options;
  options.verify_each_pass = false;  // isolate the lint gate
  options.lint_each_pass = true;
  options.max_iterations = 1;
  const PassPipeline pipeline({&growing}, options);
  try {
    pipeline.run(circuit);
    FAIL() << "lint gate did not fire";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("growing-test-pass"), std::string::npos) << what;
    EXPECT_NE(what.find("QL008"), std::string::npos) << what;
  }
  // With the gate off the pipeline trusts the pass.
  options.lint_each_pass = false;
  const PassPipeline trusting({&growing}, options);
  EXPECT_NO_THROW(trusting.run(circuit));
}

// ---------------------------------------------------------------------------
// Property: every optimized circuit from the shared random corpus passes
// the gate-style lint with zero diagnostics (the acceptance bar for the
// always-on pipeline gate), at every level. optimize_circuit itself runs
// the gate internally, so a throw here is equally a failure.

TEST(Lint, RandomCorpusOptimizedCircuitsLintClean) {
  test::CorpusOptions corpus_options;
  corpus_options.circuits_per_width = 3;
  const std::vector<Circuit> corpus =
      test::random_circuit_corpus(corpus_options);
  ASSERT_FALSE(corpus.empty());
  for (const OptLevel level : {OptLevel::kO1, OptLevel::kO2}) {
    PipelineOptions options;
    options.level = level;
    for (const Circuit& circuit : corpus) {
      const Circuit cleaned = optimize_circuit(circuit, options);
      const LintReport report = lint_circuit(cleaned, gate_style_options());
      EXPECT_TRUE(report.diagnostics.empty())
          << opt_level_name(level) << ":\n"
          << rules_fired(report);
    }
  }
}

// Property: workflow outputs lint clean — the stitched composite circuit
// with default rules minus warnings, and its CNOT lowering against the
// CNOT target with the full error set.

TEST(Lint, WorkflowOutputsLintClean) {
  Rng rng(0x11A7);
  std::vector<QuantumState> states = {make_ghz(5), make_w(5),
                                      make_dicke(5, 2)};
  states.push_back(make_random_uniform(5, 6, rng));
  WorkflowOptions options;
  options.opt_level = OptLevel::kO2;
  const Solver solver(options);
  for (const QuantumState& state : states) {
    const WorkflowResult result = solver.prepare(state);
    ASSERT_TRUE(result.found);
    const LintReport composite =
        lint_circuit(result.circuit, gate_style_options());
    EXPECT_TRUE(composite.diagnostics.empty()) << rules_fired(composite);

    LoweringOptions elide;
    elide.elide_zero_rotations = true;
    const Circuit lowered = lower(result.circuit, elide);
    LintOptions native = gate_style_options();
    native.target = Target::cnot();
    const LintReport low = lint_circuit(lowered, native);
    EXPECT_TRUE(low.diagnostics.empty()) << rules_fired(low);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// The service QASM front door. Suite name starts with "SynthesisService"
// so the existing service-focused CI regexes pick it up.

namespace {

const char kGhzQasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[4];\n"
    "ry(1.5707963267948966) q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "cx q[2],q[3];\n";

TEST(SynthesisServiceQasm, SubmitQasmPreparesDescribedState) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  ServiceResponse response = service.submit_qasm(kGhzQasm).get();
  ASSERT_TRUE(response.result.found);
  const Circuit request_circuit = from_qasm(kGhzQasm);
  Statevector sv(request_circuit.num_qubits());
  sv.apply(request_circuit);
  const QuantumState described =
      QuantumState::from_dense(request_circuit.num_qubits(), sv.amplitudes());
  verify_preparation_or_throw(response.result.circuit, described);
}

TEST(SynthesisServiceQasm, LintRejectionBeforeEnqueue) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  // rz is outside the real-amplitude request gate set: the request would
  // describe a complex state the engine cannot represent.
  const std::string complex_qasm =
      "qreg q[2];\nrz(0.5) q[0];\ncx q[0],q[1];\n";
  const LintReport report = service.lint_request(complex_qasm);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(has_rule(report, LintRule::kUnsupportedGate))
      << rules_fired(report);
  EXPECT_THROW(service.submit_qasm(complex_qasm), std::invalid_argument);
  EXPECT_THROW(service.submit_qasm("qreg q[2];\nbogus q[0];\n"),
               std::invalid_argument);
  EXPECT_EQ(service.requests_served(), 0u);
}

TEST(SynthesisServiceQasm, RejectionCarriesStructuredDiagnostics) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  // Two rz gates outside the request gate set: the structured report
  // must carry the QL010 code per offending gate, with gate indices, so
  // callers can surface them verbatim.
  const std::string bad_qasm =
      "qreg q[2];\nrz(0.5) q[0];\ncx q[0],q[1];\nrz(0.25) q[1];\n";
  try {
    service.submit_qasm(bad_qasm);
    FAIL() << "submit_qasm accepted a request the lint must reject";
  } catch (const ServiceLintError& e) {
    EXPECT_TRUE(e.report().has_errors());
    ASSERT_EQ(e.report().diagnostics.size(), 2u) << rules_fired(e.report());
    for (const LintDiagnostic& d : e.report().diagnostics) {
      EXPECT_EQ(d.rule, LintRule::kUnsupportedGate);
      EXPECT_EQ(d.severity, LintSeverity::kError);
    }
    EXPECT_EQ(e.report().diagnostics[0].gate_index, 0);
    EXPECT_EQ(e.report().diagnostics[1].gate_index, 2);
    // what() renders the same diagnostics for legacy catch sites.
    EXPECT_NE(std::string(e.what()).find("QL010"), std::string::npos);
  }
  EXPECT_EQ(service.requests_served(), 0u);
}

TEST(SynthesisServiceQasm, ResponseCarriesDataflowDiagnostics) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  const ServiceResponse response = service.submit_qasm(kGhzQasm).get();
  ASSERT_TRUE(response.result.found);
  // An accepted, clean request: the structured diagnostics must exist
  // and carry no errors (the produced circuit is the service's own
  // output — a flow-sensitive error here is a workflow bug).
  EXPECT_FALSE(response.diagnostics.has_errors())
      << response.diagnostics.to_string();
}

TEST(SynthesisServiceQasm, WidthCapRejectsWideRequests) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  options.max_qasm_qubits = 3;
  SynthesisService service(options);
  EXPECT_THROW(service.submit_qasm(kGhzQasm), std::invalid_argument);
}

TEST(SynthesisServiceQasm, LintRequestReportsCleanForGoodQasm) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  const SynthesisService service(options);
  const LintReport report = service.lint_request(kGhzQasm);
  EXPECT_FALSE(report.has_errors()) << rules_fired(report);
  EXPECT_FALSE(report.has_warnings()) << rules_fired(report);
}

}  // namespace
}  // namespace qsp
