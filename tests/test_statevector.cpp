#include "sim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Statevector, InitialGround) {
  const Statevector sv(3);
  EXPECT_DOUBLE_EQ(sv.amplitudes()[0], 1.0);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, XGate) {
  Statevector sv(2);
  sv.apply(Gate::x(0));
  EXPECT_DOUBLE_EQ(sv.amplitudes()[1], 1.0);
  sv.apply(Gate::x(1));
  EXPECT_DOUBLE_EQ(sv.amplitudes()[3], 1.0);
  sv.apply(Gate::x(0));
  EXPECT_DOUBLE_EQ(sv.amplitudes()[2], 1.0);
}

TEST(Statevector, RyConvention) {
  Statevector sv(1);
  sv.apply(Gate::ry(0, M_PI / 2));
  // Ry(pi/2)|0> = (|0> + |1>)/sqrt2 in the standard convention.
  EXPECT_NEAR(sv.amplitudes()[0], 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(sv.amplitudes()[1], 1 / std::sqrt(2.0), 1e-12);
  // Ry(pi) maps |+> to ... and |1> -> -|0>: check on fresh state.
  Statevector sv2(1);
  sv2.apply(Gate::x(0));
  sv2.apply(Gate::ry(0, M_PI));
  EXPECT_NEAR(sv2.amplitudes()[0], -1.0, 1e-12);
}

TEST(Statevector, CnotPolarity) {
  Statevector sv(2);
  sv.apply(Gate::cnot(0, 1));  // control |0>-state qubit 0 = 0 -> inactive
  EXPECT_DOUBLE_EQ(sv.amplitudes()[0], 1.0);
  sv.apply(Gate::cnot(0, 1, /*positive=*/false));  // fires
  EXPECT_DOUBLE_EQ(sv.amplitudes()[2], 1.0);
}

TEST(Statevector, GhzConstruction) {
  Statevector sv(3);
  sv.apply(Gate::ry(0, M_PI / 2));
  sv.apply(Gate::cnot(0, 1));
  sv.apply(Gate::cnot(1, 2));
  const QuantumState ghz = make_ghz(3);
  EXPECT_NEAR(std::abs(sv.inner_product(ghz)), 1.0, 1e-12);
}

TEST(Statevector, CryOnlyFiresWhenControlSet) {
  Statevector sv(2);
  sv.apply(Gate::cry(0, 1, M_PI / 2));
  EXPECT_DOUBLE_EQ(sv.amplitudes()[0], 1.0);  // control is |0>
  sv.apply(Gate::x(0));
  sv.apply(Gate::cry(0, 1, M_PI));
  // Now qubit1 rotated fully: |01> -> |11> (up to convention sign).
  EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1.0, 1e-12);
}

TEST(Statevector, McryMatchesPatternOnly) {
  Statevector sv(3);
  sv.apply(Gate::mcry({ControlLiteral{0, false}, ControlLiteral{1, false}},
                      2, M_PI));
  // Pattern (q0=0, q1=0) satisfied at ground -> q2 flips.
  EXPECT_NEAR(std::abs(sv.amplitudes()[4]), 1.0, 1e-12);
}

TEST(Statevector, UcryAppliesPerPattern) {
  // Prepare |+>|0>, then UCRy on qubit 1 with angles (0, pi): flips qubit 1
  // only on the q0=1 branch.
  Statevector sv(2);
  sv.apply(Gate::ry(0, M_PI / 2));
  sv.apply(Gate::ucry({0}, 1, {0.0, M_PI}));
  EXPECT_NEAR(sv.amplitudes()[0], 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(sv.amplitudes()[1], 0.0, 1e-12);
}

TEST(Statevector, NormPreservedByRandomCircuits) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4;
    Statevector sv(n);
    for (int g = 0; g < 30; ++g) {
      const int t = static_cast<int>(rng.next_below(n));
      const int c = (t + 1 + static_cast<int>(rng.next_below(n - 1))) % n;
      switch (rng.next_below(3)) {
        case 0:
          sv.apply(Gate::ry(t, rng.next_double(-3, 3)));
          break;
        case 1:
          sv.apply(Gate::cnot(c, t, rng.next_bool()));
          break;
        default:
          sv.apply(Gate::cry(c, t, rng.next_double(-3, 3)));
          break;
      }
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
  }
}

TEST(Statevector, StartFromSparseState) {
  const QuantumState dicke = make_dicke(4, 2);
  Statevector sv(dicke);
  EXPECT_NEAR(sv.inner_product(dicke), 1.0, 1e-12);
  const QuantumState back = sv.to_state();
  EXPECT_TRUE(back.approx_equal(dicke));
}

}  // namespace
}  // namespace qsp
