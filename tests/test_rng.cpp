#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace qsp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SampleDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_distinct(1000, 50);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  const std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const auto v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleDistinctFullPool) {
  Rng rng(6);
  const auto sample = rng.sample_distinct(16, 16);
  EXPECT_EQ(sample.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(sample[i], i);
  EXPECT_THROW(rng.sample_distinct(4, 5), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace qsp
