// Differential tests for the runtime-dispatched SIMD layer: every wide
// primitive's AVX2 variant must be bit-identical to its scalar variant
// on randomized corpora (including empty, sub-vector, and ragged-tail
// lengths), and whole-pipeline consumers (simulators, canonicalization,
// heuristics) must be invariant under the active ISA. All comparisons
// are bitwise — floating-point results go through std::bit_cast so a
// -0.0 / +0.0 or last-ulp divergence fails loudly.

#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/slot_state.hpp"
#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

// Lengths covering the empty case, partial vectors, whole vectors, and
// ragged tails around the 4-wide AVX2 step.
const std::vector<std::size_t> kLengths = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 31, 64, 100, 257};

bool HaveAvx2() {
#if QSP_WIDEOPS_HAVE_AVX2
  return simd::avx2_supported();
#else
  return false;
#endif
}

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n,
                                        int index_bits) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    const std::uint64_t index =
        rng.next_u64() & ((std::uint64_t{1} << index_bits) - 1);
    const std::uint64_t count = rng.next_u64() & 0xFFFFFFFFull;
    w = (index << 32) | count;
  }
  return out;
}

std::vector<double> random_doubles(Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (auto& x : out) x = rng.next_double(-2.0, 2.0);
  return out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " diverges at element " << i;
  }
}

#if QSP_WIDEOPS_HAVE_AVX2

TEST(SimdDifferential, CopyXorHigh32) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(11);
  for (const std::size_t n : kLengths) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto src = random_words(rng, n, kMaxQubits);
      const auto mask = static_cast<std::uint32_t>(rng.next_u64());
      std::vector<std::uint64_t> a(n), b(n);
      wideops::copy_xor_high32_scalar(a.data(), src.data(), n, mask);
      wideops::copy_xor_high32_avx2(b.data(), src.data(), n, mask);
      EXPECT_EQ(a, b) << "n=" << n;
      // In-place form (dst == src) used by the canonical scan.
      auto c = src;
      wideops::copy_xor_high32_avx2(c.data(), c.data(), n, mask);
      EXPECT_EQ(a, c) << "in-place n=" << n;
    }
  }
}

TEST(SimdDifferential, PermuteHigh32) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(12);
  for (const std::size_t n : kLengths) {
    for (int num_bits = 1; num_bits <= 8; ++num_bits) {
      const auto src = random_words(rng, n, num_bits);
      std::vector<int> perm(static_cast<std::size_t>(num_bits));
      for (int q = 0; q < num_bits; ++q) perm[static_cast<std::size_t>(q)] = q;
      rng.shuffle(perm);
      std::vector<std::uint64_t> a(n), b(n);
      wideops::permute_high32_scalar(a.data(), src.data(), n, perm.data(),
                                     num_bits);
      wideops::permute_high32_avx2(b.data(), src.data(), n, perm.data(),
                                   num_bits);
      EXPECT_EQ(a, b) << "n=" << n << " bits=" << num_bits;
    }
  }
}

TEST(SimdDifferential, Shl1High32) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(13);
  for (const std::size_t n : kLengths) {
    // Full-width indices: the shift must wrap mod 2^32 like u32 math.
    const auto src = random_words(rng, n, 32);
    std::vector<std::uint64_t> a(n), b(n);
    wideops::shl1_high32_scalar(a.data(), src.data(), n);
    wideops::shl1_high32_avx2(b.data(), src.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(SimdDifferential, OrBitFromHigh32) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(14);
  for (const std::size_t n : kLengths) {
    for (int bit = 0; bit < kMaxQubits; ++bit) {
      const auto base = random_words(rng, n, 32);
      const auto words = random_words(rng, n, kMaxQubits);
      std::vector<std::uint64_t> a(n), b(n);
      wideops::or_bit_from_high32_scalar(a.data(), base.data(), words.data(),
                                         n, bit);
      wideops::or_bit_from_high32_avx2(b.data(), base.data(), words.data(), n,
                                       bit);
      EXPECT_EQ(a, b) << "n=" << n << " bit=" << bit;
    }
  }
}

TEST(SimdDifferential, BitColumnOrAnd) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(15);
  for (const std::size_t n : kLengths) {
    for (int bit = 0; bit < kMaxQubits; ++bit) {
      // Entry-word layout: the tested bit lives in the low half. Bias
      // columns toward constant so the all/any branches are both hit.
      std::vector<std::uint64_t> words(n);
      const bool force = rng.next_bool();
      const bool value = rng.next_bool();
      for (auto& w : words) {
        std::uint64_t low = rng.next_u64() & 0xFFFFFFFFull;
        if (force) {
          low = value ? (low | (std::uint64_t{1} << bit))
                      : (low & ~(std::uint64_t{1} << bit));
        }
        w = (rng.next_u64() << 32) | low;
      }
      const auto a = wideops::bit_column_or_and_scalar(words.data(), n, bit);
      const auto b = wideops::bit_column_or_and_avx2(words.data(), n, bit);
      EXPECT_EQ(a.any, b.any) << "n=" << n << " bit=" << bit;
      EXPECT_EQ(a.all, b.all) << "n=" << n << " bit=" << bit;
    }
  }
}

TEST(SimdDifferential, WeightSums) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(16);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint64_t> words(n);
    for (auto& w : words) w = rng.next_u64();
    for (int bit_a = 0; bit_a < kMaxQubits; bit_a += 3) {
      for (int bit_b = 1; bit_b < kMaxQubits; bit_b += 5) {
        EXPECT_EQ(wideops::weight_sum_if_bit_scalar(words.data(), n, bit_a),
                  wideops::weight_sum_if_bit_avx2(words.data(), n, bit_a));
        EXPECT_EQ(
            wideops::weight_sum_if_bits_scalar(words.data(), n, bit_a, bit_b),
            wideops::weight_sum_if_bits_avx2(words.data(), n, bit_a, bit_b));
      }
    }
  }
}

TEST(SimdDifferential, RotatePairs) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(17);
  for (const std::size_t n : kLengths) {
    const auto a0 = random_doubles(rng, n);
    const auto b0 = random_doubles(rng, n);
    const double co = rng.next_double(-1.0, 1.0);
    const double si = rng.next_double(-1.0, 1.0);
    auto a1 = a0, b1 = b0, a2 = a0, b2 = b0;
    wideops::rotate_pairs_d_scalar(a1.data(), b1.data(), n, co, si);
    wideops::rotate_pairs_d_avx2(a2.data(), b2.data(), n, co, si);
    expect_bitwise_equal(a1, a2, "rotate_pairs lower");
    expect_bitwise_equal(b1, b2, "rotate_pairs upper");
  }
}

TEST(SimdDifferential, SwapRanges) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(18);
  for (const std::size_t n : kLengths) {
    const auto a0 = random_doubles(rng, n);
    const auto b0 = random_doubles(rng, n);
    auto a1 = a0, b1 = b0, a2 = a0, b2 = b0;
    wideops::swap_ranges_d_scalar(a1.data(), b1.data(), n);
    wideops::swap_ranges_d_avx2(a2.data(), b2.data(), n);
    expect_bitwise_equal(a1, a2, "swap lower");
    expect_bitwise_equal(b1, b2, "swap upper");
  }
}

TEST(SimdDifferential, ComplexScale) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(19);
  for (const std::size_t n : kLengths) {
    const auto v0 = random_doubles(rng, 2 * n);
    const double re = rng.next_double(-1.0, 1.0);
    const double im = rng.next_double(-1.0, 1.0);
    auto v1 = v0, v2 = v0;
    wideops::complex_scale_d_scalar(v1.data(), n, re, im);
    wideops::complex_scale_d_avx2(v2.data(), n, re, im);
    expect_bitwise_equal(v1, v2, "complex_scale");
  }
}

TEST(SimdDifferential, ParitySignedSum) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(20);
  for (const std::size_t n : kLengths) {
    const auto v = random_doubles(rng, n);
    for (int rep = 0; rep < 8; ++rep) {
      const auto mask = static_cast<std::uint32_t>(rng.next_u64());
      const double s = wideops::parity_signed_sum_d_scalar(v.data(), n, mask);
      const double a = wideops::parity_signed_sum_d_avx2(v.data(), n, mask);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s),
                std::bit_cast<std::uint64_t>(a))
          << "n=" << n << " mask=" << mask;
    }
  }
}

#endif  // QSP_WIDEOPS_HAVE_AVX2

// ---------------------------------------------------------------------------
// Whole-pipeline ISA invariance: the same computation under forced scalar
// and forced AVX2 dispatch must produce bitwise-identical results.
// ---------------------------------------------------------------------------

Circuit random_mixed_circuit(Rng& rng, int n, int gates, bool z_axis) {
  Circuit c(n);
  for (int g = 0; g < gates; ++g) {
    const int target =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    // Any other qubit for controlled kinds; single-qubit registers stick
    // to the uncontrolled gates below.
    const int other = n >= 2 ? (target + 1 +
                                static_cast<int>(rng.next_below(
                                    static_cast<std::uint64_t>(n - 1)))) %
                                   n
                             : target;
    const std::uint64_t kinds = n >= 2 ? (z_axis ? 6 : 5) : (z_axis ? 3 : 2);
    const std::uint64_t pick = rng.next_below(kinds);
    // Map the restricted single-qubit draw onto {x, ry, rz}.
    switch (n >= 2 ? pick : (pick == 2 ? 5 : pick * 2)) {
      case 0:
        c.append(Gate::x(target));
        break;
      case 1:
        c.append(Gate::cnot(other, target, rng.next_bool()));
        break;
      case 2:
        c.append(Gate::ry(target, rng.next_double(-3.0, 3.0)));
        break;
      case 3:
        c.append(Gate::mcry({{other, rng.next_bool()}}, target,
                            rng.next_double(-3.0, 3.0)));
        break;
      case 4: {
        std::vector<double> angles(2);
        for (auto& t : angles) t = rng.next_double(-3.0, 3.0);
        c.append(Gate::ucry({other}, target, std::move(angles)));
        break;
      }
      case 5:
        c.append(Gate::rz(target, rng.next_double(-3.0, 3.0)));
        break;
    }
  }
  return c;
}

TEST(SimdInvariance, StatevectorBitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(21);
  for (int n = 1; n <= 10; ++n) {
    const Circuit c = random_mixed_circuit(rng, n, 40, /*z_axis=*/false);
    Statevector scalar_sv(n);
    {
      simd::ScopedIsaForTesting force(simd::Isa::kScalar);
      scalar_sv.apply(c);
    }
    Statevector avx_sv(n);
    {
      simd::ScopedIsaForTesting force(simd::Isa::kAvx2);
      avx_sv.apply(c);
    }
    expect_bitwise_equal(scalar_sv.amplitudes(), avx_sv.amplitudes(),
                         "statevector amplitudes");
  }
}

TEST(SimdInvariance, ComplexStatevectorBitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(22);
  for (int n = 1; n <= 10; ++n) {
    Circuit c = random_mixed_circuit(rng, n, 40, /*z_axis=*/true);
    std::vector<double> angles(4);
    for (auto& t : angles) t = rng.next_double(-3.0, 3.0);
    if (n >= 3) c.append(Gate::ucrz({0, n - 1}, 1, std::move(angles)));
    ComplexStatevector scalar_sv(n);
    {
      simd::ScopedIsaForTesting force(simd::Isa::kScalar);
      scalar_sv.apply(c);
    }
    ComplexStatevector avx_sv(n);
    {
      simd::ScopedIsaForTesting force(simd::Isa::kAvx2);
      avx_sv.apply(c);
    }
    ASSERT_EQ(scalar_sv.amplitudes().size(), avx_sv.amplitudes().size());
    EXPECT_EQ(std::memcmp(scalar_sv.amplitudes().data(),
                          avx_sv.amplitudes().data(),
                          scalar_sv.amplitudes().size() *
                              sizeof(std::complex<double>)),
              0);
  }
}

SlotState random_slot_state(Rng& rng, int n, std::size_t cardinality) {
  std::vector<SlotEntry> entries;
  for (const std::uint64_t x :
       rng.sample_distinct(std::uint64_t{1} << n, cardinality)) {
    entries.push_back(SlotEntry{static_cast<BasisIndex>(x),
                                static_cast<std::uint32_t>(
                                    1 + rng.next_below(7))});
  }
  return SlotState(n, std::move(entries));
}

TEST(SimdInvariance, CanonicalAndHeuristicBitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(23);
  for (int n = 1; n <= kMaxQubits; ++n) {
    const std::size_t card = 1 + rng.next_below(std::min<std::uint64_t>(
                                     12, std::uint64_t{1} << n));
    const SlotState s = random_slot_state(rng, n, card);
    for (const CanonicalLevel level :
         {CanonicalLevel::kNone, CanonicalLevel::kU2,
          CanonicalLevel::kPU2Greedy, CanonicalLevel::kPU2Exact}) {
      CanonicalKey scalar_key;
      CanonicalWitness scalar_wit;
      std::int64_t scalar_h = 0;
      std::vector<int> scalar_sep;
      {
        simd::ScopedIsaForTesting force(simd::Isa::kScalar);
        scalar_key = canonical_key(s, level);
        scalar_wit = canonical_witness(s, level);
        scalar_h = heuristic_lower_bound(s, HeuristicMode::kComponent);
        for (int q = 0; q < n; ++q) {
          scalar_sep.push_back(static_cast<int>(s.qubit_separable(q)) |
                               (static_cast<int>(s.qubit_constant(q)) << 1));
        }
      }
      simd::ScopedIsaForTesting force(simd::Isa::kAvx2);
      EXPECT_EQ(scalar_key, canonical_key(s, level)) << "n=" << n;
      const CanonicalWitness avx_wit = canonical_witness(s, level);
      EXPECT_EQ(scalar_wit.key, avx_wit.key) << "n=" << n;
      EXPECT_EQ(scalar_wit.translation, avx_wit.translation) << "n=" << n;
      EXPECT_EQ(scalar_wit.permutation, avx_wit.permutation) << "n=" << n;
      EXPECT_EQ(scalar_h, heuristic_lower_bound(s, HeuristicMode::kComponent))
          << "n=" << n;
      for (int q = 0; q < n; ++q) {
        EXPECT_EQ(scalar_sep[static_cast<std::size_t>(q)],
                  static_cast<int>(s.qubit_separable(q)) |
                      (static_cast<int>(s.qubit_constant(q)) << 1))
            << "n=" << n << " q=" << q;
      }
    }
  }
}

TEST(SimdDispatch, ReportsSupportedIsa) {
  const simd::Isa isa = simd::active_isa();
  if (isa == simd::Isa::kAvx2) {
    EXPECT_TRUE(simd::avx2_supported());
  }
  EXPECT_NE(simd::isa_name(isa), nullptr);
}

}  // namespace
}  // namespace qsp
