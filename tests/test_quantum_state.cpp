#include "state/quantum_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace qsp {
namespace {

TEST(QuantumState, GroundState) {
  const QuantumState g(3);
  EXPECT_EQ(g.num_qubits(), 3);
  EXPECT_EQ(g.cardinality(), 1);
  EXPECT_TRUE(g.is_ground());
  EXPECT_DOUBLE_EQ(g.amplitude(0), 1.0);
  EXPECT_DOUBLE_EQ(g.amplitude(5), 0.0);
}

TEST(QuantumState, NormalizesInput) {
  const QuantumState s(2, {Term{0, 3.0}, Term{3, 4.0}});
  EXPECT_NEAR(s.amplitude(0), 0.6, 1e-12);
  EXPECT_NEAR(s.amplitude(3), 0.8, 1e-12);
}

TEST(QuantumState, MergesDuplicateIndices) {
  const QuantumState s(2, {Term{1, 1.0}, Term{1, 1.0}, Term{2, 2.0}});
  EXPECT_EQ(s.cardinality(), 2);
  EXPECT_NEAR(s.amplitude(1) / s.amplitude(2), 1.0, 1e-12);
}

TEST(QuantumState, DropsCancellingTerms) {
  const QuantumState s(2, {Term{1, 1.0}, Term{1, -1.0}, Term{2, 1.0}});
  EXPECT_EQ(s.cardinality(), 1);
  EXPECT_NEAR(std::abs(s.amplitude(2)), 1.0, 1e-12);
}

TEST(QuantumState, InvalidInputsThrow) {
  EXPECT_THROW(QuantumState(0), std::invalid_argument);
  EXPECT_THROW(QuantumState(25), std::invalid_argument);
  EXPECT_THROW(QuantumState(2, {}), std::invalid_argument);
  EXPECT_THROW(QuantumState(2, {Term{4, 1.0}}), std::invalid_argument);
  EXPECT_THROW(QuantumState(2, {Term{1, 0.0}}), std::invalid_argument);
}

TEST(QuantumState, DenseRoundTrip) {
  const QuantumState s(3, {Term{0, 1.0}, Term{3, -1.0}, Term{6, 2.0}});
  const auto dense = s.to_dense();
  EXPECT_EQ(dense.size(), 8u);
  const QuantumState back = QuantumState::from_dense(3, dense);
  EXPECT_TRUE(back.approx_equal(s));
  EXPECT_EQ(back, s);
}

TEST(QuantumState, InnerProductAndFidelity) {
  const QuantumState a(2, {Term{0, 1.0}, Term{3, 1.0}});
  const QuantumState b(2, {Term{0, 1.0}, Term{3, -1.0}});
  EXPECT_NEAR(a.inner_product(a), 1.0, 1e-12);
  EXPECT_NEAR(a.inner_product(b), 0.0, 1e-12);
  EXPECT_NEAR(a.fidelity(b), 0.0, 1e-12);
  EXPECT_TRUE(a.approx_equal(a));
  EXPECT_FALSE(a.approx_equal(b));
  const QuantumState c(3);
  EXPECT_THROW(a.inner_product(c), std::invalid_argument);
}

TEST(QuantumState, GlobalSignInsensitive) {
  const QuantumState a(2, {Term{1, 1.0}, Term{2, 1.0}});
  const QuantumState b(2, {Term{1, -1.0}, Term{2, -1.0}});
  EXPECT_TRUE(a.approx_equal(b));
}

TEST(QuantumState, IsUniform) {
  const QuantumState u(2, {Term{0, 1.0}, Term{1, 1.0}, Term{2, 1.0}});
  EXPECT_TRUE(u.is_uniform());
  const QuantumState v(2, {Term{0, 1.0}, Term{1, 2.0}});
  EXPECT_FALSE(v.is_uniform());
  const QuantumState w(2, {Term{0, -1.0}, Term{1, -1.0}});
  EXPECT_FALSE(w.is_uniform());  // uniform means amplitudes +1/sqrt(m)
}

TEST(QuantumState, CofactorIndices) {
  // psi_1 from paper Fig. 4: (|000> + |010> + |101> + |111>)/2. The
  // cofactors of the middle qubit coincide (separable candidate), while
  // the outer qubits' cofactors differ (entangled pair).
  const QuantumState s(3, {Term{0b000, 1.0}, Term{0b010, 1.0},
                           Term{0b101, 1.0}, Term{0b111, 1.0}});
  const auto c0 = s.cofactor_indices(1, 0);
  const auto c1 = s.cofactor_indices(1, 1);
  EXPECT_EQ(c0, c1);
  EXPECT_NE(s.cofactor_indices(0, 0), s.cofactor_indices(0, 1));
  EXPECT_NE(s.cofactor_indices(2, 0), s.cofactor_indices(2, 1));
}

TEST(QuantumState, QubitSeparable) {
  // Product state (|0>+|1>)/sqrt2 x |0>: qubit 1 separable, constant.
  const QuantumState p(2, {Term{0, 1.0}, Term{1, 1.0}});
  EXPECT_TRUE(p.qubit_separable(0));
  EXPECT_TRUE(p.qubit_separable(1));
  // Bell state: neither qubit separable.
  const QuantumState bell(2, {Term{0, 1.0}, Term{3, 1.0}});
  EXPECT_FALSE(bell.qubit_separable(0));
  EXPECT_FALSE(bell.qubit_separable(1));
  // Motivating example: all three qubits entangled.
  const QuantumState s(3, {Term{0b000, 1.0}, Term{0b011, 1.0},
                           Term{0b101, 1.0}, Term{0b110, 1.0}});
  EXPECT_FALSE(s.qubit_separable(0));
  EXPECT_FALSE(s.qubit_separable(1));
  EXPECT_FALSE(s.qubit_separable(2));
  // Proportional-amplitude separability with a ratio != 1.
  const QuantumState r(2, {Term{0b00, 2.0}, Term{0b01, 2.0}, Term{0b10, 1.0},
                           Term{0b11, 1.0}});
  EXPECT_TRUE(r.qubit_separable(0));
  EXPECT_TRUE(r.qubit_separable(1));
}

TEST(QuantumState, ToString) {
  const QuantumState s(2, {Term{0, 1.0}, Term{3, -1.0}});
  const std::string str = s.to_string();
  EXPECT_NE(str.find("|00>"), std::string::npos);
  EXPECT_NE(str.find("|11>"), std::string::npos);
  EXPECT_NE(str.find(" - "), std::string::npos);
}

}  // namespace
}  // namespace qsp
