#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/coupling.hpp"
#include "arch/routing.hpp"
#include "pass_test_util.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Qasm, Header) {
  Circuit c(3);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
}

TEST(Qasm, PrimitiveGates) {
  Circuit c(2);
  c.append(Gate::x(0));
  c.append(Gate::ry(1, 0.5));
  c.append(Gate::cnot(0, 1));
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("x q[0];"), std::string::npos);
  EXPECT_NE(q.find("ry(0.5) q[1];"), std::string::npos);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Qasm, CompositeGatesAreLowered) {
  Circuit c(3);
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, false}}, 2,
                      1.2));
  const std::string q = to_qasm(c);
  // Only primitive mnemonics may appear.
  EXPECT_EQ(q.find("mcry"), std::string::npos);
  EXPECT_NE(q.find("cx q["), std::string::npos);
  // 2 controls -> exactly 4 cx lines.
  int cx = 0;
  for (std::size_t pos = 0; (pos = q.find("cx ", pos)) != std::string::npos;
       ++pos) {
    ++cx;
  }
  EXPECT_EQ(cx, 4);
}

// Satellite property: emit -> parse is the identity on the lowered gate
// list, across the whole random-circuit corpus. Angles are emitted at
// precision 17, so even the parsed doubles must match bit-for-bit.
TEST(Qasm, EmitParseRoundtripIsIdentityOnCorpus) {
  for (const Circuit& circuit : test::random_circuit_corpus()) {
    const Circuit lowered = lower(circuit);
    const Circuit parsed = from_qasm(to_qasm(circuit));
    ASSERT_EQ(parsed.num_qubits(), lowered.num_qubits());
    ASSERT_EQ(parsed.size(), lowered.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_EQ(parsed.gates()[i], lowered.gates()[i])
          << "gate " << i << ": " << parsed.gates()[i].to_string() << " vs "
          << lowered.gates()[i].to_string();
    }
  }
}

// Target-aware twin of the property above: emitting for a backend lowers
// onto its native set, and the parser reads every native mnemonic back,
// so emit -> parse equals lower_onto for all four built-in targets.
TEST(Qasm, TargetAwareEmitParseRoundtripOnCorpus) {
  const auto corpus = test::random_circuit_corpus();
  for (const Target& target : Target::builtin()) {
    for (const Circuit& circuit : corpus) {
      const Circuit lowered = lower_onto(circuit, target);
      const Circuit parsed = from_qasm(to_qasm(circuit, target));
      ASSERT_EQ(parsed, lowered)
          << target.name() << " n=" << circuit.num_qubits();
    }
  }
}

TEST(Qasm, NativeMnemonics) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  EXPECT_NE(to_qasm(c, Target::cz()).find("cz q["), std::string::npos);
  EXPECT_NE(to_qasm(c, Target::iswap()).find("iswap q["), std::string::npos);
  EXPECT_NE(to_qasm(c, Target::rzz()).find("rzz("), std::string::npos);
  // The CNOT-target overload matches the historical emitter exactly.
  EXPECT_EQ(to_qasm(c, Target::cnot()), to_qasm(c));
}

TEST(Qasm, ParsesNativeGates) {
  const Circuit parsed = from_qasm(
      "qreg q[2];\n"
      "cz q[0],q[1];\n"
      "iswap q[1],q[0];\n"
      "rzz(-0.5) q[0],q[1];\n");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.gates()[0], Gate::cz(0, 1));
  EXPECT_EQ(parsed.gates()[1], Gate::iswap(0, 1));  // canonical wire order
  EXPECT_EQ(parsed.gates()[2], Gate::rzz(0, 1, -0.5));
}

TEST(Qasm, RoundtripCoversRoutedDeviceRegisters) {
  const CouplingGraph device = CouplingGraph::line(5);
  Rng rng(0x9A5);
  for (int i = 0; i < 4; ++i) {
    const Circuit circuit = test::random_coupled_circuit(device, 40, rng);
    const Circuit routed = route_circuit(circuit, device);
    const Circuit parsed = from_qasm(to_qasm(routed));
    EXPECT_EQ(parsed, lower(routed));
    EXPECT_TRUE(respects_coupling(parsed, device));
  }
}

TEST(Qasm, FromQasmRejectsMalformedInput) {
  EXPECT_THROW(from_qasm("x q[0];\n"), std::invalid_argument);  // no qreg
  EXPECT_THROW(from_qasm("qreg q[0];\n"), std::invalid_argument);
  EXPECT_THROW(from_qasm("qreg q[2];\nh q[0];\n"), std::invalid_argument);
  EXPECT_THROW(from_qasm("qreg q[2];\nx q[0]\n"), std::invalid_argument);
  EXPECT_THROW(from_qasm("qreg q[2];\nry() q[0];\n"), std::invalid_argument);
  EXPECT_THROW(from_qasm("qreg q[2];\nqreg q[2];\n"), std::invalid_argument);
  EXPECT_THROW(from_qasm(""), std::invalid_argument);
  // Out-of-register references are rejected by the circuit itself.
  EXPECT_THROW(from_qasm("qreg q[2];\nx q[5];\n"), std::invalid_argument);
}

TEST(Qasm, FromQasmSkipsHeadersAndComments) {
  const Circuit parsed = from_qasm(
      "// a comment\n"
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[2];\n"
      "x q[0]; // trailing comment\n"
      "cx q[0],q[1];\n"
      "\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.gates()[0], Gate::x(0));
  EXPECT_EQ(parsed.gates()[1], Gate::cnot(0, 1));
}

TEST(Qasm, NegativeControlUsesXConjugation) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1, /*positive=*/false));
  const std::string q = to_qasm(c);
  int x_count = 0;
  for (std::size_t pos = 0; (pos = q.find("x q[0];", pos)) != std::string::npos;
       ++pos) {
    ++x_count;
  }
  EXPECT_EQ(x_count, 2);
}

}  // namespace
}  // namespace qsp
