#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

namespace qsp {
namespace {

TEST(Qasm, Header) {
  Circuit c(3);
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
}

TEST(Qasm, PrimitiveGates) {
  Circuit c(2);
  c.append(Gate::x(0));
  c.append(Gate::ry(1, 0.5));
  c.append(Gate::cnot(0, 1));
  const std::string q = to_qasm(c);
  EXPECT_NE(q.find("x q[0];"), std::string::npos);
  EXPECT_NE(q.find("ry(0.5) q[1];"), std::string::npos);
  EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Qasm, CompositeGatesAreLowered) {
  Circuit c(3);
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, false}}, 2,
                      1.2));
  const std::string q = to_qasm(c);
  // Only primitive mnemonics may appear.
  EXPECT_EQ(q.find("mcry"), std::string::npos);
  EXPECT_NE(q.find("cx q["), std::string::npos);
  // 2 controls -> exactly 4 cx lines.
  int cx = 0;
  for (std::size_t pos = 0; (pos = q.find("cx ", pos)) != std::string::npos;
       ++pos) {
    ++cx;
  }
  EXPECT_EQ(cx, 4);
}

TEST(Qasm, NegativeControlUsesXConjugation) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1, /*positive=*/false));
  const std::string q = to_qasm(c);
  int x_count = 0;
  for (std::size_t pos = 0; (pos = q.find("x q[0];", pos)) != std::string::npos;
       ++pos) {
    ++x_count;
  }
  EXPECT_EQ(x_count, 2);
}

}  // namespace
}  // namespace qsp
