#include "prep/dicke.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"

namespace qsp {
namespace {

TEST(Dicke, MukherjeeFormulaMatchesTableFour) {
  // The paper's Table IV "Manual" column.
  EXPECT_EQ(mukherjee_dicke_cnot_count(3, 1), 4);
  EXPECT_EQ(mukherjee_dicke_cnot_count(4, 1), 7);
  EXPECT_EQ(mukherjee_dicke_cnot_count(4, 2), 12);
  EXPECT_EQ(mukherjee_dicke_cnot_count(5, 1), 10);
  EXPECT_EQ(mukherjee_dicke_cnot_count(5, 2), 20);
  EXPECT_EQ(mukherjee_dicke_cnot_count(6, 1), 13);
  EXPECT_EQ(mukherjee_dicke_cnot_count(6, 2), 28);
  EXPECT_EQ(mukherjee_dicke_cnot_count(6, 3), 33);
  EXPECT_THROW(mukherjee_dicke_cnot_count(4, 3), std::invalid_argument);
}

TEST(Dicke, ManualCircuitPreparesDickeStates) {
  for (int n = 2; n <= 6; ++n) {
    for (int k = 1; k < n; ++k) {
      const Circuit c = dicke_manual_circuit(n, k);
      verify_preparation_or_throw(c, make_dicke(n, k));
    }
  }
}

TEST(Dicke, ManualCircuitCostIsLinearInNK) {
  // Bartschi-Eidenbenz: O(kn) CNOTs.
  for (int n = 3; n <= 8; ++n) {
    for (int k = 1; k <= n / 2; ++k) {
      const Circuit c = dicke_manual_circuit(n, k);
      const auto cost = count_cnots_after_lowering(c);
      EXPECT_LE(cost, 6 * n * k) << "n=" << n << " k=" << k;
      EXPECT_GT(cost, 0);
    }
  }
}

TEST(Dicke, InvalidArgumentsThrow) {
  EXPECT_THROW(dicke_manual_circuit(1, 1), std::invalid_argument);
  EXPECT_THROW(dicke_manual_circuit(4, 0), std::invalid_argument);
  EXPECT_THROW(dicke_manual_circuit(4, 4), std::invalid_argument);
}

}  // namespace
}  // namespace qsp
