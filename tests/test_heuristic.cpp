#include "core/heuristic.hpp"

#include <gtest/gtest.h>

#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

SlotState slot_of(const QuantumState& s) {
  return *SlotState::from_state(s);
}

TEST(Heuristic, ZeroMode) {
  EXPECT_EQ(heuristic_lower_bound(slot_of(make_ghz(4)),
                                  HeuristicMode::kZero),
            0);
}

TEST(Heuristic, ProductStatesHaveZeroBound) {
  const SlotState prod = SlotState::from_indices(3, {0, 1, 2, 3});
  EXPECT_EQ(heuristic_lower_bound(prod, HeuristicMode::kPair), 0);
  EXPECT_EQ(heuristic_lower_bound(prod, HeuristicMode::kComponent), 0);
  EXPECT_EQ(heuristic_lower_bound(SlotState::ground(4, 2),
                                  HeuristicMode::kComponent),
            0);
}

TEST(Heuristic, GhzBoundsMatchPaperExample) {
  // Paper Section V-A: GHZ_4 has 4 entangled qubits, the pair heuristic
  // returns ceil(4/2) = 2, while the true minimum is 3. The component
  // bound is tight here: all qubits are pairwise correlated.
  const SlotState ghz = slot_of(make_ghz(4));
  EXPECT_EQ(heuristic_lower_bound(ghz, HeuristicMode::kPair), 2);
  EXPECT_EQ(heuristic_lower_bound(ghz, HeuristicMode::kComponent), 3);
}

TEST(Heuristic, ParityStateUsesSingletonRule) {
  // (|000>+|011>+|101>+|110>)/2: all qubits entangled yet pairwise
  // uncorrelated -> three singletons -> ceil(3/2) = 2 in both modes.
  const SlotState parity =
      SlotState::from_indices(3, {0b000, 0b011, 0b101, 0b110});
  EXPECT_EQ(heuristic_lower_bound(parity, HeuristicMode::kPair), 2);
  EXPECT_EQ(heuristic_lower_bound(parity, HeuristicMode::kComponent), 2);
}

TEST(Heuristic, ComponentDominatesPair) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    const SlotState s = slot_of(make_random_uniform(n, m, rng));
    EXPECT_GE(heuristic_lower_bound(s, HeuristicMode::kComponent),
              heuristic_lower_bound(s, HeuristicMode::kPair));
  }
}

TEST(Heuristic, BellPair) {
  const SlotState bell = SlotState::from_indices(2, {0b00, 0b11});
  EXPECT_EQ(heuristic_lower_bound(bell, HeuristicMode::kPair), 1);
  EXPECT_EQ(heuristic_lower_bound(bell, HeuristicMode::kComponent), 1);
}

TEST(Heuristic, TwoIndependentBellPairs) {
  // Bell(0,1) x Bell(2,3): two components of size 2 -> bound 2.
  const SlotState s =
      SlotState::from_indices(4, {0b0000, 0b0011, 0b1100, 0b1111});
  EXPECT_EQ(heuristic_lower_bound(s, HeuristicMode::kComponent), 2);
  EXPECT_EQ(heuristic_lower_bound(s, HeuristicMode::kPair), 2);
}

TEST(Heuristic, SeparableQubitsExcluded) {
  // Bell x (|0>+|1>)/sqrt2: the separable qubit must not inflate bounds.
  const SlotState s =
      SlotState::from_indices(3, {0b000, 0b011, 0b100, 0b111});
  EXPECT_EQ(heuristic_lower_bound(s, HeuristicMode::kComponent), 1);
  EXPECT_EQ(heuristic_lower_bound(s, HeuristicMode::kPair), 1);
}

TEST(Heuristic, CouplingCompleteMatchesBlind) {
  Rng rng(42);
  const CouplingGraph full = CouplingGraph::full(5);
  for (int trial = 0; trial < 10; ++trial) {
    const SlotState s = slot_of(make_random_uniform(5, 5, rng));
    for (const HeuristicMode mode :
         {HeuristicMode::kPair, HeuristicMode::kComponent}) {
      EXPECT_EQ(heuristic_lower_bound(s, mode, &full),
                heuristic_lower_bound(s, mode));
    }
  }
}

TEST(Heuristic, CouplingPricesSpreadComponents) {
  const CouplingGraph line = CouplingGraph::line(4);
  // Bell(0,3): the device must connect the whole line.
  const SlotState far_bell = SlotState::from_indices(4, {0b0000, 0b1001});
  EXPECT_EQ(heuristic_lower_bound(far_bell, HeuristicMode::kComponent), 1);
  EXPECT_EQ(
      heuristic_lower_bound(far_bell, HeuristicMode::kComponent, &line), 3);
  // Bell(0,3) x Bell(1,2): two components, but one connected subgraph
  // spanning the line can host both — the grouped bound must price the
  // merged interaction component (3 edges), not the sum of per-component
  // Steiner trees (3 + 1).
  const SlotState nested =
      SlotState::from_indices(4, {0b0000, 0b1001, 0b0110, 0b1111});
  EXPECT_EQ(heuristic_lower_bound(nested, HeuristicMode::kComponent), 2);
  EXPECT_EQ(
      heuristic_lower_bound(nested, HeuristicMode::kComponent, &line), 3);
  // GHZ_4 already needs every wire: the routed bound stays 3.
  const SlotState ghz = slot_of(make_ghz(4));
  EXPECT_EQ(heuristic_lower_bound(ghz, HeuristicMode::kComponent, &line), 3);
  // kPair is deliberately coupling-blind: an incident edge costs >= 1
  // anywhere, so the bound cannot move.
  EXPECT_EQ(heuristic_lower_bound(far_bell, HeuristicMode::kPair, &line),
            heuristic_lower_bound(far_bell, HeuristicMode::kPair));
}

TEST(Heuristic, CouplingSingletonsPairOnlyWhenAdjacent) {
  const CouplingGraph line = CouplingGraph::line(3);
  // Parity state: three entangled, pairwise-uncorrelated qubits. On a
  // line the grouped bound can pair adjacent singletons (one shared edge)
  // but a spread pair costs its distance; the best grouping here is
  // {0,1} via edge + {2} incident = 2, matching the blind bound.
  const SlotState parity =
      SlotState::from_indices(3, {0b000, 0b011, 0b101, 0b110});
  EXPECT_EQ(
      heuristic_lower_bound(parity, HeuristicMode::kComponent, &line), 2);
}

TEST(Heuristic, CouplingNeverBelowBlindBound) {
  Rng rng(43);
  const CouplingGraph line = CouplingGraph::line(6);
  const CouplingGraph grid = CouplingGraph::grid(2, 3);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    const SlotState s = slot_of(make_random_uniform(n, m, rng));
    for (const CouplingGraph* g : {&line, &grid}) {
      EXPECT_GE(heuristic_lower_bound(s, HeuristicMode::kComponent, g),
                heuristic_lower_bound(s, HeuristicMode::kComponent));
    }
  }
}

}  // namespace
}  // namespace qsp
