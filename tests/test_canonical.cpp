#include "core/canonical.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/moves.hpp"

#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

SlotState random_slot(Rng& rng, int n, int m) {
  return *SlotState::from_state(make_random_uniform(n, m, rng));
}

TEST(Canonical, CompressClearsSeparableQubits) {
  // (|00> + |01> + |10> + |11>) / 2: both qubits separable.
  const SlotState s = SlotState::from_indices(2, {0, 1, 2, 3});
  const SlotState c = compress_free(s);
  EXPECT_TRUE(c.is_ground());
  EXPECT_EQ(c.total(), 4u);
}

TEST(Canonical, CompressKeepsEntangledCore) {
  // Bell x (|0>+|1>)/sqrt2 on qubit 2.
  const SlotState s =
      SlotState::from_indices(3, {0b000, 0b011, 0b100, 0b111});
  const SlotState c = compress_free(s);
  EXPECT_EQ(c.cardinality(), 2);
  EXPECT_FALSE(c.qubit_separable(0));
  EXPECT_TRUE(c.qubit_constant(2));
}

TEST(Canonical, KeyInvariantUnderXTranslations) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const SlotState s = random_slot(rng, 4, 5);
    const auto key = canonical_key(s, CanonicalLevel::kU2);
    for (int q = 0; q < 4; ++q) {
      EXPECT_EQ(canonical_key(s.with_x(q), CanonicalLevel::kU2), key);
    }
  }
}

TEST(Canonical, KeyInvariantUnderPermutationsAtPU2Exact) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const SlotState s = random_slot(rng, 4, 6);
    const auto key = canonical_key(s, CanonicalLevel::kPU2Exact);
    for (const auto& perm : permutations(4)) {
      EXPECT_EQ(canonical_key(s.with_permutation(perm),
                              CanonicalLevel::kPU2Exact),
                key);
    }
  }
}

TEST(Canonical, U2DoesNotMergePermutedStates) {
  // Permutation-related but not translation-related states must differ at
  // kU2 and coincide at kPU2Exact.
  const SlotState a = SlotState::from_indices(3, {0b000, 0b001, 0b010});
  const SlotState b = a.with_permutation({2, 1, 0});
  EXPECT_EQ(canonical_key(a, CanonicalLevel::kPU2Exact),
            canonical_key(b, CanonicalLevel::kPU2Exact));
}

TEST(Canonical, GreedyIsSoundUnderTransforms) {
  // Greedy keys must never merge inequivalent states; equal keys from
  // transformed copies are desirable but not required. Check soundness by
  // verifying the key function is deterministic and that translated copies
  // still collide (translations are handled exactly at every level).
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const SlotState s = random_slot(rng, 5, 6);
    const auto key = canonical_key(s, CanonicalLevel::kPU2Greedy);
    EXPECT_EQ(canonical_key(s, CanonicalLevel::kPU2Greedy), key);
    const BasisIndex mask =
        static_cast<BasisIndex>(rng.next_below(32));
    EXPECT_EQ(canonical_key(s.with_translation(mask),
                            CanonicalLevel::kPU2Greedy),
              key);
  }
}

TEST(Canonical, DistinctStatesDistinctKeys) {
  // GHZ_3 and W_3 are inequivalent under free operations.
  const SlotState ghz = *SlotState::from_state(make_ghz(3));
  const SlotState w = *SlotState::from_state(make_w(3));
  EXPECT_NE(canonical_key(ghz, CanonicalLevel::kPU2Exact),
            canonical_key(w, CanonicalLevel::kPU2Exact));
}

TEST(Canonical, FreeReducible) {
  EXPECT_TRUE(free_reducible(SlotState::ground(3, 4), CanonicalLevel::kU2));
  EXPECT_TRUE(free_reducible(SlotState::from_indices(2, {0, 1, 2, 3}),
                             CanonicalLevel::kU2));
  EXPECT_FALSE(free_reducible(*SlotState::from_state(make_ghz(3)),
                              CanonicalLevel::kU2));
  // kNone requires literal ground.
  EXPECT_FALSE(free_reducible(SlotState::from_indices(2, {0, 1, 2, 3}),
                              CanonicalLevel::kNone));
}

TEST(Canonical, FreeDisentangleProducesVerifiedGates) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    // Build a separable state: random product of single-qubit splits and
    // flips, realized by translating + splitting the ground slot state.
    SlotState s = SlotState::ground(3, 8);
    // Split qubits 0 and 2, flip qubit 1 (positive split angle moves
    // half the slot mass onto the t=1 side).
    Move split0;
    split0.kind = MoveKind::kRotation;
    split0.target = 0;
    split0.theta = M_PI / 2;
    s = apply_move(s, split0);
    s = s.with_x(1);
    Move split2;
    split2.kind = MoveKind::kRotation;
    split2.target = 2;
    split2.theta = M_PI / 2;
    s = apply_move(s, split2);

    SlotState reached = s;
    const std::vector<Gate> gates = free_disentangle_gates(s, &reached);
    EXPECT_TRUE(reached.is_ground());
    // The gates must map the state to ground on the simulator as well.
    Statevector sv(s.to_state());
    for (const Gate& g : gates) sv.apply(g);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, 1e-9);
  }
}

TEST(Canonical, FreeDisentangleThrowsOnEntangled) {
  const SlotState ghz = *SlotState::from_state(make_ghz(3));
  EXPECT_THROW(free_disentangle_gates(ghz), std::invalid_argument);
}

TEST(Canonical, KeyInvariantUnderSeparableSplit) {
  // A Bell pair with an extra separable qubit in superposition must share
  // its class with the Bell pair whose extra qubit is |0>: the zero-cost
  // merge inside canonicalization removes the separable qubit.
  const SlotState plain =
      SlotState::from_indices(3, {0b000, 0b011, 0b000, 0b011});
  const SlotState split =
      SlotState::from_indices(3, {0b000, 0b011, 0b100, 0b111});
  EXPECT_EQ(canonical_key(plain, CanonicalLevel::kU2),
            canonical_key(split, CanonicalLevel::kU2));
  EXPECT_EQ(canonical_key(plain, CanonicalLevel::kPU2Exact),
            canonical_key(split, CanonicalLevel::kPU2Exact));
}

/// Unpack a canonical key back into the slot state it denotes.
SlotState key_to_state(const CanonicalKey& key, int num_qubits) {
  std::vector<SlotEntry> entries;
  entries.reserve(key.size());
  for (const std::uint64_t packed : key) {
    entries.push_back(SlotEntry{static_cast<BasisIndex>(packed >> 32),
                                static_cast<std::uint32_t>(packed)});
  }
  return SlotState(num_qubits, std::move(entries));
}

/// Apply a witness to the state's vector: merges, X layer, then the bit
/// relabeling — and return the reached sparse state.
QuantumState apply_witness(const SlotState& state,
                           const CanonicalWitness& witness) {
  Statevector sv(state.to_state());
  for (const Gate& g : witness.merge_gates) sv.apply(g);
  for (int q = 0; q < state.num_qubits(); ++q) {
    if (get_bit(witness.translation, q) != 0) sv.apply(Gate::x(q));
  }
  const QuantumState mid = sv.to_state();
  std::vector<Term> terms;
  terms.reserve(mid.terms().size());
  for (const Term& t : mid.terms()) {
    terms.push_back(Term{permute_bits(t.index, witness.permutation),
                         t.amplitude});
  }
  return QuantumState(state.num_qubits(), std::move(terms));
}

TEST(Canonical, WitnessKeyMatchesCanonicalKey) {
  Rng rng(99);
  for (const CanonicalLevel level :
       {CanonicalLevel::kNone, CanonicalLevel::kU2,
        CanonicalLevel::kPU2Greedy, CanonicalLevel::kPU2Exact}) {
    for (int i = 0; i < 20; ++i) {
      const SlotState s = random_slot(rng, 4, 2 + i % 6);
      EXPECT_EQ(canonical_witness(s, level).key, canonical_key(s, level));
    }
  }
}

TEST(Canonical, WitnessTransformReachesCanonicalForm) {
  // The witness gates must map the state's vector exactly onto the
  // canonical form read as a slot state — this is what lets the
  // equivalence cache rewire a class representative's circuit onto any
  // other member of the class.
  Rng rng(123);
  for (const CanonicalLevel level :
       {CanonicalLevel::kU2, CanonicalLevel::kPU2Greedy,
        CanonicalLevel::kPU2Exact}) {
    for (int i = 0; i < 20; ++i) {
      const SlotState s = random_slot(rng, 4, 2 + i % 7);
      const CanonicalWitness w = canonical_witness(s, level);
      const QuantumState reached = apply_witness(s, w);
      const QuantumState form =
          key_to_state(w.key, s.num_qubits()).to_state();
      EXPECT_TRUE(reached.approx_equal(form, 1e-9))
          << "level " << static_cast<int>(level) << "\nstate "
          << s.to_string() << "\nreached " << reached.to_string()
          << "\nform " << form.to_string();
    }
  }
}

TEST(Canonical, WitnessHandlesSeparableStructure) {
  // States with separable qubits exercise the merge-gate side of the
  // witness (compress_free clears them; the witness must realize the
  // clears as Ry gates).
  const SlotState split =
      SlotState::from_indices(3, {0b000, 0b011, 0b100, 0b111});
  for (const CanonicalLevel level :
       {CanonicalLevel::kU2, CanonicalLevel::kPU2Exact}) {
    const CanonicalWitness w = canonical_witness(split, level);
    EXPECT_FALSE(w.merge_gates.empty());
    const QuantumState reached = apply_witness(split, w);
    const QuantumState form = key_to_state(w.key, 3).to_state();
    EXPECT_TRUE(reached.approx_equal(form, 1e-9));
  }
}

}  // namespace
}  // namespace qsp
