#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/cost_model.hpp"

namespace qsp {
namespace {

TEST(Gate, Factories) {
  const Gate x = Gate::x(2);
  EXPECT_EQ(x.kind(), GateKind::kX);
  EXPECT_EQ(x.target(), 2);
  EXPECT_EQ(x.num_controls(), 0);

  const Gate ry = Gate::ry(0, 1.5);
  EXPECT_EQ(ry.kind(), GateKind::kRy);
  EXPECT_DOUBLE_EQ(ry.theta(), 1.5);

  const Gate cx = Gate::cnot(1, 0);
  EXPECT_EQ(cx.kind(), GateKind::kCNOT);
  EXPECT_TRUE(cx.controls()[0].positive);

  const Gate ncx = Gate::cnot(1, 0, /*positive=*/false);
  EXPECT_FALSE(ncx.controls()[0].positive);
}

TEST(Gate, McryDegeneratesToSmallerKinds) {
  EXPECT_EQ(Gate::mcry({}, 0, 0.5).kind(), GateKind::kRy);
  EXPECT_EQ(Gate::mcry({ControlLiteral{1, true}}, 0, 0.5).kind(),
            GateKind::kCRy);
  EXPECT_EQ(
      Gate::mcry({ControlLiteral{1, true}, ControlLiteral{2, false}}, 0, 0.5)
          .kind(),
      GateKind::kMCRy);
}

TEST(Gate, McrySortsControls) {
  const Gate g = Gate::mcry(
      {ControlLiteral{3, false}, ControlLiteral{1, true}}, 0, 0.5);
  EXPECT_EQ(g.controls()[0].qubit, 1);
  EXPECT_EQ(g.controls()[1].qubit, 3);
}

TEST(Gate, Validation) {
  EXPECT_THROW(Gate::x(-1), std::invalid_argument);
  EXPECT_THROW(Gate::cnot(0, 0), std::invalid_argument);
  EXPECT_THROW(
      Gate::mcry({ControlLiteral{1, true}, ControlLiteral{1, false}}, 0, 1.0),
      std::invalid_argument);
  EXPECT_THROW(Gate::ucry({0, 1}, 2, {0.0}), std::invalid_argument);
  EXPECT_THROW(Gate::ucry({0, 2}, 2, {0.0, 0.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(Gate, Adjoint) {
  const Gate ry = Gate::ry(0, 0.7);
  EXPECT_DOUBLE_EQ(ry.adjoint().theta(), -0.7);
  const Gate x = Gate::x(1);
  EXPECT_EQ(x.adjoint(), x);
  const Gate cx = Gate::cnot(0, 1);
  EXPECT_EQ(cx.adjoint(), cx);
  const Gate u = Gate::ucry({0}, 1, {0.3, -0.4});
  const Gate ua = u.adjoint();
  EXPECT_DOUBLE_EQ(ua.angles()[0], -0.3);
  EXPECT_DOUBLE_EQ(ua.angles()[1], 0.4);
}

TEST(Gate, Remapped) {
  const Gate g = Gate::mcry(
      {ControlLiteral{0, true}, ControlLiteral{1, false}}, 2, 0.9);
  const Gate r = g.remapped({5, 3, 1});
  EXPECT_EQ(r.target(), 1);
  // Control order is preserved; only the qubit ids change.
  EXPECT_EQ(r.controls()[0], (ControlLiteral{5, true}));
  EXPECT_EQ(r.controls()[1], (ControlLiteral{3, false}));
  EXPECT_THROW(g.remapped({0, 1}), std::invalid_argument);
}

TEST(Gate, QubitsAndMaxQubit) {
  const Gate g = Gate::mcry(
      {ControlLiteral{4, true}, ControlLiteral{2, true}}, 7, 0.1);
  EXPECT_EQ(g.max_qubit(), 7);
  const auto qs = g.qubits();
  EXPECT_EQ(qs.size(), 3u);
}

TEST(CostModel, TableOne) {
  EXPECT_EQ(gate_cnot_cost(Gate::x(0)), 0);
  EXPECT_EQ(gate_cnot_cost(Gate::ry(0, 1.0)), 0);
  EXPECT_EQ(gate_cnot_cost(Gate::cnot(0, 1)), 1);
  EXPECT_EQ(gate_cnot_cost(Gate::cry(0, 1, 1.0)), 2);
  EXPECT_EQ(gate_cnot_cost(Gate::mcry(
                {ControlLiteral{0, true}, ControlLiteral{1, true}}, 2, 1.0)),
            4);
  EXPECT_EQ(gate_cnot_cost(Gate::mcry({ControlLiteral{0, true},
                                       ControlLiteral{1, true},
                                       ControlLiteral{2, true}},
                                      3, 1.0)),
            8);
  EXPECT_EQ(gate_cnot_cost(Gate::ucry({0, 1, 2}, 3,
                                      std::vector<double>(8, 0.5))),
            8);
  EXPECT_EQ(rotation_cost(0), 0);
  EXPECT_EQ(rotation_cost(1), 2);
  EXPECT_EQ(rotation_cost(5), 32);
}

}  // namespace
}  // namespace qsp
