#include "core/astar.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

SynthesisResult solve(const QuantumState& target,
                      SearchOptions options = {}) {
  const AStarSynthesizer synth(options);
  return synth.synthesize(target);
}

void expect_optimal(const QuantumState& target, std::int64_t expected_cost,
                    SearchOptions options = {}) {
  const SynthesisResult res = solve(target, options);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cnot_cost, expected_cost);
  verify_preparation_or_throw(res.circuit, target);
  // The reported arc cost must match the lowered CNOT count of the
  // returned circuit.
  EXPECT_EQ(count_cnots_after_lowering(res.circuit), expected_cost);
}

TEST(AStar, GroundStateIsFree) { expect_optimal(QuantumState(3), 0); }

TEST(AStar, ProductStatesAreFree) {
  // Uniform superposition: all qubits separable -> zero CNOTs.
  expect_optimal(make_uniform(3, {0, 1, 2, 3, 4, 5, 6, 7}), 0);
  expect_optimal(make_uniform(2, {0b10, 0b11}), 0);
}

TEST(AStar, BellCostsOne) { expect_optimal(make_ghz(2), 1); }

TEST(AStar, GhzCostsNMinusOne) {
  expect_optimal(make_ghz(3), 2);
  expect_optimal(make_ghz(4), 3);
  expect_optimal(make_ghz(5), 4);
}

TEST(AStar, MotivatingExampleCostsTwo) {
  // Paper Fig. 3: (|000> + |011> + |101> + |110>)/2 takes 2 CNOTs.
  expect_optimal(make_uniform(3, {0b000, 0b011, 0b101, 0b110}), 2);
}

TEST(AStar, WThreeMatchesPaper) {
  // Table IV row (n=3, k=1): exact synthesis uses 4 CNOTs.
  expect_optimal(make_w(3), 4);
}

TEST(AStar, DickeFourTwoBeatsManual) {
  // The paper's headline: |D^2_4> in 6 CNOTs (manual design: 12).
  expect_optimal(make_dicke(4, 2), 6);
}

TEST(AStar, SearchStatsPopulated) {
  const SynthesisResult res = solve(make_dicke(4, 2));
  EXPECT_TRUE(res.stats.completed);
  EXPECT_GT(res.stats.nodes_expanded, 0u);
  EXPECT_GT(res.stats.nodes_generated, res.stats.nodes_expanded);
  EXPECT_GT(res.stats.classes_stored, 1u);
  EXPECT_GT(res.stats.sum_shard_peak_open_size, 0u);
  // The queue never exceeds the generated-arc count, and every stale pop
  // corresponds to an earlier push.
  EXPECT_LE(res.stats.sum_shard_peak_open_size, res.stats.nodes_generated + 1);
  EXPECT_LE(res.stats.stale_pops, res.stats.nodes_generated);
}

TEST(AStar, BudgetExhaustionReportsNotFound) {
  SearchOptions tight;
  tight.node_budget = 10;
  const SynthesisResult res = solve(make_dicke(4, 2), tight);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.stats.completed);
  EXPECT_TRUE(res.stats.budget_exhausted);
}

TEST(AStar, CompletedSearchIsNotBudgetExhausted) {
  const SynthesisResult res = solve(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.stats.completed);
  EXPECT_FALSE(res.stats.budget_exhausted);
}

TEST(AStar, HeuristicModesAgreeOnOptimalCost) {
  const QuantumState target = make_uniform(3, {0b000, 0b011, 0b101});
  std::int64_t costs[3];
  int i = 0;
  for (const HeuristicMode mode :
       {HeuristicMode::kZero, HeuristicMode::kPair,
        HeuristicMode::kComponent}) {
    SearchOptions o;
    o.heuristic = mode;
    const SynthesisResult res = solve(target, o);
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.optimal);
    costs[i++] = res.cnot_cost;
  }
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(costs[1], costs[2]);
}

TEST(AStar, CanonicalLevelsAgreeOnOptimalCost) {
  const QuantumState target = make_uniform(3, {0b001, 0b010, 0b100, 0b111});
  std::int64_t reference = -1;
  for (const CanonicalLevel level :
       {CanonicalLevel::kNone, CanonicalLevel::kU2,
        CanonicalLevel::kPU2Greedy, CanonicalLevel::kPU2Exact}) {
    SearchOptions o;
    o.canonical = level;
    o.node_budget = 20'000'000;
    const SynthesisResult res = solve(target, o);
    ASSERT_TRUE(res.found) << "level " << static_cast<int>(level);
    if (reference < 0) reference = res.cnot_cost;
    EXPECT_EQ(res.cnot_cost, reference)
        << "level " << static_cast<int>(level);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(AStar, CanonicalizationShrinksExploration) {
  const QuantumState target = make_dicke(4, 2);
  SearchOptions with;
  with.canonical = CanonicalLevel::kPU2Exact;
  SearchOptions without;
  without.canonical = CanonicalLevel::kU2;
  const SynthesisResult a = solve(target, with);
  const SynthesisResult b = solve(target, without);
  ASSERT_TRUE(a.found && b.found);
  EXPECT_EQ(a.cnot_cost, b.cnot_cost);
  EXPECT_LT(a.stats.classes_stored, b.stats.classes_stored);
}

TEST(AStar, RandomUniformStatesAlwaysVerify) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(2));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    const QuantumState target = make_random_uniform(n, m, rng);
    const SynthesisResult res = solve(target);
    ASSERT_TRUE(res.found) << target.to_string();
    EXPECT_TRUE(res.optimal);
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  }
}

TEST(AStar, ThrowsOnNonSlotState) {
  const QuantumState signed_state(2, {Term{0, 1.0}, Term{3, -1.0}});
  const AStarSynthesizer synth;
  EXPECT_THROW(synth.synthesize(signed_state), std::invalid_argument);
}

}  // namespace
}  // namespace qsp
