#include "core/moves.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

MoveGenOptions default_options() {
  MoveGenOptions o;
  o.include_zero_cost = true;
  return o;
}

TEST(Moves, CnotMovesMatchSlotSemantics) {
  const SlotState s = SlotState::from_indices(3, {0b000, 0b011, 0b101, 0b110});
  const auto moves = enumerate_moves(s, default_options());
  int cnot_moves = 0;
  for (const Move& mv : moves) {
    if (mv.kind == MoveKind::kCNOT) {
      ++cnot_moves;
      EXPECT_EQ(mv.cost, 1);
      const SlotState child = apply_move(s, mv);
      EXPECT_EQ(child,
                s.with_cnot(mv.control, mv.control_positive, mv.target));
    }
  }
  // 3 targets x 2 controls x 2 polarities (no empty-control skips here).
  EXPECT_EQ(cnot_moves, 12);
}

TEST(Moves, MergeMoveReducesCardinality) {
  // Separable qubit 2: global merge must appear among zero-cost moves.
  const SlotState s =
      SlotState::from_indices(3, {0b000, 0b001, 0b100, 0b101});
  const auto moves = enumerate_moves(s, default_options());
  bool found_merge = false;
  for (const Move& mv : moves) {
    if (mv.kind != MoveKind::kRotation || !mv.controls.empty()) continue;
    if (mv.target != 0) continue;
    const SlotState child = apply_move(s, mv);
    if (child.cardinality() < s.cardinality()) {
      found_merge = true;
      EXPECT_EQ(mv.cost, 0);
      EXPECT_EQ(child.total(), s.total());
    }
  }
  EXPECT_TRUE(found_merge);
}

TEST(Moves, SplitMovesArePresent) {
  // From the ground-with-4-slots state, an uncontrolled rotation can split
  // index 0 into two indices (the inverse of a merge).
  const SlotState g = SlotState::ground(2, 4);
  const auto moves = enumerate_moves(g, default_options());
  bool found_split = false;
  for (const Move& mv : moves) {
    if (mv.kind != MoveKind::kRotation) continue;
    const SlotState child = apply_move(g, mv);
    if (child.cardinality() == 2) found_split = true;
  }
  EXPECT_TRUE(found_split);
}

TEST(Moves, RotationCostsFollowTableOne) {
  const SlotState s = SlotState::from_indices(3, {0b000, 0b011, 0b101, 0b110});
  for (const Move& mv : enumerate_moves(s, default_options())) {
    if (mv.kind != MoveKind::kRotation) continue;
    switch (mv.controls.size()) {
      case 0:
        EXPECT_EQ(mv.cost, 0);
        break;
      case 1:
        EXPECT_EQ(mv.cost, 2);
        break;
      case 2:
        EXPECT_EQ(mv.cost, 4);
        break;
      default:
        EXPECT_EQ(mv.cost, std::int64_t{1} << mv.controls.size());
    }
  }
}

TEST(Moves, MaxControlsRespected) {
  const SlotState s = SlotState::from_indices(4, {0, 3, 5, 6, 9});
  MoveGenOptions o;
  o.max_controls = 1;
  for (const Move& mv : enumerate_moves(s, o)) {
    if (mv.kind == MoveKind::kRotation) {
      EXPECT_LE(mv.controls.size(), 1u);
    }
  }
}

TEST(Moves, TotalIsInvariant) {
  Rng rng(3);
  const QuantumState s = make_random_uniform(4, 6, rng);
  const SlotState slot = *SlotState::from_state(s);
  for (const Move& mv : enumerate_moves(slot, default_options())) {
    const SlotState child = apply_move(slot, mv);
    EXPECT_EQ(child.total(), slot.total());
  }
}

/// The defining property of the arc set: applying the move in slot space
/// must equal applying the corresponding *gate* to the merged quantum state
/// on the simulator.
TEST(Moves, GateSemanticsMatchOnRandomStates) {
  Rng rng(77);
  int rotations_checked = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(2));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    const QuantumState state = make_random_uniform(n, m, rng);
    const SlotState slot = *SlotState::from_state(state);
    const auto moves = enumerate_moves(slot, default_options());
    for (const Move& mv : moves) {
      const SlotState child = apply_move(slot, mv);
      Statevector sv(slot.to_state());
      sv.apply(mv.to_gate());
      const QuantumState expected = child.to_state();
      ASSERT_NEAR(std::abs(sv.inner_product(expected)), 1.0, 1e-7)
          << "state " << slot.to_string() << " move " << mv.to_string();
      if (mv.kind == MoveKind::kRotation) ++rotations_checked;
    }
  }
  EXPECT_GT(rotations_checked, 100);
}

TEST(Moves, StructuredFallbackStillFindsMerges) {
  // Counts above the cap: groups (1000, 1000) per rest index. The
  // structured candidate set must still offer the global merge.
  const SlotState s(2, {SlotEntry{0b00, 1000}, SlotEntry{0b01, 1000},
                        SlotEntry{0b10, 1000}, SlotEntry{0b11, 1000}});
  MoveGenOptions o;
  o.include_zero_cost = true;
  o.full_candidate_cap = 16;
  bool merge_found = false;
  for (const Move& mv : enumerate_moves(s, o)) {
    if (mv.kind != MoveKind::kRotation) continue;
    const SlotState child = apply_move(s, mv);
    if (child.cardinality() < s.cardinality()) merge_found = true;
  }
  EXPECT_TRUE(merge_found);
}

TEST(Moves, NoBothDirectionControlledSwaps) {
  // {00, 01}: a CRy relabel on target q1 controlled by q0 would need to
  // swap both directions at once within a single group; only valid
  // rotations may appear. Verify every enumerated arc keeps amplitudes
  // consistent (already covered by gate-semantics test) and that no
  // rotation with one control pretends to swap j and k for group ratios
  // that differ.
  const SlotState s = SlotState::from_indices(2, {0b00, 0b11});
  for (const Move& mv : enumerate_moves(s, default_options())) {
    const SlotState child = apply_move(s, mv);
    Statevector sv(s.to_state());
    sv.apply(mv.to_gate());
    EXPECT_NEAR(std::abs(sv.inner_product(child.to_state())), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace qsp
