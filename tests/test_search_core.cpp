// Tests for the search substrate: NodeArena reference stability and
// allocation accounting, and the flat 4-ary OpenQueue's pop order checked
// differentially against a std::priority_queue reference using the same
// lexicographic (f, h, id, g_at_push) order.

#include "core/search_core.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace qsp {
namespace {

SearchNode make_node(int n, BasisIndex index, std::int64_t g) {
  return SearchNode{SlotState::from_indices(n, {index, 0}), g, 0,
                    SearchNode::kNoParent, Move{}};
}

TEST(NodeArena, ReferencesStableAcrossGrowth) {
  NodeArena arena;
  const std::int64_t first = arena.append(make_node(4, 1, 0));
  SearchNode* before = &arena.node(first);
  // Push well past several block boundaries.
  for (int i = 0; i < 5000; ++i) {
    arena.append(make_node(4, static_cast<BasisIndex>(i & 15), i));
  }
  EXPECT_EQ(before, &arena.node(first));
  EXPECT_EQ(arena.size(), 5001u);
  EXPECT_EQ(arena.blocks(),
            (5001 + NodeArena::kBlockNodes - 1) / NodeArena::kBlockNodes);
  // Ids map back to the nodes that were appended.
  EXPECT_EQ(arena.node(first).g, 0);
  EXPECT_EQ(arena.node(4000).g, 3999);
}

TEST(NodeArena, BytesPeakTracksBlocksAndPayload) {
  NodeArena arena;
  EXPECT_EQ(arena.bytes_peak(), 0u);
  arena.append(make_node(4, 1, 0));
  const std::uint64_t one_block =
      NodeArena::kBlockNodes * sizeof(SearchNode);
  EXPECT_GE(arena.bytes_peak(), one_block);
  const std::uint64_t after_one = arena.bytes_peak();
  for (int i = 0; i < 600; ++i) {
    arena.append(make_node(4, static_cast<BasisIndex>(i & 15), i));
  }
  EXPECT_EQ(arena.blocks(), 2u);
  EXPECT_GT(arena.bytes_peak(), after_one);
  // replace_state swaps payload accounting rather than leaking it: growing
  // a node's entry list must not shrink the recorded peak.
  const std::uint64_t before_replace = arena.bytes_peak();
  SearchNode& node = arena.node(0);
  arena.replace_state(node, SlotState::from_indices(4, {0, 1, 2, 3, 4, 5}));
  EXPECT_GE(arena.bytes_peak(), before_replace);
}

TEST(OpenQueue, MatchesPriorityQueueReference) {
  using Key = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t>;
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    OpenQueue open;
    std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ref;
    std::vector<std::int64_t> g_now;
    const int pushes = 300;
    for (int i = 0; i < pushes; ++i) {
      const std::int64_t f = static_cast<std::int64_t>(rng.next_below(40));
      const std::int64_t h = static_cast<std::int64_t>(rng.next_below(10));
      const std::int64_t id = static_cast<std::int64_t>(g_now.size());
      const std::int64_t g = f - h;
      g_now.push_back(g);
      open.push(f, h, id, g);
      ref.emplace(f, h, id, g);
      // Occasionally decrease an existing record's g and re-push, leaving
      // the old entry stale — pop_best must skip exactly those.
      if (rng.next_bool(0.3) && !g_now.empty()) {
        const auto victim =
            static_cast<std::size_t>(rng.next_below(g_now.size()));
        const std::int64_t g2 = g_now[victim] - 1;
        const std::int64_t h2 = static_cast<std::int64_t>(rng.next_below(10));
        g_now[victim] = g2;
        open.push(g2 + h2, h2, static_cast<std::int64_t>(victim), g2);
        ref.emplace(g2 + h2, h2, static_cast<std::int64_t>(victim), g2);
      }
    }
    std::uint64_t stale = 0;
    const auto g_of = [&](std::int64_t id) {
      return g_now[static_cast<std::size_t>(id)];
    };
    while (true) {
      const auto mine = open.pop_best(g_of, stale);
      // Reference: drain in order, applying the same staleness rule.
      std::optional<Key> expect;
      while (!ref.empty()) {
        const Key top = ref.top();
        ref.pop();
        if (g_now[static_cast<std::size_t>(std::get<2>(top))] ==
            std::get<3>(top)) {
          expect = top;
          break;
        }
      }
      ASSERT_EQ(mine.has_value(), expect.has_value());
      if (!mine.has_value()) break;
      EXPECT_EQ(mine->f, std::get<0>(*expect));
      EXPECT_EQ(mine->h, std::get<1>(*expect));
      EXPECT_EQ(mine->id, std::get<2>(*expect));
      EXPECT_EQ(mine->g_at_push, std::get<3>(*expect));
      // Mark popped so duplicate pushes of the same record become stale in
      // both queues.
      g_now[static_cast<std::size_t>(mine->id)] = -1000;
    }
    EXPECT_GT(stale, 0u);
  }
}

TEST(OpenQueue, MinFAndPeakSize) {
  OpenQueue open;
  EXPECT_TRUE(open.empty());
  open.push(7, 3, 0, 4);
  open.push(2, 1, 1, 1);
  open.push(5, 0, 2, 5);
  EXPECT_EQ(open.min_f(), 2);
  EXPECT_EQ(open.peak_size(), 3u);
  std::uint64_t stale = 0;
  std::vector<std::int64_t> g = {4, 1, 5};
  const auto g_of = [&](std::int64_t id) {
    return g[static_cast<std::size_t>(id)];
  };
  const auto top = open.pop_best(g_of, stale);
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, 1);
  EXPECT_EQ(open.min_f(), 5);
  EXPECT_EQ(open.peak_size(), 3u);
}

}  // namespace
}  // namespace qsp
