#include "core/parallel_astar.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/coupling.hpp"
#include "core/search_core.hpp"
#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

/// The fixture corpus of test_astar.cpp: every state the serial kernel
/// certifies, so the sharded kernel must reproduce the exact cnot_cost
/// and the `optimal` flag on each of them.
std::vector<QuantumState> certificate_corpus() {
  std::vector<QuantumState> corpus;
  corpus.push_back(QuantumState(3));                                // ground
  corpus.push_back(make_uniform(3, {0, 1, 2, 3, 4, 5, 6, 7}));     // product
  corpus.push_back(make_uniform(2, {0b10, 0b11}));                 // product
  corpus.push_back(make_ghz(2));                                   // Bell
  corpus.push_back(make_ghz(3));
  corpus.push_back(make_ghz(4));
  corpus.push_back(make_ghz(5));
  corpus.push_back(make_uniform(3, {0b000, 0b011, 0b101, 0b110}));  // Fig. 3
  corpus.push_back(make_w(3));
  corpus.push_back(make_dicke(4, 2));
  Rng rng(2024);  // the seed of AStar.RandomUniformStatesAlwaysVerify
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(2));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    corpus.push_back(make_random_uniform(n, m, rng));
  }
  return corpus;
}

TEST(ParallelAStar, MatchesSerialCertificateAcrossThreadCounts) {
  const AStarSynthesizer serial;
  for (const QuantumState& target : certificate_corpus()) {
    const SynthesisResult ref = serial.synthesize(target);
    ASSERT_TRUE(ref.found) << target.to_string();
    for (const int threads : {1, 2, 8}) {
      SearchOptions options;
      options.num_threads = threads;
      const ParallelAStarSynthesizer parallel(options);
      const SynthesisResult res = parallel.synthesize(target);
      ASSERT_TRUE(res.found)
          << target.to_string() << " threads=" << threads;
      EXPECT_EQ(res.cnot_cost, ref.cnot_cost)
          << target.to_string() << " threads=" << threads;
      EXPECT_EQ(res.optimal, ref.optimal)
          << target.to_string() << " threads=" << threads;
      EXPECT_TRUE(res.stats.completed);
      verify_preparation_or_throw(res.circuit, target);
      EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
    }
  }
}

TEST(ParallelAStar, AStarSynthesizerDispatchesOnNumThreads) {
  // The public facade routes to the sharded kernel when num_threads != 1
  // and must report the same certificate either way.
  const QuantumState target = make_dicke(4, 2);
  SearchOptions options;
  options.num_threads = 4;
  const SynthesisResult res = AStarSynthesizer(options).synthesize(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cnot_cost, 6);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(ParallelAStar, ZeroThreadsMeansAllHardwareThreads) {
  EXPECT_GE(resolve_num_threads(0), 1);
  SearchOptions options;
  options.num_threads = 0;
  const SynthesisResult res =
      ParallelAStarSynthesizer(options).synthesize(make_ghz(3));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 2);
  EXPECT_TRUE(res.optimal);
}

TEST(ParallelAStar, StatsAggregateAcrossShards) {
  SearchOptions options;
  options.num_threads = 8;
  const SynthesisResult res =
      ParallelAStarSynthesizer(options).synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.stats.completed);
  EXPECT_GT(res.stats.nodes_expanded, 0u);
  EXPECT_GT(res.stats.nodes_generated, res.stats.nodes_expanded);
  EXPECT_GT(res.stats.classes_stored, 1u);
  EXPECT_GT(res.stats.sum_shard_peak_open_size, 0u);
  // Every push is a generated arc (plus the root), and per-shard peaks
  // bound per-shard pushes, so the sum obeys the same global bound the
  // serial kernel's true peak does.
  EXPECT_LE(res.stats.sum_shard_peak_open_size,
            res.stats.nodes_generated + 1);
}

TEST(ParallelAStar, SumShardPeakSumsPeaksThatNeedNotCoincide) {
  // Pin the stat's semantics at the OpenQueue level: each shard reports
  // its own lifetime peak, so the sum can exceed any instantaneous
  // global population — here queue A peaks at 3, is drained to empty,
  // and only then does queue B peak at 2: no moment ever holds 5
  // entries, yet the reported sum is 5. sum_shard_peak_open_size is an
  // upper bound on the true global peak, not the peak itself.
  OpenQueue a;
  OpenQueue b;
  std::uint64_t stale = 0;
  const auto g_of = [](std::int64_t) { return std::int64_t{0}; };
  for (std::int64_t id = 0; id < 3; ++id) a.push(id, 0, id, 0);
  while (a.pop_best(g_of, stale).has_value()) {
  }
  ASSERT_TRUE(a.empty());
  for (std::int64_t id = 0; id < 2; ++id) b.push(id, 0, id, 0);
  EXPECT_EQ(a.peak_size() + b.peak_size(), 5u);
}

TEST(ParallelAStar, BudgetExhaustionReportsNotFound) {
  SearchOptions tight;
  tight.num_threads = 4;
  tight.node_budget = 10;
  const SynthesisResult res =
      ParallelAStarSynthesizer(tight).synthesize(make_dicke(4, 2));
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.stats.completed);
  EXPECT_TRUE(res.stats.budget_exhausted);
}

TEST(ParallelAStar, CouplingConstrainedCostsMatchSerial) {
  // The canonicalization demotion on incomplete couplings must behave
  // identically in both kernels (routed costs included).
  SearchOptions serial_options;
  serial_options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  SearchOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  for (const QuantumState& target :
       {make_ghz(3), make_uniform(3, {0b000, 0b011, 0b101, 0b110})}) {
    const SynthesisResult ref =
        AStarSynthesizer(serial_options).synthesize(target);
    const SynthesisResult res =
        ParallelAStarSynthesizer(parallel_options).synthesize(target);
    ASSERT_TRUE(ref.found && res.found);
    EXPECT_EQ(res.cnot_cost, ref.cnot_cost);
    EXPECT_EQ(res.optimal, ref.optimal);
  }
}

TEST(ParallelAStar, ThrowsOnNonSlotState) {
  const QuantumState signed_state(2, {Term{0, 1.0}, Term{3, -1.0}});
  SearchOptions options;
  options.num_threads = 2;
  const ParallelAStarSynthesizer synth(options);
  EXPECT_THROW(synth.synthesize(signed_state), std::invalid_argument);
}

}  // namespace
}  // namespace qsp
