#include "core/parallel_astar.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "arch/coupling.hpp"
#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

/// The fixture corpus of test_astar.cpp: every state the serial kernel
/// certifies, so the sharded kernel must reproduce the exact cnot_cost
/// and the `optimal` flag on each of them.
std::vector<QuantumState> certificate_corpus() {
  std::vector<QuantumState> corpus;
  corpus.push_back(QuantumState(3));                                // ground
  corpus.push_back(make_uniform(3, {0, 1, 2, 3, 4, 5, 6, 7}));     // product
  corpus.push_back(make_uniform(2, {0b10, 0b11}));                 // product
  corpus.push_back(make_ghz(2));                                   // Bell
  corpus.push_back(make_ghz(3));
  corpus.push_back(make_ghz(4));
  corpus.push_back(make_ghz(5));
  corpus.push_back(make_uniform(3, {0b000, 0b011, 0b101, 0b110}));  // Fig. 3
  corpus.push_back(make_w(3));
  corpus.push_back(make_dicke(4, 2));
  Rng rng(2024);  // the seed of AStar.RandomUniformStatesAlwaysVerify
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(2));
    const int m = 2 + static_cast<int>(rng.next_below(7));
    corpus.push_back(make_random_uniform(n, m, rng));
  }
  return corpus;
}

TEST(ParallelAStar, MatchesSerialCertificateAcrossThreadCounts) {
  const AStarSynthesizer serial;
  for (const QuantumState& target : certificate_corpus()) {
    const SynthesisResult ref = serial.synthesize(target);
    ASSERT_TRUE(ref.found) << target.to_string();
    for (const int threads : {1, 2, 8}) {
      SearchOptions options;
      options.num_threads = threads;
      const ParallelAStarSynthesizer parallel(options);
      const SynthesisResult res = parallel.synthesize(target);
      ASSERT_TRUE(res.found)
          << target.to_string() << " threads=" << threads;
      EXPECT_EQ(res.cnot_cost, ref.cnot_cost)
          << target.to_string() << " threads=" << threads;
      EXPECT_EQ(res.optimal, ref.optimal)
          << target.to_string() << " threads=" << threads;
      EXPECT_TRUE(res.stats.completed);
      verify_preparation_or_throw(res.circuit, target);
      EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
    }
  }
}

TEST(ParallelAStar, AStarSynthesizerDispatchesOnNumThreads) {
  // The public facade routes to the sharded kernel when num_threads != 1
  // and must report the same certificate either way.
  const QuantumState target = make_dicke(4, 2);
  SearchOptions options;
  options.num_threads = 4;
  const SynthesisResult res = AStarSynthesizer(options).synthesize(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cnot_cost, 6);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(ParallelAStar, ZeroThreadsMeansAllHardwareThreads) {
  EXPECT_GE(resolve_num_threads(0), 1);
  SearchOptions options;
  options.num_threads = 0;
  const SynthesisResult res =
      ParallelAStarSynthesizer(options).synthesize(make_ghz(3));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 2);
  EXPECT_TRUE(res.optimal);
}

TEST(ParallelAStar, StatsAggregateAcrossShards) {
  SearchOptions options;
  options.num_threads = 8;
  const SynthesisResult res =
      ParallelAStarSynthesizer(options).synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.stats.completed);
  EXPECT_GT(res.stats.nodes_expanded, 0u);
  EXPECT_GT(res.stats.nodes_generated, res.stats.nodes_expanded);
  EXPECT_GT(res.stats.classes_stored, 1u);
  EXPECT_GT(res.stats.peak_open_size, 0u);
}

TEST(ParallelAStar, BudgetExhaustionReportsNotFound) {
  SearchOptions tight;
  tight.num_threads = 4;
  tight.node_budget = 10;
  const SynthesisResult res =
      ParallelAStarSynthesizer(tight).synthesize(make_dicke(4, 2));
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.stats.completed);
}

TEST(ParallelAStar, CouplingConstrainedCostsMatchSerial) {
  // The canonicalization demotion on incomplete couplings must behave
  // identically in both kernels (routed costs included).
  SearchOptions serial_options;
  serial_options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  SearchOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  for (const QuantumState& target :
       {make_ghz(3), make_uniform(3, {0b000, 0b011, 0b101, 0b110})}) {
    const SynthesisResult ref =
        AStarSynthesizer(serial_options).synthesize(target);
    const SynthesisResult res =
        ParallelAStarSynthesizer(parallel_options).synthesize(target);
    ASSERT_TRUE(ref.found && res.found);
    EXPECT_EQ(res.cnot_cost, ref.cnot_cost);
    EXPECT_EQ(res.optimal, ref.optimal);
  }
}

TEST(ParallelAStar, ThrowsOnNonSlotState) {
  const QuantumState signed_state(2, {Term{0, 1.0}, Term{3, -1.0}});
  SearchOptions options;
  options.num_threads = 2;
  const ParallelAStarSynthesizer synth(options);
  EXPECT_THROW(synth.synthesize(signed_state), std::invalid_argument);
}

}  // namespace
}  // namespace qsp
