#include "core/equivalence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/combinatorics.hpp"

namespace qsp {
namespace {

TEST(Equivalence, TotalsMatchBinomials) {
  const auto rows = count_uniform_equivalence_classes(3, 4);
  ASSERT_EQ(rows.size(), 4u);
  for (int m = 1; m <= 4; ++m) {
    EXPECT_EQ(rows[static_cast<std::size_t>(m - 1)].total_states,
              binomial(8, static_cast<unsigned>(m)));
  }
}

TEST(Equivalence, SingleBasisStatesFormOneClass) {
  const auto rows = count_uniform_equivalence_classes(3, 2);
  EXPECT_EQ(rows[0].u2_classes, 1u);
  EXPECT_EQ(rows[0].pu2_classes, 1u);
}

TEST(Equivalence, PairClassesForThreeQubits) {
  // {x, y} with v = x^y: v single-bit pairs merge to cardinality 1; the
  // remaining v (|v| >= 2) each form a class: 4 classes under U(2) for
  // n=3, and 2 under qubit permutation (popcount 2 or 3).
  const auto rows = count_uniform_equivalence_classes(3, 2);
  EXPECT_EQ(rows[1].u2_classes, 4u);
  EXPECT_EQ(rows[1].pu2_classes, 2u);
}

TEST(Equivalence, PermutationNeverIncreasesClasses) {
  for (const int n : {2, 3}) {
    const auto rows = count_uniform_equivalence_classes(n, 1 << n);
    for (const auto& row : rows) {
      EXPECT_LE(row.pu2_classes, row.u2_classes);
      EXPECT_LE(row.u2_classes, row.total_states);
      EXPECT_LE(row.pu2_touching, row.u2_touching);
    }
  }
}

TEST(Equivalence, TouchingCountsDominateMinCardCounts) {
  // Every class whose minimal cardinality is m contains an m-state, so
  // the "touching" count can only be larger.
  for (const int n : {3, 4}) {
    const auto rows = count_uniform_equivalence_classes(n, 1 << (n - 1));
    for (const auto& row : rows) {
      EXPECT_GE(row.u2_touching, row.u2_classes) << "m=" << row.m;
      EXPECT_GE(row.pu2_touching, row.pu2_classes) << "m=" << row.m;
    }
  }
}

TEST(Equivalence, RejectsLargeN) {
  EXPECT_THROW(count_uniform_equivalence_classes(5, 2),
               std::invalid_argument);
  EXPECT_THROW(count_uniform_equivalence_classes(0, 1),
               std::invalid_argument);
}

// The full Table III check (n = 4) lives here as the authoritative
// regression for the paper's numbers; values verified against the paper:
// |V/U(2)|  : 1, 11, 35, 118, 273, 525, 715, 828
// |V/PU(2)| : 1,  3,  6,  16,  27,  47,  56,  68
TEST(Equivalence, TableThreeFourQubits) {
  const auto rows = count_uniform_equivalence_classes(4, 8);
  const std::uint64_t expected_total[] = {16,   120,  560,  1820,
                                          4368, 8008, 11440, 12870};
  const std::uint64_t expected_u2[] = {1, 11, 35, 118, 273, 525, 715, 828};
  const std::uint64_t expected_pu2[] = {1, 3, 6, 16, 27, 47, 56, 68};
  for (int m = 1; m <= 8; ++m) {
    const auto& row = rows[static_cast<std::size_t>(m - 1)];
    EXPECT_EQ(row.total_states, expected_total[m - 1]) << "m=" << m;
    EXPECT_EQ(row.u2_classes, expected_u2[m - 1]) << "m=" << m;
    EXPECT_EQ(row.pu2_classes, expected_pu2[m - 1]) << "m=" << m;
  }
}

}  // namespace
}  // namespace qsp
