// End-to-end checks that tie the whole system together: every method
// prepares the same states (verified on the simulator), and the paper's
// headline relations hold on the reproduced instances.

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "circuit/qasm.hpp"
#include "core/exact_synthesizer.hpp"
#include "flow/methods.hpp"
#include "prep/dicke.hpp"
#include "prep/nflow.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Integration, MotivatingExampleCostOrdering) {
  // Section III: qubit reduction -> 6 CNOTs, cardinality reduction -> 7,
  // exact synthesis -> 2 on psi = (|000>+|011>+|101>+|110>)/2.
  const QuantumState psi = make_uniform(3, {0b000, 0b011, 0b101, 0b110});

  const Circuit nflow = nflow_prepare(psi);
  verify_preparation_or_throw(nflow, psi);
  EXPECT_EQ(count_cnots_after_lowering(nflow), 6);

  const MethodRun mflow = run_method(Method::kMFlow, psi);
  ASSERT_TRUE(mflow.ok);
  verify_preparation_or_throw(mflow.circuit, psi);
  EXPECT_GE(mflow.cnots, 5);  // paper reports 7 for its merge order

  const ExactSynthesizer exact;
  const SynthesisResult ours = exact.synthesize(psi);
  ASSERT_TRUE(ours.found && ours.optimal);
  EXPECT_EQ(ours.cnot_cost, 2);
  verify_preparation_or_throw(ours.circuit, psi);

  EXPECT_LT(ours.cnot_cost, mflow.cnots);
  EXPECT_LT(ours.cnot_cost, count_cnots_after_lowering(nflow));
}

TEST(Integration, DickeHeadlineResult) {
  // Ours beats the best manual design by 2x on |D^2_4>.
  const ExactSynthesizer exact;
  const SynthesisResult res = exact.synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 6);
  EXPECT_EQ(mukherjee_dicke_cnot_count(4, 2), 12);
}

TEST(Integration, ExactNeverWorseThanManualOnSmallDicke) {
  const ExactSynthesizer exact;
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {3, 1}, {4, 1}, {4, 2}}) {
    const QuantumState target = make_dicke(n, k);
    const SynthesisResult res = exact.synthesize(target);
    ASSERT_TRUE(res.found) << n << "," << k;
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_LE(res.cnot_cost, mukherjee_dicke_cnot_count(n, k))
        << n << "," << k;
  }
}

TEST(Integration, AllMethodsAgreeOnPreparedState) {
  Rng rng(501);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(3));
    const QuantumState target = make_random_uniform(n, n, rng);
    for (const Method m :
         {Method::kMFlow, Method::kNFlow, Method::kHybrid, Method::kOurs}) {
      const MethodRun run = run_method(m, target);
      ASSERT_TRUE(run.ok) << method_name(m);
      verify_preparation_or_throw(run.circuit, target);
    }
  }
}

TEST(Integration, SparseShapeMatchesTableFive) {
  // For sparse states: ours <= m-flow < hybrid-ish < n-flow on average.
  Rng rng(502);
  const int n = 10;
  double totals[4] = {0, 0, 0, 0};
  const Method order[4] = {Method::kOurs, Method::kMFlow, Method::kHybrid,
                           Method::kNFlow};
  for (int trial = 0; trial < 5; ++trial) {
    const QuantumState target = make_random_uniform(n, n, rng);
    for (int i = 0; i < 4; ++i) {
      const MethodRun run = run_method(order[i], target);
      ASSERT_TRUE(run.ok);
      totals[i] += static_cast<double>(run.cnots);
    }
  }
  EXPECT_LT(totals[0], totals[1]);  // ours < m-flow
  EXPECT_LT(totals[1], totals[3]);  // m-flow < n-flow
  EXPECT_LT(totals[2], totals[3]);  // hybrid < n-flow
}

TEST(Integration, QasmExportOfSynthesizedCircuitIsPrimitive) {
  const ExactSynthesizer exact;
  const SynthesisResult res = exact.synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  const std::string qasm = to_qasm(res.circuit);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_EQ(qasm.find("UCRy"), std::string::npos);
}

TEST(Integration, OptimalCostLowerBoundedByHeuristic) {
  Rng rng(503);
  const AStarSynthesizer exact;
  for (int trial = 0; trial < 8; ++trial) {
    const QuantumState target = make_random_uniform(4, 5, rng);
    const auto slot = SlotState::from_state(target);
    ASSERT_TRUE(slot.has_value());
    const SynthesisResult res = exact.synthesize(*slot);
    ASSERT_TRUE(res.found && res.optimal);
    EXPECT_GE(res.cnot_cost,
              heuristic_lower_bound(*slot, HeuristicMode::kComponent));
    EXPECT_GE(res.cnot_cost,
              heuristic_lower_bound(*slot, HeuristicMode::kPair));
  }
}

}  // namespace
}  // namespace qsp
