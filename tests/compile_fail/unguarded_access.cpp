// Compile-fail fixture: under clang -Wthread-safety
// -Werror=thread-safety-analysis this translation unit must NOT compile —
// reading a QSP_GUARDED_BY field without holding its mutex is exactly the
// regression the annotations exist to reject. CMake registers a
// syntax-only compile of this file as a WILL_FAIL ctest (clang builds
// only); the guarded_access.cpp twin compiles the disciplined version of
// the same code, proving a failure here is the analysis firing and not a
// broken include path or shim.
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  qsp::Mutex m;
  int value QSP_GUARDED_BY(m) = 0;
};

int read_without_lock(Counter& c) {
  return c.value;  // thread-safety analysis: no lock held
}

}  // namespace

int main() {
  Counter c;
  return read_without_lock(c);
}
