// Compile-fail fixture: under clang -Wthread-safety
// -Werror=thread-safety-analysis this translation unit must NOT compile.
// thread_annotations.hpp deliberately gives CondVar no predicate-lambda
// wait overload: clang's analysis checks a lambda body as a separate,
// lock-free function, so reading a QSP_GUARDED_BY field inside a wait
// predicate is flagged even though the caller holds the mutex — exactly
// the misuse this fixture commits. CMake registers a syntax-only compile
// as a WILL_FAIL ctest (clang builds only); condvar_wait_loop.cpp is the
// disciplined twin proving a failure here is the analysis firing.
#include "util/thread_annotations.hpp"

namespace {

struct Inbox {
  qsp::Mutex m;
  qsp::CondVar cv;
  bool ready QSP_GUARDED_BY(m) = false;
};

void consume(Inbox& inbox) {
  qsp::MutexLock lock(inbox.m);
  // thread-safety analysis: the lambda body reads `ready` with no lock
  // capability of its own.
  const auto pred = [&inbox] { return inbox.ready; };
  while (!pred()) inbox.cv.wait(lock);
}

}  // namespace

int main() {
  Inbox inbox;
  consume(inbox);
  return 0;
}
