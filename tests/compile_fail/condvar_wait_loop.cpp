// Control twin of condvar_predicate_misuse.cpp: the explicit wait loop —
// the discipline thread_annotations.hpp prescribes and worker_loop in
// synthesis_service.cpp follows — reads the guarded field directly in
// the annotated scope that holds the MutexLock, so it must compile
// cleanly with clang -Wthread-safety -Werror=thread-safety-analysis.
// Together the pair pins the analysis both ways for condition-variable
// waits: it rejects the predicate-lambda form and accepts the loop form.
#include "util/thread_annotations.hpp"

namespace {

struct Inbox {
  qsp::Mutex m;
  qsp::CondVar cv;
  bool ready QSP_GUARDED_BY(m) = false;
};

void consume(Inbox& inbox) {
  qsp::MutexLock lock(inbox.m);
  while (!inbox.ready) inbox.cv.wait(lock);
}

}  // namespace

int main() {
  Inbox inbox;
  consume(inbox);
  return 0;
}
