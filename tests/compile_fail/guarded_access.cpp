// Control twin of unguarded_access.cpp: the same guarded field accessed
// under a MutexLock must compile cleanly with clang -Wthread-safety
// -Werror=thread-safety-analysis. Together the pair pins the analysis
// both ways — it rejects the undisciplined read and accepts the
// disciplined one.
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  qsp::Mutex m;
  int value QSP_GUARDED_BY(m) = 0;
};

int read_with_lock(Counter& c) {
  const qsp::MutexLock lock(c.m);
  return c.value;
}

}  // namespace

int main() {
  Counter c;
  return read_with_lock(c);
}
