#include "phase/phase_oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/lowering.hpp"
#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(ComplexState, NormalizesAndMerges) {
  const ComplexState s(2, {ComplexTerm{0, {3.0, 0.0}},
                           ComplexTerm{3, {0.0, 4.0}}});
  EXPECT_NEAR(std::abs(s.amplitude(0)), 0.6, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(3)), 0.8, 1e-12);
  const ComplexState merged(2, {ComplexTerm{1, {1.0, 0.0}},
                                ComplexTerm{1, {0.0, 1.0}}});
  EXPECT_EQ(merged.cardinality(), 1);
  EXPECT_THROW(ComplexState(2, {}), std::invalid_argument);
  EXPECT_THROW(ComplexState(2, {ComplexTerm{9, {1, 0}}}),
               std::invalid_argument);
}

TEST(ComplexState, MagnitudesAndPhases) {
  const ComplexState s(2, {ComplexTerm{0, std::polar(1.0, 0.5)},
                           ComplexTerm{2, std::polar(1.0, -1.2)}});
  const QuantumState mag = s.magnitudes();
  EXPECT_TRUE(mag.is_uniform());
  const auto phases = s.phases();
  EXPECT_NEAR(phases[0], 0.5, 1e-12);
  EXPECT_NEAR(phases[1], -1.2, 1e-12);
}

TEST(ComplexState, IsRealDetectsGlobalPhase) {
  const ComplexState rotated(1, {ComplexTerm{0, std::polar(0.6, 1.1)},
                                 ComplexTerm{1, std::polar(0.8, 1.1)}});
  EXPECT_TRUE(rotated.is_real());
  const ComplexState mixed(1, {ComplexTerm{0, std::polar(0.6, 0.0)},
                               ComplexTerm{1, std::polar(0.8, 0.7)}});
  EXPECT_FALSE(mixed.is_real());
}

TEST(ComplexStatevector, MatchesRealSimulatorOnRealCircuits) {
  Rng rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 3;
    Circuit c(n);
    for (int g = 0; g < 20; ++g) {
      const int t = static_cast<int>(rng.next_below(n));
      const int ctrl = (t + 1 + static_cast<int>(rng.next_below(n - 1))) % n;
      if (rng.next_bool()) {
        c.append(Gate::ry(t, rng.next_double(-2, 2)));
      } else {
        c.append(Gate::cnot(ctrl, t));
      }
    }
    Statevector real(n);
    ComplexStatevector cplx(n);
    real.apply(c);
    cplx.apply(c);
    for (std::size_t i = 0; i < real.amplitudes().size(); ++i) {
      EXPECT_NEAR(cplx.amplitudes()[i].real(), real.amplitudes()[i], 1e-9);
      EXPECT_NEAR(cplx.amplitudes()[i].imag(), 0.0, 1e-12);
    }
  }
}

TEST(ComplexStatevector, RzConvention) {
  ComplexStatevector sv(1);
  sv.apply(Gate::rz(0, kPi / 2));
  // Rz only shifts phases: |0> -> e^{-i pi/4} |0>.
  EXPECT_NEAR(std::arg(sv.amplitudes()[0]), -kPi / 4, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, 1e-12);
}

TEST(ComplexStatevector, NormPreserved) {
  Rng rng(72);
  ComplexStatevector sv(3);
  sv.apply(Gate::ry(0, 1.0));
  sv.apply(Gate::cnot(0, 1));
  sv.apply(Gate::ucrz({0, 1}, 2, {0.1, -0.9, 2.0, 0.4}));
  sv.apply(Gate::rz(1, -0.7));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(PhaseOracle, ImprintsArbitraryPhaseTable) {
  Rng rng(73);
  for (int n = 2; n <= 5; ++n) {
    std::vector<double> table(std::size_t{1} << n);
    for (double& p : table) p = rng.next_double(-kPi, kPi);
    const Circuit oracle = synthesize_phase_oracle(n, table);

    // Apply to the uniform superposition and compare phases pointwise.
    ComplexStatevector sv(n);
    for (int q = 0; q < n; ++q) sv.apply(Gate::ry(q, kPi / 2));
    sv.apply(oracle);
    const double global =
        std::arg(sv.amplitudes()[0]) - table[0];
    for (std::size_t x = 0; x < table.size(); ++x) {
      const double got = std::arg(sv.amplitudes()[x]);
      double diff = got - table[x] - global;
      while (diff > kPi) diff -= 2 * kPi;
      while (diff < -kPi) diff += 2 * kPi;
      EXPECT_NEAR(diff, 0.0, 1e-9) << "n=" << n << " x=" << x;
    }
  }
}

TEST(PhaseOracle, CostIsAtMostFullChain) {
  Rng rng(74);
  std::vector<double> table(16);
  for (double& p : table) p = rng.next_double(-kPi, kPi);
  const Circuit oracle = synthesize_phase_oracle(4, table);
  EXPECT_EQ(count_cnots_after_lowering(oracle), 14);  // 2^4 - 2
}

TEST(PhaseOracle, RealTargetElidesToNothing) {
  // All-zero phases: with elision the oracle lowers to zero gates.
  const Circuit oracle =
      synthesize_phase_oracle(4, std::vector<double>(16, 0.0));
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  EXPECT_EQ(lower(oracle, elide).size(), 0u);
}

TEST(PhaseOracle, SparseVariantMatchesFullTable) {
  const std::vector<std::pair<BasisIndex, double>> phases{{1, 0.7},
                                                          {6, -1.3}};
  const Circuit a = synthesize_phase_oracle(3, phases);
  std::vector<double> table(8, 0.0);
  table[1] = 0.7;
  table[6] = -1.3;
  const Circuit b = synthesize_phase_oracle(3, table);
  EXPECT_EQ(a, b);
  EXPECT_THROW(
      synthesize_phase_oracle(2, {{std::pair<BasisIndex, double>{9, 1.0}}}),
      std::invalid_argument);
}

TEST(PrepareComplex, RandomComplexStatesVerify) {
  Rng rng(75);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const int m = 2 + static_cast<int>(rng.next_below(5));
    const ComplexState target = make_random_complex(n, m, rng);
    const ComplexPrepResult res = prepare_complex(target);
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(verify_complex_preparation(res.circuit, target))
        << target.to_string();
  }
}

TEST(PrepareComplex, RealStatesPayNoPhaseCost) {
  Rng rng(76);
  const QuantumState real = make_random_uniform(4, 4, rng);
  const ComplexState lifted(real);
  const ComplexPrepResult res = prepare_complex(lifted);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(verify_complex_preparation(res.circuit, lifted));
  // The oracle contributes only zero-angle UCRz gates, which the eliding
  // lowering removes; the total equals the magnitude preparation alone.
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  const Solver solver;
  const WorkflowResult mag = solver.prepare(real);
  ASSERT_TRUE(mag.found);
  EXPECT_EQ(count_cnots_after_lowering(res.circuit, elide),
            count_cnots_after_lowering(mag.circuit, elide));
}

TEST(PrepareComplex, DensePathWithPhases) {
  Rng rng(77);
  const ComplexState target = make_random_complex(5, 16, rng);
  const ComplexPrepResult res = prepare_complex(target);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(verify_complex_preparation(res.circuit, target));
}

}  // namespace
}  // namespace qsp
