#include "sim/verifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "state/state_factory.hpp"

namespace qsp {
namespace {

TEST(Verifier, AcceptsCorrectGhzCircuit) {
  Circuit c(3);
  c.append(Gate::ry(0, M_PI / 2));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-9);
  EXPECT_NO_THROW(verify_preparation_or_throw(c, make_ghz(3)));
}

TEST(Verifier, RejectsWrongCircuit) {
  Circuit c(3);
  c.append(Gate::x(0));
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_FALSE(r.ok);
  EXPECT_LT(r.fidelity, 0.9);
  EXPECT_THROW(verify_preparation_or_throw(c, make_ghz(3)),
               std::runtime_error);
}

TEST(Verifier, GlobalSignIgnored) {
  // Prepare -|1> via Ry(-pi): |0> -> -|1>... check the verifier treats the
  // global sign as unobservable.
  Circuit c(1);
  c.append(Gate::ry(0, -M_PI));
  const QuantumState one(1, {Term{1, 1.0}});
  EXPECT_TRUE(verify_preparation(c, one).ok);
}

TEST(Verifier, AncillaMustReturnToZero) {
  // Circuit on 3 qubits, target on 2: ancilla left in |1> must fail.
  Circuit bad(3);
  bad.append(Gate::ry(0, M_PI / 2));
  bad.append(Gate::cnot(0, 1));
  bad.append(Gate::x(2));
  const auto r = verify_preparation(bad, make_ghz(2));
  EXPECT_FALSE(r.ok);

  Circuit good(3);
  good.append(Gate::ry(0, M_PI / 2));
  good.append(Gate::cnot(0, 1));
  good.append(Gate::x(2));
  good.append(Gate::x(2));
  EXPECT_TRUE(verify_preparation(good, make_ghz(2)).ok);
}

TEST(Verifier, NarrowCircuitRejected) {
  const Circuit c(2);
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("narrower"), std::string::npos);
}

// Regression: the real-path inner product (sum of plain products) is only
// the complex inner product for real amplitudes. A phased target needs
// the conjugated product on the complex statevector: without it, the
// correct preparation of (|00> + i|11>)/sqrt(2) scores fidelity 1/2
// (wrongly rejected) and the phase-conjugate circuit scores 1 (wrongly
// accepted).
TEST(Verifier, PhasedTargetCorrectCircuitAccepted) {
  // Ry + CNOT prepare GHZ_2; Rz(1, pi/2) imprints |00> -> e^{-i pi/4},
  // |11> -> e^{+i pi/4}, i.e. (|00> + i|11>)/sqrt(2) up to global phase.
  Circuit c(2);
  c.append(Gate::ry(0, M_PI / 2));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, M_PI / 2));
  const ComplexState target(
      2, {ComplexTerm{0, {1.0 / std::sqrt(2.0), 0.0}},
          ComplexTerm{3, {0.0, 1.0 / std::sqrt(2.0)}}});
  const auto r = verify_preparation(c, target);
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-9);
  EXPECT_NO_THROW(verify_preparation_or_throw(c, target));
}

TEST(Verifier, PhaseConjugateCircuitRejected) {
  // Same magnitudes, conjugated phases: (|00> - i|11>)/sqrt(2). The
  // non-conjugated product would report fidelity 1 here.
  Circuit c(2);
  c.append(Gate::ry(0, M_PI / 2));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, -M_PI / 2));
  const ComplexState target(
      2, {ComplexTerm{0, {1.0 / std::sqrt(2.0), 0.0}},
          ComplexTerm{3, {0.0, 1.0 / std::sqrt(2.0)}}});
  const auto r = verify_preparation(c, target);
  EXPECT_FALSE(r.ok);
  EXPECT_LT(r.fidelity, 0.1);
  EXPECT_THROW(verify_preparation_or_throw(c, target), std::runtime_error);
}

TEST(Verifier, RealTargetRoutesZCircuitsThroughComplexPath) {
  // A circuit with z-axis gates used to throw from the real simulator.
  // Canceling Rz pair: still prepares GHZ_2 -> accepted.
  Circuit good(2);
  good.append(Gate::ry(0, M_PI / 2));
  good.append(Gate::cnot(0, 1));
  good.append(Gate::rz(0, 0.7));
  good.append(Gate::rz(0, -0.7));
  EXPECT_TRUE(verify_preparation(good, make_ghz(2)).ok);

  // Uncanceled Rz leaves a relative phase: fidelity cos^2(pi/4) = 1/2.
  Circuit bad(2);
  bad.append(Gate::ry(0, M_PI / 2));
  bad.append(Gate::cnot(0, 1));
  bad.append(Gate::rz(0, M_PI / 2));
  const auto r = verify_preparation(bad, make_ghz(2));
  EXPECT_FALSE(r.ok);
  EXPECT_NEAR(r.fidelity, 0.5, 1e-9);
}

TEST(Verifier, ComplexTargetAncillaMustReturnToZero) {
  Circuit bad(3);
  bad.append(Gate::ry(0, M_PI / 2));
  bad.append(Gate::cnot(0, 1));
  bad.append(Gate::rz(1, M_PI / 2));
  bad.append(Gate::x(2));
  const ComplexState target(
      2, {ComplexTerm{0, {1.0 / std::sqrt(2.0), 0.0}},
          ComplexTerm{3, {0.0, 1.0 / std::sqrt(2.0)}}});
  EXPECT_FALSE(verify_preparation(bad, target).ok);
}

}  // namespace
}  // namespace qsp
