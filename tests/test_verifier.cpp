#include "sim/verifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "state/state_factory.hpp"

namespace qsp {
namespace {

TEST(Verifier, AcceptsCorrectGhzCircuit) {
  Circuit c(3);
  c.append(Gate::ry(0, M_PI / 2));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-9);
  EXPECT_NO_THROW(verify_preparation_or_throw(c, make_ghz(3)));
}

TEST(Verifier, RejectsWrongCircuit) {
  Circuit c(3);
  c.append(Gate::x(0));
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_FALSE(r.ok);
  EXPECT_LT(r.fidelity, 0.9);
  EXPECT_THROW(verify_preparation_or_throw(c, make_ghz(3)),
               std::runtime_error);
}

TEST(Verifier, GlobalSignIgnored) {
  // Prepare -|1> via Ry(-pi): |0> -> -|1>... check the verifier treats the
  // global sign as unobservable.
  Circuit c(1);
  c.append(Gate::ry(0, -M_PI));
  const QuantumState one(1, {Term{1, 1.0}});
  EXPECT_TRUE(verify_preparation(c, one).ok);
}

TEST(Verifier, AncillaMustReturnToZero) {
  // Circuit on 3 qubits, target on 2: ancilla left in |1> must fail.
  Circuit bad(3);
  bad.append(Gate::ry(0, M_PI / 2));
  bad.append(Gate::cnot(0, 1));
  bad.append(Gate::x(2));
  const auto r = verify_preparation(bad, make_ghz(2));
  EXPECT_FALSE(r.ok);

  Circuit good(3);
  good.append(Gate::ry(0, M_PI / 2));
  good.append(Gate::cnot(0, 1));
  good.append(Gate::x(2));
  good.append(Gate::x(2));
  EXPECT_TRUE(verify_preparation(good, make_ghz(2)).ok);
}

TEST(Verifier, NarrowCircuitRejected) {
  const Circuit c(2);
  const auto r = verify_preparation(c, make_ghz(3));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("narrower"), std::string::npos);
}

}  // namespace
}  // namespace qsp
