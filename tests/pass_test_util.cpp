#include "pass_test_util.hpp"

#include <cmath>
#include <complex>
#include <deque>
#include <stdexcept>

#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"

namespace qsp::test {
namespace {

constexpr double kPi = 3.14159265358979323846;

double random_angle(Rng& rng, const CorpusOptions& options) {
  if (rng.next_bool(options.near_zero_fraction)) {
    // Below the default dead-rotation epsilon (1e-12), signed.
    return rng.next_double(-1e-13, 1e-13);
  }
  return rng.next_double(-kPi, kPi);
}

std::vector<double> random_angles(std::size_t count, Rng& rng,
                                  const CorpusOptions& options) {
  std::vector<double> angles(count);
  // Draw the whole multiplexor near zero or generic as a block, so UCRy
  // and UCRz instances actually exercise the dead-rotation pass (mixing
  // per-slot would almost never produce an all-trivial multiplexor).
  const bool near_zero = rng.next_bool(options.near_zero_fraction);
  for (double& a : angles) {
    a = near_zero ? rng.next_double(-1e-13, 1e-13)
                  : rng.next_double(-kPi, kPi);
  }
  return angles;
}

/// Distinct qubit ids: one target plus `controls` controls.
std::vector<int> distinct_qubits(int n, int count, Rng& rng) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (const std::uint64_t q :
       rng.sample_distinct(static_cast<std::uint64_t>(n),
                           static_cast<std::size_t>(count))) {
    out.push_back(static_cast<int>(q));
  }
  rng.shuffle(out);
  return out;
}

}  // namespace

Gate random_gate(int n, Rng& rng, const CorpusOptions& options) {
  if (n < 2) throw std::invalid_argument("random_gate: need >= 2 qubits");
  const int kinds = options.with_phase_gates ? 8 : 6;
  switch (static_cast<int>(rng.next_below(static_cast<std::uint64_t>(kinds)))) {
    case 0:
      return Gate::x(static_cast<int>(rng.next_below(n)));
    case 1:
      return Gate::ry(static_cast<int>(rng.next_below(n)),
                      random_angle(rng, options));
    case 2: {
      const std::vector<int> q = distinct_qubits(n, 2, rng);
      return Gate::cnot(q[0], q[1], rng.next_bool(0.8));
    }
    case 3: {
      const std::vector<int> q = distinct_qubits(n, 2, rng);
      return Gate::cry(q[0], q[1], random_angle(rng, options),
                       rng.next_bool(0.8));
    }
    case 4: {
      if (n < 3) {
        const std::vector<int> q = distinct_qubits(n, 2, rng);
        return Gate::cry(q[0], q[1], random_angle(rng, options));
      }
      const int num_controls =
          2 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(std::min(n - 1, 3) - 1)));
      const std::vector<int> q = distinct_qubits(n, num_controls + 1, rng);
      std::vector<ControlLiteral> controls;
      for (int i = 0; i < num_controls; ++i) {
        controls.push_back({q[static_cast<std::size_t>(i)], rng.next_bool(0.8)});
      }
      return Gate::mcry(std::move(controls), q.back(),
                        random_angle(rng, options));
    }
    case 5: {
      const int num_controls =
          1 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(std::min(n - 1, 2))));
      std::vector<int> q = distinct_qubits(n, num_controls + 1, rng);
      const int target = q.back();
      q.pop_back();
      return Gate::ucry(std::move(q), target,
                        random_angles(std::size_t{1} << num_controls, rng,
                                      options));
    }
    case 6:
      return Gate::rz(static_cast<int>(rng.next_below(n)),
                      random_angle(rng, options));
    default: {
      const int num_controls =
          1 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(std::min(n - 1, 2))));
      std::vector<int> q = distinct_qubits(n, num_controls + 1, rng);
      const int target = q.back();
      q.pop_back();
      return Gate::ucrz(std::move(q), target,
                        random_angles(std::size_t{1} << num_controls, rng,
                                      options));
    }
  }
}

Circuit random_circuit(int n, int size, Rng& rng,
                       const CorpusOptions& options) {
  Circuit circuit(n);
  std::deque<Gate> recent;
  for (int i = 0; i < size; ++i) {
    if (!recent.empty() && rng.next_bool(options.duplicate_fraction)) {
      // Re-emit a recent gate verbatim: X/CNOT repeats become cancellation
      // pairs, rotation repeats become fusion pairs, usually with a few
      // unrelated gates in between for the commutation-aware passes.
      circuit.append(recent[static_cast<std::size_t>(
          rng.next_below(recent.size()))]);
      continue;
    }
    Gate g = random_gate(n, rng, options);
    recent.push_back(g);
    if (recent.size() > 4) recent.pop_front();
    circuit.append(std::move(g));
  }
  return circuit;
}

std::vector<Circuit> random_circuit_corpus(const CorpusOptions& options) {
  std::vector<Circuit> corpus;
  Rng rng(options.seed);
  for (const int n : options.widths) {
    for (int i = 0; i < options.circuits_per_width; ++i) {
      corpus.push_back(random_circuit(n, options.gates_per_circuit, rng,
                                      options));
    }
  }
  return corpus;
}

Circuit random_coupled_circuit(const CouplingGraph& device, int size, Rng& rng,
                               const CorpusOptions& options) {
  const int n = device.num_qubits();
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (device.has_edge(a, b)) edges.emplace_back(a, b);
    }
  }
  if (edges.empty()) {
    throw std::invalid_argument("random_coupled_circuit: device has no edges");
  }
  Circuit circuit(n);
  std::deque<Gate> recent;
  for (int i = 0; i < size; ++i) {
    if (!recent.empty() && rng.next_bool(options.duplicate_fraction)) {
      circuit.append(recent[static_cast<std::size_t>(
          rng.next_below(recent.size()))]);
      continue;
    }
    Gate g = Gate::x(0);
    switch (rng.next_below(options.with_phase_gates ? 4 : 3)) {
      case 0:
        g = Gate::x(static_cast<int>(rng.next_below(n)));
        break;
      case 1:
        g = Gate::ry(static_cast<int>(rng.next_below(n)),
                     random_angle(rng, options));
        break;
      case 2: {
        const auto& [a, b] = edges[static_cast<std::size_t>(
            rng.next_below(edges.size()))];
        g = rng.next_bool() ? Gate::cnot(a, b) : Gate::cnot(b, a);
        break;
      }
      default:
        g = Gate::rz(static_cast<int>(rng.next_below(n)),
                     random_angle(rng, options));
        break;
    }
    recent.push_back(g);
    if (recent.size() > 4) recent.pop_front();
    circuit.append(std::move(g));
  }
  return circuit;
}

double preparation_overlap(const Circuit& a, const Circuit& b) {
  if (a.num_qubits() != b.num_qubits()) {
    throw std::invalid_argument("preparation_overlap: register mismatch");
  }
  const int n = a.num_qubits();
  const auto has_phase = [](const Circuit& c) {
    for (const Gate& g : c.gates()) {
      // iSwap and RZZ introduce complex amplitudes (CZ stays real, so
      // CZ-legalized circuits keep the fast real path).
      if (g.kind() == GateKind::kRz || g.kind() == GateKind::kUCRz ||
          g.kind() == GateKind::kISwap || g.kind() == GateKind::kRZZ) {
        return true;
      }
    }
    return false;
  };
  if (has_phase(a) || has_phase(b)) {
    ComplexStatevector sa(n);
    ComplexStatevector sb(n);
    sa.apply(a);
    sb.apply(b);
    std::complex<double> ip = 0.0;
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ip += std::conj(sa.amplitudes()[i]) * sb.amplitudes()[i];
    }
    return std::abs(ip);
  }
  Statevector sa(n);
  Statevector sb(n);
  sa.apply(a);
  sb.apply(b);
  return std::abs(sa.inner_product(sb));
}

}  // namespace qsp::test
