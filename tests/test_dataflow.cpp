// Property and regression tests for the flow-sensitive dataflow engine
// (circuit/dataflow.hpp): exact transfer-function facts on handcrafted
// circuits, the exported-invariant cross-check against the statevector
// simulators on the seeded random corpora (every support basis state must
// lie in the affine image the forms describe, separability claims must
// match reduced-density purity), routed device-register certification
// (QL014), and the dataflow-simplify pass (soundness + monotonicity).

#include <complex>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "arch/coupling.hpp"
#include "arch/routing.hpp"
#include "circuit/dataflow.hpp"
#include "circuit/pass_pipeline.hpp"
#include "flow/solver.hpp"
#include "pass_test_util.hpp"
#include "phase/complex_statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

using test::CorpusOptions;
using test::preparation_overlap;
using test::random_circuit;
using test::random_circuit_corpus;

constexpr double kSupportTol = 1e-18;

const WireFact& fact_of(const WireFacts& facts, int wire) {
  return facts.wires[static_cast<std::size_t>(wire)];
}

std::vector<LintRule> rules_of(const LintReport& report) {
  std::vector<LintRule> rules;
  for (const LintDiagnostic& d : report.diagnostics) rules.push_back(d.rule);
  return rules;
}

/// GF(2) solvability of {mask_q . x = rhs_q}: the support-membership
/// check behind the exported invariant. Rows are (mask words, rhs bit);
/// plain Gaussian elimination.
bool affine_system_solvable(
    const std::vector<std::pair<std::vector<std::uint64_t>, bool>>& rows_in) {
  auto rows = rows_in;
  std::size_t words = 0;
  for (const auto& row : rows) words = std::max(words, row.first.size());
  for (auto& row : rows) row.first.resize(words, 0);
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < words * 64 && pivot_row < rows.size();
       ++col) {
    const std::size_t word = col / 64;
    const std::uint64_t bit = std::uint64_t{1} << (col % 64);
    std::size_t found = rows.size();
    for (std::size_t r = pivot_row; r < rows.size(); ++r) {
      if ((rows[r].first[word] & bit) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows.size()) continue;
    std::swap(rows[pivot_row], rows[found]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row || (rows[r].first[word] & bit) == 0) continue;
      for (std::size_t w = 0; w < words; ++w) {
        rows[r].first[w] ^= rows[pivot_row].first[w];
      }
      rows[r].second = rows[r].second != rows[pivot_row].second;
    }
    ++pivot_row;
  }
  // Inconsistent iff some all-zero row demands rhs 1.
  for (const auto& row : rows) {
    bool zero = true;
    for (const std::uint64_t w : row.first) zero = zero && w == 0;
    if (zero && row.second) return false;
  }
  return true;
}

/// Tr(rho^2) of wire q's reduced density matrix; 1 iff the wire is in a
/// pure (unentangled) single-qubit state.
double reduced_purity(const std::vector<std::complex<double>>& amp, int q) {
  const std::size_t stride = std::size_t{1} << q;
  std::complex<double> rho01 = 0.0;
  double rho00 = 0.0;
  double rho11 = 0.0;
  for (std::size_t i = 0; i < amp.size(); ++i) {
    if ((i & stride) != 0) continue;
    rho00 += std::norm(amp[i]);
    rho11 += std::norm(amp[i | stride]);
    rho01 += amp[i] * std::conj(amp[i | stride]);
  }
  return rho00 * rho00 + rho11 * rho11 + 2.0 * std::norm(rho01);
}

/// Check every exported fact of `facts` against a full simulation of
/// `circuit`: support membership in the affine image (which subsumes the
/// constant and parity claims), the claims themselves directly, and
/// reduced-density purity for every provably-separable wire.
void expect_facts_sound(const Circuit& circuit, const WireFacts& facts,
                        const char* label) {
  ComplexStatevector sv(circuit.num_qubits());
  sv.apply(circuit);
  const auto& amp = sv.amplitudes();
  const int n = circuit.num_qubits();
  for (std::size_t state = 0; state < amp.size(); ++state) {
    if (std::norm(amp[state]) <= kSupportTol) continue;
    std::vector<std::pair<std::vector<std::uint64_t>, bool>> rows;
    rows.reserve(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
      const AffineForm& form = fact_of(facts, q).form;
      const bool bit = ((state >> q) & 1) != 0;
      rows.emplace_back(form.mask, bit != form.offset);
      // Constant claims, directly.
      if (form.is_constant()) {
        EXPECT_EQ(bit, form.constant_value())
            << label << ": wire " << q << " claimed constant, state "
            << state;
      }
      // Parity claims, directly.
      const int partner = fact_of(facts, q).parity_partner;
      if (partner >= 0) {
        const bool pbit = ((state >> partner) & 1) != 0;
        EXPECT_EQ(bit == pbit, fact_of(facts, q).parity_equal)
            << label << ": wires " << q << "/" << partner
            << " parity claim violated on state " << state;
      }
    }
    EXPECT_TRUE(affine_system_solvable(rows))
        << label << ": support state " << state
        << " outside the affine image\n"
        << facts.to_string();
  }
  for (int q = 0; q < n; ++q) {
    const WireFact& fact = fact_of(facts, q);
    if (fact.group_size == 1) {
      EXPECT_NEAR(reduced_purity(amp, q), 1.0, 1e-9)
          << label << ": wire " << q
          << " claimed separable but is entangled\n"
          << facts.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Transfer-function unit tests
// ---------------------------------------------------------------------------

TEST(Dataflow, InitialStateAllZero) {
  const Circuit circuit(3);
  const WireFacts facts = analyze_circuit(circuit);
  EXPECT_EQ(facts.num_qubits, 3);
  EXPECT_EQ(facts.num_variables, 0);
  for (int q = 0; q < 3; ++q) {
    EXPECT_EQ(fact_of(facts, q).kind, WireKind::kZero);
    EXPECT_EQ(fact_of(facts, q).group_size, 1);
  }
}

TEST(Dataflow, XAndCnotConstantPropagation) {
  Circuit circuit(3);
  circuit.append(Gate::x(0));            // q0 = 1
  circuit.append(Gate::cnot(0, 1));      // fires: q1 = 1
  circuit.append(Gate::cnot(2, 0));      // q2 = 0: dead
  const WireFacts facts = analyze_circuit(circuit);
  EXPECT_EQ(fact_of(facts, 0).kind, WireKind::kOne);
  EXPECT_EQ(fact_of(facts, 1).kind, WireKind::kOne);
  EXPECT_EQ(fact_of(facts, 2).kind, WireKind::kZero);

  DataflowEngine engine(3);
  engine.apply(Gate::x(0), 0);
  const GateVerdict demote = engine.apply(Gate::cnot(0, 1), 1);
  EXPECT_EQ(demote.action, GateVerdict::Action::kReplace);
  ASSERT_TRUE(demote.replacement.has_value());
  EXPECT_EQ(demote.replacement->kind(), GateKind::kX);
  EXPECT_EQ(demote.replacement->target(), 1);
  const GateVerdict dead = engine.apply(Gate::cnot(2, 0), 2);
  EXPECT_EQ(dead.action, GateVerdict::Action::kDrop);
  // Negative polarity flips both cases: a |0> control fires, a |1>
  // control is dead.
  DataflowEngine neg(2);
  const GateVerdict neg_fires = neg.apply(Gate::cnot(0, 1, false), 0);
  EXPECT_EQ(neg_fires.action, GateVerdict::Action::kReplace);
  DataflowEngine neg2(2);
  neg2.apply(Gate::x(0), 0);
  const GateVerdict neg_dead = neg2.apply(Gate::cnot(0, 1, false), 1);
  EXPECT_EQ(neg_dead.action, GateVerdict::Action::kDrop);
}

TEST(Dataflow, GhzParityLinkage) {
  Circuit circuit(3);
  circuit.append(Gate::ry(0, 1.1));
  circuit.append(Gate::cnot(0, 1));
  circuit.append(Gate::cnot(1, 2));
  const WireFacts facts = analyze_circuit(circuit);
  EXPECT_EQ(facts.num_variables, 1);
  for (int q = 0; q < 3; ++q) {
    EXPECT_EQ(fact_of(facts, q).kind, WireKind::kBasis) << q;
    EXPECT_EQ(fact_of(facts, q).group_size, 3) << q;
    EXPECT_GE(fact_of(facts, q).parity_partner, 0) << q;
    EXPECT_TRUE(fact_of(facts, q).parity_equal) << q;
  }
  expect_facts_sound(circuit, facts, "ghz");
}

TEST(Dataflow, SeparableRotationStaysPure) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.7));
  circuit.append(Gate::ry(1, 0.3));
  const WireFacts facts = analyze_circuit(circuit);
  EXPECT_EQ(fact_of(facts, 0).kind, WireKind::kSeparable);
  EXPECT_EQ(fact_of(facts, 1).kind, WireKind::kSeparable);
  EXPECT_EQ(facts.num_variables, 2);
  expect_facts_sound(circuit, facts, "separable");
}

TEST(Dataflow, RedundantCnotPairCancellation) {
  DataflowEngine engine(2);
  engine.apply(Gate::ry(0, 0.9), 0);
  const GateVerdict first = engine.apply(Gate::cnot(0, 1), 1);
  EXPECT_EQ(first.action, GateVerdict::Action::kKeep);
  const GateVerdict second = engine.apply(Gate::cnot(0, 1), 2);
  EXPECT_EQ(second.action, GateVerdict::Action::kCancelPair);
  EXPECT_EQ(second.cancel_with, 1);
  // The pair reverted the target: q1 is provably |0> again.
  EXPECT_EQ(engine.wire_constant(1), std::optional<bool>(false));
}

TEST(Dataflow, CrossWireCnotPairCancellation) {
  // cnot(b, t) cancels cnot(a, t) when wire b provably carries a's value:
  // a fact no syntactic fold can see.
  DataflowEngine engine(3);
  engine.apply(Gate::ry(0, 0.9), 0);
  engine.apply(Gate::cnot(0, 1), 1);  // q1 = v0
  engine.apply(Gate::cnot(0, 2), 2);  // record on q2 with flip v0
  const GateVerdict verdict = engine.apply(Gate::cnot(1, 2), 3);
  EXPECT_EQ(verdict.action, GateVerdict::Action::kCancelPair);
  EXPECT_EQ(verdict.cancel_with, 2);
}

TEST(Dataflow, TouchedTargetInvalidatesRecord) {
  DataflowEngine engine(2);
  engine.apply(Gate::ry(0, 0.9), 0);
  engine.apply(Gate::cnot(0, 1), 1);
  engine.apply(Gate::x(1), 2);  // touches the record's target wire
  // Forms now differ anyway, but even an exact-match flip must not
  // cancel across the touch.
  const GateVerdict verdict = engine.apply(Gate::cnot(0, 1), 3);
  EXPECT_EQ(verdict.action, GateVerdict::Action::kKeep);
}

TEST(Dataflow, ReadOfRecordTargetInvalidatesRecord) {
  // A gate that only *reads* the record's target wire still kills the
  // record: removing the pair would change the value that read observed.
  DataflowEngine engine(4);
  engine.apply(Gate::ry(0, 0.9), 0);
  engine.apply(Gate::cnot(0, 1), 1);  // q1 = v0, record on q1
  engine.apply(Gate::cnot(1, 2), 2);  // reads q1 -> record must die
  const GateVerdict verdict = engine.apply(Gate::cnot(0, 1), 3);
  EXPECT_EQ(verdict.action, GateVerdict::Action::kKeep);
}

TEST(Dataflow, CzProvableIdentities) {
  // A |0> wire makes CZ the identity.
  DataflowEngine zero(2);
  EXPECT_EQ(zero.apply(Gate::cz(0, 1), 0).action, GateVerdict::Action::kDrop);
  // Both provably |1>: a global phase.
  DataflowEngine ones(2);
  ones.apply(Gate::x(0), 0);
  ones.apply(Gate::x(1), 1);
  EXPECT_EQ(ones.apply(Gate::cz(0, 1), 2).action, GateVerdict::Action::kDrop);
  // Complementary forms: |11> unreachable.
  DataflowEngine anti(2);
  anti.apply(Gate::ry(0, 0.9), 0);
  anti.apply(Gate::cnot(0, 1), 1);
  anti.apply(Gate::x(1), 2);  // q1 = v0 ^ 1
  EXPECT_EQ(anti.apply(Gate::cz(0, 1), 3).action, GateVerdict::Action::kDrop);
  // Two superposed wires: kept, and the wires may now be entangled.
  DataflowEngine live(2);
  live.apply(Gate::ry(0, 0.9), 0);
  live.apply(Gate::ry(1, 0.4), 1);
  EXPECT_EQ(live.apply(Gate::cz(0, 1), 2).action, GateVerdict::Action::kKeep);
  EXPECT_EQ(live.facts().wires[0].group_size, 2);
}

TEST(Dataflow, ISwapTransfersFormsAndPurity) {
  // Constant swap: |1>|0> -> |0>|1> (up to the iSwap phase).
  DataflowEngine constants(2);
  constants.apply(Gate::x(0), 0);
  EXPECT_EQ(constants.apply(Gate::iswap(0, 1), 1).action,
            GateVerdict::Action::kKeep);
  EXPECT_EQ(constants.wire_constant(0), std::optional<bool>(false));
  EXPECT_EQ(constants.wire_constant(1), std::optional<bool>(true));
  // Purity travels with the form: a superposed wire iswapped with a
  // constant hands its separable status over, no merge.
  DataflowEngine pure(2);
  pure.apply(Gate::ry(0, 0.9), 0);
  pure.apply(Gate::iswap(0, 1), 1);
  const WireFacts facts = pure.facts();
  EXPECT_EQ(facts.wires[0].kind, WireKind::kZero);
  EXPECT_EQ(facts.wires[1].kind, WireKind::kSeparable);
  EXPECT_EQ(facts.wires[1].group_size, 1);
  // Provably-equal wires: |01>/|10> unreachable, iSwap is the identity.
  DataflowEngine equal(2);
  equal.apply(Gate::ry(0, 0.9), 0);
  equal.apply(Gate::cnot(0, 1), 1);
  EXPECT_EQ(equal.apply(Gate::iswap(0, 1), 2).action,
            GateVerdict::Action::kDrop);
}

TEST(Dataflow, ControlledRotationDemotions) {
  // Satisfied constant control strips off; unsatisfied kills the gate.
  DataflowEngine engine(3);
  engine.apply(Gate::x(0), 0);
  engine.apply(Gate::ry(1, 0.5), 1);  // control 1 stays unknown
  const GateVerdict demote = engine.apply(
      Gate::mcry({{0, true}, {1, true}}, 2, 0.8), 2);
  EXPECT_EQ(demote.action, GateVerdict::Action::kReplace);
  ASSERT_TRUE(demote.replacement.has_value());
  EXPECT_EQ(demote.replacement->kind(), GateKind::kCRy);
  DataflowEngine dead(3);
  const GateVerdict drop =
      dead.apply(Gate::mcry({{0, true}, {1, true}}, 2, 0.8), 0);
  EXPECT_EQ(drop.action, GateVerdict::Action::kDrop);
  // A dead controlled rotation must not widen its target.
  EXPECT_EQ(dead.wire_constant(2), std::optional<bool>(false));
}

TEST(Dataflow, MultiplexorTableHalving) {
  // Control 0 provably |1>: the table restricts to its odd rows.
  DataflowEngine engine(3);
  engine.apply(Gate::x(0), 0);
  engine.apply(Gate::ry(1, 0.5), 1);  // control 1 stays unknown
  const GateVerdict half =
      engine.apply(Gate::ucry({0, 1}, 2, {0.1, 0.2, 0.3, 0.4}), 2);
  EXPECT_EQ(half.action, GateVerdict::Action::kReplace);
  ASSERT_TRUE(half.replacement.has_value());
  EXPECT_EQ(half.replacement->kind(), GateKind::kUCRy);
  EXPECT_EQ(half.replacement->angles(), (std::vector<double>{0.2, 0.4}));
  // All controls constant: one row survives, the gate demotes to ry.
  DataflowEngine full(3);
  full.apply(Gate::x(0), 0);
  full.apply(Gate::x(1), 1);
  const GateVerdict row =
      full.apply(Gate::ucry({0, 1}, 2, {0.1, 0.2, 0.3, 0.4}), 2);
  EXPECT_EQ(row.action, GateVerdict::Action::kReplace);
  ASSERT_TRUE(row.replacement.has_value());
  EXPECT_EQ(row.replacement->kind(), GateKind::kRy);
  EXPECT_DOUBLE_EQ(row.replacement->theta(), 0.4);
  // ... and when the surviving row's angle is zero the gate is dead.
  DataflowEngine zero(2);
  const GateVerdict drop = zero.apply(Gate::ucrz({0}, 1, {0.0, 0.5}), 0);
  EXPECT_EQ(drop.action, GateVerdict::Action::kDrop);
}

TEST(Dataflow, AncillaReleaseLint) {
  // Workspace restored: the borrow-and-return pattern is certified clean.
  Circuit clean(3);
  clean.append(Gate::ry(0, 0.9));
  clean.append(Gate::cnot(0, 2));
  clean.append(Gate::cnot(2, 1));
  clean.append(Gate::cnot(0, 2));
  DataflowOptions options;
  options.num_data_wires = 2;
  const LintReport ok = dataflow_lint(clean, options);
  EXPECT_FALSE(ok.has_errors()) << ok.to_string();
  // Workspace left dirty: QL014, error severity.
  Circuit dirty(3);
  dirty.append(Gate::ry(0, 0.9));
  dirty.append(Gate::cnot(0, 2));
  const LintReport bad = dataflow_lint(dirty, options);
  EXPECT_TRUE(bad.has_errors());
  ASSERT_EQ(bad.diagnostics.size(), 1u);
  EXPECT_EQ(bad.diagnostics[0].rule, LintRule::kAncillaReleasedDirty);
  EXPECT_EQ(bad.diagnostics[0].severity, LintSeverity::kError);
  // Provably-|1> workspace gets the sharper message.
  Circuit one(2);
  one.append(Gate::x(1));
  DataflowOptions tight;
  tight.num_data_wires = 1;
  const LintReport lit = dataflow_lint(one, tight);
  ASSERT_EQ(lit.diagnostics.size(), 1u);
  EXPECT_NE(lit.diagnostics[0].message.find("provably |1>"),
            std::string::npos);
}

TEST(Dataflow, LintReportCodesAndSeverities) {
  Circuit circuit(3);
  circuit.append(Gate::x(0));
  circuit.append(Gate::cnot(0, 1));      // QL012: control provably |1>
  circuit.append(Gate::cnot(2, 0));      // QL011: control provably |0>
  circuit.append(Gate::ry(2, 0.9));
  circuit.append(Gate::cnot(2, 1));
  circuit.append(Gate::cnot(2, 1));      // QL013: redundant pair
  const LintReport report = dataflow_lint(circuit);
  const std::vector<LintRule> rules = rules_of(report);
  EXPECT_EQ(rules,
            (std::vector<LintRule>{LintRule::kConstantOneControl,
                                   LintRule::kDeadControl,
                                   LintRule::kRedundantCnot}));
  for (const LintDiagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.severity, LintSeverity::kWarning) << d.to_string();
  }
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(report.has_warnings());
}

TEST(Dataflow, AffineFormToString) {
  AffineForm form;
  EXPECT_EQ(form.to_string(), "0");
  form.offset = true;
  EXPECT_EQ(form.to_string(), "1");
  form.mask = {0b101};
  EXPECT_EQ(form.to_string(), "v0^v2^1");
  form.offset = false;
  EXPECT_EQ(form.to_string(), "v0^v2");
}

TEST(Dataflow, WireFactsJsonShape) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 1.1));
  circuit.append(Gate::cnot(0, 1));
  const std::string json = analyze_circuit(circuit).to_json();
  EXPECT_NE(json.find("\"num_qubits\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_variables\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"basis-parity\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"form\":\"v0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"parity_partner\":1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Corpus soundness: every exported fact checked against simulation
// ---------------------------------------------------------------------------

TEST(DataflowCorpus, FactsAgreeWithSimulationOnRandomCorpus) {
  for (const Circuit& circuit : random_circuit_corpus()) {
    expect_facts_sound(circuit, analyze_circuit(circuit), "corpus");
  }
}

TEST(DataflowCorpus, FactsAgreeOnPhaseFreeCorpus) {
  CorpusOptions options;
  options.with_phase_gates = false;
  options.seed = 0xDA7AF10;
  for (const Circuit& circuit : random_circuit_corpus(options)) {
    expect_facts_sound(circuit, analyze_circuit(circuit), "phase-free");
  }
}

TEST(DataflowCorpus, RoutedCircuitsCertifyWorkspace) {
  // Random logical circuits routed onto a wider device: the routing
  // contract says the spare device wires return to |0>; the engine must
  // prove it (QL014 clean) and the facts must agree with simulation.
  CorpusOptions options;
  options.widths = {2, 3};
  options.circuits_per_width = 4;
  options.gates_per_circuit = 25;
  options.with_phase_gates = false;
  options.seed = 0x407ED;
  Rng rng(options.seed);
  const CouplingGraph device = CouplingGraph::line(5);
  for (const int n : options.widths) {
    for (int c = 0; c < options.circuits_per_width; ++c) {
      const Circuit logical =
          random_circuit(n, options.gates_per_circuit, rng, options);
      const Circuit routed = route_circuit(logical, device);
      ASSERT_EQ(routed.num_qubits(), 5);
      const WireFacts facts = analyze_circuit(routed);
      expect_facts_sound(routed, facts, "routed");
      DataflowOptions dataflow;
      dataflow.num_data_wires = n;
      const LintReport report = dataflow_lint(routed, dataflow);
      EXPECT_FALSE(report.has_errors())
          << "n=" << n << " c=" << c << "\n"
          << report.to_string() << facts.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// dataflow-simplify pass
// ---------------------------------------------------------------------------

TEST(DataflowSimplify, RegisteredAtO2Only) {
  const Pass* pass = PassPipeline::find("dataflow-simplify");
  ASSERT_NE(pass, nullptr);
  EXPECT_TRUE((pass->preserves() & kPreservesPreparation) != 0);
  EXPECT_TRUE((pass->preserves() & kPreservesCoupling) != 0);
  // Demotions introduce gate kinds, so the pass must not claim the
  // gate-set contract.
  EXPECT_TRUE((pass->preserves() & kPreservesGateSet) == 0);
  for (const Pass* p : PassPipeline::level_passes(OptLevel::kO1)) {
    EXPECT_NE(p->name(), "dataflow-simplify");
  }
  bool in_o2 = false;
  for (const Pass* p : PassPipeline::level_passes(OptLevel::kO2)) {
    in_o2 = in_o2 || p->name() == "dataflow-simplify";
  }
  EXPECT_TRUE(in_o2);
}

TEST(DataflowSimplify, HandcraftedRewrites) {
  const Pass* pass = PassPipeline::find("dataflow-simplify");
  ASSERT_NE(pass, nullptr);
  Circuit circuit(3);
  circuit.append(Gate::x(0));
  circuit.append(Gate::cnot(0, 1));  // -> x q1
  circuit.append(Gate::cnot(2, 0));  // dead, dropped
  circuit.append(Gate::ry(2, 0.9));
  circuit.append(Gate::cnot(2, 1));  // pair ...
  circuit.append(Gate::cnot(2, 1));  // ... cancelled
  const Circuit before = circuit;
  EXPECT_TRUE(pass->run(circuit, PassOptions{}));
  ASSERT_EQ(circuit.size(), 3u);
  EXPECT_EQ(circuit.gates()[0].kind(), GateKind::kX);
  EXPECT_EQ(circuit.gates()[1].kind(), GateKind::kX);
  EXPECT_EQ(circuit.gates()[1].target(), 1);
  EXPECT_EQ(circuit.gates()[2].kind(), GateKind::kRy);
  EXPECT_NEAR(preparation_overlap(before, circuit), 1.0, 1e-9);
}

TEST(DataflowSimplify, SoundAndMonotoneOnCorpus) {
  const Pass* pass = PassPipeline::find("dataflow-simplify");
  ASSERT_NE(pass, nullptr);
  for (const Circuit& original : random_circuit_corpus()) {
    Circuit circuit = original;
    pass->run(circuit, PassOptions{});
    EXPECT_LE(circuit.size(), original.size());
    EXPECT_LE(circuit.cnot_cost(), original.cnot_cost());
    EXPECT_NEAR(preparation_overlap(original, circuit), 1.0, 1e-9)
        << "size " << original.size() << " -> " << circuit.size();
  }
}

TEST(DataflowSimplify, O2NoWorseThanO1OnCorpus) {
  CorpusOptions options;
  options.circuits_per_width = 3;
  options.seed = 0x02C0;
  for (const Circuit& circuit : random_circuit_corpus(options)) {
    PipelineOptions o1;
    o1.level = OptLevel::kO1;
    PipelineOptions o2;
    o2.level = OptLevel::kO2;
    const Circuit r1 = optimize_circuit(circuit, o1);
    const Circuit r2 = optimize_circuit(circuit, o2);
    EXPECT_LE(r2.size(), r1.size());
    EXPECT_LE(r2.cnot_cost(), r1.cnot_cost());
    EXPECT_NEAR(preparation_overlap(circuit, r2), 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Solver integration: static ancilla certification on routed outputs
// ---------------------------------------------------------------------------

TEST(DataflowWorkflow, SolverCertifiesRoutedWorkspace) {
  WorkflowOptions options;
  options.coupling = std::make_shared<const CouplingGraph>(
      CouplingGraph::line(5));
  options.opt_level = OptLevel::kO2;
  const Solver solver(options);
  // prepare() throws std::logic_error if certification fails; a found
  // result here means the routed circuit passed the QL014 gate.
  const WorkflowResult result = solver.prepare(make_ghz(3));
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.circuit.num_qubits(), 5);
  // Empirically confirm what the gate certified: the workspace wires
  // measure |0> with probability 1 on the optimized output too.
  ComplexStatevector sv(5);
  sv.apply(result.circuit);
  const auto& amp = sv.amplitudes();
  for (std::size_t state = 0; state < amp.size(); ++state) {
    if (std::norm(amp[state]) <= kSupportTol) continue;
    EXPECT_EQ((state >> 3) & 3u, 0u) << "workspace dirty on state " << state;
  }
}

}  // namespace
}  // namespace qsp
