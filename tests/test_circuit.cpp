#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qsp {
namespace {

Circuit small_circuit() {
  Circuit c(3);
  c.append(Gate::ry(0, 0.5));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cry(1, 2, -0.3));
  return c;
}

TEST(Circuit, AppendAndSize) {
  Circuit c = small_circuit();
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_FALSE(c.empty());
  EXPECT_THROW(c.append(Gate::x(3)), std::invalid_argument);
  EXPECT_THROW(Circuit(0), std::invalid_argument);
}

TEST(Circuit, AppendCircuit) {
  Circuit wide(4);
  wide.append(small_circuit());
  EXPECT_EQ(wide.size(), 3u);
  Circuit narrow(2);
  EXPECT_THROW(narrow.append(small_circuit()), std::invalid_argument);
}

TEST(Circuit, AdjointReversesAndInverts) {
  const Circuit c = small_circuit();
  const Circuit a = c.adjoint();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.gates()[0].kind(), GateKind::kCRy);
  EXPECT_DOUBLE_EQ(a.gates()[0].theta(), 0.3);
  EXPECT_EQ(a.gates()[2].kind(), GateKind::kRy);
  EXPECT_DOUBLE_EQ(a.gates()[2].theta(), -0.5);
  // Involution.
  EXPECT_EQ(a.adjoint(), c);
}

TEST(Circuit, CnotCostUsesTableOne) {
  Circuit c(4);
  c.append(Gate::x(0));                  // 0
  c.append(Gate::ry(1, 1.0));            // 0
  c.append(Gate::cnot(0, 1));            // 1
  c.append(Gate::cry(0, 1, 0.2));        // 2
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, true},
                       ControlLiteral{2, true}},
                      3, 0.1));          // 8
  EXPECT_EQ(c.cnot_cost(), 11);
}

TEST(Circuit, DepthIsZeroWhenEmpty) {
  EXPECT_EQ(Circuit(3).depth(), 0u);
}

TEST(Circuit, DepthPacksDisjointWiresIntoOneLayer) {
  Circuit c(4);
  c.append(Gate::ry(0, 0.1));
  c.append(Gate::ry(1, 0.2));
  c.append(Gate::cnot(2, 3));
  EXPECT_EQ(c.depth(), 1u);
}

TEST(Circuit, DepthStacksSharedWires) {
  Circuit c(3);
  c.append(Gate::cnot(0, 1));  // layer 1
  c.append(Gate::cnot(1, 2));  // layer 2 (shares wire 1)
  c.append(Gate::ry(0, 0.3));  // layer 2 (wire 0 free after layer 1)
  c.append(Gate::x(2));        // layer 3
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthCountsControlWires) {
  Circuit c(4);
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, true}}, 2,
                      0.4));
  c.append(Gate::ry(3, 0.1));  // disjoint: same layer
  c.append(Gate::x(1));        // control wire busy: next layer
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, GateCounts) {
  const Circuit c = small_circuit();
  const auto counts = c.gate_counts();
  EXPECT_EQ(counts.at(GateKind::kRy), 1u);
  EXPECT_EQ(counts.at(GateKind::kCNOT), 1u);
  EXPECT_EQ(counts.at(GateKind::kCRy), 1u);
}

TEST(Circuit, ToStringListsGates) {
  const std::string s = small_circuit().to_string();
  EXPECT_NE(s.find("Ry(q0"), std::string::npos);
  EXPECT_NE(s.find("CNOT(0 -> q1)"), std::string::npos);
}

TEST(Circuit, DrawProducesOneRowPerQubit) {
  const std::string d = small_circuit().draw();
  int newlines = 0;
  for (const char ch : d) {
    if (ch == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 3);
  EXPECT_NE(d.find("(+)"), std::string::npos);
  EXPECT_NE(d.find("q2"), std::string::npos);
}

}  // namespace
}  // namespace qsp
