#include "prep/hybrid.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Hybrid, CircuitCarriesAncilla) {
  const QuantumState target = make_ghz(3);
  const HybridResult res = hybrid_prepare(target);
  ASSERT_FALSE(res.timed_out);
  EXPECT_EQ(res.circuit.num_qubits(), 4);
  // Ancilla must end in |0>: the verifier enforces this.
  verify_preparation_or_throw(res.circuit, target);
}

TEST(Hybrid, PreparesRandomStates) {
  Rng rng(301);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(4));
    const QuantumState target = make_random_uniform(n, n, rng);
    const HybridResult res = hybrid_prepare(target);
    ASSERT_FALSE(res.timed_out);
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_GT(res.accounted_cnots, 0);
  }
}

TEST(Hybrid, GateCostFormula) {
  EXPECT_EQ(hybrid_gate_cost(Gate::cnot(0, 1)), 1);
  EXPECT_EQ(hybrid_gate_cost(Gate::cry(0, 1, 0.5)), 2);
  // 2 controls: min(4, 6*(4-3)) = 4.
  EXPECT_EQ(hybrid_gate_cost(Gate::mcry(
                {ControlLiteral{0, true}, ControlLiteral{1, true}}, 2, 0.5)),
            4);
  // 5 controls: min(32, 6*(10-3)) = 32 -> still the multiplexor; 6 controls:
  // min(64, 6*(12-3)) = 54 -> linear wins.
  std::vector<ControlLiteral> five, six;
  for (int q = 0; q < 5; ++q) five.push_back(ControlLiteral{q, true});
  for (int q = 0; q < 6; ++q) six.push_back(ControlLiteral{q, true});
  EXPECT_EQ(hybrid_gate_cost(Gate::mcry(five, 6, 0.5)), 32);
  EXPECT_EQ(hybrid_gate_cost(Gate::mcry(six, 7, 0.5)), 54);
}

TEST(Hybrid, AccountedCostAtMostLoweredCost) {
  Rng rng(302);
  const QuantumState target = make_random_uniform(9, 9, rng);
  const HybridResult res = hybrid_prepare(target);
  ASSERT_FALSE(res.timed_out);
  EXPECT_LE(res.accounted_cnots,
            count_cnots_after_lowering(res.circuit));
}

TEST(Hybrid, CostSitsBetweenFlowsOnSparse) {
  // Table V sparse shape: m-flow < hybrid < n-flow (2^n - 2).
  Rng rng(303);
  const int n = 10;
  double hybrid_total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const QuantumState target = make_random_uniform(n, n, rng);
    const HybridResult res = hybrid_prepare(target);
    ASSERT_FALSE(res.timed_out);
    hybrid_total += static_cast<double>(res.accounted_cnots);
  }
  const double avg = hybrid_total / 5;
  EXPECT_LT(avg, static_cast<double>((1 << n) - 2));
  EXPECT_GT(avg, 40.0);  // well above the m-flow scale would be ~60-100
}

}  // namespace
}  // namespace qsp
