#include "service/equivalence_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "arch/routing.hpp"
#include "core/astar.hpp"
#include "core/beam.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

SlotState random_slot(Rng& rng, int n, int m) {
  return *SlotState::from_state(make_random_uniform(n, m, rng));
}

TEST(EquivalenceCache, ExactHitIsBitIdenticalToColdPath) {
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  const AStarSynthesizer synth(options);
  const SlotState target = *SlotState::from_state(make_dicke(4, 2));

  const SynthesisResult cold = synth.synthesize(target);
  ASSERT_TRUE(cold.found);
  ASSERT_TRUE(cold.optimal);
  const SynthesisResult warm = synth.synthesize(target);
  ASSERT_TRUE(warm.found);
  EXPECT_TRUE(warm.optimal);
  EXPECT_EQ(warm.cnot_cost, cold.cnot_cost);
  EXPECT_EQ(warm.circuit, cold.circuit);  // gate list, bit for bit

  const EquivalenceCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.rewired_hits, 0u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(EquivalenceCache, RewiredHitServesSameClassVariants) {
  // A permuted + translated member of a cached class must hit without a
  // search, at the same certified cost, with a circuit that verifies.
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  const AStarSynthesizer synth(options);
  Rng rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    const SlotState base = random_slot(rng, 4, 3 + trial % 4);
    const SynthesisResult cold = synth.synthesize(base);
    ASSERT_TRUE(cold.found);
    if (!cold.optimal) continue;  // uncertified results are not cached

    std::vector<int> perm{1, 3, 0, 2};
    const BasisIndex mask = static_cast<BasisIndex>(rng.next_below(16));
    const SlotState variant =
        base.with_permutation(perm).with_translation(mask);
    const std::uint64_t rewired_before = cache->stats().rewired_hits;
    const SynthesisResult warm = synth.synthesize(variant);
    ASSERT_TRUE(warm.found);
    EXPECT_TRUE(warm.optimal);
    EXPECT_EQ(warm.cnot_cost, cold.cnot_cost);
    if (variant == base) continue;  // symmetric state: exact hit instead
    EXPECT_EQ(cache->stats().rewired_hits, rewired_before + 1);
    verify_preparation_or_throw(warm.circuit, variant.to_state());
  }
}

TEST(EquivalenceCache, BeamConsultsAStarPopulatedEntries) {
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions astar_options;
  astar_options.cache = cache;
  const SlotState target = *SlotState::from_state(make_w(4));
  const SynthesisResult cold = AStarSynthesizer(astar_options).synthesize(target);
  ASSERT_TRUE(cold.optimal);

  BeamOptions beam_options;
  beam_options.cache = cache;
  const SynthesisResult beam = BeamSynthesizer(beam_options).synthesize(target);
  ASSERT_TRUE(beam.found);
  // The beam alone never certifies; through the cache it returns the
  // certified template.
  EXPECT_TRUE(beam.optimal);
  EXPECT_EQ(beam.circuit, cold.circuit);
  EXPECT_GE(cache->stats().exact_hits, 1u);

  // The beam must not populate: a fresh class searched by beam only stays
  // uncached.
  const SlotState other = *SlotState::from_state(make_ghz(4));
  const std::uint64_t insertions = cache->stats().insertions;
  const SynthesisResult beam_only =
      BeamSynthesizer(beam_options).synthesize(other);
  ASSERT_TRUE(beam_only.found);
  EXPECT_FALSE(beam_only.optimal);
  EXPECT_EQ(cache->stats().insertions, insertions);
}

TEST(EquivalenceCache, HdaStarSharesTheCache) {
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  options.num_threads = 2;  // dispatches to the sharded kernel
  const AStarSynthesizer synth(options);
  const SlotState target = *SlotState::from_state(make_dicke(4, 2));
  const SynthesisResult cold = synth.synthesize(target);
  ASSERT_TRUE(cold.optimal);
  const SynthesisResult warm = synth.synthesize(target);
  EXPECT_EQ(warm.circuit, cold.circuit);
  EXPECT_EQ(cache->stats().exact_hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
}

TEST(EquivalenceCache, DistinctCouplingsDoNotShareEntries) {
  auto cache = std::make_shared<EquivalenceCache>();
  const SlotState target = *SlotState::from_state(make_w(4));

  SearchOptions line_options;
  line_options.cache = cache;
  line_options.coupling =
      std::make_shared<const CouplingGraph>(CouplingGraph::line(4));
  const SynthesisResult on_line =
      AStarSynthesizer(line_options).synthesize(target);
  ASSERT_TRUE(on_line.optimal);

  SearchOptions star_options;
  star_options.cache = cache;
  star_options.coupling =
      std::make_shared<const CouplingGraph>(CouplingGraph::star(4));
  const SynthesisResult on_star =
      AStarSynthesizer(star_options).synthesize(target);
  ASSERT_TRUE(on_star.optimal);

  // Two different routed-cost surfaces: two misses, no cross-topology
  // hits, and each repeat hits its own entry.
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().hits, 0u);
  const SynthesisResult line_again =
      AStarSynthesizer(line_options).synthesize(target);
  EXPECT_EQ(line_again.circuit, on_line.circuit);
  EXPECT_EQ(cache->stats().exact_hits, 1u);
}

TEST(EquivalenceCache, CoupledRewiringKeepsTranslationOnly) {
  // On a restricted device the cache canonicalizes at U(2): an
  // X-translated variant shares the class (X layers are free 1-qubit
  // gates everywhere), a permuted variant must NOT (relabeling wires is
  // not free on a line).
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  options.coupling =
      std::make_shared<const CouplingGraph>(CouplingGraph::line(4));
  const AStarSynthesizer synth(options);
  Rng rng(17);
  const SlotState base = random_slot(rng, 4, 5);
  const SynthesisResult cold = synth.synthesize(base);
  ASSERT_TRUE(cold.optimal);

  const SlotState translated = base.with_translation(0b1010);
  const SynthesisResult warm = synth.synthesize(translated);
  ASSERT_TRUE(warm.found);
  EXPECT_TRUE(warm.optimal);
  EXPECT_EQ(warm.cnot_cost, cold.cnot_cost);
  EXPECT_GE(cache->stats().rewired_hits + cache->stats().exact_hits, 1u);
  verify_preparation_or_throw(warm.circuit, translated.to_state());
  // The rewired template stays device-conformant after routing.
  EXPECT_TRUE(respects_coupling(route_circuit(warm.circuit, *options.coupling),
                                *options.coupling));

  const SlotState permuted = base.with_permutation({2, 0, 3, 1});
  const std::uint64_t misses_before = cache->stats().misses;
  const SynthesisResult independent = synth.synthesize(permuted);
  ASSERT_TRUE(independent.found);
  if (permuted != base) {
    EXPECT_EQ(cache->stats().misses, misses_before + 1);
  }
  verify_preparation_or_throw(independent.circuit, permuted.to_state());
}

TEST(EquivalenceCache, LruEvictionHonorsEntryBound) {
  EquivalenceCacheOptions cache_options;
  cache_options.num_shards = 1;
  cache_options.max_entries = 2;
  auto cache = std::make_shared<EquivalenceCache>(cache_options);
  SearchOptions options;
  options.cache = cache;
  const AStarSynthesizer synth(options);

  Rng rng(29);
  std::vector<SlotState> targets;
  for (int i = 0; i < 5; ++i) targets.push_back(random_slot(rng, 4, 3 + i));
  for (const SlotState& t : targets) {
    const SynthesisResult r = synth.synthesize(t);
    ASSERT_TRUE(r.found);
  }
  const EquivalenceCacheStats stats = cache->stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries + stats.evictions, stats.insertions);

  // Evicted classes are re-searched and re-inserted correctly.
  const SynthesisResult again = synth.synthesize(targets.front());
  ASSERT_TRUE(again.found);
  verify_preparation_or_throw(again.circuit, targets.front().to_state());
}

TEST(EquivalenceCache, ConcurrentMixedBatchesStayBitIdentical) {
  // The satellite stress test: N threads re-running mixed batches against
  // one shared cache must observe bit-identical circuits cold-vs-warm and
  // coherent counters. Runs under the TSan CI job.
  Rng rng(31);
  std::vector<SlotState> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(random_slot(rng, 4, 3 + i));
  batch.push_back(*SlotState::from_state(make_dicke(4, 2)));
  batch.push_back(*SlotState::from_state(make_w(4)));

  // Cold reference results: no cache, serial kernel (deterministic).
  std::vector<SynthesisResult> reference;
  for (const SlotState& t : batch) {
    reference.push_back(AStarSynthesizer().synthesize(t));
    ASSERT_TRUE(reference.back().optimal);
  }

  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AStarSynthesizer synth(options);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const SynthesisResult r = synth.synthesize(batch[i]);
          if (!r.found || !r.optimal ||
              r.cnot_cost != reference[i].cnot_cost ||
              r.circuit != reference[i].circuit) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;

  const EquivalenceCacheStats stats = cache->stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kRounds * batch.size();
  EXPECT_EQ(stats.lookups, total);
  EXPECT_EQ(stats.hits + stats.misses, total);
  EXPECT_EQ(stats.exact_hits + stats.rewired_hits, stats.hits);
  // One search per class in the best case; owners that lost a data race
  // to a concurrent independent publish stay bounded by the thread count.
  EXPECT_GE(stats.hits, total - static_cast<std::uint64_t>(kThreads) *
                                    batch.size());
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.entries, batch.size());
}

TEST(EquivalenceCache, InFlightDeduplicationRunsOneSearch) {
  // Concurrent requests for one class: exactly one owner searches, every
  // other thread blocks on the in-flight marker and then hits.
  auto cache = std::make_shared<EquivalenceCache>();
  SearchOptions options;
  options.cache = cache;
  const SlotState target = *SlotState::from_state(make_dicke(4, 2));
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const SynthesisResult r = AStarSynthesizer(options).synthesize(target);
      if (!r.found || !r.optimal) ++failures[static_cast<std::size_t>(t)];
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  const EquivalenceCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kThreads));
  // The owner search completes and publishes an optimal circuit, so no
  // waiter ever re-searches: one miss, everyone else hits.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) - 1);
}

}  // namespace
}  // namespace qsp
