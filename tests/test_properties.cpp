// Parameterized property sweeps across (qubits, cardinality, seed): the
// system-level invariants every component must satisfy on arbitrary
// uniform inputs. These complement the per-module unit tests with broad
// randomized coverage.

#include <gtest/gtest.h>

#include <tuple>

#include "circuit/lowering.hpp"
#include "circuit/optimizer.hpp"
#include "core/astar.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "flow/methods.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

using Params = std::tuple<int, int, std::uint64_t>;  // n, m, seed

class UniformStateProperty : public ::testing::TestWithParam<Params> {
 protected:
  QuantumState target() const {
    const auto& [n, m, seed] = GetParam();
    Rng rng(seed);
    return make_random_uniform(n, m, rng);
  }
};

/// Every arc's slot semantics must equal its gate's unitary action.
TEST_P(UniformStateProperty, MoveGateSemanticsAgree) {
  const QuantumState state = target();
  if (state.num_qubits() > 6) GTEST_SKIP() << "simulation size";
  const SlotState slot = *SlotState::from_state(state);
  MoveGenOptions options;
  options.include_zero_cost = true;
  options.max_controls = 2;
  for (const Move& mv : enumerate_moves(slot, options)) {
    const SlotState child = apply_move(slot, mv);
    Statevector sv(slot.to_state());
    sv.apply(mv.to_gate());
    ASSERT_NEAR(std::abs(sv.inner_product(child.to_state())), 1.0, 1e-7)
        << mv.to_string();
  }
}

/// Canonical keys are invariant under the free transforms they quotient.
TEST_P(UniformStateProperty, CanonicalKeyInvariance) {
  const QuantumState state = target();
  const SlotState slot = *SlotState::from_state(state);
  const auto& [n, m, seed] = GetParam();
  Rng rng(seed ^ 0xF00Du);
  const auto key_u2 = canonical_key(slot, CanonicalLevel::kU2);
  for (int trial = 0; trial < 4; ++trial) {
    const BasisIndex mask = static_cast<BasisIndex>(
        rng.next_below(std::uint64_t{1} << n));
    EXPECT_EQ(canonical_key(slot.with_translation(mask),
                            CanonicalLevel::kU2),
              key_u2);
  }
  if (n <= 6) {
    const auto key_pu2 = canonical_key(slot, CanonicalLevel::kPU2Exact);
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) perm[static_cast<std::size_t>(q)] = q;
    rng.shuffle(perm);
    EXPECT_EQ(canonical_key(slot.with_permutation(perm),
                            CanonicalLevel::kPU2Exact),
              key_pu2);
  }
}

/// The exact solver returns verified circuits whose lowered CNOT count
/// equals the reported arc cost and dominates both admissible bounds.
TEST_P(UniformStateProperty, ExactSynthesisSound) {
  const QuantumState state = target();
  if (state.num_qubits() > 4) GTEST_SKIP() << "exact reach";
  const AStarSynthesizer synth;
  const SynthesisResult res = synth.synthesize(state);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  verify_preparation_or_throw(res.circuit, state);
  EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  const SlotState slot = *SlotState::from_state(state);
  EXPECT_GE(res.cnot_cost,
            heuristic_lower_bound(slot, HeuristicMode::kComponent));
  EXPECT_GE(res.cnot_cost,
            heuristic_lower_bound(slot, HeuristicMode::kPair));
}

/// The optimizer never changes the prepared state and never adds cost.
TEST_P(UniformStateProperty, OptimizerSoundOnWorkflowCircuits) {
  const QuantumState state = target();
  const MethodRun run = run_method(Method::kOurs, state);
  ASSERT_TRUE(run.ok);
  const Circuit optimized = optimize(run.circuit);
  EXPECT_LE(optimized.size(), run.circuit.size());
  if (state.num_qubits() <= 10) {
    verify_preparation_or_throw(optimized, state);
  }
}

/// All four methods prepare the same state.
TEST_P(UniformStateProperty, AllMethodsVerify) {
  const QuantumState state = target();
  if (state.num_qubits() > 10) GTEST_SKIP() << "simulation size";
  for (const Method m :
       {Method::kMFlow, Method::kNFlow, Method::kHybrid, Method::kOurs}) {
    const MethodRun run = run_method(m, state);
    ASSERT_TRUE(run.ok) << method_name(m);
    verify_preparation_or_throw(run.circuit, state);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SparseSweep, UniformStateProperty,
    ::testing::Combine(::testing::Values(3, 4, 6, 8),
                       ::testing::Values(3, 5),
                       ::testing::Values(11u, 22u)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    DenseSweep, UniformStateProperty,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values(4, 8),
                       ::testing::Values(33u, 44u)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace qsp
