#include "core/parallel_beam.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

/// The beam snapshot corpus of test_beam.cpp plus a few wider states:
/// everything the serial descent handles, so the sharded beam must
/// reproduce each result bit for bit at every thread count.
struct CorpusEntry {
  QuantumState target;
  BeamOptions options;
};

std::vector<CorpusEntry> determinism_corpus() {
  BeamOptions wide;
  wide.beam_width = 256;
  BeamOptions narrow;
  narrow.beam_width = 8;
  Rng rng77(77);
  Rng rng78(78);
  Rng rng90(90);
  std::vector<CorpusEntry> corpus;
  corpus.push_back({make_w(3), {}});
  corpus.push_back({make_ghz(4), {}});
  corpus.push_back({make_dicke(4, 2), {}});
  corpus.push_back({make_dicke(5, 1), wide});
  corpus.push_back({make_uniform(3, {0, 3, 5, 6}), {}});
  corpus.push_back({make_random_uniform(4, 6, rng77), {}});
  corpus.push_back({make_random_uniform(5, 8, rng78), {}});
  // Tiny widths stress the k-select/truncation boundary, where any
  // ordering nondeterminism would show first.
  corpus.push_back({make_random_uniform(4, 7, rng90), narrow});
  corpus.push_back({make_random_uniform(5, 5, rng90), narrow});
  return corpus;
}

/// The fields that must be bit-identical across thread counts (seconds
/// obviously excluded; budget-truncated runs are excluded by
/// construction — no corpus entry carries a deadline).
void expect_identical(const SynthesisResult& ref, const SynthesisResult& res,
                      const QuantumState& target, int threads) {
  const std::string ctx = target.to_string() +
                          " threads=" + std::to_string(threads);
  ASSERT_EQ(res.found, ref.found) << ctx;
  EXPECT_EQ(res.optimal, ref.optimal) << ctx;
  EXPECT_EQ(res.cnot_cost, ref.cnot_cost) << ctx;
  EXPECT_TRUE(res.circuit == ref.circuit) << ctx;
  EXPECT_EQ(res.stats.nodes_generated, ref.stats.nodes_generated) << ctx;
  EXPECT_EQ(res.stats.nodes_expanded, ref.stats.nodes_expanded) << ctx;
  EXPECT_EQ(res.stats.classes_stored, ref.stats.classes_stored) << ctx;
  EXPECT_FALSE(res.stats.budget_exhausted) << ctx;
}

TEST(ParallelBeam, BitIdenticalToSerialAcrossThreadCounts) {
  for (const CorpusEntry& entry : determinism_corpus()) {
    const BeamSynthesizer serial(entry.options);
    const SynthesisResult ref = serial.synthesize(entry.target);
    ASSERT_TRUE(ref.found) << entry.target.to_string();
    EXPECT_FALSE(ref.optimal);
    verify_preparation_or_throw(ref.circuit, entry.target);
    for (const int threads : {1, 2, 8}) {
      BeamOptions options = entry.options;
      options.num_threads = threads;
      const ParallelBeamSynthesizer parallel(options);
      const SynthesisResult res = parallel.synthesize(entry.target);
      expect_identical(ref, res, entry.target, threads);
      EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
    }
  }
}

TEST(ParallelBeam, BeamSynthesizerDispatchesOnNumThreads) {
  // The public facade routes to the sharded kernel when num_threads != 1
  // and must return the serial result either way.
  const QuantumState target = make_dicke(4, 2);
  const SynthesisResult ref = BeamSynthesizer().synthesize(target);
  BeamOptions options;
  options.num_threads = 4;
  const SynthesisResult res = BeamSynthesizer(options).synthesize(target);
  expect_identical(ref, res, target, 4);
}

TEST(ParallelBeam, ZeroThreadsMeansAllHardwareThreads) {
  BeamOptions options;
  options.num_threads = 0;
  const QuantumState target = make_w(3);
  const SynthesisResult ref = BeamSynthesizer().synthesize(target);
  const SynthesisResult res =
      ParallelBeamSynthesizer(options).synthesize(target);
  expect_identical(ref, res, target, 0);
}

TEST(ParallelBeam, CouplingConstrainedMatchesSerial) {
  // The canonicalization demotion and routed arc costs on incomplete
  // couplings must behave identically in both kernels.
  BeamOptions serial_options;
  serial_options.coupling =
      std::make_shared<CouplingGraph>(CouplingGraph::line(3));
  for (const QuantumState& target :
       {make_ghz(3), make_uniform(3, {0b000, 0b011, 0b101, 0b110})}) {
    const SynthesisResult ref =
        BeamSynthesizer(serial_options).synthesize(target);
    ASSERT_TRUE(ref.found);
    for (const int threads : {2, 8}) {
      BeamOptions options = serial_options;
      options.num_threads = threads;
      const SynthesisResult res =
          ParallelBeamSynthesizer(options).synthesize(target);
      expect_identical(ref, res, target, threads);
    }
  }
}

TEST(ParallelBeam, GroundIsImmediate) {
  BeamOptions options;
  options.num_threads = 4;
  const SynthesisResult res =
      ParallelBeamSynthesizer(options).synthesize(QuantumState(4));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 0);
  EXPECT_FALSE(res.stats.budget_exhausted);
}

TEST(ParallelBeam, ThrowsOnNonSlotState) {
  const QuantumState signed_state(2, {Term{0, 1.0}, Term{3, -1.0}});
  BeamOptions options;
  options.num_threads = 2;
  const ParallelBeamSynthesizer synth(options);
  EXPECT_THROW(synth.synthesize(signed_state), std::invalid_argument);
}

TEST(ParallelBeam, BudgetTruncationIsFlagged) {
  // A deadline that expires mid-descent must be visible on the result —
  // a truncated descent is otherwise indistinguishable from a full one.
  BeamOptions tight;
  tight.num_threads = 4;
  tight.time_budget_seconds = 1e-9;
  const SynthesisResult res =
      ParallelBeamSynthesizer(tight).synthesize(make_dicke(5, 2));
  EXPECT_TRUE(res.stats.budget_exhausted);
  // And an unconstrained run of the same instance is not flagged.
  BeamOptions free_run;
  free_run.num_threads = 4;
  free_run.beam_width = 64;
  const SynthesisResult full =
      ParallelBeamSynthesizer(free_run).synthesize(make_dicke(5, 2));
  EXPECT_FALSE(full.stats.budget_exhausted);
}

TEST(ParallelBeam, ExactSynthesizerFallbackRunsParallelBeam) {
  // The facade's fallback path must honor beam.num_threads and still
  // match the serial fallback bit for bit (and keep the budget flag from
  // the aborted A* stage).
  ExactSynthesisOptions serial_options;
  serial_options.astar.node_budget = 50;  // force A* failure
  serial_options.beam.beam_width = 128;
  const QuantumState target = make_dicke(4, 2);
  const SynthesisResult ref =
      ExactSynthesizer(serial_options).synthesize(target);
  ASSERT_TRUE(ref.found);
  EXPECT_FALSE(ref.optimal);
  EXPECT_TRUE(ref.stats.budget_exhausted);  // the A* stage hit its budget
  ExactSynthesisOptions parallel_options = serial_options;
  parallel_options.beam.num_threads = 8;
  const SynthesisResult res =
      ExactSynthesizer(parallel_options).synthesize(target);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, ref.cnot_cost);
  EXPECT_TRUE(res.circuit == ref.circuit);
  EXPECT_TRUE(res.stats.budget_exhausted);
  verify_preparation_or_throw(res.circuit, target);
}

}  // namespace
}  // namespace qsp
