#include "core/slot_state.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(SlotState, ConstructionMergesAndSorts) {
  const SlotState s(3, {SlotEntry{5, 1}, SlotEntry{2, 2}, SlotEntry{5, 1}});
  EXPECT_EQ(s.total(), 4u);
  EXPECT_EQ(s.cardinality(), 2);
  EXPECT_EQ(s.entries()[0], (SlotEntry{2, 2}));
  EXPECT_EQ(s.entries()[1], (SlotEntry{5, 2}));
  EXPECT_THROW(SlotState(2, {}), std::invalid_argument);
  EXPECT_THROW(SlotState(2, {SlotEntry{4, 1}}), std::invalid_argument);
  EXPECT_THROW(SlotState(2, {SlotEntry{1, 0}}), std::invalid_argument);
}

TEST(SlotState, FromIndicesAndGround) {
  const SlotState s = SlotState::from_indices(3, {0, 3, 3, 5});
  EXPECT_EQ(s.total(), 4u);
  EXPECT_EQ(s.cardinality(), 3);
  const SlotState g = SlotState::ground(2, 7);
  EXPECT_TRUE(g.is_ground());
  EXPECT_EQ(g.total(), 7u);
}

TEST(SlotState, StateRoundTripUniform) {
  const QuantumState dicke = make_dicke(4, 2);
  const auto slot = SlotState::from_state(dicke);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->total(), 6u);
  EXPECT_EQ(slot->cardinality(), 6);
  EXPECT_TRUE(slot->to_state().approx_equal(dicke));
}

TEST(SlotState, StateRoundTripMergedAmplitudes) {
  // sqrt(1/4)|00> + sqrt(2/4)|01> + sqrt(1/4)|11>: counts (1, 2, 1).
  const QuantumState s(2, {Term{0, std::sqrt(0.25)}, Term{1, std::sqrt(0.5)},
                           Term{3, std::sqrt(0.25)}});
  const auto slot = SlotState::from_state(s);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->total(), 4u);
  EXPECT_EQ(slot->entries()[1], (SlotEntry{1, 2}));
  EXPECT_TRUE(slot->to_state().approx_equal(s));
}

TEST(SlotState, FromStateRejectsSignsAndIrrational) {
  const QuantumState neg(2, {Term{0, 1.0}, Term{1, -1.0}});
  EXPECT_FALSE(SlotState::from_state(neg).has_value());
  // Irrational squared-amplitude ratio (1 : sqrt(2)) within a small slot
  // budget.
  const QuantumState irr(2, {Term{0, 1.0}, Term{1, std::pow(2.0, 0.25)}});
  EXPECT_FALSE(SlotState::from_state(irr, 1000).has_value());
}

TEST(SlotState, WithXAndCnot) {
  const SlotState s = SlotState::from_indices(3, {0b000, 0b011});
  const SlotState x = s.with_x(2);
  EXPECT_EQ(x.entries()[0].index, 0b100u);
  EXPECT_EQ(x.entries()[1].index, 0b111u);
  // CNOT control q0 positive, target q2: only |011> fires.
  const SlotState c = s.with_cnot(0, true, 2);
  EXPECT_EQ(c.entries()[0].index, 0b000u);
  EXPECT_EQ(c.entries()[1].index, 0b111u);
  // Negative control: only |000> fires.
  const SlotState nc = s.with_cnot(0, false, 2);
  EXPECT_EQ(nc.entries()[0].index, 0b011u);
  EXPECT_EQ(nc.entries()[1].index, 0b100u);
}

TEST(SlotState, WithPermutationAndTranslation) {
  const SlotState s = SlotState::from_indices(3, {0b001, 0b110});
  const SlotState t = s.with_translation(0b001);
  EXPECT_EQ(t.entries()[0].index, 0b000u);
  EXPECT_EQ(t.entries()[1].index, 0b111u);
  const SlotState p = s.with_permutation({2, 1, 0});  // swap q0 and q2
  EXPECT_EQ(p.entries()[0].index, 0b011u);
  EXPECT_EQ(p.entries()[1].index, 0b100u);
}

TEST(SlotState, QubitConstant) {
  const SlotState s = SlotState::from_indices(3, {0b001, 0b011});
  int value = -1;
  EXPECT_TRUE(s.qubit_constant(0, &value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(s.qubit_constant(2, &value));
  EXPECT_EQ(value, 0);
  EXPECT_FALSE(s.qubit_constant(1));
}

TEST(SlotState, QubitSeparable) {
  // GHZ-like: not separable.
  const SlotState ghz = SlotState::from_indices(3, {0b000, 0b111});
  for (int q = 0; q < 3; ++q) EXPECT_FALSE(ghz.qubit_separable(q));
  // Product on qubit 2: {00,01} x {0,1}(q2).
  const SlotState prod =
      SlotState::from_indices(3, {0b000, 0b001, 0b100, 0b101});
  EXPECT_TRUE(prod.qubit_separable(2));
  EXPECT_TRUE(prod.qubit_separable(0));
  // Ratio-based separability: counts (1,2) on each rest group of qubit 0.
  const SlotState ratio(2, {SlotEntry{0b00, 1}, SlotEntry{0b01, 2},
                            SlotEntry{0b10, 2}, SlotEntry{0b11, 4}});
  EXPECT_TRUE(ratio.qubit_separable(0));
  EXPECT_TRUE(ratio.qubit_separable(1));
  const SlotState skew(2, {SlotEntry{0b00, 1}, SlotEntry{0b01, 2},
                           SlotEntry{0b10, 2}, SlotEntry{0b11, 3}});
  EXPECT_FALSE(skew.qubit_separable(0));
}

TEST(SlotState, HashAndEquality) {
  const SlotState a = SlotState::from_indices(3, {1, 2});
  const SlotState b = SlotState::from_indices(3, {2, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  const SlotState c = SlotState::from_indices(3, {1, 3});
  EXPECT_NE(a, c);
}

TEST(SlotState, RandomUniformRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    const int m = 2 + static_cast<int>(rng.next_below(6));
    const QuantumState s = make_random_uniform(n, m, rng);
    const auto slot = SlotState::from_state(s);
    ASSERT_TRUE(slot.has_value());
    EXPECT_TRUE(slot->to_state().approx_equal(s));
    EXPECT_EQ(slot->total(), static_cast<std::uint64_t>(m));
  }
}

}  // namespace
}  // namespace qsp
