#pragma once
// Shared fixtures for the differential pass harness: seeded random-circuit
// corpora spanning every gate kind the pipeline rewrites (X, Ry, CNOT, CRy,
// MCRy, UCRy and the z-axis Rz/UCRz), coupled corpora whose circuits are
// native for a device, and preparation-overlap helpers. Built as the
// qsp_test_util static library and linked into every test binary, so the
// pass, peephole and QASM property tests draw from the same distribution.

#include <cstdint>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "util/rng.hpp"

namespace qsp::test {

struct CorpusOptions {
  /// Register widths the corpus spans.
  std::vector<int> widths = {2, 3, 4, 5};
  int circuits_per_width = 6;
  int gates_per_circuit = 40;
  std::uint64_t seed = 0xC0FFEE;
  /// Include z-axis gates (Rz/UCRz), which force the complex-statevector
  /// verification path.
  bool with_phase_gates = true;
  /// Fraction of rotation angles drawn below the dead-rotation epsilon.
  double near_zero_fraction = 0.15;
  /// Fraction of gates that duplicate a recently emitted gate, seeding
  /// cancellation and fusion opportunities the passes should find.
  double duplicate_fraction = 0.25;
};

/// One random gate over an n-qubit register (n >= 2). Draws across every
/// kind; MCRy needs n >= 3 and is replaced by CRy on two wires.
Gate random_gate(int n, Rng& rng, const CorpusOptions& options);

/// Random circuit of `size` gates, duplicate-seeded per CorpusOptions.
Circuit random_circuit(int n, int size, Rng& rng,
                       const CorpusOptions& options = {});

/// The standard corpus: circuits_per_width circuits per width, seeded, so
/// every property test sees the same instances.
std::vector<Circuit> random_circuit_corpus(const CorpusOptions& options = {});

/// Random circuit that is native for `device` (respects_coupling holds):
/// single-qubit x/ry/rz plus CNOTs on coupling edges only, with the same
/// duplicate seeding as random_circuit.
Circuit random_coupled_circuit(const CouplingGraph& device, int size, Rng& rng,
                               const CorpusOptions& options = {});

/// |<a|b>| of the states the two circuits prepare from |0...0>, via the
/// conjugate inner product; uses the complex statevector when either
/// circuit carries z-axis, iSwap or RZZ gates. Registers must match.
/// Because the modulus discards the global phase, this is the
/// cross-gate-set equivalence check for legalized circuits: a circuit
/// and its lower_onto(target) image must score 1 for every target even
/// when the native decompositions differ from CNOT by a global phase.
double preparation_overlap(const Circuit& a, const Circuit& b);

}  // namespace qsp::test
