#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qsp {
namespace {

TEST(Bitops, GetSetFlip) {
  EXPECT_EQ(get_bit(0b1010, 1), 1);
  EXPECT_EQ(get_bit(0b1010, 0), 0);
  EXPECT_EQ(set_bit(0b1010, 0, 1), 0b1011u);
  EXPECT_EQ(set_bit(0b1010, 1, 0), 0b1000u);
  EXPECT_EQ(set_bit(0b1010, 1, 1), 0b1010u);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010u);
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011u);
}

TEST(Bitops, PopcountHamming) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(hamming(0b1010, 0b1010), 0);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming(0b1000, 0b1001), 1);
}

TEST(Bitops, SwapBits) {
  EXPECT_EQ(swap_bits(0b10, 0, 1), 0b01u);
  EXPECT_EQ(swap_bits(0b11, 0, 1), 0b11u);
  EXPECT_EQ(swap_bits(0b100, 2, 0), 0b001u);
  EXPECT_EQ(swap_bits(0b101, 0, 2), 0b101u);
}

TEST(Bitops, PermuteBits) {
  // perm[q] = destination of bit q.
  const std::vector<int> rotate{1, 2, 0};
  EXPECT_EQ(permute_bits(0b001, rotate), 0b010u);
  EXPECT_EQ(permute_bits(0b010, rotate), 0b100u);
  EXPECT_EQ(permute_bits(0b100, rotate), 0b001u);
  EXPECT_EQ(permute_bits(0b110, rotate), 0b101u);
}

TEST(Bitops, PermuteIdentity) {
  const std::vector<int> id{0, 1, 2, 3};
  for (BasisIndex x = 0; x < 16; ++x) {
    EXPECT_EQ(permute_bits(x, id), x);
  }
}

TEST(Bitops, BitstringRoundTrip) {
  EXPECT_EQ(to_bitstring(0b011, 3), "011");
  EXPECT_EQ(to_bitstring(0, 4), "0000");
  EXPECT_EQ(to_bitstring(0b100, 3), "100");
  for (BasisIndex x = 0; x < 32; ++x) {
    EXPECT_EQ(from_bitstring(to_bitstring(x, 5)), x);
  }
  EXPECT_THROW(from_bitstring(""), std::invalid_argument);
  EXPECT_THROW(from_bitstring("01a"), std::invalid_argument);
}

TEST(Bitops, GrayCode) {
  // Adjacent gray codes differ in exactly one bit.
  for (std::uint32_t i = 0; i + 1 < 64; ++i) {
    EXPECT_EQ(popcount(gray_code(i) ^ gray_code(i + 1)), 1);
    EXPECT_EQ(gray_code(i) ^ gray_code(i + 1),
              std::uint32_t{1} << gray_change_bit(i));
  }
}

TEST(Bitops, Parity) {
  EXPECT_EQ(parity(0b1011, 0b0011), 0);
  EXPECT_EQ(parity(0b1011, 0b0001), 1);
  EXPECT_EQ(parity(0b1011, 0b1111), 1);
  EXPECT_EQ(parity(0, 0b1111), 0);
}

}  // namespace
}  // namespace qsp
