#include "state/state_factory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/combinatorics.hpp"

namespace qsp {
namespace {

TEST(StateFactory, Ghz) {
  const QuantumState ghz = make_ghz(4);
  EXPECT_EQ(ghz.cardinality(), 2);
  EXPECT_NEAR(ghz.amplitude(0b0000), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(ghz.amplitude(0b1111), 1 / std::sqrt(2.0), 1e-12);
}

TEST(StateFactory, WState) {
  const QuantumState w = make_w(3);
  EXPECT_EQ(w.cardinality(), 3);
  for (const BasisIndex x : {0b001u, 0b010u, 0b100u}) {
    EXPECT_NEAR(w.amplitude(x), 1 / std::sqrt(3.0), 1e-12);
  }
}

TEST(StateFactory, DickeCardinality) {
  for (int n = 2; n <= 6; ++n) {
    for (int k = 0; k <= n; ++k) {
      const QuantumState d = make_dicke(n, k);
      EXPECT_EQ(d.cardinality(),
                static_cast<int>(binomial(static_cast<unsigned>(n),
                                          static_cast<unsigned>(k))));
      EXPECT_TRUE(d.is_uniform());
      for (const Term& t : d.terms()) {
        EXPECT_EQ(popcount(t.index), k);
      }
    }
  }
  EXPECT_THROW(make_dicke(3, 4), std::invalid_argument);
  EXPECT_THROW(make_dicke(3, -1), std::invalid_argument);
}

TEST(StateFactory, UniformRejectsDuplicates) {
  EXPECT_THROW(make_uniform(2, {1, 1}), std::invalid_argument);
  const QuantumState u = make_uniform(2, {0, 3});
  EXPECT_TRUE(u.is_uniform());
}

TEST(StateFactory, RandomUniformProperties) {
  Rng rng(123);
  for (int n = 3; n <= 8; ++n) {
    const int m = n;  // sparse setting
    const QuantumState s = make_random_uniform(n, m, rng);
    EXPECT_EQ(s.num_qubits(), n);
    EXPECT_EQ(s.cardinality(), m);
    EXPECT_TRUE(s.is_uniform());
  }
  // Dense setting.
  const QuantumState d = make_random_uniform(6, 32, rng);
  EXPECT_EQ(d.cardinality(), 32);
  EXPECT_TRUE(d.is_uniform());
  EXPECT_THROW(make_random_uniform(3, 0, rng), std::invalid_argument);
}

TEST(StateFactory, RandomUniformIsSeedDeterministic) {
  Rng a(99), b(99);
  const QuantumState sa = make_random_uniform(10, 10, a);
  const QuantumState sb = make_random_uniform(10, 10, b);
  EXPECT_EQ(sa, sb);
}

TEST(StateFactory, RandomRealSigns) {
  Rng rng(7);
  const QuantumState s = make_random_real(5, 8, rng, /*allow_negative=*/true);
  EXPECT_EQ(s.cardinality(), 8);
  bool has_negative = false;
  for (const Term& t : s.terms()) has_negative |= t.amplitude < 0;
  // With 8 signed amplitudes the chance of all-positive is 1/256; the
  // fixed seed makes this deterministic.
  EXPECT_TRUE(has_negative);
  const QuantumState p = make_random_real(5, 8, rng, /*allow_negative=*/false);
  for (const Term& t : p.terms()) EXPECT_GT(t.amplitude, 0.0);
}

}  // namespace
}  // namespace qsp
