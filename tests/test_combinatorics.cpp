#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace qsp {
namespace {

TEST(Combinatorics, BinomialSmall) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(16, 8), 12870u);  // Table III row m=8
  EXPECT_EQ(binomial(16, 2), 120u);
  EXPECT_EQ(binomial(16, 5), 4368u);
}

TEST(Combinatorics, BinomialPascal) {
  for (unsigned n = 1; n <= 20; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(Combinatorics, BinomialOverflowSaturates) {
  EXPECT_EQ(binomial(200, 100), std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinatorics, Combinations) {
  const auto combos = combinations(5, 3);
  EXPECT_EQ(combos.size(), binomial(5, 3));
  std::set<std::vector<int>> unique(combos.begin(), combos.end());
  EXPECT_EQ(unique.size(), combos.size());
  for (const auto& c : combos) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_TRUE(c[0] < c[1] && c[1] < c[2]);
    EXPECT_GE(c[0], 0);
    EXPECT_LT(c[2], 5);
  }
  EXPECT_EQ(combinations(3, 0).size(), 1u);
  EXPECT_THROW(combinations(3, 4), std::invalid_argument);
}

TEST(Combinatorics, Permutations) {
  const auto perms = permutations(4);
  EXPECT_EQ(perms.size(), 24u);
  std::set<std::vector<int>> unique(perms.begin(), perms.end());
  EXPECT_EQ(unique.size(), 24u);
  EXPECT_EQ(permutations(0).size(), 1u);
  EXPECT_EQ(permutations(1).size(), 1u);
  EXPECT_THROW(permutations(9), std::invalid_argument);
}

TEST(Combinatorics, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({1.0, 10.0, 100.0}), 10.0, 1e-9);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace qsp
