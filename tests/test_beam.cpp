#include "core/beam.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Beam, FindsVerifiedCircuits) {
  const BeamSynthesizer beam;
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const int m = 2 + static_cast<int>(rng.next_below(6));
    const QuantumState target = make_random_uniform(n, m, rng);
    const SynthesisResult res = beam.synthesize(target);
    ASSERT_TRUE(res.found) << target.to_string();
    EXPECT_FALSE(res.optimal);  // beam never certifies
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  }
}

TEST(Beam, NearOptimalOnSmallInstances) {
  // Beam cost must be >= the exact optimum and usually close.
  const AStarSynthesizer exact;
  const BeamSynthesizer beam;
  Rng rng(56);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 5, rng);
    const SynthesisResult b = beam.synthesize(target);
    const SynthesisResult e = exact.synthesize(target);
    ASSERT_TRUE(b.found && e.found);
    EXPECT_GE(b.cnot_cost, e.cnot_cost);
    EXPECT_LE(b.cnot_cost, e.cnot_cost * 2 + 2);
  }
}

TEST(Beam, GroundIsImmediate) {
  const BeamSynthesizer beam;
  const SynthesisResult res = beam.synthesize(QuantumState(4));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 0);
}

TEST(Beam, HandlesDickeFive) {
  BeamOptions options;
  options.beam_width = 256;
  const BeamSynthesizer beam(options);
  const QuantumState target = make_dicke(5, 1);
  const SynthesisResult res = beam.synthesize(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
  // W_5 manual design uses 10 CNOTs; beam should be competitive.
  EXPECT_LE(res.cnot_cost, 16);
}

TEST(ExactSynthesizer, FallsBackToBeam) {
  ExactSynthesisOptions options;
  options.astar.node_budget = 50;  // force A* failure
  options.beam.beam_width = 128;
  const ExactSynthesizer synth(options);
  const QuantumState target = make_dicke(4, 2);
  const SynthesisResult res = synth.synthesize(target);
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.optimal);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(ExactSynthesizer, PrefersAStarWhenFeasible) {
  const ExactSynthesizer synth;
  const SynthesisResult res = synth.synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cnot_cost, 6);
}

TEST(Beam, DickeFiveTwoBeatsManualDesign) {
  // |D^2_5>: manual formula gives 20 CNOTs, the paper's exact run 16. The
  // beam must find a verified circuit at or below the manual cost.
  BeamOptions options;
  options.beam_width = 256;
  // Generous: the descent takes ~3s native; the margin absorbs the
  // ASan/UBSan slowdown (the test stays excluded from the TSan job).
  options.time_budget_seconds = 90.0;
  const BeamSynthesizer beam(options);
  const QuantumState target = make_dicke(5, 2);
  const SynthesisResult res = beam.synthesize(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
  EXPECT_LE(res.cnot_cost, 20);
}

TEST(Beam, ResultsUnchangedAfterSearchCorePort) {
  // Frozen costs and class counts on fixed seeds: any unintentional
  // behavior drift in the level loop must fail here. Re-frozen with the
  // level-synchronous rewrite that (a) deduplicates candidates per
  // canonical class (one class can no longer occupy several beam slots —
  // rand(5,8) improves 14 -> 12 CNOTs), (b) freezes the incumbent bound
  // at level entry (a few more classes stored, but pruning no longer
  // depends on within-level discovery order, which is what lets the
  // parallel beam match bit for bit), and (c) orders candidates by
  // (score, h, canonical key).
  struct Snapshot {
    QuantumState target;
    BeamOptions options;
    std::int64_t cost;
    std::uint64_t classes;
  };
  BeamOptions wide;
  wide.beam_width = 256;
  Rng rng77(77);
  Rng rng78(78);
  std::vector<Snapshot> snapshots;
  snapshots.push_back({make_w(3), {}, 4, 7});
  snapshots.push_back({make_dicke(4, 2), {}, 6, 365});
  snapshots.push_back({make_dicke(5, 1), wide, 10, 501});
  snapshots.push_back({make_uniform(3, {0, 3, 5, 6}), {}, 2, 8});
  snapshots.push_back({make_random_uniform(4, 6, rng77), {}, 8, 331});
  snapshots.push_back({make_random_uniform(5, 8, rng78), {}, 12, 23192});
  for (const Snapshot& snap : snapshots) {
    const BeamSynthesizer beam(snap.options);
    const SynthesisResult res = beam.synthesize(snap.target);
    ASSERT_TRUE(res.found) << snap.target.to_string();
    EXPECT_EQ(res.cnot_cost, snap.cost) << snap.target.to_string();
    EXPECT_EQ(res.stats.classes_stored, snap.classes)
        << snap.target.to_string();
    verify_preparation_or_throw(res.circuit, snap.target);
  }
}

TEST(Beam, DuplicateClassCannotCrowdOutNeededClasses) {
  // Regression for the duplicate-class beam-slot bug: when a child
  // improved an already-seen class's best_g within the same level, the
  // new node was appended to the candidate list while the stale sibling
  // of the same canonical class was still in it, so after truncation one
  // class could occupy several beam slots and evict distinct classes the
  // descent needed. On this instance the pre-fix beam returned 25 / 24 /
  // 20 CNOTs at widths 2 / 3 / 4 (exact optimum: 8) because narrow beams
  // kept filling with one class's duplicates; with per-class
  // deduplication every width reaches 15 or better.
  const QuantumState target = make_uniform(
      4, {0b0000, 0b0011, 0b0110, 0b0111, 0b1001, 0b1010, 0b1011, 0b1100,
          0b1110});
  for (const int width : {2, 3, 4}) {
    BeamOptions options;
    options.beam_width = width;
    const SynthesisResult res = BeamSynthesizer(options).synthesize(target);
    ASSERT_TRUE(res.found) << "width=" << width;
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_LE(res.cnot_cost, 15) << "width=" << width;
  }
}

TEST(Beam, BudgetTruncationIsFlagged) {
  // The deadline break inside a level used to truncate candidate
  // generation silently: the returned SynthesisResult was
  // indistinguishable from a full descent. It must now carry
  // SearchStats::budget_exhausted.
  BeamOptions tight;
  tight.time_budget_seconds = 1e-9;
  const SynthesisResult res =
      BeamSynthesizer(tight).synthesize(make_dicke(5, 2));
  EXPECT_TRUE(res.stats.budget_exhausted);
  BeamOptions free_run;
  free_run.beam_width = 64;
  const SynthesisResult full =
      BeamSynthesizer(free_run).synthesize(make_dicke(5, 2));
  ASSERT_TRUE(full.found);
  EXPECT_FALSE(full.stats.budget_exhausted);
}

TEST(Beam, IncumbentPruningKeepsBestGoal) {
  // The first goal reached need not be the returned one: later levels may
  // improve it. Just assert the returned cost is consistent and verified
  // across a few seeds.
  Rng rng(58);
  const BeamSynthesizer beam;
  for (int trial = 0; trial < 4; ++trial) {
    const QuantumState target = make_random_uniform(5, 5, rng);
    const SynthesisResult res = beam.synthesize(target);
    ASSERT_TRUE(res.found);
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  }
}

}  // namespace
}  // namespace qsp
