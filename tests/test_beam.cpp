#include "core/beam.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(Beam, FindsVerifiedCircuits) {
  const BeamSynthesizer beam;
  Rng rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const int m = 2 + static_cast<int>(rng.next_below(6));
    const QuantumState target = make_random_uniform(n, m, rng);
    const SynthesisResult res = beam.synthesize(target);
    ASSERT_TRUE(res.found) << target.to_string();
    EXPECT_FALSE(res.optimal);  // beam never certifies
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  }
}

TEST(Beam, NearOptimalOnSmallInstances) {
  // Beam cost must be >= the exact optimum and usually close.
  const AStarSynthesizer exact;
  const BeamSynthesizer beam;
  Rng rng(56);
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(4, 5, rng);
    const SynthesisResult b = beam.synthesize(target);
    const SynthesisResult e = exact.synthesize(target);
    ASSERT_TRUE(b.found && e.found);
    EXPECT_GE(b.cnot_cost, e.cnot_cost);
    EXPECT_LE(b.cnot_cost, e.cnot_cost * 2 + 2);
  }
}

TEST(Beam, GroundIsImmediate) {
  const BeamSynthesizer beam;
  const SynthesisResult res = beam.synthesize(QuantumState(4));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cnot_cost, 0);
}

TEST(Beam, HandlesDickeFive) {
  BeamOptions options;
  options.beam_width = 256;
  const BeamSynthesizer beam(options);
  const QuantumState target = make_dicke(5, 1);
  const SynthesisResult res = beam.synthesize(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
  // W_5 manual design uses 10 CNOTs; beam should be competitive.
  EXPECT_LE(res.cnot_cost, 16);
}

TEST(ExactSynthesizer, FallsBackToBeam) {
  ExactSynthesisOptions options;
  options.astar.node_budget = 50;  // force A* failure
  options.beam.beam_width = 128;
  const ExactSynthesizer synth(options);
  const QuantumState target = make_dicke(4, 2);
  const SynthesisResult res = synth.synthesize(target);
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.optimal);
  verify_preparation_or_throw(res.circuit, target);
}

TEST(ExactSynthesizer, PrefersAStarWhenFeasible) {
  const ExactSynthesizer synth;
  const SynthesisResult res = synth.synthesize(make_dicke(4, 2));
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.cnot_cost, 6);
}

TEST(Beam, DickeFiveTwoBeatsManualDesign) {
  // |D^2_5>: manual formula gives 20 CNOTs, the paper's exact run 16. The
  // beam must find a verified circuit at or below the manual cost.
  BeamOptions options;
  options.beam_width = 256;
  options.time_budget_seconds = 30.0;
  const BeamSynthesizer beam(options);
  const QuantumState target = make_dicke(5, 2);
  const SynthesisResult res = beam.synthesize(target);
  ASSERT_TRUE(res.found);
  verify_preparation_or_throw(res.circuit, target);
  EXPECT_LE(res.cnot_cost, 20);
}

TEST(Beam, ResultsUnchangedAfterSearchCorePort) {
  // Frozen costs and class counts captured from the pre-search-core beam
  // implementation on fixed seeds: the port onto the shared substrate
  // (search_core.hpp) must be behavior-identical, not just "still good".
  struct Snapshot {
    QuantumState target;
    BeamOptions options;
    std::int64_t cost;
    std::uint64_t classes;
  };
  BeamOptions wide;
  wide.beam_width = 256;
  Rng rng77(77);
  Rng rng78(78);
  std::vector<Snapshot> snapshots;
  snapshots.push_back({make_w(3), {}, 4, 7});
  snapshots.push_back({make_dicke(4, 2), {}, 6, 300});
  snapshots.push_back({make_dicke(5, 1), wide, 10, 495});
  snapshots.push_back({make_uniform(3, {0, 3, 5, 6}), {}, 2, 4});
  snapshots.push_back({make_random_uniform(4, 6, rng77), {}, 8, 318});
  snapshots.push_back({make_random_uniform(5, 8, rng78), {}, 14, 24723});
  for (const Snapshot& snap : snapshots) {
    const BeamSynthesizer beam(snap.options);
    const SynthesisResult res = beam.synthesize(snap.target);
    ASSERT_TRUE(res.found) << snap.target.to_string();
    EXPECT_EQ(res.cnot_cost, snap.cost) << snap.target.to_string();
    EXPECT_EQ(res.stats.classes_stored, snap.classes)
        << snap.target.to_string();
    verify_preparation_or_throw(res.circuit, snap.target);
  }
}

TEST(Beam, IncumbentPruningKeepsBestGoal) {
  // The first goal reached need not be the returned one: later levels may
  // improve it. Just assert the returned cost is consistent and verified
  // across a few seeds.
  Rng rng(58);
  const BeamSynthesizer beam;
  for (int trial = 0; trial < 4; ++trial) {
    const QuantumState target = make_random_uniform(5, 5, rng);
    const SynthesisResult res = beam.synthesize(target);
    ASSERT_TRUE(res.found);
    verify_preparation_or_throw(res.circuit, target);
    EXPECT_EQ(count_cnots_after_lowering(res.circuit), res.cnot_cost);
  }
}

}  // namespace
}  // namespace qsp
