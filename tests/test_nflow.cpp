#include "prep/nflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(NFlow, PreparesRandomUniformStates) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    const int m = 1 << (n - 1);
    const QuantumState target = make_random_uniform(n, m, rng);
    const Circuit c = nflow_prepare(target);
    verify_preparation_or_throw(c, target);
  }
}

TEST(NFlow, PreparesSignedStates) {
  Rng rng(102);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(3));
    const QuantumState target =
        make_random_real(n, 1 << (n - 1), rng, /*allow_negative=*/true);
    const Circuit c = nflow_prepare(target);
    verify_preparation_or_throw(c, target);
  }
}

TEST(NFlow, CostIsTwoToNMinusTwo) {
  // The published n-flow column: plain lowering of the multiplexor chain
  // costs exactly 2^n - 2 on generic states.
  Rng rng(103);
  for (const int n : {3, 4, 5, 6, 8, 10}) {
    const QuantumState target = make_random_uniform(n, 1 << (n - 1), rng);
    const Circuit c = nflow_prepare(target);
    EXPECT_EQ(count_cnots_after_lowering(c), (std::int64_t{1} << n) - 2)
        << "n=" << n;
  }
}

TEST(NFlow, SparseStatesStillCostFullChain) {
  // n-flow ignores sparsity (matching the published sparse column).
  Rng rng(104);
  const QuantumState target = make_random_uniform(8, 8, rng);
  EXPECT_EQ(count_cnots_after_lowering(nflow_prepare(target)), 254);
}

TEST(NFlow, MarginalIsNormalizedPrefixMass) {
  const QuantumState ghz = make_ghz(4);
  const QuantumState marg = nflow_marginal(ghz, 2);
  EXPECT_EQ(marg.num_qubits(), 2);
  EXPECT_EQ(marg.cardinality(), 2);
  EXPECT_NEAR(marg.amplitude(0b00), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(marg.amplitude(0b11), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_THROW(nflow_marginal(ghz, 0), std::invalid_argument);
  EXPECT_THROW(nflow_marginal(ghz, 5), std::invalid_argument);
}

TEST(NFlow, StagesComposeWithMarginalPreparation) {
  // Preparing the marginal on the first t qubits and then running stages
  // t..n-1 must reproduce the full state.
  Rng rng(105);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 5;
    const int t = 2;
    const QuantumState target = make_random_uniform(n, 16, rng);
    const QuantumState marg = nflow_marginal(target, t);
    Circuit c(n);
    c.append(nflow_prepare(marg));
    c.append(nflow_stages(target, t));
    verify_preparation_or_throw(c, target);
  }
}

TEST(NFlow, GhzCircuitIsExactOnSimulator) {
  const QuantumState ghz = make_ghz(5);
  verify_preparation_or_throw(nflow_prepare(ghz), ghz);
}

}  // namespace
}  // namespace qsp
