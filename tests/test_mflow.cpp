#include "prep/mflow.hpp"

#include <gtest/gtest.h>

#include "circuit/lowering.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

TEST(MFlow, PreparesSingleBasisState) {
  const QuantumState s(3, {Term{0b101, 1.0}});
  const MFlowResult res = mflow_prepare(s);
  ASSERT_FALSE(res.timed_out);
  verify_preparation_or_throw(res.circuit, s);
  EXPECT_EQ(count_cnots_after_lowering(res.circuit), 0);
}

TEST(MFlow, PreparesGhz) {
  const QuantumState ghz = make_ghz(4);
  const MFlowResult res = mflow_prepare(ghz);
  ASSERT_FALSE(res.timed_out);
  verify_preparation_or_throw(res.circuit, ghz);
}

TEST(MFlow, PreparesRandomSparseStates) {
  Rng rng(201);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(6));
    const QuantumState target = make_random_uniform(n, n, rng);
    const MFlowResult res = mflow_prepare(target);
    ASSERT_FALSE(res.timed_out);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(MFlow, PreparesSignedStates) {
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(3));
    const QuantumState target = make_random_real(n, n, rng);
    const MFlowResult res = mflow_prepare(target);
    ASSERT_FALSE(res.timed_out);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(MFlow, SparseCostScalesLikeMN) {
  // O(mn) scaling: for m = n the cost should stay well below the n-flow
  // 2^n - 2 wall, growing roughly linearly in n.
  Rng rng(203);
  const int samples = 5;
  for (const int n : {8, 10, 12}) {
    double total = 0;
    for (int s = 0; s < samples; ++s) {
      const QuantumState target = make_random_uniform(n, n, rng);
      const MFlowResult res = mflow_prepare(target);
      ASSERT_FALSE(res.timed_out);
      total += static_cast<double>(count_cnots_after_lowering(res.circuit));
    }
    const double avg = total / samples;
    EXPECT_LT(avg, static_cast<double>((1 << n) - 2)) << "n=" << n;
    EXPECT_LT(avg, 60.0 * n) << "n=" << n;
  }
}

TEST(MFlow, CheapestStrategyNotWorse) {
  Rng rng(204);
  double greedy_total = 0, cheap_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const QuantumState target = make_random_uniform(10, 10, rng);
    MFlowOptions greedy;
    greedy.strategy = MFlowOptions::PairStrategy::kGreedyFirst;
    MFlowOptions cheap;
    cheap.strategy = MFlowOptions::PairStrategy::kCheapest;
    const auto g = mflow_prepare(target, greedy);
    const auto c = mflow_prepare(target, cheap);
    ASSERT_FALSE(g.timed_out || c.timed_out);
    verify_preparation_or_throw(g.circuit, target);
    verify_preparation_or_throw(c.circuit, target);
    greedy_total += static_cast<double>(count_cnots_after_lowering(g.circuit));
    cheap_total += static_cast<double>(count_cnots_after_lowering(c.circuit));
  }
  EXPECT_LE(cheap_total, greedy_total * 1.05);
}

TEST(MFlow, PrefixAdjacentStrategyVerifies) {
  Rng rng(205);
  MFlowOptions options;
  options.strategy = MFlowOptions::PairStrategy::kPrefixAdjacent;
  for (int trial = 0; trial < 6; ++trial) {
    const QuantumState target = make_random_uniform(7, 7, rng);
    const auto res = mflow_prepare(target, options);
    ASSERT_FALSE(res.timed_out);
    verify_preparation_or_throw(res.circuit, target);
  }
}

TEST(MFlow, ReduceStopsAtPredicate) {
  Rng rng(206);
  const QuantumState target = make_random_uniform(8, 8, rng);
  const auto reduction = mflow_reduce(
      target,
      [](const QuantumState& s) { return s.cardinality() <= 3; });
  EXPECT_FALSE(reduction.timed_out);
  EXPECT_LE(reduction.reduced.cardinality(), 3);
  EXPECT_GE(reduction.reduced.cardinality(), 1);
  // forward gates map target -> reduced: verify via adjoint preparation.
  Circuit forward(8);
  for (const Gate& g : reduction.forward_gates) forward.append(g);
  Circuit prep(8);
  // Prepare `reduced` trivially with a nested mflow, then undo.
  const MFlowResult tail = mflow_prepare(reduction.reduced);
  ASSERT_FALSE(tail.timed_out);
  prep.append(tail.circuit);
  prep.append(forward.adjoint());
  verify_preparation_or_throw(prep, target);
}

TEST(MFlow, TimeBudgetReportsTle) {
  Rng rng(207);
  // Effectively zero budget: must time out on a nontrivial state.
  const QuantumState target = make_random_uniform(12, 64, rng);
  MFlowOptions options;
  options.time_budget_seconds = 1e-9;
  const auto res = mflow_prepare(target, options);
  EXPECT_TRUE(res.timed_out);
}

TEST(MFlow, DenseStatesVerify) {
  Rng rng(208);
  const QuantumState target = make_random_uniform(6, 32, rng);
  const auto res = mflow_prepare(target);
  ASSERT_FALSE(res.timed_out);
  verify_preparation_or_throw(res.circuit, target);
}

}  // namespace
}  // namespace qsp
