#include "service/synthesis_service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arch/routing.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

ServiceRequest request_for(QuantumState state, WorkflowOptions options = {}) {
  ServiceRequest request;
  request.state = std::move(state);
  request.options = std::move(options);
  return request;
}

std::vector<QuantumState> family_batch() {
  return {make_ghz(4), make_w(4), make_dicke(4, 2)};
}

TEST(SynthesisService, ColdBatchPreparesAndVerifies) {
  SynthesisServiceOptions options;
  options.num_workers = 2;
  SynthesisService service(options);
  std::vector<ServiceRequest> batch;
  for (const QuantumState& state : family_batch()) {
    batch.push_back(request_for(state));
  }
  const std::vector<ServiceResponse> responses =
      service.run_batch(std::move(batch));
  const std::vector<QuantumState> targets = family_batch();
  ASSERT_EQ(responses.size(), targets.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].result.found);
    verify_preparation_or_throw(responses[i].result.circuit, targets[i]);
  }
  EXPECT_EQ(service.requests_served(), targets.size());
}

TEST(SynthesisService, WarmBatchIsBitIdenticalToCold) {
  SynthesisServiceOptions options;
  options.num_workers = 2;
  SynthesisService service(options);
  auto make_batch = [] {
    std::vector<ServiceRequest> batch;
    for (const QuantumState& state : family_batch()) {
      batch.push_back(request_for(state));
    }
    return batch;
  };
  const std::vector<ServiceResponse> cold = service.run_batch(make_batch());
  const EquivalenceCacheStats cold_stats = service.cache_stats();
  EXPECT_GE(cold_stats.insertions, 1u);

  const std::vector<ServiceResponse> warm = service.run_batch(make_batch());
  const EquivalenceCacheStats warm_stats = service.cache_stats();
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    ASSERT_TRUE(warm[i].result.found);
    // The whole workflow circuit, not just the tail: bit-identical.
    EXPECT_EQ(warm[i].result.circuit, cold[i].result.circuit) << i;
  }
  EXPECT_GT(warm_stats.hits, cold_stats.hits);
}

TEST(SynthesisService, ServiceOptLevelOverridesRequests) {
  // A service pinned to O0 must ignore the per-request level: no pass
  // applications are reported. An unpinned service honors the request's
  // default O1 and reports the pipeline's work.
  SynthesisServiceOptions pinned;
  pinned.num_workers = 1;
  pinned.opt_level = OptLevel::kO0;
  SynthesisService service_o0(pinned);
  WorkflowOptions wants_o2;
  wants_o2.opt_level = OptLevel::kO2;
  const ServiceResponse raw =
      service_o0.submit(request_for(make_w(4), wants_o2)).get();
  ASSERT_TRUE(raw.result.found);
  EXPECT_TRUE(raw.result.passes.passes.empty());
  EXPECT_EQ(raw.result.passes.gates_delta(), 0);

  SynthesisService service_default{SynthesisServiceOptions{}};
  const ServiceResponse cleaned =
      service_default.submit(request_for(make_w(4))).get();
  ASSERT_TRUE(cleaned.result.found);
  EXPECT_FALSE(cleaned.result.passes.passes.empty());
  EXPECT_LE(cleaned.result.circuit.cnot_cost(),
            raw.result.circuit.cnot_cost());
  verify_preparation_or_throw(cleaned.result.circuit, make_w(4));
  verify_preparation_or_throw(raw.result.circuit, make_w(4));
}

TEST(SynthesisService, ServiceTargetOverridesRequests) {
  // A fleet deployed for one backend pins the gate set the same way it
  // pins the opt level: a request asking for CNOT still comes back
  // legalized for the service's target.
  SynthesisServiceOptions pinned;
  pinned.num_workers = 1;
  pinned.target = Target::cz();
  SynthesisService service(pinned);
  WorkflowOptions wants_cnot;  // default target
  const ServiceResponse response =
      service.submit(request_for(make_ghz(4), wants_cnot)).get();
  ASSERT_TRUE(response.result.found);
  EXPECT_EQ(response.result.target, "cz");
  EXPECT_TRUE(Target::cz().is_native_circuit(response.result.circuit));
  verify_preparation_or_throw(response.result.circuit, make_ghz(4));

  // Unpinned: the per-request target is honored.
  SynthesisService unpinned{SynthesisServiceOptions{}};
  WorkflowOptions wants_rzz;
  wants_rzz.target = Target::rzz();
  const ServiceResponse rzz =
      unpinned.submit(request_for(make_ghz(4), wants_rzz)).get();
  ASSERT_TRUE(rzz.result.found);
  EXPECT_EQ(rzz.result.target, "rzz");
  EXPECT_TRUE(Target::rzz().is_native_circuit(rzz.result.circuit));
  verify_preparation_or_throw(rzz.result.circuit, make_ghz(4));
}

TEST(SynthesisService, SameClassVariantsShareOneSearch) {
  // "Per-user variants": a permuted copy of a cached state lands in the
  // same canonical class and is served by witness rewiring.
  Rng rng(53);
  QuantumState base(1);
  std::vector<int> perm{2, 0, 3, 1};
  QuantumState permuted(1);
  for (;;) {
    base = make_random_uniform(4, 5, rng);
    std::vector<Term> terms;
    for (const Term& t : base.terms()) {
      terms.push_back(Term{permute_bits(t.index, perm), t.amplitude});
    }
    permuted = QuantumState(4, std::move(terms));
    if (!(permuted == base)) break;  // need a genuine variant
  }

  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  // The rewired-hit assertion needs the cold search to actually reach the
  // exact tail and populate the cache: under ctest load the default
  // 1 s / 0.5 s kernel wall budgets can exhaust and divert the request to
  // a fallback that never inserts. Budgets are not what this test
  // measures.
  WorkflowOptions unconstrained;
  unconstrained.exact.astar.time_budget_seconds = 0.0;
  unconstrained.exact.beam.time_budget_seconds = 0.0;
  const ServiceResponse cold =
      service.submit(request_for(base, unconstrained)).get();
  ASSERT_TRUE(cold.result.found);
  const ServiceResponse warm =
      service.submit(request_for(permuted, unconstrained)).get();
  ASSERT_TRUE(warm.result.found);
  EXPECT_GE(service.cache_stats().rewired_hits, 1u);
  verify_preparation_or_throw(warm.result.circuit, permuted);
}

TEST(SynthesisService, CacheHitKeepsDeviceSizedRegisterAndConformance) {
  // Satellite regression mirroring PR 3's device-sized-register fix: a
  // cached tail template synthesized on a host patch must come back
  // remapped and routed so the response conforms to the requesting
  // device — same register width and respects_coupling as the cold path.
  const auto device =
      std::make_shared<const CouplingGraph>(CouplingGraph::line(5));
  WorkflowOptions workflow;
  workflow.coupling = device;
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  const QuantumState target = make_ghz(4);

  const ServiceResponse cold =
      service.submit(request_for(target, workflow)).get();
  ASSERT_TRUE(cold.result.found);
  ASSERT_EQ(cold.result.circuit.num_qubits(), device->num_qubits());
  ASSERT_TRUE(respects_coupling(cold.result.circuit, *device));
  verify_preparation_or_throw(cold.result.circuit, target);

  const ServiceResponse warm =
      service.submit(request_for(target, workflow)).get();
  ASSERT_TRUE(warm.result.found);
  EXPECT_GE(service.cache_stats().hits, 1u);
  EXPECT_EQ(warm.result.circuit.num_qubits(), device->num_qubits());
  EXPECT_TRUE(respects_coupling(warm.result.circuit, *device));
  EXPECT_EQ(warm.result.circuit, cold.result.circuit);
  verify_preparation_or_throw(warm.result.circuit, target);
}

TEST(SynthesisService, ConcurrentIdenticalRequestsDeduplicateInFlight) {
  SynthesisServiceOptions options;
  options.num_workers = 4;
  SynthesisService service(options);
  WorkflowOptions workflow;
  // Plenty of head room so waiting threads never time out and fall back
  // to private searches on a loaded machine.
  workflow.exact.astar.time_budget_seconds = 60.0;
  const QuantumState target = make_dicke(4, 2);
  constexpr int kRequests = 6;
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.submit(request_for(target, workflow)));
  }
  std::vector<ServiceResponse> responses;
  for (auto& future : futures) responses.push_back(future.get());
  for (const ServiceResponse& response : responses) {
    ASSERT_TRUE(response.result.found);
    EXPECT_EQ(response.result.circuit, responses.front().result.circuit);
    verify_preparation_or_throw(response.result.circuit, target);
  }
  const EquivalenceCacheStats stats = service.cache_stats();
  // One kernel search total: the first request owns the class, every
  // concurrent duplicate waits on the in-flight marker and then hits.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kRequests) - 1);
}

TEST(SynthesisService, SearchLevelParallelismComposesWithWorkerPool) {
  // Requests carrying WorkflowOptions::num_threads run their exact-tail
  // searches on the sharded kernels inside a service worker; the beam
  // kernel's thread-count determinism means the answers are bit-identical
  // to a serial request for the same state. share_cache is off so both
  // requests really search.
  SynthesisServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.share_cache = false;
  SynthesisService service(service_options);

  WorkflowOptions serial;
  serial.exact_max_qubits = 5;
  serial.exact.astar.node_budget = 50;  // force the beam fallback
  serial.exact.beam.time_budget_seconds = 0.0;
  serial.exact.beam.beam_width = 256;
  serial.exact.beam.max_controls = -1;
  WorkflowOptions parallel = serial;
  parallel.num_threads = 4;

  const QuantumState target = make_dicke(5, 1);
  std::vector<ServiceRequest> batch;
  batch.push_back(request_for(target, serial));
  batch.push_back(request_for(target, parallel));
  const std::vector<ServiceResponse> responses =
      service.run_batch(std::move(batch));
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].result.found);
  ASSERT_TRUE(responses[1].result.found);
  EXPECT_TRUE(responses[0].result.circuit == responses[1].result.circuit);
  // Both aborted their A* stage on the tiny node budget: the truncation
  // must surface through the service response.
  EXPECT_TRUE(responses[0].result.budget_exhausted);
  EXPECT_TRUE(responses[1].result.budget_exhausted);
  verify_preparation_or_throw(responses[1].result.circuit, target);
}

TEST(SynthesisService, RequestExceptionsPropagateThroughFutures) {
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  WorkflowOptions workflow;
  // Disconnected device: the Solver constructor rejects it.
  workflow.coupling = std::make_shared<const CouplingGraph>(
      CouplingGraph(4, {{0, 1}}));
  auto future = service.submit(request_for(make_ghz(4), workflow));
  EXPECT_THROW(future.get(), std::invalid_argument);
  // The service stays healthy afterwards.
  const ServiceResponse ok = service.submit(request_for(make_ghz(3))).get();
  EXPECT_TRUE(ok.result.found);
}

TEST(SynthesisService, PerRequestCacheOverrideWins) {
  // A request carrying its own cache must not touch the service cache.
  SynthesisServiceOptions options;
  options.num_workers = 1;
  SynthesisService service(options);
  WorkflowOptions workflow;
  workflow.cache = std::make_shared<EquivalenceCache>();
  const ServiceResponse r =
      service.submit(request_for(make_dicke(4, 2), workflow)).get();
  ASSERT_TRUE(r.result.found);
  EXPECT_EQ(service.cache_stats().lookups, 0u);
  EXPECT_GE(
      std::static_pointer_cast<EquivalenceCache>(workflow.cache)->stats()
          .lookups,
      1u);
}

}  // namespace
}  // namespace qsp
