// Differential test harness for the registered-pass pipeline: every
// registered pass and every -O level runs over the shared random-circuit
// corpus (pass_test_util.hpp) and must preserve the prepared state, never
// increase cost, never widen the gate set, and keep routed circuits
// routed. Also pins the report algebra (per-pass deltas telescope to the
// whole-pipeline delta), pipeline idempotence, and the debug verification
// hook's ability to catch a contract-violating pass.

#include "circuit/pass_pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "arch/routing.hpp"
#include "circuit/pass.hpp"
#include "flow/solver.hpp"
#include "pass_test_util.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

constexpr double kOverlapTolerance = 1e-7;

PipelineOptions verified_options(OptLevel level) {
  PipelineOptions options;
  options.level = level;
  // Force the debug hook on even in release builds: the harness should
  // exercise the verification path everywhere it runs.
  options.verify_each_pass = true;
  return options;
}

TEST(PassPipeline, RegistryHasUniqueNonEmptyNames) {
  std::set<std::string> names;
  for (const Pass* pass : PassPipeline::registry()) {
    ASSERT_NE(pass, nullptr);
    EXPECT_FALSE(pass->name().empty());
    EXPECT_TRUE(names.insert(std::string(pass->name())).second)
        << "duplicate pass name: " << pass->name();
    EXPECT_NE(pass->preserves() & kPreservesPreparation, 0u);
  }
  EXPECT_GE(names.size(), 4u);
}

TEST(PassPipeline, FindLocatesEveryRegisteredPass) {
  for (const Pass* pass : PassPipeline::registry()) {
    EXPECT_EQ(PassPipeline::find(pass->name()), pass);
  }
  EXPECT_EQ(PassPipeline::find("no-such-pass"), nullptr);
}

TEST(PassPipeline, LevelsAreNestedSubsets) {
  EXPECT_TRUE(PassPipeline::level_passes(OptLevel::kO0).empty());
  const auto o1 = PassPipeline::level_passes(OptLevel::kO1);
  const auto o2 = PassPipeline::level_passes(OptLevel::kO2);
  ASSERT_LT(o1.size(), o2.size());
  for (std::size_t i = 0; i < o1.size(); ++i) EXPECT_EQ(o1[i], o2[i]);
  EXPECT_EQ(opt_level_name(OptLevel::kO0), "O0");
  EXPECT_EQ(opt_level_name(OptLevel::kO1), "O1");
  EXPECT_EQ(opt_level_name(OptLevel::kO2), "O2");
}

// Every registered pass, alone, over the whole corpus: preparation
// preserved always; cost monotone and gate kinds a subset of the input's
// for the gate-set-preserving passes (the lowering stages legitimately
// grow circuits and introduce primitive kinds).
TEST(PassPipeline, EveryPassSoundOnCorpus) {
  const PassOptions pass_options;
  for (const Circuit& circuit : test::random_circuit_corpus()) {
    std::set<GateKind> kinds_before;
    for (const Gate& g : circuit.gates()) kinds_before.insert(g.kind());
    for (const Pass* pass : PassPipeline::registry()) {
      Circuit rewritten = circuit;
      pass->run(rewritten, pass_options);
      if ((pass->preserves() & kPreservesGateSet) != 0) {
        EXPECT_LE(rewritten.size(), circuit.size()) << pass->name();
        EXPECT_LE(rewritten.cnot_cost(), circuit.cnot_cost()) << pass->name();
        for (const Gate& g : rewritten.gates()) {
          EXPECT_TRUE(kinds_before.count(g.kind()) > 0)
              << pass->name() << " introduced " << g.to_string();
        }
      }
      EXPECT_NEAR(test::preparation_overlap(circuit, rewritten), 1.0,
                  kOverlapTolerance)
          << pass->name() << " broke preparation on\n"
          << circuit.to_string();
    }
  }
}

// Every level over the whole corpus, with the verification hook armed: the
// pipeline must terminate, preserve preparation, and never cost more than
// its input; O2 must never lose to O1.
TEST(PassPipeline, EveryLevelSoundOnCorpus) {
  for (const Circuit& circuit : test::random_circuit_corpus()) {
    const Circuit o1 =
        optimize_circuit(circuit, verified_options(OptLevel::kO1));
    const Circuit o2 =
        optimize_circuit(circuit, verified_options(OptLevel::kO2));
    const Circuit o0 =
        optimize_circuit(circuit, verified_options(OptLevel::kO0));
    EXPECT_EQ(o0, circuit);  // O0 is the identity.
    EXPECT_LE(o1.size(), circuit.size());
    EXPECT_LE(o2.size(), o1.size());
    EXPECT_LE(o1.cnot_cost(), circuit.cnot_cost());
    EXPECT_LE(o2.cnot_cost(), o1.cnot_cost());
    EXPECT_NEAR(test::preparation_overlap(circuit, o1), 1.0,
                kOverlapTolerance);
    EXPECT_NEAR(test::preparation_overlap(circuit, o2), 1.0,
                kOverlapTolerance);
  }
}

// Device-native corpora stay device-native through every pass and level.
TEST(PassPipeline, CouplingConformancePreserved) {
  const PassOptions pass_options;
  Rng rng(0xC09);
  for (const CouplingGraph& device :
       {CouplingGraph::line(5), CouplingGraph::ring(5),
        CouplingGraph::grid(2, 3)}) {
    for (int i = 0; i < 4; ++i) {
      const Circuit circuit = test::random_coupled_circuit(device, 50, rng);
      ASSERT_TRUE(respects_coupling(circuit, device));
      for (const Pass* pass : PassPipeline::registry()) {
        Circuit rewritten = circuit;
        pass->run(rewritten, pass_options);
        EXPECT_TRUE(respects_coupling(rewritten, device)) << pass->name();
      }
      for (const OptLevel level :
           {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2}) {
        const Circuit out = optimize_circuit(circuit, verified_options(level));
        EXPECT_TRUE(respects_coupling(out, device))
            << opt_level_name(level);
        EXPECT_NEAR(test::preparation_overlap(circuit, out), 1.0,
                    kOverlapTolerance);
      }
    }
  }
}

// Satellite: the per-pass deltas in a PipelineReport telescope exactly to
// the whole-pipeline delta, for gates, depth and CNOT cost alike.
TEST(PassPipeline, ReportDeltasSumToPipelineDelta) {
  for (const Circuit& circuit : test::random_circuit_corpus()) {
    for (const OptLevel level :
         {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2}) {
      PipelineReport report;
      const Circuit out =
          optimize_circuit(circuit, verified_options(level), &report);
      EXPECT_EQ(report.gates_before, circuit.size());
      EXPECT_EQ(report.gates_after, out.size());
      EXPECT_EQ(report.depth_before, circuit.depth());
      EXPECT_EQ(report.depth_after, out.depth());
      EXPECT_EQ(report.cnot_cost_before, circuit.cnot_cost());
      EXPECT_EQ(report.cnot_cost_after, out.cnot_cost());
      std::int64_t gates = 0;
      std::int64_t depth = 0;
      std::int64_t cnots = 0;
      for (const PassReport& pr : report.passes) {
        gates += pr.gates_delta();
        depth += pr.depth_delta();
        cnots += pr.cnot_cost_delta();
        EXPECT_NE(PassPipeline::find(pr.pass), nullptr) << pr.pass;
      }
      EXPECT_EQ(gates, report.gates_delta()) << opt_level_name(level);
      EXPECT_EQ(depth, report.depth_delta()) << opt_level_name(level);
      EXPECT_EQ(cnots, report.cnot_cost_delta()) << opt_level_name(level);
    }
  }
}

// Satellite: the pipeline is idempotent — a second run at the same level
// changes nothing and reports all-zero deltas.
TEST(PassPipeline, IdempotentAtEveryLevel) {
  for (const Circuit& circuit : test::random_circuit_corpus()) {
    for (const OptLevel level :
         {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2}) {
      const Circuit once = optimize_circuit(circuit, verified_options(level));
      PipelineReport report;
      const Circuit twice =
          optimize_circuit(once, verified_options(level), &report);
      EXPECT_EQ(twice, once) << opt_level_name(level);
      EXPECT_EQ(report.iterations, 0) << opt_level_name(level);
      EXPECT_EQ(report.gates_delta(), 0);
      EXPECT_EQ(report.depth_delta(), 0);
      EXPECT_EQ(report.cnot_cost_delta(), 0);
      for (const PassReport& pr : report.passes) {
        EXPECT_FALSE(pr.changed) << pr.pass;
        EXPECT_EQ(pr.gates_delta(), 0) << pr.pass;
      }
    }
  }
}

// A pass that claims to preserve everything but corrupts the state: the
// verification hook must name it in a std::logic_error.
class CorruptingPass final : public Pass {
 public:
  std::string_view name() const override { return "corrupting-test-pass"; }
  unsigned preserves() const override { return kPreservesAll; }
  bool run(Circuit& circuit, const PassOptions&) const override {
    Circuit out(circuit.num_qubits());
    bool tweaked = false;
    for (const Gate& g : circuit.gates()) {
      if (!tweaked && g.kind() == GateKind::kRy) {
        out.append(Gate::ry(g.target(), g.theta() + 0.7));
        tweaked = true;
        continue;
      }
      out.append(g);
    }
    circuit = std::move(out);
    return tweaked;
  }
};

TEST(PassPipeline, VerifyHookCatchesCorruptingPass) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.4));
  circuit.append(Gate::cnot(0, 1));
  const CorruptingPass corrupting;
  PipelineOptions options;
  options.verify_each_pass = true;
  options.max_iterations = 1;
  const PassPipeline pipeline({&corrupting}, options);
  EXPECT_THROW(pipeline.run(circuit), std::logic_error);
  // With verification off the pipeline trusts the pass (release default).
  options.verify_each_pass = false;
  const PassPipeline trusting({&corrupting}, options);
  EXPECT_NO_THROW(trusting.run(circuit));
}

// A pass that grows the circuit violates the monotone-cost contract even
// though the preparation is intact.
class PaddingPass final : public Pass {
 public:
  std::string_view name() const override { return "padding-test-pass"; }
  unsigned preserves() const override { return kPreservesAll; }
  bool run(Circuit& circuit, const PassOptions&) const override {
    circuit.append(Gate::x(0));
    circuit.append(Gate::x(0));
    return true;
  }
};

TEST(PassPipeline, VerifyHookCatchesGateCountGrowth) {
  Circuit circuit(2);
  circuit.append(Gate::ry(0, 0.4));
  const PaddingPass padding;
  PipelineOptions options;
  options.verify_each_pass = true;
  options.max_iterations = 1;
  const PassPipeline pipeline({&padding}, options);
  EXPECT_THROW(pipeline.run(circuit), std::logic_error);
}

// The workflow-facing knob: O0 must leave the stitched stages alone, O2
// must cost no more than O0, and every level must still prepare the state.
TEST(PassPipeline, SolverThreadsOptLevelThrough) {
  Rng rng(0x50F7);
  const QuantumState target = make_random_uniform(5, 6, rng);
  WorkflowResult results[3];
  const OptLevel levels[3] = {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2};
  for (int i = 0; i < 3; ++i) {
    WorkflowOptions options;
    options.opt_level = levels[i];
    // The cross-level cost comparison needs all three runs on the same
    // search path: under ctest load the default 1 s / 0.5 s kernel wall
    // budgets can exhaust mid-run and send one level down a fallback with
    // a different base circuit. Budgets are not what this test measures.
    options.exact.astar.time_budget_seconds = 0.0;
    options.exact.beam.time_budget_seconds = 0.0;
    const Solver solver(options);
    results[i] = solver.prepare(target);
    ASSERT_TRUE(results[i].found) << opt_level_name(levels[i]);
    EXPECT_TRUE(verify_preparation(results[i].circuit, target).ok)
        << opt_level_name(levels[i]);
  }
  EXPECT_TRUE(results[0].passes.passes.empty());
  EXPECT_FALSE(results[1].passes.passes.empty());
  EXPECT_LE(results[1].circuit.cnot_cost(), results[0].circuit.cnot_cost());
  EXPECT_LE(results[2].circuit.cnot_cost(), results[0].circuit.cnot_cost());
  EXPECT_EQ(results[0].passes.gates_delta(), 0);
}

}  // namespace
}  // namespace qsp
