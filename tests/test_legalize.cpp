// Differential harness for the staged backend legalization: for every
// built-in target and every -O level, lowering/pipelining a random corpus
// must produce a circuit that (a) is native for the target and (b)
// prepares the same state (preparation_overlap is global-phase-blind, so
// decompositions that differ from CNOT by a global phase still score 1).
//
// CI's lowering matrix narrows the sweep per leg: QSP_TARGET restricts
// the target list and QSP_OPT_LEVEL the level list, so a cz/O2 job under
// ASan doesn't redundantly re-run the other eleven combinations.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "arch/coupling.hpp"
#include "arch/routing.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/lowering.hpp"
#include "circuit/pass_pipeline.hpp"
#include "circuit/target.hpp"
#include "pass_test_util.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

std::vector<Target> targets_under_test() {
  if (const char* env = std::getenv("QSP_TARGET")) {
    return {Target::by_name(env)};
  }
  return Target::builtin();
}

std::vector<OptLevel> levels_under_test() {
  if (const char* env = std::getenv("QSP_OPT_LEVEL")) {
    const int level = std::stoi(env);
    return {static_cast<OptLevel>(level)};
  }
  return {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2};
}

TEST(Legalize, LowerOntoIsNativeAndEquivalent) {
  const auto corpus = test::random_circuit_corpus();
  for (const Target& target : targets_under_test()) {
    for (const Circuit& circuit : corpus) {
      const Circuit low = lower_onto(circuit, target);
      ASSERT_TRUE(target.is_native_circuit(low))
          << target.name() << " n=" << circuit.num_qubits();
      ASSERT_NEAR(test::preparation_overlap(circuit, low), 1.0, 1e-7)
          << target.name() << " n=" << circuit.num_qubits();
    }
  }
}

TEST(Legalize, PipelineComposesOptimizationWithLegalization) {
  // One fixpoint loop runs the level's cleanup passes AND the lowering
  // stages; the result must be native and equivalent at every level.
  const auto corpus = test::random_circuit_corpus();
  for (const Target& target : targets_under_test()) {
    for (const OptLevel level : levels_under_test()) {
      PipelineOptions options;
      options.level = level;
      options.lower_to_target = true;
      options.pass.target = target;
      options.pass.elide_zero_rotations = true;
      const PassPipeline pipeline(options);
      for (const Circuit& circuit : corpus) {
        const Circuit out = pipeline.run(circuit);
        ASSERT_TRUE(target.is_native_circuit(out))
            << target.name() << " " << opt_level_name(level)
            << " n=" << circuit.num_qubits();
        ASSERT_NEAR(test::preparation_overlap(circuit, out), 1.0, 1e-7)
            << target.name() << " " << opt_level_name(level)
            << " n=" << circuit.num_qubits();
      }
    }
  }
}

TEST(Legalize, ElisionStaysEquivalentPerTarget) {
  test::CorpusOptions corpus_options;
  corpus_options.near_zero_fraction = 0.4;  // stress the elision path
  const auto corpus = test::random_circuit_corpus(corpus_options);
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  for (const Target& target : targets_under_test()) {
    for (const Circuit& circuit : corpus) {
      const Circuit low = lower_onto(circuit, target, elide);
      ASSERT_TRUE(target.is_native_circuit(low)) << target.name();
      ASSERT_NEAR(test::preparation_overlap(circuit, low), 1.0, 1e-7)
          << target.name() << " n=" << circuit.num_qubits();
    }
  }
}

TEST(Legalize, LegalizationPreservesCoupling) {
  // A routed (device-native CNOT) circuit legalized for a target stays on
  // the coupling edges: native-legalize rewrites each CNOT in place and
  // never moves two-qubit gates to new wire pairs.
  const CouplingGraph device = CouplingGraph::line(5);
  Rng rng(0xBEEF);
  for (const Target& target : targets_under_test()) {
    for (int trial = 0; trial < 8; ++trial) {
      const Circuit routed = test::random_coupled_circuit(device, 40, rng);
      ASSERT_TRUE(respects_coupling(routed, device));
      const Circuit low = lower_onto(routed, target);
      ASSERT_TRUE(respects_coupling(low, device, target)) << target.name();
      ASSERT_NEAR(test::preparation_overlap(routed, low), 1.0, 1e-7)
          << target.name();
    }
  }
}

TEST(Legalize, IswapCountsTwicePerCnot) {
  // No single-iSwap CNOT exists: the legalizer spends exactly
  // natives_per_cnot() iSwaps per logical CNOT, and the generalized
  // counter sees the multiplier.
  Circuit c(3);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));
  const Circuit low = lower_onto(c, Target::iswap());
  EXPECT_EQ(two_qubit_gate_count(low, Target::iswap()), 4);
  EXPECT_EQ(count_two_qubit_after_lowering(c, Target::iswap()), 4);
}

TEST(Legalize, CnotTargetIsIdentityOnNativeStreams) {
  // On the identity target an already-native stream passes through the
  // three stages untouched — the fixpoint terminates immediately.
  Circuit c(3);
  c.append(Gate::ry(0, 0.3));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::x(2));
  c.append(Gate::rz(1, -0.2));
  EXPECT_EQ(lower_onto(c, Target::cnot()), c);
  EXPECT_EQ(lower(c), c);
}

}  // namespace
}  // namespace qsp
