// Regression and soundness tests for the commutation-aware peephole
// passes and the gates_commute predicate they lean on. The headline
// regression is the MCRy-control trap: a CNOT whose *target* lands on a
// wire some MCRy reads must NOT be treated as commuting (it flips the
// value the rotation's control reads), while a CNOT that merely *reads*
// that wire commutes fine. An unsound predicate here silently reorders
// rotations and corrupts the prepared state, so the predicate is pinned
// both directly and through the O2 pipeline, plus a randomized
// matrix-level soundness sweep.

#include "circuit/pass.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuit/pass_pipeline.hpp"
#include "phase/complex_statevector.hpp"
#include "pass_test_util.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

Circuit o2(const Circuit& circuit) {
  PipelineOptions options;
  options.level = OptLevel::kO2;
  options.verify_each_pass = true;
  return optimize_circuit(circuit, options);
}

// --- the MCRy-control regression -----------------------------------------

TEST(GatesCommute, CnotTargetingMcryControlDoesNotCommute) {
  const Gate mcry = Gate::mcry({{1, true}, {2, true}}, 3, 0.8);
  // CNOT target on wire 1 = a control wire of the MCRy: X-action meets a
  // diagonal read, so reordering is unsound.
  EXPECT_FALSE(gates_commute(Gate::cnot(0, 1), mcry));
  EXPECT_FALSE(gates_commute(mcry, Gate::cnot(0, 1)));
  // Same trap with a plain X on the control wire.
  EXPECT_FALSE(gates_commute(Gate::x(1), mcry));
  // And with the CNOT targeting the other control wire.
  EXPECT_FALSE(gates_commute(Gate::cnot(0, 2), mcry));
}

TEST(GatesCommute, CnotReadingMcryControlCommutes) {
  const Gate mcry = Gate::mcry({{1, true}, {2, false}}, 3, 0.8);
  // CNOT control on wire 1: both gates only read the shared wire.
  EXPECT_TRUE(gates_commute(Gate::cnot(1, 0), mcry));
  EXPECT_TRUE(gates_commute(mcry, Gate::cnot(1, 0)));
  // Negative-polarity control wires are reads all the same.
  EXPECT_TRUE(gates_commute(Gate::cnot(2, 0), mcry));
  // Disjoint wires always commute.
  EXPECT_TRUE(gates_commute(Gate::cnot(4, 0), mcry));
}

TEST(GatesCommute, BasicPairs) {
  // Diagonal x diagonal: shared control wires, z-axis rotations.
  EXPECT_TRUE(gates_commute(Gate::cnot(0, 1), Gate::cnot(0, 2)));
  EXPECT_TRUE(gates_commute(Gate::rz(0, 0.3), Gate::cnot(0, 1)));
  EXPECT_TRUE(gates_commute(Gate::rz(0, 0.3), Gate::rz(0, 0.5)));
  // X x X: shared target wire.
  EXPECT_TRUE(gates_commute(Gate::cnot(0, 2), Gate::cnot(1, 2)));
  EXPECT_TRUE(gates_commute(Gate::x(2), Gate::cnot(1, 2)));
  // Ry x Ry: shared rotation target.
  EXPECT_TRUE(gates_commute(Gate::ry(1, 0.2), Gate::cry(0, 1, 0.4)));
  // Mixed modes on a shared wire do not commute.
  EXPECT_FALSE(gates_commute(Gate::rz(1, 0.3), Gate::cnot(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::ry(1, 0.3), Gate::cnot(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::ry(0, 0.3), Gate::cnot(0, 1)));
  EXPECT_FALSE(gates_commute(Gate::x(0), Gate::ry(0, 0.2)));
  // UCRz is diagonal on every wire, including its target.
  const Gate ucrz = Gate::ucrz({0}, 1, {0.3, 0.7});
  EXPECT_TRUE(gates_commute(ucrz, Gate::cnot(1, 2)));
  EXPECT_TRUE(gates_commute(ucrz, Gate::rz(1, 0.4)));
  EXPECT_FALSE(gates_commute(ucrz, Gate::cnot(2, 1)));
  // UCRy rotates its target: X there breaks commutation.
  const Gate ucry = Gate::ucry({0}, 1, {0.3, 0.7});
  EXPECT_FALSE(gates_commute(ucry, Gate::cnot(2, 1)));
  EXPECT_TRUE(gates_commute(ucry, Gate::ry(1, 0.4)));
}

// Matrix-level soundness: whenever gates_commute claims a pair commutes,
// applying them in either order must give the same unitary (checked
// column by column on the complex simulator, exact global phase).
TEST(GatesCommute, ClaimedPairsCommuteAsMatrices) {
  const int n = 4;
  test::CorpusOptions corpus;
  corpus.near_zero_fraction = 0.0;
  Rng rng(0xAC3D);
  int claimed = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const Gate a = test::random_gate(n, rng, corpus);
    const Gate b = test::random_gate(n, rng, corpus);
    if (!gates_commute(a, b)) continue;
    ++claimed;
    Circuit ab(n);
    ab.append(a);
    ab.append(b);
    Circuit ba(n);
    ba.append(b);
    ba.append(a);
    for (int x = 0; x < (1 << n); ++x) {
      Circuit prep_ab(n);
      Circuit prep_ba(n);
      for (int q = 0; q < n; ++q) {
        if ((x >> q) & 1) {
          prep_ab.append(Gate::x(q));
          prep_ba.append(Gate::x(q));
        }
      }
      prep_ab.append(ab);
      prep_ba.append(ba);
      ComplexStatevector sa(n);
      ComplexStatevector sb(n);
      sa.apply(prep_ab);
      sb.apply(prep_ba);
      for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
        ASSERT_NEAR(std::abs(sa.amplitudes()[i] - sb.amplitudes()[i]), 0.0,
                    1e-9)
            << a.to_string() << " vs " << b.to_string();
      }
    }
  }
  // The sweep must actually exercise the predicate.
  EXPECT_GT(claimed, 50);
}

// --- pipeline-level regressions ------------------------------------------

TEST(Peephole, CnotPairAcrossMcryControlWireIsNotFolded) {
  // The middle MCRy reads wire 1, the CNOT pair writes it: folding the
  // pair would change the prepared state. O2 must leave all three gates.
  Circuit c(4);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::mcry({{1, true}, {2, true}}, 3, 0.8));
  c.append(Gate::cnot(0, 1));
  // Make the trap observable: put weight on the control wires first.
  Circuit prep(4);
  prep.append(Gate::ry(0, 1.1));
  prep.append(Gate::ry(2, 2.0));
  prep.append(c);
  const Circuit out = o2(prep);
  EXPECT_EQ(out.size(), prep.size());
  EXPECT_NEAR(test::preparation_overlap(prep, out), 1.0, 1e-9);
}

TEST(Peephole, CnotPairAcrossMcryReadIsFolded) {
  // Here the MCRy reads wire 0 — the CNOT pair's *control* — so the pair
  // slides together and cancels.
  Circuit c(4);
  c.append(Gate::ry(0, 1.1));
  c.append(Gate::ry(2, 2.0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::mcry({{0, true}, {2, true}}, 3, 0.8));
  c.append(Gate::cnot(0, 1));
  const Circuit out = o2(c);
  EXPECT_EQ(out.size(), c.size() - 2);
  EXPECT_NEAR(test::preparation_overlap(c, out), 1.0, 1e-9);
}

TEST(Peephole, CnotFoldAcrossDiagonalRun) {
  // CNOT(0->1) ... CNOT(0->1) with only wire-0 reads in between.
  Circuit c(3);
  c.append(Gate::ry(0, 0.9));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.4));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::cnot(0, 1));
  const Circuit out = o2(c);
  EXPECT_NEAR(test::preparation_overlap(c, out), 1.0, 1e-9);
  EXPECT_EQ(out.size(), c.size() - 2);
  // The O1 adjacency sweep cannot see past the intervening reads.
  PipelineOptions o1_options;
  o1_options.level = OptLevel::kO1;
  EXPECT_EQ(optimize_circuit(c, o1_options).size(), c.size());
}

TEST(Peephole, RotationMergeAcrossCommutingCnot) {
  // Rz(0) commutes with a CNOT controlled on wire 0: the two halves fuse.
  Circuit c(2);
  c.append(Gate::ry(0, 0.7));
  c.append(Gate::rz(0, 0.3));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.5));
  const Circuit out = o2(c);
  EXPECT_EQ(out.size(), c.size() - 1);
  EXPECT_NEAR(test::preparation_overlap(c, out), 1.0, 1e-9);
  // An Ry on the CNOT's *target* must not merge through it. The control
  // needs its own Ry first: on a provably-|0> control the dataflow pass
  // would (correctly) drop the CNOT as dead and let the halves fuse.
  Circuit blocked(2);
  blocked.append(Gate::ry(0, 0.9));
  blocked.append(Gate::ry(1, 0.3));
  blocked.append(Gate::cnot(0, 1));
  blocked.append(Gate::ry(1, 0.5));
  EXPECT_EQ(o2(blocked).size(), blocked.size());
}

TEST(Peephole, OppositeRotationsAnnihilateAcrossCommutingGap) {
  // Fused angle is zero: both halves disappear entirely. Wire 1 gets an
  // Ry first so the CNOT's control is not provably |0> — otherwise the
  // dataflow pass (correctly) removes the CNOT as dead too.
  Circuit c(3);
  c.append(Gate::ry(0, 1.2));
  c.append(Gate::ry(1, 0.8));
  c.append(Gate::rz(1, 0.6));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::rz(1, -0.6));
  const Circuit out = o2(c);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_NEAR(test::preparation_overlap(c, out), 1.0, 1e-9);
}

TEST(Peephole, XPairFoldsAcrossDisjointGates) {
  Circuit c(3);
  c.append(Gate::x(0));
  c.append(Gate::ry(1, 0.4));
  c.append(Gate::cnot(1, 2));
  c.append(Gate::x(0));
  const Circuit out = o2(c);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_NEAR(test::preparation_overlap(c, out), 1.0, 1e-9);
}

TEST(Peephole, CommuteWindowBoundsTheBackwardWalk) {
  // A tight window stops the walk before the matching CNOT is reached.
  Circuit c(3);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.1));
  c.append(Gate::rz(0, 0.2));
  c.append(Gate::cnot(0, 1));
  PipelineOptions options;
  options.level = OptLevel::kO2;
  options.pass.commute_window = 1;
  options.max_iterations = 1;
  std::vector<const Pass*> fold_only = {
      PassPipeline::find("cnot-commute-fold")};
  const Circuit out = PassPipeline(fold_only, options).run(c);
  EXPECT_EQ(out.size(), c.size());
  options.pass.commute_window = 8;
  const Circuit folded = PassPipeline(fold_only, options).run(c);
  EXPECT_EQ(folded.size(), c.size() - 2);
}

}  // namespace
}  // namespace qsp
