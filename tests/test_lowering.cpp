#include "circuit/lowering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "pass_test_util.hpp"
#include "sim/statevector.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

// ---------------------------------------------------------------------------
// Frozen copy of the pre-refactor monolithic lower() (the single-function
// implementation the staged passes replaced), kept verbatim as the oracle
// for the bit-identity regression below: on the identity (CNOT) target the
// staged pipeline must reproduce this walk gate for gate, because every
// benchmark table and committed baseline was measured against it.
// ---------------------------------------------------------------------------
namespace legacy {

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis);

void emit_ucry(Circuit& out, const std::vector<int>& controls, int target,
               const std::vector<double>& pattern_angles,
               const LoweringOptions& options) {
  emit_ucr(out, controls, target, pattern_angles, options, /*z_axis=*/false);
}

void emit_cry(Circuit& out, const ControlLiteral& c, int target,
              double theta) {
  const double a = theta / 2;
  const double b = c.positive ? -theta / 2 : theta / 2;
  out.append(Gate::ry(target, a));
  out.append(Gate::cnot(c.qubit, target));
  out.append(Gate::ry(target, b));
  out.append(Gate::cnot(c.qubit, target));
}

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis) {
  auto rotation = [&](double theta) {
    return z_axis ? Gate::rz(target, theta) : Gate::ry(target, theta);
  };
  const std::size_t c = controls.size();
  if (c == 0) {
    if (std::abs(pattern_angles[0]) > options.angle_epsilon ||
        !options.elide_zero_rotations) {
      out.append(rotation(pattern_angles[0]));
    }
    return;
  }
  const std::vector<double> phi = ucry_multiplexor_angles(pattern_angles);
  const std::uint32_t slots = std::uint32_t{1} << c;
  std::uint32_t pending_mask = 0;
  auto flush = [&] {
    for (std::size_t b = 0; b < c; ++b) {
      if ((pending_mask >> b) & 1u) {
        out.append(Gate::cnot(controls[b], target));
      }
    }
    pending_mask = 0;
  };
  for (std::uint32_t j = 0; j < slots; ++j) {
    const bool zero = std::abs(phi[j]) <= options.angle_epsilon;
    if (!options.elide_zero_rotations || !zero) {
      flush();
      out.append(rotation(phi[j]));
    }
    const int change =
        (j + 1 == slots) ? static_cast<int>(c) - 1 : gray_change_bit(j);
    pending_mask ^= std::uint32_t{1} << change;
  }
  flush();
}

Circuit lower(const Circuit& circuit, const LoweringOptions& options) {
  Circuit out(circuit.num_qubits());
  auto trivial = [&](const Gate& g) {
    return options.elide_zero_rotations &&
           std::abs(g.theta()) <= options.angle_epsilon;
  };
  for (const Gate& g : circuit.gates()) {
    switch (g.kind()) {
      case GateKind::kX:
        out.append(g);
        break;
      case GateKind::kRy:
        if (!trivial(g)) out.append(g);
        break;
      case GateKind::kCNOT: {
        const ControlLiteral c = g.controls()[0];
        if (c.positive) {
          out.append(g);
        } else {
          out.append(Gate::x(c.qubit));
          out.append(Gate::cnot(c.qubit, g.target()));
          out.append(Gate::x(c.qubit));
        }
        break;
      }
      case GateKind::kCRy:
        emit_cry(out, g.controls()[0], g.target(), g.theta());
        break;
      case GateKind::kMCRy: {
        const Gate u = mcry_to_ucry(g);
        std::vector<int> controls;
        for (const auto& c : u.controls()) controls.push_back(c.qubit);
        emit_ucry(out, controls, u.target(), u.angles(), options);
        break;
      }
      case GateKind::kUCRy: {
        std::vector<int> controls;
        for (const auto& c : g.controls()) controls.push_back(c.qubit);
        emit_ucry(out, controls, g.target(), g.angles(), options);
        break;
      }
      case GateKind::kRz:
        if (!trivial(g)) out.append(g);
        break;
      case GateKind::kUCRz: {
        std::vector<int> controls;
        for (const auto& c : g.controls()) controls.push_back(c.qubit);
        emit_ucr(out, controls, g.target(), g.angles(), options,
                 /*z_axis=*/true);
        break;
      }
      default:
        // The monolithic lower() predates the device-native kinds; the
        // seed corpus never contains them.
        throw std::logic_error("legacy_lower: unexpected gate kind");
    }
  }
  return out;
}

}  // namespace legacy

/// Unitary-equality check on the full basis: applies both circuits to each
/// computational basis state and compares the resulting vectors.
void expect_same_unitary(const Circuit& a, const Circuit& b, int n) {
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ASSERT_NEAR(sa.amplitudes()[i], sb.amplitudes()[i], 1e-9)
          << "basis " << x << " component " << i;
    }
  }
}

TEST(Lowering, CryCostsTwoCnots) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 0.7));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 2);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, NegativeControlCry) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 1.1, /*positive=*/false));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 2);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, NegativeControlCnot) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1, /*positive=*/false));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 1);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, McryCostsPowerOfTwo) {
  for (int controls = 2; controls <= 4; ++controls) {
    Circuit c(controls + 1);
    std::vector<ControlLiteral> literals;
    for (int q = 0; q < controls; ++q) {
      literals.push_back(ControlLiteral{q, (q % 2) == 0});
    }
    c.append(Gate::mcry(literals, controls, 0.9));
    const Circuit low = lower(c);
    EXPECT_EQ(lowered_cnot_count(low), std::int64_t{1} << controls);
    expect_same_unitary(c, low, controls + 1);
  }
}

TEST(Lowering, UcryExactCost) {
  Rng rng(17);
  for (int controls = 1; controls <= 4; ++controls) {
    std::vector<int> cq;
    for (int q = 0; q < controls; ++q) cq.push_back(q);
    std::vector<double> angles(std::size_t{1} << controls);
    for (double& a : angles) a = rng.next_double(-3, 3);
    Circuit c(controls + 1);
    c.append(Gate::ucry(cq, controls, angles));
    const Circuit low = lower(c);
    EXPECT_EQ(lowered_cnot_count(low), std::int64_t{1} << controls);
    expect_same_unitary(c, low, controls + 1);
  }
}

TEST(Lowering, UcryElisionSavesOnZeroAngles) {
  // Angle table constant on one control: half the multiplexor rotations
  // vanish in the Walsh basis and elision shortens the chain.
  Circuit c(3);
  c.append(Gate::ucry({0, 1}, 2, {0.5, 0.5, 0.5, 0.5}));
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  const Circuit low = lower(c, elide);
  EXPECT_LT(lowered_cnot_count(low), 4);
  expect_same_unitary(c, low, 3);
}

TEST(Lowering, ElisionPreservesUnitaryOnRandomTables) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> angles(8);
    for (double& a : angles) {
      a = rng.next_bool(0.4) ? 0.0 : rng.next_double(-2, 2);
    }
    Circuit c(4);
    c.append(Gate::ucry({0, 1, 2}, 3, angles));
    LoweringOptions elide;
    elide.elide_zero_rotations = true;
    const Circuit low = lower(c, elide);
    expect_same_unitary(c, low, 4);
    EXPECT_LE(lowered_cnot_count(low), 8);
  }
}

TEST(Lowering, MultiplexorAnglesInvertWalsh) {
  // ucry_multiplexor_angles must satisfy: pattern angle a[s] =
  // sum_j (-1)^{popcount(s & gray(j))} phi[j].
  Rng rng(31);
  std::vector<double> a(8);
  for (double& v : a) v = rng.next_double(-1, 1);
  const auto phi = ucry_multiplexor_angles(a);
  for (std::uint32_t s = 0; s < 8; ++s) {
    double acc = 0.0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      acc += (parity(s, gray_code(j)) != 0) ? -phi[j] : phi[j];
    }
    EXPECT_NEAR(acc, a[s], 1e-12);
  }
}

TEST(Lowering, LoweredCountRejectsComposite) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 0.4));
  EXPECT_THROW(lowered_cnot_count(c), std::invalid_argument);
}

TEST(Lowering, StagedLoweringBitIdenticalToMonolithic) {
  // The acceptance bar of the pass split: on the identity (CNOT) target
  // the staged passes must reproduce the pre-refactor monolithic walk
  // gate for gate — same kinds, wires, and angle bit patterns (Circuit
  // operator== compares doubles exactly) — over the full seed corpus,
  // with and without zero-rotation elision.
  const auto corpus = test::random_circuit_corpus();
  LoweringOptions plain;
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Circuit& circuit = corpus[i];
    ASSERT_EQ(lower(circuit, plain), legacy::lower(circuit, plain))
        << "corpus circuit " << i << " (n=" << circuit.num_qubits() << ")";
    ASSERT_EQ(lower(circuit, elide), legacy::lower(circuit, elide))
        << "corpus circuit " << i << " (n=" << circuit.num_qubits()
        << ", elided)";
  }
}

TEST(Lowering, StagedPassSequenceHasThreeStages) {
  const auto& stages = lowering_pass_sequence();
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0]->name(), "mcry-expand");
  EXPECT_EQ(stages[1]->name(), "ucr-gray-lower");
  EXPECT_EQ(stages[2]->name(), "native-legalize");
  for (const Pass* stage : stages) {
    // Lowering legitimately changes the gate set but never the prepared
    // state or the wire pairs two-qubit gates act on.
    EXPECT_TRUE(stage->preserves() & kPreservesPreparation) << stage->name();
    EXPECT_TRUE(stage->preserves() & kPreservesCoupling) << stage->name();
    EXPECT_FALSE(stage->preserves() & kPreservesGateSet) << stage->name();
  }
}

TEST(Lowering, CountAfterLoweringHelper) {
  Circuit c(3);
  c.append(Gate::cry(0, 1, 0.4));
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, true}}, 2,
                      0.2));
  EXPECT_EQ(count_cnots_after_lowering(c), 2 + 4);
}

}  // namespace
}  // namespace qsp
