#include "circuit/lowering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

/// Unitary-equality check on the full basis: applies both circuits to each
/// computational basis state and compares the resulting vectors.
void expect_same_unitary(const Circuit& a, const Circuit& b, int n) {
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ASSERT_NEAR(sa.amplitudes()[i], sb.amplitudes()[i], 1e-9)
          << "basis " << x << " component " << i;
    }
  }
}

TEST(Lowering, CryCostsTwoCnots) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 0.7));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 2);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, NegativeControlCry) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 1.1, /*positive=*/false));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 2);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, NegativeControlCnot) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1, /*positive=*/false));
  const Circuit low = lower(c);
  EXPECT_EQ(lowered_cnot_count(low), 1);
  expect_same_unitary(c, low, 2);
}

TEST(Lowering, McryCostsPowerOfTwo) {
  for (int controls = 2; controls <= 4; ++controls) {
    Circuit c(controls + 1);
    std::vector<ControlLiteral> literals;
    for (int q = 0; q < controls; ++q) {
      literals.push_back(ControlLiteral{q, (q % 2) == 0});
    }
    c.append(Gate::mcry(literals, controls, 0.9));
    const Circuit low = lower(c);
    EXPECT_EQ(lowered_cnot_count(low), std::int64_t{1} << controls);
    expect_same_unitary(c, low, controls + 1);
  }
}

TEST(Lowering, UcryExactCost) {
  Rng rng(17);
  for (int controls = 1; controls <= 4; ++controls) {
    std::vector<int> cq;
    for (int q = 0; q < controls; ++q) cq.push_back(q);
    std::vector<double> angles(std::size_t{1} << controls);
    for (double& a : angles) a = rng.next_double(-3, 3);
    Circuit c(controls + 1);
    c.append(Gate::ucry(cq, controls, angles));
    const Circuit low = lower(c);
    EXPECT_EQ(lowered_cnot_count(low), std::int64_t{1} << controls);
    expect_same_unitary(c, low, controls + 1);
  }
}

TEST(Lowering, UcryElisionSavesOnZeroAngles) {
  // Angle table constant on one control: half the multiplexor rotations
  // vanish in the Walsh basis and elision shortens the chain.
  Circuit c(3);
  c.append(Gate::ucry({0, 1}, 2, {0.5, 0.5, 0.5, 0.5}));
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  const Circuit low = lower(c, elide);
  EXPECT_LT(lowered_cnot_count(low), 4);
  expect_same_unitary(c, low, 3);
}

TEST(Lowering, ElisionPreservesUnitaryOnRandomTables) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> angles(8);
    for (double& a : angles) {
      a = rng.next_bool(0.4) ? 0.0 : rng.next_double(-2, 2);
    }
    Circuit c(4);
    c.append(Gate::ucry({0, 1, 2}, 3, angles));
    LoweringOptions elide;
    elide.elide_zero_rotations = true;
    const Circuit low = lower(c, elide);
    expect_same_unitary(c, low, 4);
    EXPECT_LE(lowered_cnot_count(low), 8);
  }
}

TEST(Lowering, MultiplexorAnglesInvertWalsh) {
  // ucry_multiplexor_angles must satisfy: pattern angle a[s] =
  // sum_j (-1)^{popcount(s & gray(j))} phi[j].
  Rng rng(31);
  std::vector<double> a(8);
  for (double& v : a) v = rng.next_double(-1, 1);
  const auto phi = ucry_multiplexor_angles(a);
  for (std::uint32_t s = 0; s < 8; ++s) {
    double acc = 0.0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      acc += (parity(s, gray_code(j)) != 0) ? -phi[j] : phi[j];
    }
    EXPECT_NEAR(acc, a[s], 1e-12);
  }
}

TEST(Lowering, LoweredCountRejectsComposite) {
  Circuit c(2);
  c.append(Gate::cry(0, 1, 0.4));
  EXPECT_THROW(lowered_cnot_count(c), std::invalid_argument);
}

TEST(Lowering, CountAfterLoweringHelper) {
  Circuit c(3);
  c.append(Gate::cry(0, 1, 0.4));
  c.append(Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, true}}, 2,
                      0.2));
  EXPECT_EQ(count_cnots_after_lowering(c), 2 + 4);
}

}  // namespace
}  // namespace qsp
