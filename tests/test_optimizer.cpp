#include "circuit/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "util/rng.hpp"

namespace qsp {
namespace {

void expect_same_unitary(const Circuit& a, const Circuit& b, int n) {
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      ASSERT_NEAR(sa.amplitudes()[i], sb.amplitudes()[i], 1e-9);
    }
  }
}

TEST(Optimizer, DropsZeroRotations) {
  Circuit c(2);
  c.append(Gate::ry(0, 0.0));
  c.append(Gate::cry(0, 1, 1e-15));
  c.append(Gate::ry(1, 0.5));
  const Circuit o = optimize(c);
  EXPECT_EQ(o.size(), 1u);
  EXPECT_EQ(o.gates()[0].kind(), GateKind::kRy);
}

TEST(Optimizer, CancelsAdjacentCnotPairs) {
  Circuit c(3);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::x(2));
  c.append(Gate::x(2));
  OptimizerStats stats;
  const Circuit o = optimize(c, {}, &stats);
  EXPECT_EQ(o.size(), 0u);
  EXPECT_EQ(stats.cnots_removed, 2);
  EXPECT_GE(stats.passes, 1);
}

TEST(Optimizer, DoesNotCancelAcrossInterferingGates) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::ry(1, 0.3));  // touches the target wire
  c.append(Gate::cnot(0, 1));
  const Circuit o = optimize(c);
  EXPECT_EQ(o.size(), 3u);
}

TEST(Optimizer, CancelsAcrossUnrelatedWires) {
  Circuit c(3);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::ry(2, 0.3));  // disjoint wire: commutes trivially
  c.append(Gate::cnot(0, 1));
  const Circuit o = optimize(c);
  EXPECT_EQ(o.size(), 1u);
  EXPECT_EQ(o.gates()[0].kind(), GateKind::kRy);
}

TEST(Optimizer, FusesRotations) {
  Circuit c(2);
  c.append(Gate::ry(0, 0.4));
  c.append(Gate::ry(0, 0.6));
  c.append(Gate::cry(0, 1, 0.2));
  c.append(Gate::cry(0, 1, -0.2));
  const Circuit o = optimize(c);
  ASSERT_EQ(o.size(), 1u);
  EXPECT_NEAR(o.gates()[0].theta(), 1.0, 1e-12);
}

TEST(Optimizer, PolarityMatters) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1, true));
  c.append(Gate::cnot(0, 1, false));
  const Circuit o = optimize(c);
  EXPECT_EQ(o.size(), 2u);  // different literals: no cancellation
}

TEST(Optimizer, ChainCancellation) {
  // X X X X collapses fully across repeated passes.
  Circuit c(1);
  for (int i = 0; i < 4; ++i) c.append(Gate::x(0));
  EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimizer, PreservesUnitaryOnRandomCircuits) {
  Rng rng(91);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 3;
    Circuit c(n);
    for (int g = 0; g < 40; ++g) {
      const int t = static_cast<int>(rng.next_below(n));
      const int ctrl = (t + 1 + static_cast<int>(rng.next_below(n - 1))) % n;
      switch (rng.next_below(4)) {
        case 0:
          c.append(Gate::ry(t, rng.next_bool(0.3)
                                   ? 0.0
                                   : rng.next_double(-1, 1)));
          break;
        case 1:
          c.append(Gate::x(t));
          break;
        case 2:
          c.append(Gate::cnot(ctrl, t, rng.next_bool()));
          break;
        default:
          c.append(Gate::cry(ctrl, t, rng.next_double(-1, 1)));
          break;
      }
    }
    const Circuit o = optimize(c);
    EXPECT_LE(o.size(), c.size());
    expect_same_unitary(c, o, n);
  }
}

TEST(Optimizer, UcryFusion) {
  Circuit c(2);
  c.append(Gate::ucry({0}, 1, {0.3, -0.2}));
  c.append(Gate::ucry({0}, 1, {-0.3, 0.2}));
  EXPECT_EQ(optimize(c).size(), 0u);
  Circuit d(2);
  d.append(Gate::ucry({0}, 1, {0.3, -0.2}));
  d.append(Gate::ucry({0}, 1, {0.1, 0.0}));
  const Circuit od = optimize(d);
  ASSERT_EQ(od.size(), 1u);
  EXPECT_NEAR(od.gates()[0].angles()[0], 0.4, 1e-12);
}

}  // namespace
}  // namespace qsp
