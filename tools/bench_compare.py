#!/usr/bin/env python3
"""Compare benchmark JSONL runs against a committed baseline.

Rows are matched by an identity key derived from their fields:

  kernel rows   (bench/micro_core hand-timed sweep): (kernel, n)
  search rows   (micro_core astar sweep):            (instance, method, threads)
  fig7 rows     (bench_fig7_runtime):                (instance, method, threads)

Two classes of checks:

  * Deterministic fields are compared exactly and ALWAYS enforced:
    `checksum` on kernel rows (bit-identity of canonical keys, heuristic
    values, and simulator amplitudes), `cnot_cost` and `optimal` on
    search rows. A mismatch means the optimization changed results, not
    just speed, and the tool exits nonzero.

  * Timing fields (`seconds_per_iter`, `seconds`) are reported as
    deltas. Under --strict — meant for same-machine A/B runs (e.g. CI
    comparing QSP_SIMD=scalar vs avx2 runs of the same build) — a
    `seconds_per_iter` slower than baseline by more than --tolerance
    (default 25%) fails; one-shot `seconds` rows stay report-only (a
    single search wall clock is too noisy to gate on). Cross-machine
    runs against the committed baseline should omit --strict — absolute
    timings are not comparable across hosts.

Rows present on only one side are reported; missing current rows fail
(coverage regressions should be loud), extra current rows do not.

Search-stat fields other than the deterministic ones (queue peaks, node
counts under threads > 1) are nondeterministic by design and never
compared.

Usage:
  tools/bench_compare.py baseline.jsonl current.jsonl [--strict]
      [--tolerance 0.25]
"""

import argparse
import json
import sys


def row_key(row):
    # `target` (backend gate set) is part of the identity of a row: the
    # same instance legalized for cz/iswap/rzz is a different measurement.
    # Rows predating the field (and CNOT-only sweeps that omit it) get
    # None, so old baselines keep matching.
    if "kernel" in row:
        return ("kernel", row["kernel"], row.get("n"), row.get("target"))
    if "instance" in row:
        return ("search", row["instance"], row.get("method"),
                row.get("threads"), row.get("target"))
    return None


def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            key = row_key(row)
            if key is None:
                continue
            if key in rows:
                raise SystemExit(f"{path}: duplicate row key {key}")
            rows[key] = row
    return rows


DETERMINISTIC_FIELDS = ("checksum", "cnot_cost", "optimal", "tle")
# Only the adaptively-timed per-iteration kernels are stable enough to
# gate on; one-shot search wall clocks (`seconds`) stay report-only even
# under --strict.
TIMING_FIELDS = ("seconds_per_iter", "seconds")
STRICT_TIMING_FIELDS = ("seconds_per_iter",)


def fmt_key(key):
    return "/".join(str(p) for p in key[1:] if p is not None)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--strict", action="store_true",
                    help="fail on timing regressions beyond --tolerance "
                         "(same-machine A/B runs only)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional timing regression under "
                         "--strict (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = []

    missing = sorted(set(base) - set(cur))
    for key in missing:
        failures.append(f"missing from current run: {fmt_key(key)}")
    for key in sorted(set(cur) - set(base)):
        print(f"  [new]  {fmt_key(key)} (not in baseline)")

    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        # A time-limited row's outcome depends on the host's speed, not
        # on correctness: report a flip but never enforce its fields.
        if b.get("tle") or c.get("tle"):
            if b.get("tle") != c.get("tle"):
                print(f"  [~] {fmt_key(key)} tle {b.get('tle')} -> "
                      f"{c.get('tle')} (budget-dependent; not enforced)")
            continue
        for field in DETERMINISTIC_FIELDS:
            if field in b and b[field] != c.get(field):
                failures.append(
                    f"{fmt_key(key)}: {field} {b[field]} -> {c.get(field)}")
        for field in TIMING_FIELDS:
            if field not in b or field not in c:
                continue
            bt, ct = b[field], c[field]
            if bt <= 0:
                continue
            delta = (ct - bt) / bt
            marker = " "
            if (args.strict and field in STRICT_TIMING_FIELDS
                    and delta > args.tolerance):
                failures.append(
                    f"{fmt_key(key)}: {field} regressed "
                    f"{delta * 100:+.1f}% ({bt:.3g}s -> {ct:.3g}s)")
                marker = "!"
            print(f"  [{marker}] {fmt_key(key):40s} {field} "
                  f"{bt:.3g} -> {ct:.3g} ({delta * 100:+.1f}%)")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(set(base) & set(cur))} rows compared, "
          f"deterministic fields identical"
          + (", timing within tolerance" if args.strict else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
