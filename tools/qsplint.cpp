// qsplint: lint OpenQASM 2.0 files (and bench JSONL outputs) with the
// static circuit linter (src/circuit/lint.hpp) and the flow-sensitive
// dataflow engine (src/circuit/dataflow.hpp). Every diagnostic carries
// its rule code (QL000..QL014) and severity; --json emits the machine
// form. Exit codes: 0 clean, 1 diagnostics found (errors, or warnings
// under --strict/--werror), 2 usage or I/O error.
//
//   qsplint file.qasm ...                lint QASM files
//   qsplint --target cz file.qasm        + native-set conformance
//   qsplint --coupling line:6 file.qasm  + coupling conformance
//   qsplint --dataflow file.qasm         per-wire fact table + the
//                                        flow-sensitive rules QL011..QL014
//   qsplint --jsonl results.jsonl        lint each line's "qasm" field of
//                                        a bench JSONL output
//   qsplint --json ...                   JSON report per input
//   qsplint --strict ...                 warnings are failures too
//   qsplint --werror ...                 promote warnings to errors

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/dataflow.hpp"
#include "circuit/lint.hpp"
#include "circuit/target.hpp"

namespace {

using qsp::CouplingGraph;
using qsp::DataflowOptions;
using qsp::LintOptions;
using qsp::LintReport;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] file...\n"
      << "  --target NAME    check native-set conformance"
      << " (cnot|cz|iswap|rzz)\n"
      << "  --coupling SPEC  check coupling conformance; SPEC ="
      << " full:N|line:N|ring:N|star:N|grid:RxC|heavy-hex:D\n"
      << "  --dataflow       run the flow-sensitive dataflow analysis:"
      << " print the\n"
      << "                   per-wire fact table and the QL011..QL014"
      << " diagnostics\n"
      << "  --data-qubits N  with --dataflow: wires at or above N are"
      << " workspace\n"
      << "                   wires that must end provably |0> (QL014)\n"
      << "  --jsonl          inputs are bench JSONL files; lint each"
      << " line's \"qasm\" field\n"
      << "  --json           emit a JSON diagnostic array per input\n"
      << "  --strict         warnings are failures too\n"
      << "  --werror         promote warnings to errors\n"
      << "exit codes: 0 clean, 1 findings (errors, or warnings under"
      << " --strict/--werror),\n"
      << "            2 usage or I/O error\n";
  return 2;
}

std::optional<CouplingGraph> parse_coupling(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string family = spec.substr(0, colon);
  const std::string args = spec.substr(colon + 1);
  try {
    if (family == "grid") {
      const std::size_t x = args.find('x');
      if (x == std::string::npos) return std::nullopt;
      return CouplingGraph::grid(std::stoi(args.substr(0, x)),
                                 std::stoi(args.substr(x + 1)));
    }
    const int n = std::stoi(args);
    if (family == "full") return CouplingGraph::full(n);
    if (family == "line") return CouplingGraph::line(n);
    if (family == "ring") return CouplingGraph::ring(n);
    if (family == "star") return CouplingGraph::star(n);
    if (family == "heavy-hex") return CouplingGraph::heavy_hex(n);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

/// Extract and unescape the "qasm" string field of one JSON line emitted
/// by bench_common's json_row (flat string escaping: \" \\ \n \t \uXXXX).
std::optional<std::string> extract_qasm_field(const std::string& line) {
  const std::string key = "\"qasm\":\"";
  const std::size_t start = line.find(key);
  if (start == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = start + key.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= line.size()) return std::nullopt;
    switch (line[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u':
        if (i + 4 >= line.size()) return std::nullopt;
        out += static_cast<char>(
            std::stoi(line.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      default:
        out += line[i];
    }
  }
  return std::nullopt;  // unterminated string
}

struct Outcome {
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

struct Mode {
  bool json = false;
  bool werror = false;
  bool dataflow = false;
  /// --data-qubits: workspace wires start here (-1 = no workspace).
  int data_qubits = -1;
};

void print_report(const std::string& label, LintReport report,
                  const Mode& mode, Outcome& outcome,
                  const qsp::WireFacts* facts = nullptr) {
  if (mode.werror) {
    for (qsp::LintDiagnostic& d : report.diagnostics) {
      if (d.severity == qsp::LintSeverity::kWarning) {
        d.severity = qsp::LintSeverity::kError;
      }
    }
  }
  outcome.errors += report.count(qsp::LintSeverity::kError);
  outcome.warnings += report.count(qsp::LintSeverity::kWarning);
  if (mode.json) {
    std::cout << "{\"input\":\"" << label << "\",";
    if (facts != nullptr) std::cout << "\"facts\":" << facts->to_json() << ",";
    std::cout << "\"diagnostics\":" << report.to_json() << "}\n";
    return;
  }
  if (facts != nullptr) {
    for (const qsp::WireFact& fact : facts->wires) {
      std::cout << label << ": " << fact.to_string() << "\n";
    }
  }
  for (const qsp::LintDiagnostic& d : report.diagnostics) {
    std::cout << label << ": " << d.to_string() << "\n";
  }
}

/// One input in --dataflow mode: parse (the parse can fail with QL000),
/// then run the dataflow analysis and report the fact table plus the
/// flow-sensitive diagnostics. Structural *errors* (malformed circuits,
/// where the facts would be garbage) are kept; structural warnings
/// belong to the default mode and are not re-reported here — so
/// `--dataflow --werror` gates exactly on the flow-sensitive findings.
void run_dataflow(const std::string& label, const std::string& qasm,
                  const LintOptions& options, const Mode& mode,
                  Outcome& outcome) {
  std::optional<qsp::Circuit> parsed;
  LintReport report = qsp::lint_qasm(qasm, options, &parsed);
  if (!parsed.has_value()) {
    print_report(label, std::move(report), mode, outcome);
    return;
  }
  std::erase_if(report.diagnostics, [](const qsp::LintDiagnostic& d) {
    return d.severity != qsp::LintSeverity::kError;
  });
  DataflowOptions dataflow;
  dataflow.num_data_wires = mode.data_qubits;
  const LintReport flow = qsp::dataflow_lint(*parsed, dataflow);
  for (const qsp::LintDiagnostic& d : flow.diagnostics) {
    report.diagnostics.push_back(d);
  }
  const qsp::WireFacts facts = qsp::analyze_circuit(*parsed, dataflow);
  print_report(label, std::move(report), mode, outcome, &facts);
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  Mode mode;
  bool strict = false;
  bool jsonl = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      mode.json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--werror") {
      mode.werror = true;
    } else if (arg == "--dataflow") {
      mode.dataflow = true;
    } else if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--data-qubits") {
      if (++i >= argc) return usage(argv[0]);
      try {
        mode.data_qubits = std::stoi(argv[i]);
      } catch (const std::exception&) {
        std::cerr << argv[0] << ": bad --data-qubits '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--target") {
      if (++i >= argc) return usage(argv[0]);
      try {
        options.target = qsp::Target::by_name(argv[i]);
      } catch (const std::invalid_argument& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--coupling") {
      if (++i >= argc) return usage(argv[0]);
      auto coupling = parse_coupling(argv[i]);
      if (!coupling.has_value()) {
        std::cerr << argv[0] << ": bad coupling spec '" << argv[i] << "'\n";
        return 2;
      }
      options.coupling =
          std::make_shared<const CouplingGraph>(std::move(*coupling));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  Outcome outcome;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in.is_open()) {
      std::cerr << argv[0] << ": cannot open " << path << "\n";
      return 2;
    }
    if (jsonl) {
      std::string line;
      std::size_t line_no = 0;
      std::size_t linted = 0;
      while (std::getline(in, line)) {
        ++line_no;
        const auto qasm = extract_qasm_field(line);
        if (!qasm.has_value()) continue;  // rows without circuits are fine
        ++linted;
        std::ostringstream label;
        label << path << ":" << line_no;
        if (mode.dataflow) {
          run_dataflow(label.str(), *qasm, options, mode, outcome);
        } else {
          print_report(label.str(), qsp::lint_qasm(*qasm, options), mode,
                       outcome);
        }
      }
      if (!mode.json) {
        std::cout << path << ": " << linted << " qasm row(s) linted\n";
      }
    } else {
      std::ostringstream text;
      text << in.rdbuf();
      if (mode.dataflow) {
        run_dataflow(path, text.str(), options, mode, outcome);
      } else {
        print_report(path, qsp::lint_qasm(text.str(), options), mode,
                     outcome);
      }
    }
  }

  if (outcome.errors > 0) return 1;
  if (strict && outcome.warnings > 0) return 1;
  return 0;
}
