// Ablation A: strength of the admissible heuristic (Section V-A). Runs
// the exact A* with no heuristic (Dijkstra), the paper's entangled-pair
// bound, and our correlation-component bound, and reports nodes expanded,
// classes stored and wall time. All modes must agree on the optimal cost.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Ablation A: heuristic strength (zero / pair / component)",
      "Same optimal costs, different exploration effort. 'pair' is the\n"
      "paper's ceil(E/2) bound; 'component' adds the correlation-graph\n"
      "spanning argument (GHZ_4 bound improves from 2 to 3).");

  struct Case {
    std::string name;
    QuantumState state;
  };
  std::vector<Case> cases;
  cases.push_back({"GHZ_5", make_ghz(5)});
  cases.push_back({"W_4", make_w(4)});
  cases.push_back({"Dicke(4,2)", make_dicke(4, 2)});
  Rng rng(4242);
  const int extra = bench::full_mode() ? 6 : 3;
  for (int i = 0; i < extra; ++i) {
    cases.push_back({"rand4m6#" + std::to_string(i),
                     make_random_uniform(4, 6, rng)});
  }

  TextTable table({"instance", "heuristic", "optimal CNOTs", "expanded",
                   "classes", "time [s]"});
  for (const auto& c : cases) {
    std::int64_t reference = -1;
    for (const auto& [mode, name] :
         {std::pair{HeuristicMode::kZero, "zero (Dijkstra)"},
          std::pair{HeuristicMode::kPair, "pair (paper)"},
          std::pair{HeuristicMode::kComponent, "component (ours)"}}) {
      SearchOptions options;
      options.heuristic = mode;
      options.node_budget = 50'000'000;
      options.time_budget_seconds = bench::full_mode() ? 600.0 : 120.0;
      const AStarSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(c.state);
      if (!res.found) {
        table.add_row({c.name, name, "budget", "-", "-", "-"});
        continue;
      }
      if (reference < 0) reference = res.cnot_cost;
      if (res.cnot_cost != reference) {
        std::cerr << "OPTIMALITY MISMATCH on " << c.name << "\n";
        return 1;
      }
      table.add_row({c.name, name, TextTable::fmt(res.cnot_cost),
                     TextTable::fmt(res.stats.nodes_expanded),
                     TextTable::fmt(res.stats.classes_stored),
                     TextTable::fmt(res.stats.seconds, 3)});
      bench::json_row("ablation_heuristic",
                      {{"instance", c.name},
                       {"heuristic", name},
                       {"cnot_cost", res.cnot_cost},
                       {"optimal", res.optimal},
                       {"seconds", res.stats.seconds},
                       {"threads", 1},
                       {"nodes_expanded", res.stats.nodes_expanded},
                       {"classes_stored", res.stats.classes_stored}});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
