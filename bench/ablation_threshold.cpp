// Ablation C: the workflow's exact-synthesis activation thresholds
// (Section VI-A fixes n_eff <= 4 and m <= 16). Sweeps the thresholds on
// sparse instances and reports CNOTs vs runtime, exposing the tradeoff
// the paper mentions ("the room for improvement does not scale").

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "circuit/lowering.hpp"
#include "flow/solver.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Ablation C: exact-tail thresholds in the workflow",
      "Sparse random states (m = n) solved with different (n_eff, m)\n"
      "activation thresholds; (0,0) disables the exact tail entirely.");

  const int samples = bench::full_mode() ? 20 : 6;
  const std::vector<std::pair<int, int>> grid = {
      {0, 0}, {2, 4}, {3, 8}, {4, 16}, {5, 24}, {6, 32}};

  for (const bool dense : {false, true}) {
    const int n = dense ? (bench::full_mode() ? 10 : 8)
                        : (bench::full_mode() ? 14 : 10);
    const int m = dense ? (1 << (n - 1)) : n;
    std::cout << (dense ? "dense" : "sparse") << " states, n = " << n
              << ", m = " << m << ":\n";
    TextTable table({"threshold (n_eff, m)", "avg CNOTs", "avg time [s]",
                     "exact tails used"});
    for (const auto& [tq, tm] : grid) {
      double cnots = 0.0, seconds = 0.0;
      int tails = 0;
      for (int s = 0; s < samples; ++s) {
        Rng rng(0xAB0 + static_cast<std::uint64_t>(s));
        const QuantumState target = make_random_uniform(n, m, rng);
        WorkflowOptions options;
        options.exact_max_qubits = tq;
        options.exact_max_cardinality = tm;
        options.opt_level = bench::bench_opt_level();
        const Solver solver(options);
        const Timer timer;
        const WorkflowResult res = solver.prepare(target);
        seconds += timer.seconds();
        if (!res.found) continue;
        LoweringOptions elide;
        elide.elide_zero_rotations = true;
        cnots += static_cast<double>(
            count_cnots_after_lowering(res.circuit, elide));
        if (res.used_exact_tail) ++tails;
        const std::string v = bench::verify_cell(res.circuit, target, 14);
        bench::check_verified(v, "threshold ablation");
      }
      table.add_row({"(" + std::to_string(tq) + ", " + std::to_string(tm) +
                         ")",
                     TextTable::fmt(cnots / samples, 1),
                     TextTable::fmt(seconds / samples, 3),
                     TextTable::fmt(tails) + "/" + TextTable::fmt(samples)});
      bench::json_row(
          "ablation_threshold",
          {{"instance", std::string(dense ? "dense" : "sparse") +
                            " n=" + std::to_string(n) + " threshold=(" +
                            std::to_string(tq) + "," + std::to_string(tm) +
                            ")"},
           {"family", dense ? "dense" : "sparse"},
           {"n", n},
           {"m", m},
           {"threshold_qubits", tq},
           {"threshold_cardinality", tm},
           {"cnot_cost", cnots / samples},
           {"optimal", false},
           {"seconds", seconds / samples},
           {"threads", 1},
           {"exact_tails_used", tails}});
    }
    std::cout << table.render() << "\n";
  }
  std::cout << "The paper fixes (4, 16). On the dense path the exact tail\n"
               "replaces the cheap low multiplexor stages; on the sparse\n"
               "path random supports stay spread across many qubits, the\n"
               "tail rarely binds below (5, 24), and the gains come from\n"
               "the cost-aware pair selection in the reduction itself.\n";
  return 0;
}
