// Table III reproduction: number of canonical 4-qubit uniform states per
// cardinality m, under no equivalence (|V_G| = C(16, m)), single-qubit
// gate equivalence U(2), and layout-invariant equivalence P U(2).

#include <iostream>

#include "bench_common.hpp"
#include "core/equivalence.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Table III: canonical 4-qubit uniform states",
      "Brute-force closure over all 2^16 - 1 index sets under the\n"
      "zero-cost generators (X translations, separable merges/splits,\n"
      "and qubit swaps for the P U(2) column). A class is attributed to\n"
      "its minimal-cardinality representative.");

  const auto rows = count_uniform_equivalence_classes(4, 8);
  TextTable table({"m", "|V_G|", "|V_G/U(2)|", "|V_G/PU(2)|"});
  for (const auto& row : rows) {
    table.add_row({TextTable::fmt(row.m), TextTable::fmt(row.total_states),
                   TextTable::fmt(row.u2_classes),
                   TextTable::fmt(row.pu2_classes)});
    bench::json_row("table3_canonicalization",
                    {{"instance", "n=4 m=" + std::to_string(row.m)},
                     {"m", row.m},
                     {"total_states", row.total_states},
                     {"u2_classes", row.u2_classes},
                     {"pu2_classes", row.pu2_classes},
                     {"threads", 1}});
  }
  std::cout << table.render();
  std::cout << "\nPaper Table III:\n"
               "  |V_G|        16 120 560 1820 4368 8008 11440 12870\n"
               "  |V_G/U(2)|    1  11  35  118  273  525   715   828\n"
               "  |V_G/PU(2)|   1   3   6   16   27   47    56    68\n";

  if (bench::full_mode()) {
    std::cout << "\nSmaller registers (same construction):\n";
    for (const int n : {2, 3}) {
      const auto small = count_uniform_equivalence_classes(n, 1 << n);
      TextTable t({"m", "|V_G|", "|V_G/U(2)|", "|V_G/PU(2)|"});
      for (const auto& row : small) {
        t.add_row({TextTable::fmt(row.m), TextTable::fmt(row.total_states),
                   TextTable::fmt(row.u2_classes),
                   TextTable::fmt(row.pu2_classes)});
      }
      std::cout << "n = " << n << ":\n" << t.render() << "\n";
    }
  }
  return 0;
}
