// Ablation: the registered-pass pipeline's -O levels on the workflow's
// lowered output. For each instance family (GHZ, W, Dicke, sparse/dense
// random), the workflow runs once at O0 (raw stitched stages), the result
// is lowered to {X, Ry, Rz, CNOT} — the stream where the gray-code
// multiplexor expansion leaves adjacent and commuting CNOT pairs — and
// that one circuit is then cleaned at O1 (the historical adjacency
// peepholes) and O2 (+ commutation-aware CNOT folding and rotation
// merging), so the rows isolate exactly what each level removes from the
// same input. Reports gates, depth and CNOTs before/after per level.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/lowering.hpp"
#include "circuit/pass_pipeline.hpp"
#include "circuit/qasm.hpp"
#include "flow/solver.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Ablation: pass-pipeline -O levels on workflow output",
      "Workflow circuits assembled at O0, then rewritten by the O1/O2\n"
      "pass pipelines; rows isolate each level's gate/depth/CNOT deltas.");

  struct Instance {
    std::string name;
    QuantumState state;
  };
  std::vector<Instance> instances;
  const int n = bench::smoke_mode() ? 5 : (bench::full_mode() ? 10 : 8);
  instances.push_back({"ghz" + std::to_string(n), make_ghz(n)});
  instances.push_back({"w" + std::to_string(n), make_w(n)});
  instances.push_back({"dicke" + std::to_string(n) + "_2", make_dicke(n, 2)});
  {
    Rng rng(0xAB1A);
    const int samples = bench::smoke_mode() ? 1 : 3;
    for (int s = 0; s < samples; ++s) {
      instances.push_back(
          {"sparse" + std::to_string(n) + "_s" + std::to_string(s),
           make_random_uniform(n, n, rng)});
      instances.push_back(
          {"dense" + std::to_string(n) + "_s" + std::to_string(s),
           make_random_uniform(n, 1 << (n - 1), rng)});
    }
  }

  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  // QSP_TARGET selects the backend: on a non-CNOT target the pipeline
  // also runs the staged lowering, so the rows measure optimization and
  // legalization composed (the "CNOTs" column then counts the native
  // two-qubit gate).
  const Target target = bench::bench_target();
  TextTable table({"instance", "level", "gates", "depth",
                   "2q gates (" + std::string(target.name()) + ")",
                   "time [s]"});
  for (const Instance& instance : instances) {
    WorkflowOptions options;
    options.num_threads = bench::bench_threads();
    options.opt_level = OptLevel::kO0;
    const Solver solver(options);
    const WorkflowResult raw = solver.prepare(instance.state);
    if (!raw.found) {
      std::cout << instance.name << ": workflow found no circuit, skipped\n";
      continue;
    }
    const Circuit base = lower(raw.circuit, elide);
    const std::string v = bench::verify_cell(base, instance.state, 14);
    bench::check_verified(v, "pass ablation (" + instance.name + ")");

    for (const OptLevel level :
         {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2}) {
      PipelineOptions pipeline;
      pipeline.level = level;
      if (!target.is_cnot()) {
        pipeline.lower_to_target = true;
        pipeline.pass.target = target;
        pipeline.pass.elide_zero_rotations = true;
      }
      PipelineReport report;
      const Timer timer;
      const Circuit cleaned = optimize_circuit(base, pipeline, &report);
      const double seconds = timer.seconds();
      const std::string vc =
          bench::verify_cell(cleaned, instance.state, 14);
      bench::check_verified(vc, "pass ablation " + opt_level_name(level) +
                                    " (" + instance.name + ")");
      const std::int64_t two_qubit =
          target.is_cnot() ? count_cnots_after_lowering(cleaned, elide)
                           : two_qubit_gate_count(cleaned, target);
      table.add_row({instance.name, opt_level_name(level),
                     TextTable::fmt(static_cast<int>(cleaned.size())),
                     TextTable::fmt(static_cast<int>(cleaned.depth())),
                     TextTable::fmt(static_cast<int>(two_qubit)),
                     TextTable::fmt(seconds, 4)});
      bench::json_row(
          "ablation_passes",
          {{"instance", instance.name + " " + opt_level_name(level)},
           {"family", instance.name},
           {"level", opt_level_name(level)},
           {"target", std::string(target.name())},
           {"n", n},
           {"gates_before", static_cast<std::uint64_t>(report.gates_before)},
           {"gates_after", static_cast<std::uint64_t>(report.gates_after)},
           {"depth_before", static_cast<std::uint64_t>(report.depth_before)},
           {"depth_after", static_cast<std::uint64_t>(report.depth_after)},
           {"cnot_cost", two_qubit},
           {"optimal", false},
           {"seconds", seconds},
           {"threads", bench::bench_threads()},
           {"verified", vc},
           // The emitted circuit itself, so the JSONL artifact is
           // self-auditing: `qsplint --jsonl --target <t> results.jsonl`
           // re-lints every row's output circuit offline.
           {"qasm", to_qasm(cleaned, target)}});
    }

    // Isolated dataflow-simplify row: the flow-sensitive pass alone on
    // the same O0 circuit, so the artifact separates what the abstract-
    // interpretation rewrites remove from what the O2 bundle removes.
    {
      const Pass* pass = PassPipeline::find("dataflow-simplify");
      Circuit simplified = base;
      const Timer timer;
      pass->run(simplified, PassOptions{});
      const double seconds = timer.seconds();
      const std::string vc =
          bench::verify_cell(simplified, instance.state, 14);
      bench::check_verified(vc, "dataflow-simplify (" + instance.name + ")");
      const std::int64_t two_qubit =
          target.is_cnot() ? count_cnots_after_lowering(simplified, elide)
                           : two_qubit_gate_count(simplified, target);
      table.add_row({instance.name, std::string(pass->name()),
                     TextTable::fmt(static_cast<int>(simplified.size())),
                     TextTable::fmt(static_cast<int>(simplified.depth())),
                     TextTable::fmt(static_cast<int>(two_qubit)),
                     TextTable::fmt(seconds, 4)});
      bench::json_row(
          "ablation_passes",
          {{"instance", instance.name + " dataflow-simplify"},
           {"family", instance.name},
           {"level", std::string(pass->name())},
           {"target", std::string(target.name())},
           {"n", n},
           {"gates_before", static_cast<std::uint64_t>(base.size())},
           {"gates_after", static_cast<std::uint64_t>(simplified.size())},
           {"depth_before", static_cast<std::uint64_t>(base.depth())},
           {"depth_after", static_cast<std::uint64_t>(simplified.depth())},
           {"cnot_cost", two_qubit},
           {"optimal", false},
           {"seconds", seconds},
           {"threads", bench::bench_threads()},
           {"verified", vc},
           {"qasm", to_qasm(simplified, target)}});
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "O1 reproduces the historical cleanup; the O2 rows show what\n"
               "the commutation-aware folds additionally remove. Deltas are\n"
               "per level from the same O0 circuit, so rows are comparable\n"
               "within each instance.\n";
  return 0;
}
