// Table I reproduction: CNOT costs of the gate library. For each gate we
// print the model cost and the measured CNOT count of its lowering to
// {U(2), CNOT}, and check the lowering implements the same unitary.

#include <cmath>
#include <iostream>
#include <string>
#include <tuple>

#include "bench_common.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/lowering.hpp"
#include "sim/statevector.hpp"
#include "util/table.hpp"

namespace {

using namespace qsp;

/// Max |difference| between the two circuits' action on every basis state.
double unitary_distance(const Circuit& a, const Circuit& b, int n) {
  double worst = 0.0;
  for (BasisIndex x = 0; x < (BasisIndex{1} << n); ++x) {
    std::vector<double> basis(std::size_t{1} << n, 0.0);
    basis[x] = 1.0;
    Statevector sa(QuantumState::from_dense(n, basis));
    Statevector sb(QuantumState::from_dense(n, basis));
    sa.apply(a);
    sb.apply(b);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      worst = std::max(worst,
                       std::abs(sa.amplitudes()[i] - sb.amplitudes()[i]));
    }
  }
  return worst;
}

void report(TextTable& table, const std::string& name, const Gate& gate,
            int n) {
  Circuit c(n);
  c.append(gate);
  const Circuit low = lower(c);
  const double dist = unitary_distance(c, low, n);
  table.add_row({name, TextTable::fmt(gate_cnot_cost(gate)),
                 TextTable::fmt(lowered_cnot_count(low)),
                 dist < 1e-9 ? "yes" : "NO"});
  bench::json_row("table1_gate_costs",
                  {{"instance", name},
                   {"target", "cnot"},
                   {"model_cost", gate_cnot_cost(gate)},
                   {"cnot_cost", lowered_cnot_count(low)},
                   {"optimal", true},
                   {"seconds", 0.0},
                   {"threads", 1}});
  if (dist >= 1e-9) {
    std::cerr << "lowering mismatch for " << name << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace qsp;
  bench::print_banner(
      "Table I: gate library CNOT costs",
      "Model cost vs measured CNOTs after lowering to {U(2), CNOT}; the\n"
      "lowering is checked for unitary equivalence on the full basis.");

  TextTable table({"gate", "model cost", "lowered CNOTs", "unitary ok"});
  report(table, "Ry", Gate::ry(0, 1.234), 1);
  report(table, "X", Gate::x(0), 1);
  report(table, "CNOT", Gate::cnot(0, 1), 2);
  report(table, "CRy", Gate::cry(0, 1, 0.9), 2);
  const int max_controls = bench::full_mode() ? 8 : 6;
  for (int c = 2; c <= max_controls; ++c) {
    std::vector<ControlLiteral> controls;
    for (int q = 0; q < c; ++q) {
      controls.push_back(ControlLiteral{q, (q % 3) != 0});
    }
    report(table, "MCRy (" + std::to_string(c) + " ctrl)",
           Gate::mcry(controls, c, 0.77), c + 1);
  }
  std::cout << table.render();
  std::cout << "\nPaper Table I: Ry=0, CNOT=1, CRy=2, MCRy(c)=2^c.\n";

  // Backend legalization: the same library lowered onto each built-in
  // target. The native two-qubit count is (lowered CNOTs) x (natives per
  // CNOT): 1 for CZ/RZZ, 2 for iSwap.
  TextTable legal({"gate", "target", "2q gates", "weighted cost"});
  for (const Target& target : Target::builtin()) {
    if (target.is_cnot()) continue;
    for (const auto& [name, gate, width] :
         {std::tuple<std::string, Gate, int>{"CNOT", Gate::cnot(0, 1), 2},
          {"CRy", Gate::cry(0, 1, 0.9), 2},
          {"MCRy (3 ctrl)",
           Gate::mcry({ControlLiteral{0, true}, ControlLiteral{1, true},
                       ControlLiteral{2, false}},
                      3, 0.77),
           4}}) {
      Circuit c(width);
      c.append(gate);
      const std::int64_t count = count_two_qubit_after_lowering(c, target);
      const double cost = circuit_cost(lower_onto(c, target), target);
      legal.add_row({name, std::string(target.name()),
                     TextTable::fmt(count), TextTable::fmt(cost, 1)});
      bench::json_row("table1_gate_costs",
                      {{"instance", name + " @" + std::string(target.name())},
                       {"target", std::string(target.name())},
                       {"model_cost", gate_cnot_cost(gate)},
                       {"cnot_cost", count},
                       {"weighted_cost", cost},
                       {"optimal", true},
                       {"seconds", 0.0},
                       {"threads", 1}});
    }
  }
  std::cout << "\n" << legal.render();
  return 0;
}
