// Ablation B: state compression by canonicalization (Section V-B).
// Runs the exact A* with no canonicalization, U(2) translation classes,
// the greedy P U(2) normal form, and the exact P U(2) minimization, and
// reports exploration effort. Mirrors the effect Table III quantifies.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Ablation B: canonicalization level",
      "Equivalence-class dedup under zero-cost operations shrinks the\n"
      "explored graph (paper Table III: 12870 -> 828 -> 68 states at\n"
      "n=4, m=8) without affecting optimality.");

  struct Case {
    std::string name;
    QuantumState state;
  };
  std::vector<Case> cases;
  cases.push_back({"Dicke(4,2)", make_dicke(4, 2)});
  cases.push_back({"GHZ_4", make_ghz(4)});
  Rng rng(777);
  const int extra = bench::full_mode() ? 5 : 2;
  for (int i = 0; i < extra; ++i) {
    cases.push_back({"rand4m8#" + std::to_string(i),
                     make_random_uniform(4, 8, rng)});
  }

  TextTable table({"instance", "canonical level", "optimal CNOTs",
                   "expanded", "classes", "time [s]"});
  for (const auto& c : cases) {
    std::int64_t reference = -1;
    for (const auto& [level, name] :
         {std::pair{CanonicalLevel::kNone, "none"},
          std::pair{CanonicalLevel::kU2, "U(2)"},
          std::pair{CanonicalLevel::kPU2Greedy, "PU(2) greedy"},
          std::pair{CanonicalLevel::kPU2Exact, "PU(2) exact"}}) {
      SearchOptions options;
      options.canonical = level;
      options.node_budget = 50'000'000;
      options.time_budget_seconds = bench::full_mode() ? 600.0 : 120.0;
      const AStarSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(c.state);
      if (!res.found) {
        table.add_row({c.name, name, "budget", "-", "-", "-"});
        continue;
      }
      if (reference < 0) reference = res.cnot_cost;
      if (res.cnot_cost != reference) {
        std::cerr << "OPTIMALITY MISMATCH on " << c.name << "\n";
        return 1;
      }
      table.add_row({c.name, name, TextTable::fmt(res.cnot_cost),
                     TextTable::fmt(res.stats.nodes_expanded),
                     TextTable::fmt(res.stats.classes_stored),
                     TextTable::fmt(res.stats.seconds, 3)});
      bench::json_row("ablation_canonical",
                      {{"instance", c.name},
                       {"canonical_level", name},
                       {"cnot_cost", res.cnot_cost},
                       {"optimal", res.optimal},
                       {"seconds", res.stats.seconds},
                       {"threads", 1},
                       {"nodes_expanded", res.stats.nodes_expanded},
                       {"classes_stored", res.stats.classes_stored}});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
