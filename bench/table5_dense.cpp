// Table V (top) reproduction: dense random uniform states, m = 2^{n-1}.
// Reports the average CNOT count per method and the improvement of the
// workflow over the strongest dense baseline (n-flow), like the paper.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "table5_common.hpp"
#include "util/combinatorics.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  using namespace qsp::bench;
  print_banner(
      "Table V (dense): m = 2^(n-1) random uniform states",
      "Averages over random samples per n; improvement vs n-flow. The\n"
      "m-flow baseline is quadratic on dense states and is capped like\n"
      "the paper's one-hour TLE.");

  const bool full = full_mode();
  const int n_max = full ? 18 : 12;
  const int mflow_n_max = full ? 16 : 10;   // paper: TLE from n = 17
  const double time_limit = full ? 3600.0 : 60.0;

  TextTable table({"n", "m", "m-flow", "n-flow", "hybrid", "ours", "impr%",
                   "verified(ours)"});
  std::vector<double> geo[4];
  for (int n = 3; n <= n_max; ++n) {
    const int m = 1 << (n - 1);
    const int samples = full ? (n <= 10 ? 100 : (n <= 14 ? 20 : 5))
                             : (n <= 8 ? 10 : 3);
    std::vector<Method> skip;
    if (n > mflow_n_max) skip.push_back(Method::kMFlow);
    const bool verify = n <= (full ? 14 : 12);
    const SweepRow row =
        run_cell(n, m, samples, time_limit, 0xD0 + n, verify, skip);
    emit_sweep_json("table5_dense", "dense", row);

    auto cell_str = [&](int i) {
      return row.per_method[i].tle ? std::string("TLE")
                                   : TextTable::fmt(
                                         row.per_method[i].mean_cnots, 1);
    };
    const double ours = row.per_method[3].mean_cnots;
    const double nflow = row.per_method[1].mean_cnots;
    const double impr = (nflow > 0) ? 1.0 - ours / nflow : 0.0;
    table.add_row({TextTable::fmt(n), TextTable::fmt(m), cell_str(0),
                   cell_str(1), cell_str(2), cell_str(3),
                   TextTable::fmt_percent(impr, 1), verify ? "yes" : "skip"});
    for (int i = 0; i < 4; ++i) {
      if (!row.per_method[i].tle) {
        geo[i].push_back(row.per_method[i].mean_cnots);
      }
    }
  }
  table.add_separator();
  table.add_row(
      {"geo", "mean",
       geo[0].empty() ? "-" : TextTable::fmt(geometric_mean(geo[0]), 1),
       TextTable::fmt(geometric_mean(geo[1]), 1),
       TextTable::fmt(geometric_mean(geo[2]), 1),
       TextTable::fmt(geometric_mean(geo[3]), 1), "", ""});
  std::cout << table.render();
  std::cout << "\nPaper (dense): ours improves on n-flow by 9% on average\n"
               "(17% at n=3 shrinking toward 0% at n=18); n-flow column is\n"
               "exactly 2^n - 2; m-flow TLEs from n = 17.\n";
  return 0;
}
