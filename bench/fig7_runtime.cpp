// Figure 7 reproduction: CPU time versus qubit count for (a) dense states
// m = 2^{n-1} and (b) sparse states m = n, comparing n-flow, m-flow and
// ours. Prints one data series per method (seconds, averaged per n) —
// the same series the paper plots on a log axis.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "table5_common.hpp"
#include "util/table.hpp"

namespace {

using namespace qsp;
using namespace qsp::bench;

void sweep(const std::string& title, bool dense, int n_min, int n_max,
           int samples, double time_limit, int mflow_cap) {
  std::cout << title << "\n";
  TextTable table({"n", "m", "n-flow [s]", "m-flow [s]", "ours [s]"});
  for (int n = n_min; n <= n_max; ++n) {
    const int m = dense ? (1 << (n - 1)) : n;
    std::vector<Method> skip{Method::kHybrid};
    if (n > mflow_cap) skip.push_back(Method::kMFlow);
    const SweepRow row = run_cell(n, m, samples, time_limit,
                                  dense ? 0x700u + static_cast<unsigned>(n)
                                        : 0x800u + static_cast<unsigned>(n),
                                  /*verify=*/false, skip);
    auto sec = [&](int i) {
      return row.per_method[i].tle
                 ? std::string("TLE")
                 : TextTable::fmt(row.per_method[i].mean_seconds, 4);
    };
    table.add_row({TextTable::fmt(n), TextTable::fmt(m), sec(1), sec(0),
                   sec(3)});
  }
  std::cout << table.render() << "\n";
}

}  // namespace

int main() {
  using namespace qsp;
  using namespace qsp::bench;
  print_banner(
      "Figure 7: CPU time analysis",
      "Wall-clock seconds per instance (averaged). The paper's claims:\n"
      "comparable CPU time to the baselines, better scaling with n; the\n"
      "m-flow hits the time limit on large dense instances.");

  const bool full = full_mode();
  const int samples = full ? 10 : 3;
  const double limit = full ? 3600.0 : 60.0;

  sweep("(a) dense states (m = 2^(n-1))", /*dense=*/true, 6,
        full ? 18 : 12, samples, limit, full ? 16 : 10);
  sweep("(b) sparse states (m = n)", /*dense=*/false, 6, full ? 20 : 14,
        samples, limit, full ? 20 : 14);

  std::cout << "Shape targets from the paper: all methods are fast on\n"
               "sparse states; on dense states m-flow grows super-\n"
               "exponentially and TLEs first, while ours tracks n-flow.\n";
  return 0;
}
