// Figure 7 reproduction: CPU time versus qubit count for (a) dense states
// m = 2^{n-1} and (b) sparse states m = n, comparing n-flow, m-flow and
// ours. Prints one data series per method (seconds, averaged per n) —
// the same series the paper plots on a log axis.
//
// Sections (c)/(d) go beyond the paper: thread scaling of the exact
// kernel (serial A* vs the sharded HDA* kernel of
// core/parallel_astar.hpp), asserting that every thread count reproduces
// the serial certificate bit-for-bit while reporting wall time and the
// queue-pressure stats (summed per-shard peak open size, stale pops); and
// thread scaling of the anytime beam (core/parallel_beam.hpp), asserting
// serial-vs-parallel bit-identical circuits at every thread count.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel_astar.hpp"
#include "core/parallel_beam.hpp"
#include "state/state_factory.hpp"
#include "table5_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace qsp;
using namespace qsp::bench;

void sweep(const std::string& title, bool dense, int n_min, int n_max,
           int samples, double time_limit, int mflow_cap) {
  std::cout << title << "\n";
  const std::string family = dense ? "dense" : "sparse";
  TextTable table({"n", "m", "n-flow [s]", "m-flow [s]", "ours [s]"});
  for (int n = n_min; n <= n_max; ++n) {
    const int m = dense ? (1 << (n - 1)) : n;
    std::vector<Method> skip{Method::kHybrid};
    if (n > mflow_cap) skip.push_back(Method::kMFlow);
    const SweepRow row = run_cell(n, m, samples, time_limit,
                                  dense ? 0x700u + static_cast<unsigned>(n)
                                        : 0x800u + static_cast<unsigned>(n),
                                  /*verify=*/false, skip);
    emit_sweep_json("fig7_runtime", family, row);
    auto sec = [&](int i) {
      return row.per_method[i].tle
                 ? std::string("TLE")
                 : TextTable::fmt(row.per_method[i].mean_seconds, 4);
    };
    table.add_row({TextTable::fmt(n), TextTable::fmt(m), sec(1), sec(0),
                   sec(3)});
  }
  std::cout << table.render() << "\n";
}

/// Exact-kernel thread scaling on instances the serial kernel certifies.
/// Every thread count must reproduce the serial cnot_cost and optimal
/// flag — a runtime check of the parallel certificate, not just a timing.
void thread_scaling() {
  std::cout << "(c) exact kernel thread scaling (sharded HDA*)\n";
  struct Instance {
    std::string name;
    QuantumState state;
  };
  std::vector<Instance> instances;
  instances.push_back({"Dicke(4,2)", make_dicke(4, 2)});
  Rng rng(0x7C);
  instances.push_back({"rand(4,10)", make_random_uniform(4, 10, rng)});
  instances.push_back({"rand(4,12)", make_random_uniform(4, 12, rng)});
  instances.push_back({"rand(5,5)", make_random_uniform(5, 5, rng)});
  if (!smoke_mode()) {
    instances.push_back({"rand(5,6)", make_random_uniform(5, 6, rng)});
  }

  const std::vector<int> thread_counts = smoke_mode()
                                             ? std::vector<int>{1, 2}
                                             : std::vector<int>{1, 2, 8};
  TextTable table({"instance", "threads", "time [s]", "speedup", "CNOTs",
                   "optimal", "sum shard peak", "stale pops"});
  bool first_instance = true;
  for (const Instance& inst : instances) {
    if (!first_instance) table.add_separator();
    first_instance = false;
    double serial_seconds = 0.0;
    std::int64_t serial_cost = -1;
    for (const int threads : thread_counts) {
      SearchOptions options;
      options.num_threads = threads;
      const AStarSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(inst.state);
      if (!res.found) {
        std::cerr << "exact kernel failed on " << inst.name << "\n";
        std::exit(1);
      }
      if (threads == 1) {
        serial_seconds = res.stats.seconds;
        serial_cost = res.cnot_cost;
      } else if (res.cnot_cost != serial_cost || !res.optimal) {
        std::cerr << "CERTIFICATE MISMATCH on " << inst.name << " at "
                  << threads << " threads: cost " << res.cnot_cost
                  << " vs serial " << serial_cost << "\n";
        std::exit(1);
      }
      const double speedup =
          res.stats.seconds > 0.0 ? serial_seconds / res.stats.seconds : 1.0;
      table.add_row({inst.name, TextTable::fmt(threads),
                     TextTable::fmt(res.stats.seconds, 4),
                     TextTable::fmt(speedup, 2) + "x",
                     TextTable::fmt(res.cnot_cost),
                     res.optimal ? "yes" : "NO",
                     TextTable::fmt(res.stats.sum_shard_peak_open_size),
                     TextTable::fmt(res.stats.stale_pops)});
      json_row("fig7_runtime",
               {{"instance", inst.name},
                {"family", "exact_kernel"},
                {"method", "astar"},
                {"cnot_cost", res.cnot_cost},
                {"optimal", res.optimal},
                {"seconds", res.stats.seconds},
                {"threads", threads},
                {"speedup_vs_serial", speedup},
                {"sum_shard_peak_open_size", res.stats.sum_shard_peak_open_size},
                {"stale_pops", res.stats.stale_pops}});
    }
  }
  std::cout << table.render() << "\n";
}

/// Beam-kernel thread scaling on the anytime path: the sharded parallel
/// beam (core/parallel_beam.hpp) must reproduce the serial descent's
/// circuit and cnot_cost bit for bit at every thread count — re-checked
/// here at every bench run, alongside wall time and generated-node
/// counts per cell.
void beam_thread_scaling() {
  std::cout << "(d) beam kernel thread scaling (sharded parallel beam)\n";
  struct Instance {
    std::string name;
    QuantumState state;
    int beam_width;
  };
  std::vector<Instance> instances;
  instances.push_back({"Dicke(4,2)", make_dicke(4, 2), 128});
  instances.push_back({"Dicke(5,1)", make_dicke(5, 1), 256});
  Rng rng(0x7D);
  instances.push_back({"rand(5,6)", make_random_uniform(5, 6, rng), 256});
  if (!smoke_mode()) {
    instances.push_back({"Dicke(5,2)", make_dicke(5, 2), 256});
    instances.push_back({"rand(5,8)", make_random_uniform(5, 8, rng), 512});
  }

  const std::vector<int> thread_counts = smoke_mode()
                                             ? std::vector<int>{1, 2}
                                             : std::vector<int>{1, 2, 8};
  TextTable table({"instance", "threads", "time [s]", "speedup", "CNOTs",
                   "nodes", "classes"});
  bool first_instance = true;
  for (const Instance& inst : instances) {
    if (!first_instance) table.add_separator();
    first_instance = false;
    double serial_seconds = 0.0;
    SynthesisResult serial;
    for (const int threads : thread_counts) {
      BeamOptions options;
      options.beam_width = inst.beam_width;
      options.num_threads = threads;
      const BeamSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(inst.state);
      if (!res.found) {
        std::cerr << "beam kernel failed on " << inst.name << "\n";
        std::exit(1);
      }
      if (threads == 1) {
        serial_seconds = res.stats.seconds;
        serial = res;
      } else if (res.cnot_cost != serial.cnot_cost ||
                 res.circuit != serial.circuit ||
                 res.stats.nodes_generated != serial.stats.nodes_generated) {
        std::cerr << "BEAM DETERMINISM MISMATCH on " << inst.name << " at "
                  << threads << " threads: cost " << res.cnot_cost
                  << " vs serial " << serial.cnot_cost << "\n";
        std::exit(1);
      }
      const double speedup =
          res.stats.seconds > 0.0 ? serial_seconds / res.stats.seconds : 1.0;
      table.add_row({inst.name, TextTable::fmt(threads),
                     TextTable::fmt(res.stats.seconds, 4),
                     TextTable::fmt(speedup, 2) + "x",
                     TextTable::fmt(res.cnot_cost),
                     TextTable::fmt(res.stats.nodes_generated),
                     TextTable::fmt(res.stats.classes_stored)});
      json_row("fig7_runtime",
               {{"instance", inst.name},
                {"family", "beam_kernel"},
                {"method", "beam"},
                {"cnot_cost", res.cnot_cost},
                {"optimal", res.optimal},
                {"seconds", res.stats.seconds},
                {"threads", threads},
                {"speedup_vs_serial", speedup},
                {"nodes_generated", res.stats.nodes_generated},
                {"classes_stored", res.stats.classes_stored}});
    }
  }
  std::cout << table.render() << "\n";
}

}  // namespace

int main() {
  using namespace qsp;
  using namespace qsp::bench;
  print_banner(
      "Figure 7: CPU time analysis",
      "Wall-clock seconds per instance (averaged). The paper's claims:\n"
      "comparable CPU time to the baselines, better scaling with n; the\n"
      "m-flow hits the time limit on large dense instances. Section (c)\n"
      "adds exact-kernel thread scaling with the certificate re-checked\n"
      "at every thread count; section (d) adds beam-kernel thread\n"
      "scaling with serial-vs-parallel bit-identity re-checked.");

  const bool full = full_mode();
  const bool smoke = smoke_mode();
  const int samples = full ? 10 : (smoke ? 1 : 3);
  const double limit = full ? 3600.0 : (smoke ? 5.0 : 60.0);

  sweep("(a) dense states (m = 2^(n-1))", /*dense=*/true, 6,
        full ? 18 : (smoke ? 8 : 12), samples, limit,
        full ? 16 : (smoke ? 8 : 10));
  sweep("(b) sparse states (m = n)", /*dense=*/false, 6,
        full ? 20 : (smoke ? 9 : 14), samples, limit,
        full ? 20 : (smoke ? 9 : 14));
  thread_scaling();
  beam_thread_scaling();

  std::cout << "Shape targets from the paper: all methods are fast on\n"
               "sparse states; on dense states m-flow grows super-\n"
               "exponentially and TLEs first, while ours tracks n-flow.\n"
               "Sections (c)/(d): speedup grows with instance hardness and\n"
               "the machine's core count; on a single-core host the sharded\n"
               "kernels only add coordination overhead. Section (d)\n"
               "re-checks that the parallel beam is bit-identical to the\n"
               "serial descent at every thread count.\n";
  return 0;
}
