// Service-mode throughput: the cross-request equivalence cache's whole
// point is that repeated workloads (benchmark families, parameter sweeps,
// per-user variants of the same states) hit the same canonical classes,
// so the exact kernel's work is paid once. This bench measures a
// cold batch (every class searched) against warm batches (repeats plus
// permuted/translated per-user variants) through a live SynthesisService
// and reports throughput, speedup and cache hit rates — section (a) on an
// all-to-all register, section (b) on a line device where cached host
// templates must come back remapped and routed.
//
// JSON rows (qsp::bench::json_row): one per phase per section with
// requests, seconds, requests_per_second, hit_rate, plus a summary row
// with warm_over_cold. QSP_BENCH_SMOKE=1 shrinks the sweep for CI;
// QSP_BENCH_FULL=1 widens it.

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/routing.hpp"
#include "bench_common.hpp"
#include "service/synthesis_service.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace qsp;

QuantumState permuted_state(const QuantumState& state,
                            const std::vector<int>& perm) {
  std::vector<Term> terms;
  terms.reserve(state.terms().size());
  for (const Term& t : state.terms()) {
    terms.push_back(Term{permute_bits(t.index, perm), t.amplitude});
  }
  return QuantumState(state.num_qubits(), std::move(terms));
}

QuantumState translated_state(const QuantumState& state, BasisIndex mask) {
  std::vector<Term> terms;
  terms.reserve(state.terms().size());
  for (const Term& t : state.terms()) {
    terms.push_back(Term{t.index ^ mask, t.amplitude});
  }
  return QuantumState(state.num_qubits(), std::move(terms));
}

struct Workload {
  /// Unique-class cold batch.
  std::vector<QuantumState> bases;
  /// Same classes again: repeats plus per-user variants.
  std::vector<QuantumState> warm;
};

Workload build_workload(bool with_permuted_variants) {
  Workload w;
  w.bases.push_back(make_ghz(4));
  w.bases.push_back(make_w(4));
  w.bases.push_back(make_dicke(4, 2));
  Rng rng(4242);
  const int extra = bench::smoke_mode() ? 1 : (bench::full_mode() ? 9 : 5);
  for (int i = 0; i < extra; ++i) {
    w.bases.push_back(make_random_uniform(4, 5 + i % 4, rng));
  }
  const int rounds = bench::smoke_mode() ? 2 : (bench::full_mode() ? 8 : 4);
  const std::vector<int> perm{2, 0, 3, 1};
  for (int round = 0; round < rounds; ++round) {
    for (const QuantumState& base : w.bases) {
      w.warm.push_back(base);  // straight repeat: exact hit
      w.warm.push_back(translated_state(
          base, static_cast<BasisIndex>(rng.next_below(16))));
      if (with_permuted_variants) {
        w.warm.push_back(permuted_state(base, perm));
      }
    }
  }
  return w;
}

struct PhaseResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  double hit_rate = 0.0;
};

double throughput(const PhaseResult& phase) {
  return phase.seconds > 0.0
             ? static_cast<double>(phase.requests) / phase.seconds
             : 0.0;
}

int run_section(const std::string& name,
                const std::shared_ptr<const CouplingGraph>& device) {
  const Workload workload = build_workload(device == nullptr);
  WorkflowOptions workflow;
  workflow.coupling = device;
  workflow.opt_level = bench::bench_opt_level();
  // Generous kernel budgets: only certified-optimal searches populate
  // the cache, so a budget-exhausted beam fallback would re-search on
  // every repeat and understate the warm phase.
  workflow.exact.astar.time_budget_seconds = 120.0;
  workflow.exact.astar.node_budget = 20'000'000;

  SynthesisServiceOptions service_options;
  service_options.num_workers = std::max(bench::bench_threads(), 1);
  SynthesisService service(service_options);

  const auto run_phase = [&](const std::vector<QuantumState>& states,
                             PhaseResult& phase) -> int {
    std::vector<ServiceRequest> batch;
    batch.reserve(states.size());
    for (const QuantumState& state : states) {
      ServiceRequest request;
      request.state = state;
      request.options = workflow;
      batch.push_back(std::move(request));
    }
    const EquivalenceCacheStats before = service.cache_stats();
    const Timer timer;
    const std::vector<ServiceResponse> responses =
        service.run_batch(std::move(batch));
    phase.seconds = timer.seconds();
    phase.requests = states.size();
    const EquivalenceCacheStats after = service.cache_stats();
    const std::uint64_t lookups = after.lookups - before.lookups;
    phase.hit_rate = lookups == 0
                         ? 0.0
                         : static_cast<double>(after.hits - before.hits) /
                               static_cast<double>(lookups);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].result.found ||
          !verify_preparation(responses[i].result.circuit, states[i]).ok) {
        std::cerr << "VERIFICATION FAILED in " << name << " on request "
                  << i << "\n";
        return 1;
      }
      if (device != nullptr &&
          (responses[i].result.circuit.num_qubits() != device->num_qubits() ||
           !respects_coupling(responses[i].result.circuit, *device))) {
        std::cerr << "COUPLING CONFORMANCE FAILED in " << name
                  << " on request " << i << "\n";
        return 1;
      }
    }
    return 0;
  };

  PhaseResult cold;
  if (run_phase(workload.bases, cold) != 0) return 1;
  PhaseResult warm;
  if (run_phase(workload.warm, warm) != 0) return 1;

  const EquivalenceCacheStats stats = service.cache_stats();
  const double speedup = throughput(cold) > 0.0
                             ? throughput(warm) / throughput(cold)
                             : 0.0;

  TextTable table({"phase", "requests", "seconds", "req/s", "hit rate"});
  table.add_row({"cold", TextTable::fmt(static_cast<std::int64_t>(
                             cold.requests)),
                 TextTable::fmt(cold.seconds, 3),
                 TextTable::fmt(throughput(cold), 1),
                 TextTable::fmt(cold.hit_rate, 2)});
  table.add_row({"warm", TextTable::fmt(static_cast<std::int64_t>(
                             warm.requests)),
                 TextTable::fmt(warm.seconds, 3),
                 TextTable::fmt(throughput(warm), 1),
                 TextTable::fmt(warm.hit_rate, 2)});
  std::cout << "\n[" << name << "]\n" << table.render();
  std::cout << "warm/cold throughput: " << TextTable::fmt(speedup, 1)
            << "x  (exact hits " << stats.exact_hits << ", rewired "
            << stats.rewired_hits << ", evictions " << stats.evictions
            << ")\n";
  if (speedup < 2.0) {
    std::cout << "note: warm speedup below the 2x target on this host "
                 "(tiny cold searches or a loaded machine)\n";
  }

  const auto emit_phase = [&](const char* phase_name,
                              const PhaseResult& phase) {
    bench::json_row("service_throughput",
                    {{"instance", name + "/" + phase_name},
                     {"phase", phase_name},
                     {"requests", static_cast<std::int64_t>(phase.requests)},
                     {"seconds", phase.seconds},
                     {"requests_per_second", throughput(phase)},
                     {"hit_rate", phase.hit_rate},
                     {"threads", service_options.num_workers}});
  };
  emit_phase("cold", cold);
  emit_phase("warm", warm);
  bench::json_row("service_throughput",
                  {{"instance", name + "/summary"},
                   {"phase", "summary"},
                   {"warm_over_cold", speedup},
                   {"hit_rate", warm.hit_rate},
                   {"exact_hits",
                    static_cast<std::int64_t>(stats.exact_hits)},
                   {"rewired_hits",
                    static_cast<std::int64_t>(stats.rewired_hits)},
                   {"evictions", static_cast<std::int64_t>(stats.evictions)},
                   {"threads", service_options.num_workers}});
  return 0;
}

}  // namespace

int main() {
  bench::print_banner(
      "service_throughput: cold vs warm batches through SynthesisService",
      "Repeated workloads against the cross-request equivalence cache: a\n"
      "cold batch pays one kernel search per canonical class; warm\n"
      "batches (repeats + permuted/translated per-user variants) are\n"
      "served from cache, bit-identical on repeats and rewired at equal\n"
      "certified cost on variants.");

  if (run_section("all_to_all", nullptr) != 0) return 1;
  const auto line5 =
      std::make_shared<const CouplingGraph>(CouplingGraph::line(5));
  if (run_section("line5", line5) != 0) return 1;

  std::cout << "\nWarm batches skip the exact kernel entirely; the hit\n"
               "rate is the fraction of tail searches answered from the\n"
               "cache (rewired hits are same-class variants served via\n"
               "the canonical witness).\n";
  return 0;
}
