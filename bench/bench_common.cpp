#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "sim/verifier.hpp"

namespace qsp::bench {

bool full_mode() {
  const char* env = std::getenv("QSP_BENCH_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

void print_banner(const std::string& title, const std::string& description) {
  std::cout << "=== " << title << " ===\n";
  std::cout << description << "\n";
  std::cout << (full_mode()
                    ? "mode: FULL (paper-scale parameters)\n"
                    : "mode: default (set QSP_BENCH_FULL=1 for the "
                      "paper-scale sweep)\n")
            << "\n";
}

std::string verify_cell(const Circuit& circuit, const QuantumState& target,
                        int max_sim_qubits, std::size_t max_gates) {
  if (circuit.num_qubits() > max_sim_qubits ||
      circuit.size() > max_gates) {
    return "skipped";
  }
  return verify_preparation(circuit, target).ok ? "yes" : "NO";
}

void check_verified(const std::string& cell, const std::string& context) {
  if (cell == "NO") {
    std::cerr << "VERIFICATION FAILED: " << context << "\n";
    std::exit(1);
  }
}

}  // namespace qsp::bench
