#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/verifier.hpp"

namespace qsp::bench {
namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::strcmp(env, "1") == 0;
}

std::string escape_json(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The JSON sink, resolved once: append to QSP_BENCH_JSON if set (so a CI
/// sweep across several binaries lands in one file), stdout otherwise.
std::ostream& json_sink() {
  static std::ofstream* file = [] {
    const char* path = std::getenv("QSP_BENCH_JSON");
    if (path == nullptr || *path == '\0') return (std::ofstream*)nullptr;
    auto* out = new std::ofstream(path, std::ios::app);
    if (!out->is_open()) {
      std::cerr << "QSP_BENCH_JSON: cannot open " << path
                << ", falling back to stdout\n";
      delete out;
      return (std::ofstream*)nullptr;
    }
    return out;
  }();
  return file != nullptr ? *file : std::cout;
}

}  // namespace

bool full_mode() { return env_flag("QSP_BENCH_FULL"); }

bool smoke_mode() { return env_flag("QSP_BENCH_SMOKE"); }

int bench_threads() {
  const char* env = std::getenv("QSP_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const int threads = std::atoi(env);
  return threads < 0 ? 1 : threads;
}

OptLevel bench_opt_level() {
  const char* env = std::getenv("QSP_OPT_LEVEL");
  if (env == nullptr || *env == '\0') return OptLevel::kO1;
  switch (std::atoi(env)) {
    case 0:
      return OptLevel::kO0;
    case 2:
      return OptLevel::kO2;
    default:
      return OptLevel::kO1;
  }
}

Target bench_target() {
  const char* env = std::getenv("QSP_TARGET");
  if (env == nullptr || *env == '\0') return Target::cnot();
  try {
    return Target::by_name(env);
  } catch (const std::exception& e) {
    std::cerr << "QSP_TARGET: " << e.what() << "\n";
    std::exit(1);
  }
}

void print_banner(const std::string& title, const std::string& description) {
  std::cout << "=== " << title << " ===\n";
  std::cout << description << "\n";
  if (smoke_mode()) {
    std::cout << "mode: SMOKE (CI-sized sweep)\n\n";
    return;
  }
  std::cout << (full_mode()
                    ? "mode: FULL (paper-scale parameters)\n"
                    : "mode: default (set QSP_BENCH_FULL=1 for the "
                      "paper-scale sweep)\n")
            << "\n";
}

std::string verify_cell(const Circuit& circuit, const QuantumState& target,
                        int max_sim_qubits, std::size_t max_gates) {
  if (circuit.num_qubits() > max_sim_qubits ||
      circuit.size() > max_gates) {
    return "skipped";
  }
  return verify_preparation(circuit, target).ok ? "yes" : "NO";
}

void check_verified(const std::string& cell, const std::string& context) {
  if (cell == "NO") {
    std::cerr << "VERIFICATION FAILED: " << context << "\n";
    std::exit(1);
  }
}

JsonField::JsonField(std::string k, const std::string& value)
    : key(std::move(k)), rendered("\"" + escape_json(value) + "\"") {}
JsonField::JsonField(std::string k, const char* value)
    : JsonField(std::move(k), std::string(value)) {}
JsonField::JsonField(std::string k, double value) : key(std::move(k)) {
  if (!std::isfinite(value)) {
    rendered = "null";
  } else {
    std::ostringstream out;
    out.precision(9);
    out << value;
    rendered = out.str();
  }
}
JsonField::JsonField(std::string k, std::int64_t value)
    : key(std::move(k)), rendered(std::to_string(value)) {}
JsonField::JsonField(std::string k, std::uint64_t value)
    : key(std::move(k)), rendered(std::to_string(value)) {}
JsonField::JsonField(std::string k, int value)
    : key(std::move(k)), rendered(std::to_string(value)) {}
JsonField::JsonField(std::string k, bool value)
    : key(std::move(k)), rendered(value ? "true" : "false") {}

void json_row(const std::string& bench,
              std::initializer_list<JsonField> fields) {
  std::ostream& out = json_sink();
  out << "{\"bench\":\"" << escape_json(bench) << "\"";
  for (const JsonField& field : fields) {
    out << ",\"" << escape_json(field.key) << "\":" << field.rendered;
  }
  out << "}\n" << std::flush;
}

}  // namespace qsp::bench
