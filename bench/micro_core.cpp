// Google-benchmark microbenchmarks for the exact-synthesis primitives:
// canonical keys, move enumeration, arc application, heuristics, the A*
// kernel on the paper's headline instance, and statevector simulation.

#include <benchmark/benchmark.h>

#include "core/astar.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace qsp;

SlotState benchmark_state(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  return *SlotState::from_state(make_random_uniform(n, m, rng));
}

void BM_CanonicalKeyU2(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kU2));
  }
}
BENCHMARK(BM_CanonicalKeyU2)->Arg(4)->Arg(6)->Arg(8);

void BM_CanonicalKeyPU2Exact(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Exact));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Exact)->Arg(4)->Arg(5)->Arg(6);

void BM_CanonicalKeyPU2Greedy(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Greedy));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Greedy)->Arg(4)->Arg(6)->Arg(8);

void BM_EnumerateMoves(benchmark::State& state) {
  const SlotState s =
      benchmark_state(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), 2);
  MoveGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_moves(s, options));
  }
}
BENCHMARK(BM_EnumerateMoves)->Args({4, 8})->Args({4, 16})->Args({6, 12});

void BM_ApplyMove(benchmark::State& state) {
  const SlotState s = benchmark_state(4, 8, 3);
  const auto moves = enumerate_moves(s, MoveGenOptions{});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_move(s, moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_ApplyMove);

void BM_HeuristicComponent(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heuristic_lower_bound(s, HeuristicMode::kComponent));
  }
}
BENCHMARK(BM_HeuristicComponent)->Arg(6)->Arg(10)->Arg(14);

void BM_AStarDicke42(benchmark::State& state) {
  const QuantumState target = make_dicke(4, 2);
  const AStarSynthesizer synth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(target));
  }
}
BENCHMARK(BM_AStarDicke42)->Unit(benchmark::kMillisecond);

void BM_AStarRandom45(benchmark::State& state) {
  Rng rng(9);
  const QuantumState target = make_random_uniform(4, 5, rng);
  const AStarSynthesizer synth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(target));
  }
}
BENCHMARK(BM_AStarRandom45)->Unit(benchmark::kMillisecond);

void BM_StatevectorCnot(benchmark::State& state) {
  Statevector sv(static_cast<int>(state.range(0)));
  sv.apply(Gate::ry(0, 0.3));
  const Gate cnot = Gate::cnot(0, 1);
  for (auto _ : state) {
    sv.apply(cnot);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_StatevectorCnot)->Arg(10)->Arg(16)->Arg(20);

void BM_CompressFree(benchmark::State& state) {
  // Product-heavy state: every qubit separable.
  std::vector<BasisIndex> idx;
  for (BasisIndex x = 0; x < 16; ++x) idx.push_back(x);
  const SlotState s = SlotState::from_indices(4, idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_free(s));
  }
}
BENCHMARK(BM_CompressFree);

}  // namespace

BENCHMARK_MAIN();
