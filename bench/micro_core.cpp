// Google-benchmark microbenchmarks for the exact-synthesis primitives:
// canonical keys, move enumeration, arc application, heuristics, the A*
// kernel (serial and sharded HDA*) on the paper's headline instance, and
// statevector simulation. The A* benchmarks attach the queue-pressure
// stats (sum_shard_peak_open, stale_pops) as counters, and after the benchmark run
// one json_row per kernel instance records the canonical schema.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "core/parallel_astar.hpp"
#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace qsp;

SlotState benchmark_state(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  return *SlotState::from_state(make_random_uniform(n, m, rng));
}

void BM_CanonicalKeyU2(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kU2));
  }
}
BENCHMARK(BM_CanonicalKeyU2)->Arg(4)->Arg(6)->Arg(8);

void BM_CanonicalKeyPU2Exact(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Exact));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Exact)->Arg(4)->Arg(5)->Arg(6);

void BM_CanonicalKeyPU2Greedy(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Greedy));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Greedy)->Arg(4)->Arg(6)->Arg(8);

void BM_EnumerateMoves(benchmark::State& state) {
  const SlotState s =
      benchmark_state(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), 2);
  MoveGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_moves(s, options));
  }
}
BENCHMARK(BM_EnumerateMoves)->Args({4, 8})->Args({4, 16})->Args({6, 12});

void BM_ApplyMove(benchmark::State& state) {
  const SlotState s = benchmark_state(4, 8, 3);
  const auto moves = enumerate_moves(s, MoveGenOptions{});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_move(s, moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_ApplyMove);

void BM_HeuristicComponent(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heuristic_lower_bound(s, HeuristicMode::kComponent));
  }
}
BENCHMARK(BM_HeuristicComponent)->Arg(6)->Arg(10)->Arg(14);

/// Attach the queue-pressure stats of the last run so regressions in
/// open-list discipline show up next to the timing.
void attach_search_counters(benchmark::State& state,
                            const SynthesisResult& res) {
  state.counters["sum_shard_peak_open"] =
      static_cast<double>(res.stats.sum_shard_peak_open_size);
  state.counters["stale_pops"] = static_cast<double>(res.stats.stale_pops);
  state.counters["classes"] = static_cast<double>(res.stats.classes_stored);
}

void BM_AStarDicke42(benchmark::State& state) {
  const QuantumState target = make_dicke(4, 2);
  const AStarSynthesizer synth;
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_AStarDicke42)->Unit(benchmark::kMillisecond);

void BM_AStarRandom45(benchmark::State& state) {
  Rng rng(9);
  const QuantumState target = make_random_uniform(4, 5, rng);
  const AStarSynthesizer synth;
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_AStarRandom45)->Unit(benchmark::kMillisecond);

void BM_ParallelAStarDicke42(benchmark::State& state) {
  const QuantumState target = make_dicke(4, 2);
  SearchOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  const ParallelAStarSynthesizer synth(options);
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_ParallelAStarDicke42)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StatevectorCnot(benchmark::State& state) {
  Statevector sv(static_cast<int>(state.range(0)));
  sv.apply(Gate::ry(0, 0.3));
  const Gate cnot = Gate::cnot(0, 1);
  for (auto _ : state) {
    sv.apply(cnot);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_StatevectorCnot)->Arg(10)->Arg(16)->Arg(20);

void BM_CompressFree(benchmark::State& state) {
  // Product-heavy state: every qubit separable.
  std::vector<BasisIndex> idx;
  for (BasisIndex x = 0; x < 16; ++x) idx.push_back(x);
  const SlotState s = SlotState::from_indices(4, idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_free(s));
  }
}
BENCHMARK(BM_CompressFree);

/// One canonical-schema json_row per exact-kernel instance (timed outside
/// the google-benchmark loop), so the CI bench artifact covers this
/// binary's cells too.
void emit_kernel_json() {
  struct Cell {
    const char* instance;
    QuantumState state;
  };
  Rng rng(9);
  const Cell cells[] = {{"Dicke(4,2)", make_dicke(4, 2)},
                        {"rand(4,5)", make_random_uniform(4, 5, rng)}};
  for (const Cell& cell : cells) {
    for (const int threads : {1, 2, 8}) {
      SearchOptions options;
      options.num_threads = threads;
      const SynthesisResult res =
          AStarSynthesizer(options).synthesize(cell.state);
      qsp::bench::json_row("micro_core",
                           {{"instance", cell.instance},
                            {"method", "astar"},
                            {"cnot_cost", res.cnot_cost},
                            {"optimal", res.optimal},
                            {"seconds", res.stats.seconds},
                            {"threads", threads},
                            {"sum_shard_peak_open_size", res.stats.sum_shard_peak_open_size},
                            {"stale_pops", res.stats.stale_pops}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_kernel_json();
  return 0;
}
