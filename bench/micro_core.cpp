// Microbenchmarks for the exact-synthesis primitives: canonical keys,
// move enumeration, arc application, heuristics, the A* kernel (serial
// and sharded HDA*) on the paper's headline instance, and statevector
// simulation.
//
// Two layers:
//  - Optional Google Benchmark suites (only when the build found
//    libbenchmark; QSP_HAVE_GBENCH) for interactive perf work.
//  - A hand-timed kernel sweep that always runs and emits one
//    canonical-schema json_row per kernel cell — this is what
//    bench/baseline/micro_core.jsonl and tools/bench_compare.py consume,
//    so it must not depend on libbenchmark being installed. Each kernel
//    row carries a deterministic output checksum: bench_compare uses it
//    to prove the scalar and AVX2 dispatch paths (util/simd.hpp) compute
//    bit-identical results end to end, not just per primitive.

#include <complex>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "core/parallel_astar.hpp"
#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

#ifdef QSP_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace qsp;

SlotState benchmark_state(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  return *SlotState::from_state(make_random_uniform(n, m, rng));
}

// ---------------------------------------------------------------------------
// Hand-timed kernel sweep (always built)
// ---------------------------------------------------------------------------

/// FNV-1a over raw bytes: the cross-ISA determinism witness attached to
/// every kernel row.
std::uint64_t checksum_bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t checksum_vector(const std::vector<T>& v) {
  return checksum_bytes(v.data(), v.size() * sizeof(T));
}

/// Repeat `body` until the measurement window closes; returns seconds per
/// iteration. One untimed warmup run first.
template <typename F>
double time_kernel(F&& body, std::uint64_t* iters_out) {
  const double min_seconds = qsp::bench::smoke_mode() ? 0.02 : 0.15;
  body();  // warmup (touch caches, fault pages)
  Timer timer;
  std::uint64_t iters = 0;
  do {
    body();
    ++iters;
  } while (timer.seconds() < min_seconds);
  if (iters_out != nullptr) *iters_out = iters;
  return timer.seconds() / static_cast<double>(iters);
}

void kernel_row(const char* kernel, int n, double seconds_per_iter,
                std::uint64_t iters, std::uint64_t checksum) {
  qsp::bench::json_row(
      "micro_core",
      {{"kernel", kernel},
       {"n", n},
       {"seconds_per_iter", seconds_per_iter},
       {"iters", iters},
       {"checksum", checksum},
       {"isa", simd::isa_name(simd::active_isa())}});
}

void emit_canonical_rows() {
  struct Cell {
    const char* kernel;
    CanonicalLevel level;
    int n;
  };
  const Cell cells[] = {
      {"canonical_u2", CanonicalLevel::kU2, 4},
      {"canonical_u2", CanonicalLevel::kU2, 8},
      {"canonical_pu2exact", CanonicalLevel::kPU2Exact, 4},
      {"canonical_pu2exact", CanonicalLevel::kPU2Exact, 6},
      {"canonical_pu2greedy", CanonicalLevel::kPU2Greedy, 6},
      {"canonical_pu2greedy", CanonicalLevel::kPU2Greedy, 10},
  };
  for (const Cell& cell : cells) {
    const SlotState s = benchmark_state(cell.n, 2 * cell.n, 1);
    CanonicalKey key;
    std::uint64_t iters = 0;
    const double spi = time_kernel(
        [&] { key = canonical_key(s, cell.level); }, &iters);
    kernel_row(cell.kernel, cell.n, spi, iters, checksum_vector(key));
  }
}

void emit_heuristic_rows() {
  for (const int n : {6, 10, 14}) {
    const SlotState s = benchmark_state(n, n, 4);
    std::int64_t h = 0;
    std::uint64_t iters = 0;
    const double spi = time_kernel(
        [&] { h = heuristic_lower_bound(s, HeuristicMode::kComponent); },
        &iters);
    kernel_row("heuristic_component", n, spi, iters,
               static_cast<std::uint64_t>(h));
  }
}

void emit_compress_free_row() {
  std::vector<BasisIndex> idx;
  for (BasisIndex x = 0; x < 16; ++x) idx.push_back(x);
  const SlotState s = SlotState::from_indices(4, idx);
  const std::uint64_t ck = compress_free(s).total();
  std::uint64_t total = 0;
  std::uint64_t iters = 0;
  const double spi = time_kernel(
      [&] { total += compress_free(s).total(); }, &iters);
  (void)total;
  kernel_row("compress_free", 4, spi, iters, ck);
}

std::uint64_t checksum_amp(const Statevector& sv) {
  return checksum_vector(sv.amplitudes());
}

std::uint64_t checksum_amp(const ComplexStatevector& sv) {
  return checksum_bytes(
      sv.amplitudes().data(),
      sv.amplitudes().size() * sizeof(std::complex<double>));
}

/// Time one gate sequence on `sv`, attaching as checksum the amplitudes
/// after a single deterministic application on a copy of the initial
/// state. The timing loop then iterates on `sv` freely: rotation drift
/// there cannot leak into the checksum, so the row is reproducible no
/// matter how many iterations the measurement window admits.
template <typename SV, typename Body>
void sv_kernel_row(const char* kernel, int n, SV& sv, Body&& body) {
  SV probe = sv;
  body(probe);
  const std::uint64_t ck = checksum_amp(probe);
  std::uint64_t iters = 0;
  const double spi = time_kernel([&] { body(sv); }, &iters);
  kernel_row(kernel, n, spi, iters, ck);
}

void emit_statevector_rows() {
  const int n = qsp::bench::smoke_mode() ? 14 : 18;
  const double theta = 0.3;

  const auto warmed = [](int qubits) {
    Statevector sv(qubits);
    for (int q = 0; q < qubits; ++q) sv.apply(Gate::ry(q, 0.2 + 0.01 * q));
    return sv;
  };

  {
    // CNOT on a non-trivial state: block swaps over contiguous strides.
    Statevector sv = warmed(n);
    const Gate fwd = Gate::cnot(0, n - 1);
    const Gate bwd = Gate::cnot(n - 1, 0);
    sv_kernel_row("sv_cnot", n, sv, [&](Statevector& s) {
      s.apply(fwd);
      s.apply(bwd);
    });
  }

  {
    // Plain Ry: the dense rotate-pairs kernel, full 2^(n-1) pair sweep.
    Statevector sv = warmed(n);
    const Gate plus = Gate::ry(n / 2, theta);
    const Gate minus = Gate::ry(n / 2, -theta);
    sv_kernel_row("sv_ry", n, sv, [&](Statevector& s) {
      s.apply(plus);
      s.apply(minus);
    });
  }

  {
    // Multi-controlled Ry: masked pair sweep (run decomposition path).
    Statevector sv = warmed(n);
    const std::vector<ControlLiteral> controls = {{1, true}, {n - 2, false}};
    const Gate plus = Gate::mcry(controls, n / 2, theta);
    const Gate minus = Gate::mcry(controls, n / 2, -theta);
    sv_kernel_row("sv_mcry", n, sv, [&](Statevector& s) {
      s.apply(plus);
      s.apply(minus);
    });
  }

  {
    // Uniformly controlled Ry: per-pattern angles, table-driven runs.
    Statevector sv = warmed(n);
    const std::vector<int> controls = {0, 1, n - 1};
    std::vector<double> angles(8);
    std::vector<double> neg(8);
    for (std::size_t s = 0; s < angles.size(); ++s) {
      angles[s] = 0.1 + 0.05 * static_cast<double>(s);
      neg[s] = -angles[s];
    }
    const Gate plus = Gate::ucry(controls, n / 2, angles);
    const Gate minus = Gate::ucry(controls, n / 2, neg);
    sv_kernel_row("sv_ucry", n, sv, [&](Statevector& s) {
      s.apply(plus);
      s.apply(minus);
    });
  }

  {
    // Complex path: Rz diagonal (unit-complex scaling) plus UCRz runs.
    const int nc = n - 2;
    ComplexStatevector sv(nc);
    for (int q = 0; q < nc; ++q) sv.apply(Gate::ry(q, 0.2 + 0.01 * q));
    const std::vector<int> controls = {0, nc - 1};
    std::vector<double> angles(4);
    std::vector<double> neg(4);
    for (std::size_t s = 0; s < angles.size(); ++s) {
      angles[s] = 0.2 + 0.05 * static_cast<double>(s);
      neg[s] = -angles[s];
    }
    const Gate rz_plus = Gate::rz(nc / 2, theta);
    const Gate rz_minus = Gate::rz(nc / 2, -theta);
    const Gate uc_plus = Gate::ucrz(controls, nc / 2, angles);
    const Gate uc_minus = Gate::ucrz(controls, nc / 2, neg);
    sv_kernel_row("csv_rz_ucrz", nc, sv, [&](ComplexStatevector& s) {
      s.apply(rz_plus);
      s.apply(uc_plus);
      s.apply(uc_minus);
      s.apply(rz_minus);
    });
  }
}

/// One canonical-schema json_row per exact-kernel instance (end-to-end
/// searches), with queue- and arena-pressure stats next to the timing.
void emit_search_rows() {
  struct Cell {
    const char* instance;
    QuantumState state;
  };
  Rng rng(9);
  const Cell cells[] = {{"Dicke(4,2)", make_dicke(4, 2)},
                        {"rand(4,5)", make_random_uniform(4, 5, rng)}};
  for (const Cell& cell : cells) {
    for (const int threads : {1, 2, 8}) {
      SearchOptions options;
      options.num_threads = threads;
      const SynthesisResult res =
          AStarSynthesizer(options).synthesize(cell.state);
      qsp::bench::json_row(
          "micro_core",
          {{"instance", cell.instance},
           {"method", "astar"},
           {"cnot_cost", res.cnot_cost},
           {"optimal", res.optimal},
           {"seconds", res.stats.seconds},
           {"threads", threads},
           {"sum_shard_peak_open_size", res.stats.sum_shard_peak_open_size},
           {"stale_pops", res.stats.stale_pops},
           {"arena_blocks", res.stats.arena_blocks},
           {"arena_bytes_peak", res.stats.arena_bytes_peak},
           {"isa", simd::isa_name(simd::active_isa())}});
    }
  }
}

void emit_kernel_json() {
  emit_canonical_rows();
  emit_heuristic_rows();
  emit_compress_free_row();
  emit_statevector_rows();
  emit_search_rows();
}

// ---------------------------------------------------------------------------
// Google Benchmark suites (optional)
// ---------------------------------------------------------------------------

#ifdef QSP_HAVE_GBENCH

void BM_CanonicalKeyU2(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kU2));
  }
}
BENCHMARK(BM_CanonicalKeyU2)->Arg(4)->Arg(6)->Arg(8);

void BM_CanonicalKeyPU2Exact(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Exact));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Exact)->Arg(4)->Arg(5)->Arg(6);

void BM_CanonicalKeyPU2Greedy(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_key(s, CanonicalLevel::kPU2Greedy));
  }
}
BENCHMARK(BM_CanonicalKeyPU2Greedy)->Arg(4)->Arg(6)->Arg(8);

void BM_EnumerateMoves(benchmark::State& state) {
  const SlotState s =
      benchmark_state(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), 2);
  MoveGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_moves(s, options));
  }
}
BENCHMARK(BM_EnumerateMoves)->Args({4, 8})->Args({4, 16})->Args({6, 12});

void BM_ApplyMove(benchmark::State& state) {
  const SlotState s = benchmark_state(4, 8, 3);
  const auto moves = enumerate_moves(s, MoveGenOptions{});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_move(s, moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_ApplyMove);

void BM_HeuristicComponent(benchmark::State& state) {
  const SlotState s = benchmark_state(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heuristic_lower_bound(s, HeuristicMode::kComponent));
  }
}
BENCHMARK(BM_HeuristicComponent)->Arg(6)->Arg(10)->Arg(14);

/// Attach the queue-pressure stats of the last run so regressions in
/// open-list discipline show up next to the timing.
void attach_search_counters(benchmark::State& state,
                            const SynthesisResult& res) {
  state.counters["sum_shard_peak_open"] =
      static_cast<double>(res.stats.sum_shard_peak_open_size);
  state.counters["stale_pops"] = static_cast<double>(res.stats.stale_pops);
  state.counters["classes"] = static_cast<double>(res.stats.classes_stored);
  state.counters["arena_bytes_peak"] =
      static_cast<double>(res.stats.arena_bytes_peak);
}

void BM_AStarDicke42(benchmark::State& state) {
  const QuantumState target = make_dicke(4, 2);
  const AStarSynthesizer synth;
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_AStarDicke42)->Unit(benchmark::kMillisecond);

void BM_AStarRandom45(benchmark::State& state) {
  Rng rng(9);
  const QuantumState target = make_random_uniform(4, 5, rng);
  const AStarSynthesizer synth;
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_AStarRandom45)->Unit(benchmark::kMillisecond);

void BM_ParallelAStarDicke42(benchmark::State& state) {
  const QuantumState target = make_dicke(4, 2);
  SearchOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  const ParallelAStarSynthesizer synth(options);
  SynthesisResult res;
  for (auto _ : state) {
    res = synth.synthesize(target);
    benchmark::DoNotOptimize(res);
  }
  attach_search_counters(state, res);
}
BENCHMARK(BM_ParallelAStarDicke42)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StatevectorCnot(benchmark::State& state) {
  Statevector sv(static_cast<int>(state.range(0)));
  sv.apply(Gate::ry(0, 0.3));
  const Gate cnot = Gate::cnot(0, 1);
  for (auto _ : state) {
    sv.apply(cnot);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_StatevectorCnot)->Arg(10)->Arg(16)->Arg(20);

void BM_CompressFree(benchmark::State& state) {
  // Product-heavy state: every qubit separable.
  std::vector<BasisIndex> idx;
  for (BasisIndex x = 0; x < 16; ++x) idx.push_back(x);
  const SlotState s = SlotState::from_indices(4, idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_free(s));
  }
}
BENCHMARK(BM_CompressFree);

#endif  // QSP_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
#ifdef QSP_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#else
  (void)argc;
  (void)argv;
#endif
  emit_kernel_json();
  return 0;
}
