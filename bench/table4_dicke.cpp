// Table IV reproduction: CNOT counts for Dicke-state preparation |D^k_n>,
// comparing the manual design (Mukherjee et al. formula + an executable
// Bartschi-Eidenbenz circuit), the three published baselines, and our
// exact synthesis. Also prints the Fig. 6 artifact: the 6-CNOT circuit
// for |D^2_4>.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "flow/methods.hpp"
#include "prep/dicke.hpp"
#include "state/state_factory.hpp"
#include "util/combinatorics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace qsp;

/// "Ours" for Table IV: the exact kernel with a generous budget for n<=4;
/// beam search plus the workflow for larger instances (the paper's Dicke
/// entries beyond the exact reach come from a larger-budget run; ours are
/// the best verified circuit we find, marked * when not proven optimal).
std::pair<std::int64_t, bool> ours_dicke(const QuantumState& target,
                                         double budget) {
  ExactSynthesisOptions options;
  options.astar.node_budget = 0;
  // A* completes quickly on n <= 4; beyond that it cannot finish within
  // any sane budget, so hand over to the beam early instead of burning
  // the whole budget on a doomed exact attempt.
  options.astar.time_budget_seconds =
      target.num_qubits() <= 4 ? budget : std::min(budget * 0.1, 10.0);
  options.beam.beam_width = bench::full_mode() ? 600 : 200;
  options.beam.canonical = CanonicalLevel::kPU2Greedy;
  options.beam.max_controls = -1;
  options.beam.time_budget_seconds = budget;
  const ExactSynthesizer synth(options);
  SynthesisResult res = synth.synthesize(target);

  const MethodRun flow = run_method(Method::kOurs, target, budget);
  std::int64_t best = res.found ? res.cnot_cost : -1;
  bool optimal = res.found && res.optimal;
  if (flow.ok && (best < 0 || flow.cnots < best)) {
    best = flow.cnots;
    optimal = false;
  }
  return {best, optimal};
}

}  // namespace

int main() {
  using namespace qsp;
  bench::print_banner(
      "Table IV: Dicke state preparation",
      "CNOT counts per method; improvement computed against the manual\n"
      "design formula 5nk - 5k^2 - 2n (Mukherjee et al.). Entries marked\n"
      "* are best-found (beam/workflow) rather than certified optimal.");

  const std::vector<std::pair<int, int>> cases = {
      {3, 1}, {4, 1}, {4, 2}, {5, 1}, {5, 2}, {6, 1}, {6, 2}, {6, 3}};
  const double budget_small = bench::full_mode() ? 120.0 : 30.0;
  const double budget_large = bench::full_mode() ? 600.0 : 150.0;

  TextTable table({"n", "k", "Manual[7]", "BE circuit", "m-flow", "n-flow",
                   "hybrid", "ours"});
  std::vector<double> geo_manual, geo_mflow, geo_nflow, geo_hybrid, geo_ours;
  for (const auto& [n, k] : cases) {
    const QuantumState target = make_dicke(n, k);
    const std::int64_t manual = mukherjee_dicke_cnot_count(n, k);
    const Circuit be = dicke_manual_circuit(n, k);
    const std::string be_ok = bench::verify_cell(be, target);
    bench::check_verified(be_ok, "BE Dicke circuit");
    const std::int64_t be_cost = count_cnots_after_lowering(be);

    const MethodRun mflow = run_method(Method::kMFlow, target, budget_small);
    const MethodRun nflow = run_method(Method::kNFlow, target, budget_small);
    const MethodRun hybrid =
        run_method(Method::kHybrid, target, budget_small);
    for (const auto* run : {&mflow, &nflow, &hybrid}) {
      if (run->ok) {
        const std::string cell = bench::verify_cell(run->circuit, target);
        bench::check_verified(cell, "dicke baseline");
      }
    }
    const Timer ours_timer;
    const auto [ours, optimal] =
        ours_dicke(target, n <= 4 ? budget_small : budget_large);
    const double ours_seconds = ours_timer.seconds();

    const std::string instance =
        "Dicke(" + std::to_string(n) + "," + std::to_string(k) + ")";
    auto emit = [&](const std::string& method, std::int64_t cnots,
                    bool certified, double seconds) {
      bench::json_row("table4_dicke",
                      {{"instance", instance},
                       {"n", n},
                       {"k", k},
                       {"method", method},
                       {"cnot_cost", cnots},
                       {"optimal", certified},
                       {"seconds", seconds},
                       {"threads", 1}});
    };
    emit("manual", manual, false, 0.0);
    emit("be_circuit", be_cost, false, 0.0);
    if (mflow.ok) emit("m-flow", mflow.cnots, false, mflow.seconds);
    if (nflow.ok) emit("n-flow", nflow.cnots, false, nflow.seconds);
    if (hybrid.ok) emit("hybrid", hybrid.cnots, false, hybrid.seconds);
    if (ours >= 0) emit("ours", ours, optimal, ours_seconds);

    table.add_row({TextTable::fmt(n), TextTable::fmt(k),
                   TextTable::fmt(manual), TextTable::fmt(be_cost),
                   mflow.ok ? TextTable::fmt(mflow.cnots) : "TLE",
                   nflow.ok ? TextTable::fmt(nflow.cnots) : "TLE",
                   hybrid.ok ? TextTable::fmt(hybrid.cnots) : "TLE",
                   ours >= 0 ? TextTable::fmt(ours) + (optimal ? "" : "*")
                             : "-"});
    geo_manual.push_back(static_cast<double>(manual));
    if (mflow.ok) geo_mflow.push_back(static_cast<double>(mflow.cnots));
    if (nflow.ok) geo_nflow.push_back(static_cast<double>(nflow.cnots));
    if (hybrid.ok) geo_hybrid.push_back(static_cast<double>(hybrid.cnots));
    if (ours >= 0) geo_ours.push_back(static_cast<double>(ours));
  }
  table.add_separator();
  table.add_row({"geo", "mean", TextTable::fmt(geometric_mean(geo_manual), 1),
                 "-", TextTable::fmt(geometric_mean(geo_mflow), 1),
                 TextTable::fmt(geometric_mean(geo_nflow), 1),
                 TextTable::fmt(geometric_mean(geo_hybrid), 1),
                 TextTable::fmt(geometric_mean(geo_ours), 1)});
  const double manual_geo = geometric_mean(geo_manual);
  auto impr = [&](const std::vector<double>& v) {
    return TextTable::fmt_percent(1.0 - geometric_mean(v) / manual_geo, 0);
  };
  table.add_row({"Impr%", "", "-", "-", impr(geo_mflow), impr(geo_nflow),
                 impr(geo_hybrid), impr(geo_ours)});
  std::cout << table.render();
  std::cout << "\nPaper Table IV (ours): 4, 7, 6, 10, 16, 13, 22, 25; "
               "geomean 10.9 (17% better than manual).\n";

  // Fig. 6: the synthesized |D^2_4> circuit.
  ExactSynthesisOptions exact_options;
  exact_options.astar.time_budget_seconds = budget_small;
  const ExactSynthesizer exact(exact_options);
  const SynthesisResult fig6 = exact.synthesize(make_dicke(4, 2));
  if (fig6.found) {
    std::cout << "\nFig. 6: |D^2_4> with " << fig6.cnot_cost
              << " CNOTs (paper: 6, manual designs: 12):\n"
              << fig6.circuit.draw();
  }
  return 0;
}
