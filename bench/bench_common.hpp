#pragma once
// Shared helpers for the table/figure reproduction binaries. Every binary
// runs a laptop-scale sweep by default and the paper-scale parameters when
// the environment variable QSP_BENCH_FULL=1 is set.

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "state/quantum_state.hpp"

namespace qsp::bench {

/// True when QSP_BENCH_FULL=1 (paper-scale sweeps).
bool full_mode();

/// Standard banner: what is reproduced and how to widen the sweep.
void print_banner(const std::string& title, const std::string& description);

/// Verify the circuit when simulation is feasible: returns "yes", "NO"
/// (verification ran and failed) or "skipped" (register too wide or the
/// circuit too large to simulate in reasonable time).
std::string verify_cell(const Circuit& circuit, const QuantumState& target,
                        int max_sim_qubits = 16,
                        std::size_t max_gates = 200000);

/// Abort the bench with a message if verification ran and failed.
void check_verified(const std::string& cell, const std::string& context);

}  // namespace qsp::bench
