#pragma once
// Shared helpers for the table/figure reproduction binaries. Every binary
// runs a laptop-scale sweep by default and the paper-scale parameters when
// the environment variable QSP_BENCH_FULL=1 is set; QSP_BENCH_SMOKE=1
// shrinks the sweeps further for CI smoke runs.
//
// Alongside the text tables, every binary emits one machine-readable JSON
// line per table cell via json_row(...) so CI can diff CNOT counts and
// runtimes across commits. Lines go to stdout by default, or are appended
// to the file named by QSP_BENCH_JSON=<path>.

#include <cstdint>
#include <initializer_list>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/pass_pipeline.hpp"
#include "circuit/target.hpp"
#include "state/quantum_state.hpp"

namespace qsp::bench {

/// True when QSP_BENCH_FULL=1 (paper-scale sweeps).
bool full_mode();

/// True when QSP_BENCH_SMOKE=1 (CI smoke: tiniest sweeps, tight limits).
bool smoke_mode();

/// Worker threads for the exact kernel in bench sweeps, from
/// QSP_BENCH_THREADS (default 1 = the serial kernel, 0 = all hardware
/// threads). The fig7 thread-scaling section sweeps its own counts.
int bench_threads();

/// Pass-pipeline level for the workflow in bench sweeps, from
/// QSP_OPT_LEVEL (0/1/2; default 1, the historical cleanup). The
/// ablation_passes binary sweeps all levels regardless of this.
OptLevel bench_opt_level();

/// Backend target for the workflow in bench sweeps, from QSP_TARGET
/// (cnot/cz/iswap/rzz; default cnot, the historical gate set). Exits
/// with a diagnostic on an unknown name.
Target bench_target();

/// Standard banner: what is reproduced and how to widen the sweep.
void print_banner(const std::string& title, const std::string& description);

/// Verify the circuit when simulation is feasible: returns "yes", "NO"
/// (verification ran and failed) or "skipped" (register too wide or the
/// circuit too large to simulate in reasonable time).
std::string verify_cell(const Circuit& circuit, const QuantumState& target,
                        int max_sim_qubits = 16,
                        std::size_t max_gates = 200000);

/// Abort the bench with a message if verification ran and failed.
void check_verified(const std::string& cell, const std::string& context);

/// One key plus a pre-rendered JSON value; built implicitly from the
/// native types the benches report so call sites stay terse.
struct JsonField {
  JsonField(std::string key, const std::string& value);
  JsonField(std::string key, const char* value);
  JsonField(std::string key, double value);
  JsonField(std::string key, std::int64_t value);
  JsonField(std::string key, std::uint64_t value);
  JsonField(std::string key, int value);
  JsonField(std::string key, bool value);

  std::string key;
  std::string rendered;
};

/// Emit one JSON object per table cell: {"bench":<name>,...fields}. The
/// canonical schema is instance / cnot_cost / optimal / seconds / threads
/// (benches add cell-specific extras). Destination: stdout, or appended
/// to the file named by QSP_BENCH_JSON so table output stays clean.
void json_row(const std::string& bench,
              std::initializer_list<JsonField> fields);

}  // namespace qsp::bench
