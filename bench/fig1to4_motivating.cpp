// Figures 1-4 reproduction: the motivating 3-qubit example
// |psi> = (|000> + |011> + |101> + |110>)/2.
//   Fig. 1: qubit reduction (n-flow)        -> 6 CNOTs
//   Fig. 2: cardinality reduction (m-flow)  -> 7 CNOTs (paper's ordering)
//   Fig. 3: exact synthesis (ours)          -> 2 CNOTs
//   Fig. 4: the optimal path through the state transition graph.

#include <iostream>

#include "bench_common.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/lowering.hpp"
#include "core/exact_synthesizer.hpp"
#include "core/moves.hpp"
#include "flow/methods.hpp"
#include "prep/nflow.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"

namespace {

using namespace qsp;

void show(const std::string& figure, const std::string& method,
          const Circuit& circuit, const QuantumState& target,
          bool optimal = false) {
  const std::string ok = bench::verify_cell(circuit, target);
  bench::check_verified(ok, figure);
  std::cout << figure << " - " << method << ": "
            << count_cnots_after_lowering(circuit)
            << " CNOTs (verified: " << ok << ")\n"
            << circuit.draw() << "\n";
  bench::json_row("fig1to4_motivating",
                  {{"instance", figure},
                   {"method", method},
                   {"cnot_cost", count_cnots_after_lowering(circuit)},
                   {"optimal", optimal},
                   {"seconds", 0.0},
                   {"threads", 1}});
}

}  // namespace

int main() {
  using namespace qsp;
  bench::print_banner(
      "Figures 1-4: motivating example",
      "psi = (|000> + |011> + |101> + |110>)/2 prepared by all three\n"
      "method families, plus the optimal state-transition-graph path.");

  const QuantumState psi = make_uniform(3, {0b000, 0b011, 0b101, 0b110});
  std::cout << "Target: " << psi.to_string() << "\n\n";

  show("Fig. 1", "qubit reduction (n-flow)", nflow_prepare(psi), psi);

  const MethodRun mflow = run_method(Method::kMFlow, psi);
  show("Fig. 2", "cardinality reduction (m-flow)", mflow.circuit, psi);

  const ExactSynthesizer exact;
  const SynthesisResult ours = exact.synthesize(psi);
  show("Fig. 3", "exact synthesis (ours)", ours.circuit, psi, ours.optimal);

  // Fig. 4: walk the preparation circuit backwards (target -> ground) and
  // print each visited state with the arc's gate and cost, reproducing the
  // bold path of the figure.
  std::cout << "Fig. 4 - optimal path (target -> ground):\n";
  const Circuit back = ours.circuit.adjoint();
  SlotState state = *SlotState::from_state(psi);
  std::cout << "  " << state.to_string() << "\n";
  std::int64_t total = 0;
  for (const Gate& g : back.gates()) {
    Move mv;
    switch (g.kind()) {
      case GateKind::kX:
        mv.kind = MoveKind::kX;
        mv.target = g.target();
        break;
      case GateKind::kCNOT:
        mv.kind = MoveKind::kCNOT;
        mv.target = g.target();
        mv.control = g.controls()[0].qubit;
        mv.control_positive = g.controls()[0].positive;
        mv.cost = 1;
        break;
      default:
        mv.kind = MoveKind::kRotation;
        mv.target = g.target();
        mv.theta = g.theta();
        mv.controls = g.controls();
        mv.cost = gate_cnot_cost(g);
        break;
    }
    state = apply_move(state, mv);
    total += mv.cost;
    std::cout << "  --[" << g.to_string() << ", cost "
              << gate_cnot_cost(g) << "]--> " << state.to_string() << "\n";
  }
  std::cout << "  total distance: " << total
            << " (paper's bold path: 1 + 1 = 2)\n";
  return state.is_ground() && total == 2 ? 0 : 1;
}
