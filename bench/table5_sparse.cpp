// Table V (bottom) reproduction: sparse random uniform states, m = n.
// Reports the average CNOT count per method and the improvement of the
// workflow over the strongest sparse baseline (m-flow), like the paper.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "table5_common.hpp"
#include "util/combinatorics.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  using namespace qsp::bench;
  print_banner(
      "Table V (sparse): m = n random uniform states",
      "Averages over random samples per n; improvement vs m-flow. The\n"
      "n-flow baseline ignores sparsity and pays 2^n - 2 CNOTs.");

  const bool full = full_mode();
  const int n_max = full ? 20 : 14;
  const int nflow_n_max = full ? 20 : 14;  // n-flow emits 2^n gates
  const double time_limit = full ? 3600.0 : 120.0;

  TextTable table({"n", "m", "m-flow", "n-flow", "hybrid", "ours", "impr%",
                   "verified(ours)"});
  std::vector<double> geo[4];
  for (int n = 3; n <= n_max; ++n) {
    const int m = n;
    const int samples = full ? 100 : (n <= 10 ? 10 : 5);
    std::vector<Method> skip;
    if (n > nflow_n_max) skip.push_back(Method::kNFlow);
    const bool verify = n <= (full ? 14 : 12);
    const SweepRow row =
        run_cell(n, m, samples, time_limit, 0x50 + n, verify, skip);
    emit_sweep_json("table5_sparse", "sparse", row);

    auto cell_str = [&](int i) {
      return row.per_method[i].tle ? std::string("TLE")
                                   : TextTable::fmt(
                                         row.per_method[i].mean_cnots, 1);
    };
    const double ours = row.per_method[3].mean_cnots;
    const double mflow = row.per_method[0].mean_cnots;
    const double impr = (mflow > 0) ? 1.0 - ours / mflow : 0.0;
    table.add_row({TextTable::fmt(n), TextTable::fmt(m), cell_str(0),
                   cell_str(1), cell_str(2), cell_str(3),
                   TextTable::fmt_percent(impr, 1), verify ? "yes" : "skip"});
    for (int i = 0; i < 4; ++i) {
      if (!row.per_method[i].tle) {
        geo[i].push_back(row.per_method[i].mean_cnots);
      }
    }
  }
  table.add_separator();
  table.add_row(
      {"geo", "mean", TextTable::fmt(geometric_mean(geo[0]), 1),
       geo[1].empty() ? "-" : TextTable::fmt(geometric_mean(geo[1]), 1),
       TextTable::fmt(geometric_mean(geo[2]), 1),
       TextTable::fmt(geometric_mean(geo[3]), 1), "", ""});
  std::cout << table.render();
  std::cout << "\nPaper (sparse): ours improves on m-flow by 32% on average\n"
               "(37% at n=3, 28% at n=20); hybrid sits between the flows.\n";
  return 0;
}
