#include "table5_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp::bench {

SweepRow run_cell(int n, int m, int samples, double time_limit,
                  std::uint64_t seed_base, bool verify,
                  const std::vector<Method>& skip) {
  SweepRow row;
  row.n = n;
  row.m = m;
  bool active[4];
  for (int i = 0; i < 4; ++i) {
    active[i] = std::find(skip.begin(), skip.end(), kMethodOrder[i]) ==
                skip.end();
    row.per_method[i].tle = !active[i];
  }
  for (int s = 0; s < samples; ++s) {
    Rng rng(seed_base + static_cast<std::uint64_t>(s));
    const QuantumState target = make_random_uniform(n, m, rng);
    WorkflowOptions workflow;
    workflow.num_threads = bench_threads();
    workflow.opt_level = bench_opt_level();
    for (int i = 0; i < 4; ++i) {
      if (!active[i]) continue;
      const MethodRun run =
          run_method(kMethodOrder[i], target, time_limit, workflow);
      if (!run.ok) {
        row.per_method[i].tle = true;
        active[i] = false;
        continue;
      }
      auto& cell = row.per_method[i];
      cell.mean_cnots += static_cast<double>(run.cnots);
      cell.mean_seconds += run.seconds;
      ++cell.samples;
      if (verify) {
        const std::string v = verify_cell(run.circuit, target);
        check_verified(v, method_name(kMethodOrder[i]) + " n=" +
                              std::to_string(n) + " m=" + std::to_string(m));
      }
    }
  }
  for (auto& cell : row.per_method) {
    if (cell.samples > 0) {
      cell.mean_cnots /= cell.samples;
      cell.mean_seconds /= cell.samples;
    }
  }
  return row;
}

void emit_sweep_json(const std::string& bench, const std::string& family,
                     const SweepRow& row) {
  const int threads = bench_threads();
  for (int i = 0; i < 4; ++i) {
    const CellResult& cell = row.per_method[i];
    json_row(bench,
             {{"instance", family + " n=" + std::to_string(row.n) +
                               " m=" + std::to_string(row.m)},
              {"family", family},
              {"n", row.n},
              {"m", row.m},
              {"method", method_name(kMethodOrder[i])},
              {"tle", cell.tle},
              {"samples", cell.samples},
              {"cnot_cost", cell.tle ? -1.0 : cell.mean_cnots},
              {"optimal", false},
              {"seconds", cell.mean_seconds},
              {"threads", threads}});
  }
}

}  // namespace qsp::bench
