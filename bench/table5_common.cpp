#include "table5_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "state/state_factory.hpp"
#include "util/rng.hpp"

namespace qsp::bench {

SweepRow run_cell(int n, int m, int samples, double time_limit,
                  std::uint64_t seed_base, bool verify,
                  const std::vector<Method>& skip) {
  SweepRow row;
  row.n = n;
  row.m = m;
  bool active[4];
  for (int i = 0; i < 4; ++i) {
    active[i] = std::find(skip.begin(), skip.end(), kMethodOrder[i]) ==
                skip.end();
    row.per_method[i].tle = !active[i];
  }
  for (int s = 0; s < samples; ++s) {
    Rng rng(seed_base + static_cast<std::uint64_t>(s));
    const QuantumState target = make_random_uniform(n, m, rng);
    for (int i = 0; i < 4; ++i) {
      if (!active[i]) continue;
      const MethodRun run =
          run_method(kMethodOrder[i], target, time_limit);
      if (!run.ok) {
        row.per_method[i].tle = true;
        active[i] = false;
        continue;
      }
      auto& cell = row.per_method[i];
      cell.mean_cnots += static_cast<double>(run.cnots);
      cell.mean_seconds += run.seconds;
      ++cell.samples;
      if (verify) {
        const std::string v = verify_cell(run.circuit, target);
        check_verified(v, method_name(kMethodOrder[i]) + " n=" +
                              std::to_string(n) + " m=" + std::to_string(m));
      }
    }
  }
  for (auto& cell : row.per_method) {
    if (cell.samples > 0) {
      cell.mean_cnots /= cell.samples;
      cell.mean_seconds /= cell.samples;
    }
  }
  return row;
}

}  // namespace qsp::bench
