#pragma once
// Shared sweep machinery for the Table V / Fig. 7 reproductions: random
// uniform states per (n, m) cell, averaged CNOT counts and runtimes per
// method, with per-instance time limits and TLE reporting like the paper.

#include <optional>
#include <vector>

#include "flow/methods.hpp"

namespace qsp::bench {

struct CellResult {
  bool tle = false;            ///< any sample hit the time limit
  double mean_cnots = 0.0;     ///< over completed samples
  double mean_seconds = 0.0;
  int samples = 0;
};

struct SweepRow {
  int n = 0;
  int m = 0;
  CellResult per_method[4];  ///< indexed like kMethodOrder
};

inline constexpr Method kMethodOrder[4] = {Method::kMFlow, Method::kNFlow,
                                           Method::kHybrid, Method::kOurs};

/// Run `samples` random uniform states of (n, m) through every method.
/// A method that exceeds `time_limit` on a sample is marked TLE for the
/// whole cell (mirroring the paper's one-hour limit) and skipped for the
/// remaining samples. Methods listed in `skip` are marked TLE outright.
SweepRow run_cell(int n, int m, int samples, double time_limit,
                  std::uint64_t seed_base, bool verify,
                  const std::vector<Method>& skip = {});

/// One json_row per method cell of a sweep row, in the canonical
/// instance / cnot_cost / optimal / seconds / threads schema (workflow
/// cells carry no per-instance certificate, so optimal is false; threads
/// records bench_threads(), the count run_cell hands the workflow).
void emit_sweep_json(const std::string& bench, const std::string& family,
                     const SweepRow& row);

}  // namespace qsp::bench
