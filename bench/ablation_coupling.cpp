// Ablation D: coupling constraints. The paper motivates CNOT minimization
// by coupling constraints and assumes a symmetric coupling for its
// canonicalization; this bench quantifies the routed-CNOT overhead of
// preparing the same states on restricted topologies, with the search
// optimizing against each topology's routed cost model.

#include <iostream>
#include <memory>
#include <vector>

#include "arch/routing.hpp"
#include "bench_common.hpp"
#include "circuit/lowering.hpp"
#include "core/astar.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Ablation D: coupling topologies",
      "Optimal routed CNOT cost of 4-qubit preparations per topology\n"
      "(search optimizes against the routed cost model; every routed\n"
      "circuit is checked for coupling conformance and re-verified).");

  struct Topology {
    std::string name;
    std::shared_ptr<CouplingGraph> graph;
  };
  std::vector<Topology> topologies;
  topologies.push_back({"full", std::make_shared<CouplingGraph>(
                                    CouplingGraph::full(4))});
  topologies.push_back({"ring", std::make_shared<CouplingGraph>(
                                    CouplingGraph::ring(4))});
  topologies.push_back({"line", std::make_shared<CouplingGraph>(
                                    CouplingGraph::line(4))});
  topologies.push_back({"star", std::make_shared<CouplingGraph>(
                                    CouplingGraph::star(4))});

  struct Case {
    std::string name;
    QuantumState state;
  };
  std::vector<Case> cases;
  cases.push_back({"GHZ_4", make_ghz(4)});
  cases.push_back({"W_4", make_w(4)});
  cases.push_back({"Dicke(4,2)", make_dicke(4, 2)});
  Rng rng(1234);
  const int extra = bench::full_mode() ? 6 : 3;
  for (int i = 0; i < extra; ++i) {
    cases.push_back({"rand4m5#" + std::to_string(i),
                     make_random_uniform(4, 5, rng)});
  }

  TextTable table({"instance", "full", "ring", "line", "star"});
  std::vector<double> totals(topologies.size(), 0.0);
  for (const auto& c : cases) {
    std::vector<std::string> row{c.name};
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      SearchOptions options;
      options.coupling = topologies[t].graph;
      options.time_budget_seconds = bench::full_mode() ? 300.0 : 60.0;
      options.node_budget = 20'000'000;
      const AStarSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(c.state);
      if (!res.found) {
        row.push_back("budget");
        continue;
      }
      const Circuit routed =
          route_circuit(res.circuit, *topologies[t].graph);
      if (!respects_coupling(routed, *topologies[t].graph) ||
          !verify_preparation(routed, c.state).ok ||
          lowered_cnot_count(routed) != res.cnot_cost) {
        std::cerr << "ROUTING MISMATCH on " << c.name << "\n";
        return 1;
      }
      totals[t] += static_cast<double>(res.cnot_cost);
      row.push_back(TextTable::fmt(res.cnot_cost));
      bench::json_row("ablation_coupling",
                      {{"instance", c.name},
                       {"topology", topologies[t].name},
                       {"cnot_cost", res.cnot_cost},
                       {"optimal", res.optimal},
                       {"seconds", res.stats.seconds},
                       {"threads", 1}});
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  {
    std::vector<std::string> row{"total"};
    for (const double t : totals) row.push_back(TextTable::fmt(t, 0));
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nSymmetric states (GHZ, W) route for free: their optimal\n"
               "circuits are neighbour chains on every topology. Random\n"
               "sparse states pay routed-CNOT overhead, most on the line\n"
               "(largest diameter among these graphs).\n";
  return 0;
}
