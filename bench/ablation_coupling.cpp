// Ablation D: coupling constraints. The paper motivates CNOT minimization
// by coupling constraints and assumes a symmetric coupling for its
// canonicalization; this bench quantifies the routed-CNOT overhead of
// preparing the same states on restricted topologies, with the search
// optimizing against each topology's routed cost model.
//
// Section (a) reproduces the 4-qubit sweep over full/ring/line/star.
// Section (b) scales beyond 4 qubits (line, 2x3 grid, a heavy-hex patch)
// and measures heuristic tightness: every instance runs once with the
// coupling-aware admissible bound (Steiner-priced components) and once
// with the coupling-blind unit bound. Both are admissible, so the optimal
// routed costs must agree cell by cell — the expanded-node delta is pure
// heuristic pruning, diffable across commits via the JSON rows.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/routing.hpp"
#include "bench_common.hpp"
#include "circuit/lowering.hpp"
#include "core/astar.hpp"
#include "sim/verifier.hpp"
#include "state/state_factory.hpp"
#include "util/table.hpp"

namespace {

using namespace qsp;

struct Topology {
  std::string name;
  std::shared_ptr<CouplingGraph> graph;
};

struct Case {
  std::string name;
  QuantumState state;
};

int run_four_qubit_sweep() {
  std::vector<Topology> topologies;
  topologies.push_back({"full", std::make_shared<CouplingGraph>(
                                    CouplingGraph::full(4))});
  topologies.push_back({"ring", std::make_shared<CouplingGraph>(
                                    CouplingGraph::ring(4))});
  topologies.push_back({"line", std::make_shared<CouplingGraph>(
                                    CouplingGraph::line(4))});
  topologies.push_back({"star", std::make_shared<CouplingGraph>(
                                    CouplingGraph::star(4))});

  std::vector<Case> cases;
  cases.push_back({"GHZ_4", make_ghz(4)});
  cases.push_back({"W_4", make_w(4)});
  cases.push_back({"Dicke(4,2)", make_dicke(4, 2)});
  Rng rng(1234);
  const int extra = bench::full_mode() ? 6 : (bench::smoke_mode() ? 1 : 3);
  for (int i = 0; i < extra; ++i) {
    cases.push_back({"rand4m5#" + std::to_string(i),
                     make_random_uniform(4, 5, rng)});
  }

  TextTable table({"instance", "full", "ring", "line", "star"});
  std::vector<double> totals(topologies.size(), 0.0);
  for (const auto& c : cases) {
    std::vector<std::string> row{c.name};
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      SearchOptions options;
      options.coupling = topologies[t].graph;
      options.num_threads = bench::bench_threads();
      options.time_budget_seconds = bench::full_mode() ? 300.0 : 60.0;
      options.node_budget = 20'000'000;
      const AStarSynthesizer synth(options);
      const SynthesisResult res = synth.synthesize(c.state);
      if (!res.found) {
        row.push_back("budget");
        continue;
      }
      const Circuit routed =
          route_circuit(res.circuit, *topologies[t].graph);
      if (!respects_coupling(routed, *topologies[t].graph) ||
          !verify_preparation(routed, c.state).ok ||
          lowered_cnot_count(routed) != res.cnot_cost) {
        std::cerr << "ROUTING MISMATCH on " << c.name << "\n";
        return 1;
      }
      totals[t] += static_cast<double>(res.cnot_cost);
      row.push_back(TextTable::fmt(res.cnot_cost));
      bench::json_row("ablation_coupling",
                      {{"instance", c.name},
                       {"topology", topologies[t].name},
                       {"heuristic", "routed"},
                       {"cnot_cost", res.cnot_cost},
                       {"optimal", res.optimal},
                       {"nodes_expanded", res.stats.nodes_expanded},
                       {"seconds", res.stats.seconds},
                       {"threads", bench::bench_threads()}});
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  {
    std::vector<std::string> row{"total"};
    for (const double t : totals) row.push_back(TextTable::fmt(t, 0));
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nSymmetric states (GHZ, W) route for free: their optimal\n"
               "circuits are neighbour chains on every topology. Random\n"
               "sparse states pay routed-CNOT overhead, most on the line\n"
               "(largest diameter among these graphs).\n\n";
  return 0;
}

int run_scaling_sweep() {
  std::vector<Topology> topologies;
  topologies.push_back({"line6", std::make_shared<CouplingGraph>(
                                     CouplingGraph::line(6))});
  if (!bench::smoke_mode()) {
    topologies.push_back({"grid23", std::make_shared<CouplingGraph>(
                                        CouplingGraph::grid(2, 3))});
  }
  // A 7-qubit connected patch of the d=3 heavy-hex lattice: row-0 prefix
  // 0-1-2, bridge 15, row-1 prefix 5-6-7 (re-indexed 0..6).
  topologies.push_back(
      {"heavy_hex7",
       std::make_shared<CouplingGraph>(CouplingGraph::heavy_hex(3).induced(
           {0, 1, 2, 5, 6, 7, 15}))});

  std::vector<Case> cases;
  cases.push_back({"GHZ_5", make_ghz(5)});
  // Spread-out Bell products: the instances where the Steiner-priced
  // bound beats the unit bound hardest (entangled pairs far apart on the
  // device, nested so one interaction component can host both).
  cases.push_back(
      {"bell(0,3)x(1,2)",
       make_uniform(4, {0b0000, 0b1001, 0b0110, 0b1111})});
  if (!bench::smoke_mode()) {
    cases.push_back({"GHZ_6", make_ghz(6)});
    cases.push_back({"W_5", make_w(5)});
    cases.push_back(
        {"bell(0,5)x(1,4)",
         make_uniform(6, {0b000000, 0b100001, 0b010010, 0b110011})});
    Rng rng(4321);
    cases.push_back({"rand5m4", make_random_uniform(5, 4, rng)});
  }
  if (bench::full_mode()) {
    cases.push_back({"W_6", make_w(6)});
    cases.push_back({"Dicke(5,2)", make_dicke(5, 2)});
  }

  TextTable table({"instance", "topology", "routed cost", "optimal",
                   "expanded (routed h)", "expanded (unit h)", "saved"});
  bool any_pruning = false;
  for (const auto& c : cases) {
    for (const auto& t : topologies) {
      if (c.state.num_qubits() > t.graph->num_qubits()) continue;
      SynthesisResult results[2];
      bool ok = true;
      for (int aware = 1; aware >= 0; --aware) {
        SearchOptions options;
        options.coupling = t.graph;
        options.routed_heuristic = aware == 1;
        options.num_threads = bench::bench_threads();
        options.time_budget_seconds = bench::full_mode() ? 300.0 : 30.0;
        options.node_budget = bench::smoke_mode() ? 2'000'000 : 10'000'000;
        const AStarSynthesizer synth(options);
        results[aware] = synth.synthesize(c.state);
        if (!results[aware].found) ok = false;
      }
      if (!ok) {
        table.add_row({c.name, t.name, "budget", "-", "-", "-", "-"});
        continue;
      }
      const SynthesisResult& routed_h = results[1];
      const SynthesisResult& unit_h = results[0];
      // Both heuristics are admissible: the certified optima must agree.
      if (routed_h.optimal != unit_h.optimal ||
          routed_h.cnot_cost != unit_h.cnot_cost) {
        std::cerr << "HEURISTIC CERTIFICATE MISMATCH on " << c.name << "@"
                  << t.name << ": " << routed_h.cnot_cost << " vs "
                  << unit_h.cnot_cost << "\n";
        return 1;
      }
      const Circuit routed = route_circuit(routed_h.circuit, *t.graph);
      if (!respects_coupling(routed, *t.graph) ||
          !verify_preparation(routed, c.state).ok ||
          lowered_cnot_count(routed) != routed_h.cnot_cost) {
        std::cerr << "ROUTING MISMATCH on " << c.name << "@" << t.name
                  << "\n";
        return 1;
      }
      const double saved =
          unit_h.stats.nodes_expanded == 0
              ? 0.0
              : 100.0 *
                    (1.0 - static_cast<double>(
                               routed_h.stats.nodes_expanded) /
                               static_cast<double>(
                                   unit_h.stats.nodes_expanded));
      any_pruning = any_pruning || routed_h.stats.nodes_expanded <
                                       unit_h.stats.nodes_expanded;
      table.add_row({c.name, t.name, TextTable::fmt(routed_h.cnot_cost),
                     routed_h.optimal ? "yes" : "no",
                     TextTable::fmt(static_cast<std::int64_t>(
                         routed_h.stats.nodes_expanded)),
                     TextTable::fmt(static_cast<std::int64_t>(
                         unit_h.stats.nodes_expanded)),
                     TextTable::fmt(saved, 1) + "%"});
      for (const bool aware : {true, false}) {
        const SynthesisResult& res = aware ? routed_h : unit_h;
        bench::json_row("ablation_coupling",
                        {{"instance", c.name},
                         {"topology", t.name},
                         {"heuristic", aware ? "routed" : "unit"},
                         {"cnot_cost", res.cnot_cost},
                         {"optimal", res.optimal},
                         {"nodes_expanded", res.stats.nodes_expanded},
                         {"seconds", res.stats.seconds},
                         {"threads", bench::bench_threads()}});
      }
    }
  }
  std::cout << table.render();
  std::cout << "\nBoth bounds are admissible, so every cell's optimum is\n"
               "bit-identical; the saved column is pure pruning from\n"
               "pricing merges at device Steiner-connection cost. Spread\n"
               "Bell products gain the most: their correlation components\n"
               "span the device, which the unit bound cannot see.\n";
  if (!any_pruning) {
    std::cerr << "NO PRUNING OBSERVED: the routed heuristic should beat "
                 "the unit bound somewhere on this sweep\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation D: coupling topologies",
      "Optimal routed CNOT cost per topology, 4-qubit sweep plus\n"
      "beyond-4-qubit scaling on line/grid/heavy-hex with the\n"
      "coupling-aware vs coupling-blind admissible heuristic\n"
      "(every routed circuit is checked for coupling conformance\n"
      "and re-verified).");
  const int four = run_four_qubit_sweep();
  if (four != 0) return four;
  return run_scaling_sweep();
}
