// Extension bench: arbitrary complex-amplitude preparation via the phase
// oracle (paper Section VI-A, citing Amy et al.). Reports the CNOT split
// between the magnitude preparation (real workflow) and the diagonal
// phase oracle, with full complex-statevector verification.

#include <iostream>

#include "bench_common.hpp"
#include "circuit/lowering.hpp"
#include "circuit/optimizer.hpp"
#include "flow/solver.hpp"
#include "phase/complex_statevector.hpp"
#include "phase/phase_oracle.hpp"
#include "util/table.hpp"

int main() {
  using namespace qsp;
  bench::print_banner(
      "Extension: complex amplitudes via phase oracle",
      "|psi> = D(phi) |mag>: the workflow prepares the magnitudes, a UCRz\n"
      "chain imprints the support phases (<= 2^n - 2 CNOTs; zero for real\n"
      "targets). Every row is verified on the complex simulator.");

  LoweringOptions elide;
  elide.elide_zero_rotations = true;

  TextTable table({"n", "m", "mag CNOTs", "oracle CNOTs", "total",
                   "verified"});
  Rng rng(2026);
  const int n_max = bench::full_mode() ? 12 : 8;
  for (int n = 3; n <= n_max; ++n) {
    for (const int m : {n, 1 << (n - 1)}) {
      const ComplexState target = make_random_complex(n, m, rng);
      const ComplexPrepResult res = prepare_complex(target);
      if (!res.found) {
        table.add_row({TextTable::fmt(n), TextTable::fmt(m), "-", "-", "-",
                       "failed"});
        continue;
      }
      const Solver solver;
      const WorkflowResult mag = solver.prepare(target.magnitudes());
      const std::int64_t mag_cnots =
          mag.found ? count_cnots_after_lowering(optimize(mag.circuit),
                                                 elide)
                    : -1;
      const std::int64_t total =
          count_cnots_after_lowering(optimize(res.circuit), elide);
      const bool ok = verify_complex_preparation(res.circuit, target);
      if (!ok) {
        std::cerr << "COMPLEX VERIFICATION FAILED at n=" << n << "\n";
        return 1;
      }
      table.add_row({TextTable::fmt(n), TextTable::fmt(m),
                     TextTable::fmt(mag_cnots),
                     TextTable::fmt(total - mag_cnots),
                     TextTable::fmt(total), "yes"});
      bench::json_row("ext_complex_phase",
                      {{"instance",
                        "n=" + std::to_string(n) + " m=" + std::to_string(m)},
                       {"n", n},
                       {"m", m},
                       {"magnitude_cnots", mag_cnots},
                       {"oracle_cnots", total - mag_cnots},
                       {"cnot_cost", total},
                       {"optimal", false},
                       {"seconds", 0.0},
                       {"threads", 1}});
    }
  }
  std::cout << table.render();
  std::cout << "\nThe oracle pays up to 2^n - 2 CNOTs on dense random\n"
               "phases; optimizing it further (parity-network synthesis,\n"
               "Amy et al.) is orthogonal to the magnitude pipeline.\n";
  return 0;
}
