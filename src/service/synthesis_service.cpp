#include "service/synthesis_service.hpp"

#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace qsp {

SynthesisService::SynthesisService(SynthesisServiceOptions options)
    : options_(options),
      cache_(std::make_shared<EquivalenceCache>(options.cache)) {
  int workers = options_.num_workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SynthesisService::~SynthesisService() {
  std::deque<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  for (Job& job : orphans) {
    job.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("SynthesisService: shut down before request ran")));
  }
}

std::future<ServiceResponse> SynthesisService::submit(ServiceRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<ServiceResponse> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("SynthesisService: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

std::vector<ServiceResponse> SynthesisService::run_batch(
    std::vector<ServiceRequest> batch) {
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(batch.size());
  for (ServiceRequest& request : batch) {
    futures.push_back(submit(std::move(request)));
  }
  std::vector<ServiceResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

void SynthesisService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      WorkflowOptions options = job.request.options;
      if (options_.share_cache && options.cache == nullptr) {
        options.cache = cache_;
      }
      if (options_.opt_level.has_value()) {
        options.opt_level = *options_.opt_level;
      }
      if (options_.target.has_value()) {
        options.target = *options_.target;
      }
      const Timer timer;
      const Solver solver(options);
      ServiceResponse response;
      response.result = solver.prepare(job.request.state);
      response.seconds = timer.seconds();
      served_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(std::move(response));
    } catch (...) {
      served_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace qsp
