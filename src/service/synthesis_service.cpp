#include "service/synthesis_service.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "circuit/dataflow.hpp"
#include "sim/statevector.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

/// Front-door lint policy: structural rules plus the real-amplitude gate
/// mask. Target/coupling conformance is deliberately not checked here —
/// request QASM describes the state to prepare, not the circuit the
/// workflow will emit for it.
LintOptions request_lint_options() {
  LintOptions options;
  options.allowed_kinds =
      lint_kind_bit(GateKind::kX) | lint_kind_bit(GateKind::kRy) |
      lint_kind_bit(GateKind::kCNOT) | lint_kind_bit(GateKind::kCZ);
  return options;
}

}  // namespace

SynthesisService::SynthesisService(SynthesisServiceOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<EquivalenceCache>(options_.cache)) {
  int workers = options_.num_workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SynthesisService::~SynthesisService() {
  std::deque<Job> orphans;
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  for (Job& job : orphans) {
    job.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("SynthesisService: shut down before request ran")));
  }
}

std::future<ServiceResponse> SynthesisService::submit(ServiceRequest request) {
  Job job;
  job.request = std::move(request);
  return enqueue(std::move(job));
}

std::future<ServiceResponse> SynthesisService::enqueue(Job job) {
  std::future<ServiceResponse> future = job.promise.get_future();
  {
    const MutexLock lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("SynthesisService: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

std::vector<ServiceResponse> SynthesisService::run_batch(
    std::vector<ServiceRequest> batch) {
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(batch.size());
  for (ServiceRequest& request : batch) {
    futures.push_back(submit(std::move(request)));
  }
  std::vector<ServiceResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

LintReport SynthesisService::lint_request(const std::string& qasm) const {
  return lint_qasm(qasm, request_lint_options());
}

std::future<ServiceResponse> SynthesisService::submit_qasm(
    const std::string& qasm, WorkflowOptions options) {
  std::optional<Circuit> parsed;
  LintReport report = lint_qasm(qasm, request_lint_options(), &parsed);
  if (report.has_errors()) {
    // Structured rejection: callers read the rule codes off the report
    // (what() renders the same diagnostics for legacy catch sites).
    throw ServiceLintError(std::move(report));
  }
  const Circuit& circuit = *parsed;
  if (options_.max_qasm_qubits > 0 &&
      circuit.num_qubits() > options_.max_qasm_qubits) {
    std::ostringstream os;
    os << "SynthesisService: QASM request spans " << circuit.num_qubits()
       << " qubits; the service accepts at most " << options_.max_qasm_qubits;
    throw std::invalid_argument(os.str());
  }
  Statevector sv(circuit.num_qubits());
  sv.apply(circuit);
  Job job;
  job.request.state =
      QuantumState::from_dense(circuit.num_qubits(), sv.amplitudes());
  job.request.options = std::move(options);
  // Accepted with warnings: carry them into the response's structured
  // diagnostics so callers see the front-door findings alongside the
  // result's own dataflow analysis.
  job.request_lint = std::move(report);
  return enqueue(std::move(job));
}

void SynthesisService::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop: a predicate lambda would read the guarded
      // fields outside annotated scope (see thread_annotations.hpp).
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      WorkflowOptions options = job.request.options;
      if (options_.share_cache && options.cache == nullptr) {
        options.cache = cache_;
      }
      if (options_.opt_level.has_value()) {
        options.opt_level = *options_.opt_level;
      }
      if (options_.target.has_value()) {
        options.target = *options_.target;
      }
      const Timer timer;
      const Solver solver(options);
      ServiceResponse response;
      response.result = solver.prepare(job.request.state);
      response.seconds = timer.seconds();
      response.diagnostics = std::move(job.request_lint);
      if (response.result.found) {
        // Dataflow analysis of the produced circuit. QL014 stays off
        // here: the result's register contract is documented on
        // WorkflowResult, and the Solver already certifies routed
        // workspace wires statically before optimization.
        const LintReport dataflow =
            dataflow_lint(response.result.circuit, DataflowOptions{});
        for (const LintDiagnostic& d : dataflow.diagnostics) {
          response.diagnostics.diagnostics.push_back(d);
        }
      }
      served_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(std::move(response));
    } catch (...) {
      served_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace qsp
