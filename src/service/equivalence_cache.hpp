#pragma once
// Sharded, mutex-striped cross-request equivalence cache: the concrete
// SearchCache behind the synthesis service. One entry per (canonical
// class, register width, coupling fingerprint, cost-model id, control
// budget): the class representative that was searched, the witness of its
// canonical form, and the certified-optimal circuit template.
//
// Hit paths:
//   exact hit    — the target *is* the stored representative: the stored
//                  template is returned verbatim (bit-identical to the
//                  cold-path result that populated it).
//   rewired hit  — the target is a different member of the same class:
//                  the template is rewired through the canonical form at
//                  zero extra CNOT cost (free merges, X layers and — only
//                  where relabeling is free — a wire relabeling), so the
//                  optimality certificate transfers.
//
// Only certified-optimal results are stored; see search_cache.hpp for why
// that makes hits sound across differing search options. Eviction is LRU
// per shard under capacity and byte bounds. In-flight deduplication: the
// first thread to miss a class becomes its owner, later threads block on
// a per-class condition variable until the owner publishes, then hit.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/search_cache.hpp"
#include "util/thread_annotations.hpp"

namespace qsp {

struct EquivalenceCacheOptions {
  /// Mutex stripes; keys are distributed by hash.
  std::size_t num_shards = 16;
  /// Entry bound across all shards (0 = unlimited); enforced per shard as
  /// max_entries / num_shards (at least 1).
  std::size_t max_entries = 1u << 16;
  /// Approximate byte bound across all shards (0 = unlimited).
  std::size_t max_bytes = std::size_t{256} << 20;
  /// Serve same-class different-representative lookups by witness
  /// rewiring. Off, such lookups count as misses (exact hits still
  /// served).
  bool rewire_class_hits = true;
};

struct EquivalenceCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;          ///< exact_hits + rewired_hits
  std::uint64_t exact_hits = 0;
  std::uint64_t rewired_hits = 0;
  std::uint64_t misses = 0;        ///< lookups - hits
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Times a lookup blocked on another thread's in-flight search.
  std::uint64_t inflight_waits = 0;
  std::uint64_t entries = 0;       ///< current population
  std::uint64_t bytes = 0;         ///< current approximate footprint
};

class EquivalenceCache final : public SearchCache {
 public:
  explicit EquivalenceCache(EquivalenceCacheOptions options = {});

  Lookup begin(const SlotState& target, const CanonicalWitness& witness,
               const CacheFingerprint& fp, double max_wait_seconds,
               bool consult_only) override;
  void end(const SlotState& target, const CanonicalWitness& witness,
           const CacheFingerprint& fp,
           const SynthesisResult* result) override;

  EquivalenceCacheStats stats() const;
  const EquivalenceCacheOptions& options() const { return options_; }

 private:
  /// Template and witness are immutable and shared: a hit copies two
  /// shared_ptrs under the shard lock and builds its circuit outside it
  /// (an eviction racing a hit just keeps the template alive until the
  /// last reader drops it).
  struct Entry {
    SlotState representative = SlotState::ground(1, 1);
    std::shared_ptr<const CanonicalWitness> witness;
    std::shared_ptr<const Circuit> circuit;
    std::int64_t cnot_cost = 0;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  struct InFlight {
    Mutex m;
    CondVar cv;
    bool done QSP_GUARDED_BY(m) = false;
  };

  struct Shard {
    Mutex m;
    std::unordered_map<std::string, Entry> map QSP_GUARDED_BY(m);
    /// Front = most recently used key.
    std::list<std::string> lru QSP_GUARDED_BY(m);
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight
        QSP_GUARDED_BY(m);
    std::size_t bytes QSP_GUARDED_BY(m) = 0;
  };

  Shard& shard_for(const std::string& key);
  void evict_over_caps(Shard& shard) QSP_REQUIRES(shard.m);

  EquivalenceCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_entry_cap_ = 0;  ///< 0 = unlimited
  std::size_t shard_byte_cap_ = 0;   ///< 0 = unlimited

  mutable std::atomic<std::uint64_t> lookups_{0};
  mutable std::atomic<std::uint64_t> exact_hits_{0};
  mutable std::atomic<std::uint64_t> rewired_hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> insertions_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> inflight_waits_{0};
  mutable std::atomic<std::uint64_t> entries_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace qsp
