#pragma once
// Long-lived synthesis service: a worker pool over the Fig.-5 workflow
// with a shared cross-request equivalence cache. Repeated requests
// (GHZ/W/Dicke families, parameter sweeps, per-user variants) reduce to
// the same canonical exact-tail classes, so the exact kernel's work is
// paid once and served from cache thereafter; concurrent requests for the
// same class are deduplicated in flight inside the cache. Per-request
// coupling, thread counts and budgets are honored — the service only
// injects its cache into each request's WorkflowOptions. Request- and
// search-level parallelism compose: a request carrying
// WorkflowOptions::num_threads > 1 runs its exact-tail searches on the
// sharded HDA* kernel and the sharded parallel beam inside its worker,
// so a small batch of heavy requests can still saturate the machine.

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/lint.hpp"
#include "flow/solver.hpp"
#include "service/equivalence_cache.hpp"
#include "state/quantum_state.hpp"
#include "util/thread_annotations.hpp"

namespace qsp {

struct SynthesisServiceOptions {
  /// Worker threads serving requests (0 = all hardware threads).
  int num_workers = 0;
  /// Configuration of the shared equivalence cache.
  EquivalenceCacheOptions cache;
  /// Inject the service cache into every request whose WorkflowOptions
  /// does not already carry one. Off, the service is a plain worker pool.
  bool share_cache = true;
  /// Service-wide pass-pipeline level. When set, overrides every
  /// request's WorkflowOptions::opt_level — a deployment knob (e.g. run
  /// the whole fleet at O2, or disable cleanup at O0 for debugging)
  /// without touching per-request options. Unset: requests keep their
  /// own level.
  std::optional<OptLevel> opt_level;
  /// Service-wide backend target. When set, overrides every request's
  /// WorkflowOptions::target — the fleet-deployment analogue of
  /// `opt_level` for hardware with a fixed native gate set. Unset:
  /// requests keep their own target.
  std::optional<Target> target;
  /// QASM front door (submit_qasm): reject programs wider than this
  /// before any amplitude work (the dense simulation behind a request is
  /// 8 * 2^n bytes). 0 = unlimited.
  int max_qasm_qubits = 20;
};

struct ServiceRequest {
  QuantumState state{1};
  WorkflowOptions options{};
};

struct ServiceResponse {
  WorkflowResult result;
  /// Wall-clock seconds the request spent inside its worker.
  double seconds = 0.0;
  /// Structured lint + dataflow diagnostics for the request: the QASM
  /// front door's request-lint warnings (errors reject before enqueue)
  /// followed by the dataflow analysis of the produced circuit (QL014
  /// off — the output sits on the register the result documents). Callers
  /// report rule codes to users instead of re-deriving them from strings.
  LintReport diagnostics;
};

/// Thrown by submit_qasm when the front-door lint rejects a request; the
/// structured report carries the rule codes. Derives from
/// std::invalid_argument (what() is the rendered report) so callers that
/// only catch the legacy type keep working.
class ServiceLintError : public std::invalid_argument {
 public:
  explicit ServiceLintError(LintReport report)
      : std::invalid_argument(report.to_string()), report_(std::move(report)) {}
  const LintReport& report() const { return report_; }

 private:
  LintReport report_;
};

class SynthesisService {
 public:
  explicit SynthesisService(SynthesisServiceOptions options = {});
  /// Drains the queue (pending jobs fail with an exception) and joins.
  ~SynthesisService();

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Enqueue one request; the future carries the response or the
  /// exception the workflow threw (e.g. an invalid device).
  std::future<ServiceResponse> submit(ServiceRequest request);

  /// Convenience: submit a whole batch and wait for every response, in
  /// order. Rethrows the first failed request's exception.
  std::vector<ServiceResponse> run_batch(std::vector<ServiceRequest> batch);

  /// Lint QASM text against the service's front-door policy: every
  /// structural rule plus the real-amplitude gate-set mask {x, ry, cx,
  /// cz} (z-axis and iSWAP gates make the prepared state complex, which
  /// the real-amplitude request type cannot carry). Pure query — nothing
  /// is enqueued; submit_qasm applies exactly this policy.
  LintReport lint_request(const std::string& qasm) const;

  /// QASM front door: lint the program (any error-severity diagnostic
  /// rejects with std::invalid_argument carrying the report, before any
  /// search spends budget), simulate the accepted circuit from |0...0>,
  /// and submit the prepared state as an ordinary request.
  std::future<ServiceResponse> submit_qasm(const std::string& qasm,
                                           WorkflowOptions options = {});

  const std::shared_ptr<EquivalenceCache>& cache() const { return cache_; }
  EquivalenceCacheStats cache_stats() const { return cache_->stats(); }
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Job {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    /// Warning-severity diagnostics from the request's front-door lint
    /// (QASM requests); prepended to the response's diagnostics.
    LintReport request_lint;
  };

  std::future<ServiceResponse> enqueue(Job job);
  void worker_loop();

  SynthesisServiceOptions options_;
  std::shared_ptr<EquivalenceCache> cache_;

  Mutex mutex_;
  CondVar cv_;
  std::deque<Job> queue_ QSP_GUARDED_BY(mutex_);
  bool stopping_ QSP_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace qsp
