#include "service/equivalence_cache.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

/// Cache key: fingerprint id plus the canonical key's raw bytes. Equal
/// keys <=> same fingerprint and same canonical class.
std::string make_key(const std::string& fingerprint_id,
                     const CanonicalKey& canonical) {
  std::string key;
  key.reserve(fingerprint_id.size() + 1 + canonical.size() * 8);
  key += fingerprint_id;
  key += '#';
  for (const std::uint64_t packed : canonical) {
    for (int b = 0; b < 8; ++b) {
      key += static_cast<char>((packed >> (8 * b)) & 0xff);
    }
  }
  return key;
}

std::size_t gate_bytes(const Gate& gate) {
  return sizeof(Gate) + gate.controls().size() * sizeof(ControlLiteral) +
         gate.angles().size() * sizeof(double);
}

std::size_t circuit_bytes(const Circuit& circuit) {
  std::size_t total = sizeof(Circuit);
  for (const Gate& g : circuit.gates()) total += gate_bytes(g);
  return total;
}

std::size_t witness_bytes(const CanonicalWitness& witness) {
  std::size_t total = witness.key.size() * sizeof(std::uint64_t) +
                      witness.permutation.size() * sizeof(int);
  for (const Gate& g : witness.merge_gates) total += gate_bytes(g);
  return total;
}

/// Rewire a cached template onto another member of the same class. Both
/// the representative and the target canonicalize to the same form F via
/// their witnesses W_R, W_T (merges M, X-translation X, relabeling P):
///   |T> = M_T^-1 X_T P_T^-1 P_R X_R M_R |R>
/// Applying P_sigma := P_T^-1 P_R to a circuit that starts from |0> is a
/// wire relabeling (P_sigma |0> = |0>), so the template plus the
/// representative-side witness gates are remapped by sigma, then the
/// target-side witness is undone. Every added gate is zero-cost (X, Ry)
/// and sigma is the identity whenever the cache canonicalizes without
/// permutations (restricted couplings), so routed costs are preserved and
/// the optimality certificate transfers.
Circuit rewire_template(const Circuit& circuit,
                        const CanonicalWitness& representative_witness,
                        const CanonicalWitness& target_witness,
                        int num_qubits) {
  Circuit out(num_qubits);
  out.append(circuit);
  for (const Gate& g : representative_witness.merge_gates) out.append(g);
  for (int q = 0; q < num_qubits; ++q) {
    if (get_bit(representative_witness.translation, q) != 0) {
      out.append(Gate::x(q));
    }
  }
  const std::vector<int>& pr = representative_witness.permutation;
  const std::vector<int>& pt = target_witness.permutation;
  QSP_ASSERT(pr.size() == pt.size());
  std::vector<int> pt_inverse(pt.size(), 0);
  for (std::size_t q = 0; q < pt.size(); ++q) {
    pt_inverse[static_cast<std::size_t>(pt[q])] = static_cast<int>(q);
  }
  std::vector<int> sigma(pr.size(), 0);
  bool identity = true;
  for (std::size_t q = 0; q < pr.size(); ++q) {
    sigma[q] = pt_inverse[static_cast<std::size_t>(pr[q])];
    identity = identity && sigma[q] == static_cast<int>(q);
  }
  if (!identity) {
    Circuit relabeled(num_qubits);
    for (const Gate& g : out.gates()) relabeled.append(g.remapped(sigma));
    out = std::move(relabeled);
  }
  for (int q = 0; q < num_qubits; ++q) {
    if (get_bit(target_witness.translation, q) != 0) {
      out.append(Gate::x(q));
    }
  }
  for (auto it = target_witness.merge_gates.rbegin();
       it != target_witness.merge_gates.rend(); ++it) {
    out.append(it->adjoint());
  }
  return out;
}

}  // namespace

EquivalenceCache::EquivalenceCache(EquivalenceCacheOptions options)
    : options_(options) {
  options_.num_shards = std::max<std::size_t>(options_.num_shards, 1);
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.max_entries != 0) {
    shard_entry_cap_ =
        std::max<std::size_t>(options_.max_entries / options_.num_shards, 1);
  }
  if (options_.max_bytes != 0) {
    shard_byte_cap_ =
        std::max<std::size_t>(options_.max_bytes / options_.num_shards, 1);
  }
}

EquivalenceCache::Shard& EquivalenceCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void EquivalenceCache::evict_over_caps(Shard& shard) {
  while (!shard.lru.empty() &&
         ((shard_entry_cap_ != 0 && shard.map.size() > shard_entry_cap_) ||
          (shard_byte_cap_ != 0 && shard.bytes > shard_byte_cap_))) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    const auto it = shard.map.find(victim);
    QSP_ASSERT(it != shard.map.end());
    shard.bytes -= it->second.bytes;
    bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    shard.map.erase(it);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SearchCache::Lookup EquivalenceCache::begin(const SlotState& target,
                                            const CanonicalWitness& witness,
                                            const CacheFingerprint& fp,
                                            double max_wait_seconds,
                                            bool consult_only) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::string key = make_key(fp.id, witness.key);
  Shard& shard = shard_for(key);

  // One wait budget across every ownership round: a fresh owner claiming
  // the class between our wake-up and retry must not reset the clock, or
  // a stream of failing owners could block a waiter for a multiple of
  // its own time budget.
  const Timer wait_timer;
  bool waited_once = false;
  for (;;) {
    std::shared_ptr<InFlight> flight;
    std::shared_ptr<const Circuit> hit_circuit;
    std::shared_ptr<const CanonicalWitness> hit_witness;
    std::int64_t hit_cost = 0;
    bool exact = false;
    {
      const MutexLock lock(shard.m);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        Entry& entry = it->second;
        exact = target == entry.representative;
        if (exact || options_.rewire_class_hits) {
          // Grab the immutable template; the circuit (and any rewiring)
          // is built after the lock is released.
          shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru);
          hit_circuit = entry.circuit;
          hit_witness = entry.witness;
          hit_cost = entry.cnot_cost;
        }
        // Class present but rewiring disabled: treat as a miss; the
        // publish below will refresh the entry with the new
        // representative.
      }
      if (hit_circuit == nullptr) {
        if (consult_only) {
          // Non-certifying searchers (the beam) answer from the table or
          // walk away: claiming ownership would make certifying
          // searchers queue behind a search that can never populate.
          misses_.fetch_add(1, std::memory_order_relaxed);
          return Lookup{Claim::kIndependent, std::nullopt};
        }
        const auto flight_it = shard.inflight.find(key);
        if (flight_it == shard.inflight.end()) {
          if (waited_once) {
            // The owner we waited for published nothing (failed or
            // uncertified search). Run a private search rather than
            // serializing another ownership round behind this class.
            misses_.fetch_add(1, std::memory_order_relaxed);
            return Lookup{Claim::kIndependent, std::nullopt};
          }
          shard.inflight.emplace(key, std::make_shared<InFlight>());
          misses_.fetch_add(1, std::memory_order_relaxed);
          return Lookup{Claim::kOwner, std::nullopt};
        }
        flight = flight_it->second;
      }
    }

    if (hit_circuit != nullptr) {
      Lookup lookup;
      lookup.claim = Claim::kHit;
      SynthesisResult result;
      result.found = true;
      result.optimal = true;
      result.cnot_cost = hit_cost;
      result.stats.completed = true;
      result.circuit = exact ? *hit_circuit
                             : rewire_template(*hit_circuit, *hit_witness,
                                               witness, target.num_qubits());
      lookup.result = std::move(result);
      if (exact) {
        exact_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        rewired_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return lookup;
    }

    inflight_waits_.fetch_add(1, std::memory_order_relaxed);
    waited_once = true;
    // Explicit wait loops (no predicate lambdas) so every read of the
    // guarded `done` flag sits in annotated scope under flight->m.
    MutexLock flight_lock(flight->m);
    if (max_wait_seconds > 0.0) {
      while (!flight->done) {
        const double remaining = max_wait_seconds - wait_timer.seconds();
        if (remaining <= 0.0) break;
        flight->cv.wait_for(flight_lock,
                            std::chrono::duration<double>(remaining));
      }
      if (!flight->done) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return Lookup{Claim::kIndependent, std::nullopt};
      }
    } else {
      while (!flight->done) flight->cv.wait(flight_lock);
    }
    // Owner finished: loop back and re-check the map.
  }
}

void EquivalenceCache::end(const SlotState& target,
                           const CanonicalWitness& witness,
                           const CacheFingerprint& fp,
                           const SynthesisResult* result) {
  const std::string key = make_key(fp.id, witness.key);
  Shard& shard = shard_for(key);

  std::shared_ptr<InFlight> flight;
  {
    const MutexLock lock(shard.m);
    const auto flight_it = shard.inflight.find(key);
    if (flight_it != shard.inflight.end()) {
      flight = flight_it->second;
      shard.inflight.erase(flight_it);
    }
    // Only certified optima enter the cache: the optimal CNOT cost of a
    // class is budget- and heuristic-independent, which is what makes a
    // future hit sound for any requester sharing the fingerprint.
    if (result != nullptr && result->found && result->optimal) {
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        // Refresh (rewire_class_hits off): replace the representative.
        shard.lru.erase(it->second.lru);
        shard.bytes -= it->second.bytes;
        bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
        shard.map.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
      Entry entry;
      entry.representative = target;
      entry.witness = std::make_shared<const CanonicalWitness>(witness);
      entry.circuit = std::make_shared<const Circuit>(result->circuit);
      entry.cnot_cost = result->cnot_cost;
      entry.bytes = key.size() + sizeof(Entry) +
                    target.entries().size() * sizeof(SlotEntry) +
                    witness_bytes(witness) + circuit_bytes(result->circuit);
      shard.lru.push_front(key);
      entry.lru = shard.lru.begin();
      shard.bytes += entry.bytes;
      bytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
      shard.map.emplace(key, std::move(entry));
      entries_.fetch_add(1, std::memory_order_relaxed);
      insertions_.fetch_add(1, std::memory_order_relaxed);
      evict_over_caps(shard);
    }
  }
  if (flight != nullptr) {
    const MutexLock flight_lock(flight->m);
    flight->done = true;
    flight->cv.notify_all();
  }
}

EquivalenceCacheStats EquivalenceCache::stats() const {
  EquivalenceCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.exact_hits = exact_hits_.load(std::memory_order_relaxed);
  s.rewired_hits = rewired_hits_.load(std::memory_order_relaxed);
  s.hits = s.exact_hits + s.rewired_hits;
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace qsp
