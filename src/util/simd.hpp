#pragma once
// Runtime SIMD instruction-set dispatch for the wide kernels in
// util/bitops (packed slot words, statevector pair rotations). The active
// ISA is resolved exactly once per process: the QSP_SIMD environment
// variable ("scalar" or "avx2") wins when set and satisfiable, otherwise
// the best ISA the CPU supports is selected. Every wide primitive has a
// scalar and (on x86-64) an AVX2 implementation that are bit-identical by
// construction, so the choice is a pure performance knob — results never
// depend on it (pinned by the differential suites in tests/test_simd.cpp).

#include <atomic>

namespace qsp::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when this build can emit AVX2 kernels AND the running CPU
/// advertises AVX2. Constant per process.
bool avx2_supported();

/// The ISA every dispatching wide primitive uses. Resolved once (env
/// override first, then CPU detection) and cached; see file comment.
Isa active_isa();

/// Human-readable name ("scalar" / "avx2") for logs and bench JSON.
const char* isa_name(Isa isa);

/// Test-only override of the dispatch choice, e.g. to run one simulator
/// pass per ISA and compare amplitudes bitwise. Returns the previous
/// ISA. Requesting kAvx2 without support throws. Not for production use:
/// the override is process-global.
Isa set_isa_for_testing(Isa isa);

/// RAII form of set_isa_for_testing for differential tests.
class ScopedIsaForTesting {
 public:
  explicit ScopedIsaForTesting(Isa isa) : previous_(set_isa_for_testing(isa)) {}
  ~ScopedIsaForTesting() { set_isa_for_testing(previous_); }
  ScopedIsaForTesting(const ScopedIsaForTesting&) = delete;
  ScopedIsaForTesting& operator=(const ScopedIsaForTesting&) = delete;

 private:
  Isa previous_;
};

}  // namespace qsp::simd
