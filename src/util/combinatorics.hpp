#pragma once
// Small combinatorial helpers used by the equivalence-class counter
// (Table III) and the workload generators.

#include <cstdint>
#include <vector>

namespace qsp {

/// Binomial coefficient C(n, k); saturates at UINT64_MAX on overflow.
std::uint64_t binomial(unsigned n, unsigned k);

/// Enumerate all k-subsets of {0..n-1} as sorted index vectors.
/// Intended for small n (Table III uses n = 16, k <= 8).
std::vector<std::vector<int>> combinations(int n, int k);

/// Enumerate all permutations of {0..n-1}; n <= 8 enforced.
std::vector<std::vector<int>> permutations(int n);

/// Geometric mean of positive values; returns 0 for empty input.
double geometric_mean(const std::vector<double>& values);

}  // namespace qsp
