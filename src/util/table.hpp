#pragma once
// Aligned-column text tables for the benchmark harness. The bench binaries
// print paper-style tables (Tables I/III/IV/V) to stdout.

#include <string>
#include <vector>

namespace qsp {

/// Builds and renders a fixed-column text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Horizontal separator before the next added row.
  void add_separator();

  /// Render with single-space padding and column alignment; numeric-looking
  /// cells are right-aligned, text cells left-aligned.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helpers for cells.
  static std::string fmt(double v, int precision = 1);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);
  static std::string fmt(int v);
  static std::string fmt_percent(double fraction, int precision = 0);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace qsp
