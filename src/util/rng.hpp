#pragma once
// Deterministic, seedable pseudo-random generation used by workload
// generators and property tests. We implement xoshiro256** ourselves so
// benchmark workloads are bit-reproducible across standard libraries.

#include <cstdint>
#include <vector>

#include "util/bitops.hpp"

namespace qsp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// True with probability `p`.
  bool next_bool(double p = 0.5);

  /// `k` distinct values sampled uniformly from [0, pool), ascending order.
  /// Uses Floyd's algorithm; O(k) memory independent of pool size.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t pool,
                                             std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace qsp
