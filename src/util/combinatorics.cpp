#include "util/combinatorics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qsp {

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    const std::uint64_t num = n - k + i;
    // result * num may overflow; detect via division.
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

std::vector<std::vector<int>> combinations(int n, int k) {
  if (n < 0 || k < 0 || k > n) {
    throw std::invalid_argument("combinations: need 0 <= k <= n");
  }
  std::vector<std::vector<int>> out;
  std::vector<int> cur(static_cast<std::size_t>(k));
  std::iota(cur.begin(), cur.end(), 0);
  if (k == 0) {
    out.push_back({});
    return out;
  }
  while (true) {
    out.push_back(cur);
    // Advance to next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++cur[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      cur[static_cast<std::size_t>(j)] = cur[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return out;
}

std::vector<std::vector<int>> permutations(int n) {
  if (n < 0 || n > 8) {
    throw std::invalid_argument("permutations: n must be in [0, 8]");
  }
  std::vector<int> cur(static_cast<std::size_t>(n));
  std::iota(cur.begin(), cur.end(), 0);
  std::vector<std::vector<int>> out;
  do {
    out.push_back(cur);
  } while (std::next_permutation(cur.begin(), cur.end()));
  return out;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometric_mean: values must be positive");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace qsp
