#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace qsp {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must be non-empty");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  const std::size_t ncol = header_.size();
  std::vector<std::size_t> width(ncol);
  for (std::size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_sep = [&] {
    for (std::size_t c = 0; c < ncol; ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row, bool numeric) {
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      os << "| ";
      if (numeric && looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };

  emit_sep();
  emit_row(header_, /*numeric=*/false);
  emit_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_sep();
    } else {
      emit_row(row, /*numeric=*/true);
    }
  }
  emit_sep();
  return os.str();
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::fmt(std::uint64_t v) { return std::to_string(v); }
std::string TextTable::fmt(std::int64_t v) { return std::to_string(v); }
std::string TextTable::fmt(int v) { return std::to_string(v); }

std::string TextTable::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace qsp
