#pragma once
// Clang Thread Safety Analysis shim: compile-time race detection for the
// mutex-striped concurrent modules (service/equivalence_cache,
// service/synthesis_service, core/parallel_astar, core/parallel_beam).
// Lock-protected fields are declared QSP_GUARDED_BY(their mutex), helper
// functions that expect the lock declare QSP_REQUIRES(it), and clang's
// `-Wthread-safety` (the QSP_THREAD_SAFETY CMake option, -Werror in CI)
// rejects any access that cannot be proven to hold the right lock. On GCC
// (no such analysis) every macro expands to nothing and the wrappers
// degenerate to the std primitives they hold, so annotation costs nothing
// on builds that cannot check it.
//
// The analysis only understands capability-annotated types, and
// libstdc++'s std::mutex carries no annotations — hence the thin Mutex /
// MutexLock / CondVar wrappers below. Discipline for annotated code:
//   * take locks through MutexLock (scoped) or Mutex::lock()/unlock(),
//   * never read a QSP_GUARDED_BY field inside a lambda handed to a
//     condition-variable predicate overload — the analysis checks lambda
//     bodies as separate lock-free functions. Write the wait loop out:
//         MutexLock lock(m);
//         while (!done) cv.wait(lock);
//   * post-join harvest reads are safe but unprovable; either take the
//     (uncontended) lock anyway or isolate them behind
//     QSP_NO_THREAD_SAFETY_ANALYSIS with a comment saying why.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QSP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QSP_THREAD_ANNOTATION
#define QSP_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define QSP_CAPABILITY(x) QSP_THREAD_ANNOTATION(capability(x))
#define QSP_SCOPED_CAPABILITY QSP_THREAD_ANNOTATION(scoped_lockable)
#define QSP_GUARDED_BY(x) QSP_THREAD_ANNOTATION(guarded_by(x))
#define QSP_PT_GUARDED_BY(x) QSP_THREAD_ANNOTATION(pt_guarded_by(x))
#define QSP_REQUIRES(...) \
  QSP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QSP_REQUIRES_SHARED(...) \
  QSP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define QSP_ACQUIRE(...) \
  QSP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QSP_RELEASE(...) \
  QSP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QSP_TRY_ACQUIRE(...) \
  QSP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QSP_EXCLUDES(...) QSP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define QSP_ASSERT_CAPABILITY(x) \
  QSP_THREAD_ANNOTATION(assert_capability(x))
#define QSP_RETURN_CAPABILITY(x) QSP_THREAD_ANNOTATION(lock_returned(x))
#define QSP_NO_THREAD_SAFETY_ANALYSIS \
  QSP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qsp {

/// std::mutex as a clang capability, so QSP_GUARDED_BY(mutex_) members
/// are checkable. Same size and cost as the raw mutex on every compiler.
class QSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QSP_ACQUIRE() { mutex_.lock(); }
  void unlock() QSP_RELEASE() { mutex_.unlock(); }
  bool try_lock() QSP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex (the annotated std::lock_guard/std::unique_lock
/// replacement). Also the lock token CondVar waits release and reacquire.
class QSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QSP_ACQUIRE(mutex) : lock_(mutex) {}
  ~MutexLock() QSP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For CondVar only: the underlying lock a wait suspends on. The wait's
  /// release/reacquire is invisible to the analysis, which is the
  /// conservative right view — the lock is held at every point the
  /// caller's code actually runs.
  std::unique_lock<Mutex>& native() { return lock_; }

 private:
  std::unique_lock<Mutex> lock_;
};

/// Condition variable over Mutex. Deliberately offers no predicate
/// overloads: a predicate lambda is analyzed as a separate function that
/// holds no locks, so guarded reads inside it would defeat the analysis.
/// Callers write the standard `while (!condition) cv.wait(lock);` loop in
/// annotated scope instead.
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace qsp
