#include "util/timer.hpp"

// Header-only; this translation unit exists so the target has a stable
// archive member for the module.
