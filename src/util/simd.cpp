#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

// AVX2 kernels are compiled behind per-function target attributes (see
// util/bitops.cpp), so the build needs no global -mavx2; eligibility is
// a compiler/arch property, support additionally a CPU property.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QSP_SIMD_CAN_AVX2 1
#else
#define QSP_SIMD_CAN_AVX2 0
#endif

namespace qsp::simd {
namespace {

Isa detect_isa() {
  const char* env = std::getenv("QSP_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      // An unsatisfiable request degrades to scalar rather than aborting:
      // the env knob must be safe to set fleet-wide.
      return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
    }
    // Unknown value: ignore and fall through to detection.
  }
  return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
}

std::atomic<int>& isa_cell() {
  static std::atomic<int> cell{static_cast<int>(detect_isa())};
  return cell;
}

}  // namespace

bool avx2_supported() {
#if QSP_SIMD_CAN_AVX2
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

Isa active_isa() { return static_cast<Isa>(isa_cell().load()); }

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa set_isa_for_testing(Isa isa) {
  if (isa == Isa::kAvx2 && !avx2_supported()) {
    throw std::runtime_error(
        "set_isa_for_testing: AVX2 not supported on this CPU/build");
  }
  return static_cast<Isa>(isa_cell().exchange(static_cast<int>(isa)));
}

}  // namespace qsp::simd
