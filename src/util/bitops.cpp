#include "util/bitops.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {

BasisIndex swap_bits(BasisIndex x, int a, int b) {
  const int va = get_bit(x, a);
  const int vb = get_bit(x, b);
  if (va == vb) return x;
  return flip_bit(flip_bit(x, a), b);
}

BasisIndex permute_bits(BasisIndex x, const std::vector<int>& perm) {
  BasisIndex out = 0;
  for (std::size_t q = 0; q < perm.size(); ++q) {
    if (get_bit(x, static_cast<int>(q)) != 0) out = flip_bit(out, perm[q]);
  }
  // Bits at positions >= perm.size() are required to be clear.
  QSP_ASSERT((x >> perm.size()) == 0);
  return out;
}

std::string to_bitstring(BasisIndex x, int n) {
  QSP_ASSERT(n >= 0 && n <= kMaxQubits);
  std::string s(static_cast<std::size_t>(n), '0');
  for (int q = 0; q < n; ++q) {
    if (get_bit(x, q) != 0) s[static_cast<std::size_t>(n - 1 - q)] = '1';
  }
  return s;
}

BasisIndex from_bitstring(const std::string& s) {
  if (s.empty() || s.size() > static_cast<std::size_t>(kMaxQubits)) {
    throw std::invalid_argument("from_bitstring: bad width");
  }
  BasisIndex x = 0;
  const int n = static_cast<int>(s.size());
  for (int i = 0; i < n; ++i) {
    const char c = s[static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("from_bitstring: non-binary character");
    }
    if (c == '1') x = flip_bit(x, n - 1 - i);
  }
  return x;
}

int gray_change_bit(std::uint32_t i) {
  // gray(i) ^ gray(i+1) has exactly one bit set: the lowest zero... in fact
  // it equals the position of the lowest set bit of (i+1).
  return std::countr_zero(i + 1);
}

}  // namespace qsp
