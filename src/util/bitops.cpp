#include "util/bitops.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/simd.hpp"

#if QSP_WIDEOPS_HAVE_AVX2
#include <immintrin.h>
// Per-function target attribute: the AVX2 kernels are compiled into this
// TU without a global -mavx2, so the same binary runs on non-AVX2 hosts
// (dispatch never reaches them there).
#define QSP_TARGET_AVX2 __attribute__((target("avx2")))
#endif

// NOTE: this TU is compiled with -ffp-contract=off (see CMakeLists.txt) so
// the scalar floating-point loops cannot be FMA-contracted into results
// that differ from the mul/add/sub sequences the AVX2 kernels perform.
// Keeping every FP element loop in this one TU is what makes the
// scalar/AVX2 bit-identity guarantee auditable.

namespace qsp {

BasisIndex swap_bits(BasisIndex x, int a, int b) {
  const int va = get_bit(x, a);
  const int vb = get_bit(x, b);
  if (va == vb) return x;
  return flip_bit(flip_bit(x, a), b);
}

BasisIndex permute_bits(BasisIndex x, const std::vector<int>& perm) {
  BasisIndex out = 0;
  for (std::size_t q = 0; q < perm.size(); ++q) {
    if (get_bit(x, static_cast<int>(q)) != 0) out = flip_bit(out, perm[q]);
  }
  // Bits at positions >= perm.size() are required to be clear.
  QSP_ASSERT((x >> perm.size()) == 0);
  return out;
}

std::string to_bitstring(BasisIndex x, int n) {
  QSP_ASSERT(n >= 0 && n <= kMaxQubits);
  std::string s(static_cast<std::size_t>(n), '0');
  for (int q = 0; q < n; ++q) {
    if (get_bit(x, q) != 0) s[static_cast<std::size_t>(n - 1 - q)] = '1';
  }
  return s;
}

BasisIndex from_bitstring(const std::string& s) {
  if (s.empty() || s.size() > static_cast<std::size_t>(kMaxQubits)) {
    throw std::invalid_argument("from_bitstring: bad width");
  }
  BasisIndex x = 0;
  const int n = static_cast<int>(s.size());
  for (int i = 0; i < n; ++i) {
    const char c = s[static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("from_bitstring: non-binary character");
    }
    if (c == '1') x = flip_bit(x, n - 1 - i);
  }
  return x;
}

int gray_change_bit(std::uint32_t i) {
  // gray(i) ^ gray(i+1) has exactly one bit set: the lowest zero... in fact
  // it equals the position of the lowest set bit of (i+1).
  return std::countr_zero(i + 1);
}

namespace wideops {

namespace {

constexpr std::uint64_t kLowHalf = 0x00000000FFFFFFFFull;
constexpr std::uint64_t kHighHalf = 0xFFFFFFFF00000000ull;

// Column chunk size for the early-exit scans. Chunk boundaries are the
// same in both variants, but results never depend on where a scan stops:
// once a column is known mixed the remaining words cannot change any/all.
constexpr std::size_t kColumnChunk = 64;

inline bool use_avx2() {
#if QSP_WIDEOPS_HAVE_AVX2
  return simd::active_isa() == simd::Isa::kAvx2;
#else
  return false;
#endif
}

}  // namespace

// --------------------------- scalar variants -------------------------------

void copy_xor_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n, std::uint32_t mask) {
  const std::uint64_t m = static_cast<std::uint64_t>(mask) << 32;
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] ^ m;
}

void permute_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n, const int* perm, int num_bits) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = src[i];
    std::uint64_t out = w & kLowHalf;
    for (int q = 0; q < num_bits; ++q) {
      out |= ((w >> (32 + q)) & 1u) << (32 + perm[q]);
    }
    dst[i] = out;
  }
}

void shl1_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = src[i];
    dst[i] = ((w & kHighHalf) << 1) | (w & kLowHalf);
  }
}

void or_bit_from_high32_scalar(std::uint64_t* dst, const std::uint64_t* base,
                               const std::uint64_t* words, std::size_t n,
                               int bit) {
  const int shift = 32 + bit;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = base[i] | (((words[i] >> shift) & 1u) << 32);
  }
}

ColumnBits bit_column_or_and_scalar(const std::uint64_t* words, std::size_t n,
                                    int bit) {
  const std::uint64_t m = std::uint64_t{1} << bit;
  std::uint64_t orw = 0;
  std::uint64_t andw = ~std::uint64_t{0};
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kColumnChunk);
    for (; i < end; ++i) {
      orw |= words[i];
      andw &= words[i];
    }
    if ((orw & m) != 0 && (andw & m) == 0) break;  // column mixed: decided
  }
  return ColumnBits{(orw & m) != 0, (andw & m) != 0};
}

std::uint64_t weight_sum_if_bit_scalar(const std::uint64_t* words,
                                       std::size_t n, int bit) {
  const std::uint64_t m = std::uint64_t{1} << bit;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((words[i] & m) != 0) sum += words[i] >> 32;
  }
  return sum;
}

std::uint64_t weight_sum_if_bits_scalar(const std::uint64_t* words,
                                        std::size_t n, int bit_a, int bit_b) {
  const std::uint64_t m =
      (std::uint64_t{1} << bit_a) | (std::uint64_t{1} << bit_b);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((words[i] & m) == m) sum += words[i] >> 32;
  }
  return sum;
}

void rotate_pairs_d_scalar(double* a, double* b, std::size_t n, double co,
                           double si) {
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a[i];
    const double y = b[i];
    a[i] = co * x - si * y;
    b[i] = si * x + co * y;
  }
}

void swap_ranges_d_scalar(double* a, double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = a[i];
    a[i] = b[i];
    b[i] = t;
  }
}

void complex_scale_d_scalar(double* interleaved, std::size_t n_complex,
                            double re, double im) {
  for (std::size_t i = 0; i < n_complex; ++i) {
    const double x = interleaved[2 * i];
    const double y = interleaved[2 * i + 1];
    interleaved[2 * i] = x * re - y * im;
    interleaved[2 * i + 1] = y * re + x * im;
  }
}

double parity_signed_sum_d_scalar(const double* a, std::size_t n,
                                  std::uint32_t mask) {
  // Four lane accumulators (element i feeds lane i % 4) mirror the AVX2
  // register layout; the final combine order is part of the contract.
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const int par = parity(static_cast<BasisIndex>(i), mask);
    lane[i & 3] += (par != 0) ? -a[i] : a[i];
  }
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

// ---------------------------- AVX2 variants --------------------------------

#if QSP_WIDEOPS_HAVE_AVX2

QSP_TARGET_AVX2
void copy_xor_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n, std::uint32_t mask) {
  const std::uint64_t m = static_cast<std::uint64_t>(mask) << 32;
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(v, vm));
  }
  for (; i < n; ++i) dst[i] = src[i] ^ m;
}

QSP_TARGET_AVX2
void permute_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n, const int* perm, int num_bits) {
  const __m256i vlow = _mm256_set1_epi64x(static_cast<long long>(kLowHalf));
  const __m256i vone = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i out = _mm256_and_si256(v, vlow);
    for (int q = 0; q < num_bits; ++q) {
      const __m256i bitv = _mm256_and_si256(
          _mm256_srl_epi64(v, _mm_cvtsi32_si128(32 + q)), vone);
      out = _mm256_or_si256(
          out, _mm256_sll_epi64(bitv, _mm_cvtsi32_si128(32 + perm[q])));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), out);
  }
  if (i < n) permute_high32_scalar(dst + i, src + i, n - i, perm, num_bits);
}

QSP_TARGET_AVX2
void shl1_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  const __m256i vlow = _mm256_set1_epi64x(static_cast<long long>(kLowHalf));
  const __m256i vhigh = _mm256_set1_epi64x(static_cast<long long>(kHighHalf));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i out = _mm256_or_si256(
        _mm256_slli_epi64(_mm256_and_si256(v, vhigh), 1),
        _mm256_and_si256(v, vlow));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), out);
  }
  if (i < n) shl1_high32_scalar(dst + i, src + i, n - i);
}

QSP_TARGET_AVX2
void or_bit_from_high32_avx2(std::uint64_t* dst, const std::uint64_t* base,
                             const std::uint64_t* words, std::size_t n,
                             int bit) {
  const __m128i shift = _mm_cvtsi32_si128(32 + bit);
  const __m256i vone = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
    const __m256i bitv =
        _mm256_and_si256(_mm256_srl_epi64(w, shift), vone);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(b, _mm256_slli_epi64(bitv, 32)));
  }
  if (i < n) or_bit_from_high32_scalar(dst + i, base + i, words + i, n - i,
                                       bit);
}

QSP_TARGET_AVX2
ColumnBits bit_column_or_and_avx2(const std::uint64_t* words, std::size_t n,
                                  int bit) {
  const std::uint64_t m = std::uint64_t{1} << bit;
  std::uint64_t orw = 0;
  std::uint64_t andw = ~std::uint64_t{0};
  std::size_t i = 0;
  while (i < n) {
    const std::size_t chunk_end = std::min(n, i + kColumnChunk);
    __m256i vor = _mm256_setzero_si256();
    __m256i vand = _mm256_set1_epi64x(-1);
    for (; i + 4 <= chunk_end; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
      vor = _mm256_or_si256(vor, v);
      vand = _mm256_and_si256(vand, v);
    }
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vor);
    orw |= tmp[0] | tmp[1] | tmp[2] | tmp[3];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vand);
    andw &= tmp[0] & tmp[1] & tmp[2] & tmp[3];
    for (; i < chunk_end; ++i) {
      orw |= words[i];
      andw &= words[i];
    }
    if ((orw & m) != 0 && (andw & m) == 0) break;  // column mixed: decided
  }
  return ColumnBits{(orw & m) != 0, (andw & m) != 0};
}

QSP_TARGET_AVX2
std::uint64_t weight_sum_if_bit_avx2(const std::uint64_t* words,
                                     std::size_t n, int bit) {
  const std::uint64_t m = std::uint64_t{1} << bit;
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  __m256i vsum = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i sel = _mm256_cmpeq_epi64(_mm256_and_si256(v, vm), vm);
    const __m256i w = _mm256_srli_epi64(v, 32);
    vsum = _mm256_add_epi64(vsum, _mm256_and_si256(w, sel));
  }
  alignas(32) std::uint64_t tmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vsum);
  std::uint64_t sum = tmp[0] + tmp[1] + tmp[2] + tmp[3];
  for (; i < n; ++i) {
    if ((words[i] & m) != 0) sum += words[i] >> 32;
  }
  return sum;
}

QSP_TARGET_AVX2
std::uint64_t weight_sum_if_bits_avx2(const std::uint64_t* words,
                                      std::size_t n, int bit_a, int bit_b) {
  const std::uint64_t m =
      (std::uint64_t{1} << bit_a) | (std::uint64_t{1} << bit_b);
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  __m256i vsum = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i sel = _mm256_cmpeq_epi64(_mm256_and_si256(v, vm), vm);
    const __m256i w = _mm256_srli_epi64(v, 32);
    vsum = _mm256_add_epi64(vsum, _mm256_and_si256(w, sel));
  }
  alignas(32) std::uint64_t tmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vsum);
  std::uint64_t sum = tmp[0] + tmp[1] + tmp[2] + tmp[3];
  for (; i < n; ++i) {
    if ((words[i] & m) == m) sum += words[i] >> 32;
  }
  return sum;
}

QSP_TARGET_AVX2
void rotate_pairs_d_avx2(double* a, double* b, std::size_t n, double co,
                         double si) {
  const __m256d vco = _mm256_set1_pd(co);
  const __m256d vsi = _mm256_set1_pd(si);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(a + i);
    const __m256d y = _mm256_loadu_pd(b + i);
    // Same mul/sub/add shape as the scalar loop; -ffp-contract=off keeps
    // the scalar side from fusing these into FMAs.
    const __m256d na =
        _mm256_sub_pd(_mm256_mul_pd(vco, x), _mm256_mul_pd(vsi, y));
    const __m256d nb =
        _mm256_add_pd(_mm256_mul_pd(vsi, x), _mm256_mul_pd(vco, y));
    _mm256_storeu_pd(a + i, na);
    _mm256_storeu_pd(b + i, nb);
  }
  if (i < n) rotate_pairs_d_scalar(a + i, b + i, n - i, co, si);
}

QSP_TARGET_AVX2
void swap_ranges_d_avx2(double* a, double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(a + i);
    const __m256d y = _mm256_loadu_pd(b + i);
    _mm256_storeu_pd(a + i, y);
    _mm256_storeu_pd(b + i, x);
  }
  if (i < n) swap_ranges_d_scalar(a + i, b + i, n - i);
}

QSP_TARGET_AVX2
void complex_scale_d_avx2(double* interleaved, std::size_t n_complex,
                          double re, double im) {
  const __m256d vre = _mm256_set1_pd(re);
  // Lane layout (low to high): (x0, y0, x1, y1); the mixed factor applies
  // -im to x lanes and +im to y lanes, so lane k of v*vre + swap(v)*vmix
  // is exactly x*re - y*im / y*re + x*im (IEEE a-b == a+(-b), and
  // y*(-im) == -(y*im) exactly).
  const __m256d vmix = _mm256_set_pd(im, -im, im, -im);
  std::size_t i = 0;
  for (; i + 2 <= n_complex; i += 2) {
    double* p = interleaved + 2 * i;
    const __m256d v = _mm256_loadu_pd(p);
    const __m256d sw = _mm256_permute_pd(v, 0b0101);  // (y0, x0, y1, x1)
    _mm256_storeu_pd(
        p, _mm256_add_pd(_mm256_mul_pd(v, vre), _mm256_mul_pd(sw, vmix)));
  }
  if (i < n_complex) {
    complex_scale_d_scalar(interleaved + 2 * i, n_complex - i, re, im);
  }
}

QSP_TARGET_AVX2
double parity_signed_sum_d_avx2(const double* a, std::size_t n,
                                std::uint32_t mask) {
  // Lane d accumulates elements i == d (mod 4). For an aligned block at
  // base (base % 4 == 0): parity((base+d) & mask) =
  // parity(base & mask) ^ parity(d & mask & 3), so the per-lane sign
  // pattern is fixed and the whole block flips with the base parity.
  alignas(32) double lane_sign_init[4];
  for (int d = 0; d < 4; ++d) {
    lane_sign_init[d] =
        (parity(static_cast<BasisIndex>(d), mask & 3u) != 0) ? -0.0 : 0.0;
  }
  const __m256d lane_sign = _mm256_load_pd(lane_sign_init);
  const __m256d flip = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d sign = lane_sign;
    if (parity(static_cast<BasisIndex>(i), mask) != 0) {
      sign = _mm256_xor_pd(sign, flip);
    }
    const __m256d v =
        _mm256_xor_pd(_mm256_loadu_pd(a + i), sign);  // exact +-a[i]
    acc = _mm256_add_pd(acc, v);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) {
    const int par = parity(static_cast<BasisIndex>(i), mask);
    lane[i & 3] += (par != 0) ? -a[i] : a[i];
  }
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

#endif  // QSP_WIDEOPS_HAVE_AVX2

// --------------------------- dispatch wrappers -----------------------------

void copy_xor_high32(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n, std::uint32_t mask) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return copy_xor_high32_avx2(dst, src, n, mask);
#endif
  copy_xor_high32_scalar(dst, src, n, mask);
}

void permute_high32(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n, const int* perm, int num_bits) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return permute_high32_avx2(dst, src, n, perm, num_bits);
#endif
  permute_high32_scalar(dst, src, n, perm, num_bits);
}

void shl1_high32(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return shl1_high32_avx2(dst, src, n);
#endif
  shl1_high32_scalar(dst, src, n);
}

void or_bit_from_high32(std::uint64_t* dst, const std::uint64_t* base,
                        const std::uint64_t* words, std::size_t n, int bit) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return or_bit_from_high32_avx2(dst, base, words, n, bit);
#endif
  or_bit_from_high32_scalar(dst, base, words, n, bit);
}

ColumnBits bit_column_or_and(const std::uint64_t* words, std::size_t n,
                             int bit) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return bit_column_or_and_avx2(words, n, bit);
#endif
  return bit_column_or_and_scalar(words, n, bit);
}

std::uint64_t weight_sum_if_bit(const std::uint64_t* words, std::size_t n,
                                int bit) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return weight_sum_if_bit_avx2(words, n, bit);
#endif
  return weight_sum_if_bit_scalar(words, n, bit);
}

std::uint64_t weight_sum_if_bits(const std::uint64_t* words, std::size_t n,
                                 int bit_a, int bit_b) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return weight_sum_if_bits_avx2(words, n, bit_a, bit_b);
#endif
  return weight_sum_if_bits_scalar(words, n, bit_a, bit_b);
}

void rotate_pairs_d(double* a, double* b, std::size_t n, double co,
                    double si) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return rotate_pairs_d_avx2(a, b, n, co, si);
#endif
  rotate_pairs_d_scalar(a, b, n, co, si);
}

void swap_ranges_d(double* a, double* b, std::size_t n) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return swap_ranges_d_avx2(a, b, n);
#endif
  swap_ranges_d_scalar(a, b, n);
}

void complex_scale_d(double* interleaved, std::size_t n_complex, double re,
                     double im) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return complex_scale_d_avx2(interleaved, n_complex, re, im);
#endif
  complex_scale_d_scalar(interleaved, n_complex, re, im);
}

double parity_signed_sum_d(const double* a, std::size_t n,
                           std::uint32_t mask) {
#if QSP_WIDEOPS_HAVE_AVX2
  if (use_avx2()) return parity_signed_sum_d_avx2(a, n, mask);
#endif
  return parity_signed_sum_d_scalar(a, n, mask);
}

}  // namespace wideops

}  // namespace qsp
