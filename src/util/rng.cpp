#include "util/rng.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/assert.hpp"

namespace qsp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t pool,
                                                std::size_t k) {
  if (k > pool) {
    throw std::invalid_argument("Rng::sample_distinct: k exceeds pool");
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm: uniform over all k-subsets.
  for (std::uint64_t j = pool - k; j < pool; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  QSP_ASSERT(out.size() == k);
  return out;
}

}  // namespace qsp
