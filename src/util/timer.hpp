#pragma once
// Wall-clock timing for the CPU-time analysis (Fig. 7) and search budgets.

#include <algorithm>
#include <chrono>

namespace qsp {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cooperative deadline used by solvers; zero or negative budget = no limit.
class Deadline {
 public:
  explicit Deadline(double budget_seconds = 0.0)
      : budget_(budget_seconds) {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }

  double elapsed() const { return timer_.seconds(); }
  double budget() const { return budget_; }

 private:
  Timer timer_;
  double budget_;
};

/// Merge a stage's own wall-clock budget with an enclosing deadline: the
/// stage may use at most the deadline's remaining time. This is how outer
/// budgets (e.g. WorkflowOptions::time_budget_seconds) get wired into the
/// SearchBudget of every nested kernel search instead of being checked
/// only between stages. An unlimited enclosing deadline (budget <= 0)
/// leaves the stage budget alone; an expired one yields a vanishing
/// positive budget — never 0, which would mean unlimited to the stage.
inline double clamp_budget(double stage_budget_seconds,
                           const Deadline& deadline) {
  if (deadline.budget() <= 0.0) return stage_budget_seconds;
  const double remaining =
      std::max(deadline.budget() - deadline.elapsed(), 1e-9);
  return stage_budget_seconds <= 0.0
             ? remaining
             : std::min(stage_budget_seconds, remaining);
}

}  // namespace qsp
