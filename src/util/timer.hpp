#pragma once
// Wall-clock timing for the CPU-time analysis (Fig. 7) and search budgets.

#include <chrono>

namespace qsp {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Cooperative deadline used by solvers; zero or negative budget = no limit.
class Deadline {
 public:
  explicit Deadline(double budget_seconds = 0.0)
      : budget_(budget_seconds) {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }

  double elapsed() const { return timer_.seconds(); }
  double budget() const { return budget_; }

 private:
  Timer timer_;
  double budget_;
};

}  // namespace qsp
