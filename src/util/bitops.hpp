#pragma once
// Bit-level helpers for basis indices. A basis state of an n-qubit register
// is a BasisIndex whose bit q holds the value of qubit q (qubit 0 = LSB).

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace qsp {

/// Basis state of up to 32 qubits; bit q is qubit q's value.
using BasisIndex = std::uint32_t;

/// Maximum register width supported by the library.
inline constexpr int kMaxQubits = 24;

/// Value of qubit `q` in basis index `x`.
constexpr int get_bit(BasisIndex x, int q) { return (x >> q) & 1u; }

/// `x` with qubit `q` set to `v`.
constexpr BasisIndex set_bit(BasisIndex x, int q, int v) {
  return (x & ~(BasisIndex{1} << q)) |
         (static_cast<BasisIndex>(v & 1) << q);
}

/// `x` with qubit `q` flipped.
constexpr BasisIndex flip_bit(BasisIndex x, int q) {
  return x ^ (BasisIndex{1} << q);
}

/// Number of set bits.
constexpr int popcount(BasisIndex x) { return std::popcount(x); }

/// Hamming distance between two basis indices.
constexpr int hamming(BasisIndex a, BasisIndex b) { return popcount(a ^ b); }

/// `x` with bits `a` and `b` exchanged.
BasisIndex swap_bits(BasisIndex x, int a, int b);

/// Apply a qubit permutation: bit `perm[q]` of the result is bit `q` of `x`.
BasisIndex permute_bits(BasisIndex x, const std::vector<int>& perm);

/// Binary string of `x` on `n` qubits, most significant qubit first
/// (e.g. n=3, x=0b011 -> "011", qubit 2 is the leading character).
std::string to_bitstring(BasisIndex x, int n);

/// Parse a bitstring produced by `to_bitstring`.
BasisIndex from_bitstring(const std::string& s);

/// Gray code of `i`.
constexpr std::uint32_t gray_code(std::uint32_t i) { return i ^ (i >> 1); }

/// Position of the single bit that differs between gray_code(i) and
/// gray_code(i+1).
int gray_change_bit(std::uint32_t i);

/// Parity (XOR of bits) of `x & mask`.
constexpr int parity(BasisIndex x, BasisIndex mask) {
  return std::popcount(x & mask) & 1;
}

// ---------------------------------------------------------------------------
// Wide primitives (the runtime-dispatched SIMD layer, util/simd.hpp).
//
// The hot loops of the canonicalization scan, the slot-column tests, and
// the statevector pair kernels are expressed as batch operations over
// contiguous words so one dispatch decision covers the whole loop. Two
// word layouts appear:
//
//  - *packed canonical words*: (index << 32) | count, the CanonicalKey
//    element layout of core/canonical.cpp;
//  - *entry words*: a SlotEntry {index, count} reinterpreted as one
//    64-bit word — index in the LOW half, count in the HIGH half on the
//    little-endian hosts this layer targets.
//
// Every primitive has `_scalar` and (on x86-64) `_avx2` variants that
// are bit-identical by construction — integer ops exactly, floating
// point by matching operation shape and reduction order (the TU is built
// with -ffp-contract=off so the scalar loops cannot be FMA-contracted
// away from the vector ops). The undecorated name dispatches on
// simd::active_isa(). Differential coverage: tests/test_simd.cpp.
// ---------------------------------------------------------------------------

namespace wideops {

/// dst[i] = src[i] ^ (mask << 32): one X-translation pass over packed
/// canonical words. dst/src may alias elementwise (dst == src ok).
void copy_xor_high32(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n, std::uint32_t mask);
void copy_xor_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n, std::uint32_t mask);

/// Permute the index (high) half of packed canonical words: bit perm[q]
/// of dst's index is bit q of src's index, for q < num_bits; index bits
/// >= num_bits must be clear (permute_bits' contract). Counts copied.
void permute_high32(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n, const int* perm, int num_bits);
void permute_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n, const int* perm, int num_bits);

/// dst[i] = ((index << 1) << 32) | count — the greedy canonical scan's
/// prefix shift (index wraps mod 2^32 like the u32 arithmetic it
/// replaces). dst == src ok.
void shl1_high32(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n);
void shl1_high32_scalar(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n);

/// dst[i] = base[i] | (bit `bit` of words[i]'s index half) << 32 — ORs
/// one extracted index column into the low index bit. dst == base ok.
void or_bit_from_high32(std::uint64_t* dst, const std::uint64_t* base,
                        const std::uint64_t* words, std::size_t n, int bit);
void or_bit_from_high32_scalar(std::uint64_t* dst, const std::uint64_t* base,
                               const std::uint64_t* words, std::size_t n,
                               int bit);

/// OR / AND of one value-bit column over entry words: `any` is true if
/// bit `bit` of any low half is set, `all` if it is set in every word
/// (vacuously true for n == 0). Early-exits once the column is known
/// mixed.
struct ColumnBits {
  bool any = false;
  bool all = true;
};
ColumnBits bit_column_or_and(const std::uint64_t* words, std::size_t n,
                             int bit);
ColumnBits bit_column_or_and_scalar(const std::uint64_t* words, std::size_t n,
                                    int bit);

/// Sum of high-half weights over entry words whose low half has bit
/// `bit` set (a weighted bit-sliced popcount of one column).
std::uint64_t weight_sum_if_bit(const std::uint64_t* words, std::size_t n,
                                int bit);
std::uint64_t weight_sum_if_bit_scalar(const std::uint64_t* words,
                                       std::size_t n, int bit);

/// Sum of high-half weights over entry words whose low half has both
/// bits set (the joint column count of the correlation test).
std::uint64_t weight_sum_if_bits(const std::uint64_t* words, std::size_t n,
                                 int bit_a, int bit_b);
std::uint64_t weight_sum_if_bits_scalar(const std::uint64_t* words,
                                        std::size_t n, int bit_a, int bit_b);

/// The Ry pair rotation over two contiguous amplitude runs:
/// a[i] <- co*a[i] - si*b[i], b[i] <- si*a[i] + co*b[i].
void rotate_pairs_d(double* a, double* b, std::size_t n, double co,
                    double si);
void rotate_pairs_d_scalar(double* a, double* b, std::size_t n, double co,
                           double si);

/// Swap two contiguous amplitude runs (X / CNOT block swaps).
void swap_ranges_d(double* a, double* b, std::size_t n);
void swap_ranges_d_scalar(double* a, double* b, std::size_t n);

/// Multiply n_complex interleaved (re, im) pairs by the unit complex
/// (re + i*im): x <- x*re - y*im, y <- y*re + x*im (Rz diagonal).
void complex_scale_d(double* interleaved, std::size_t n_complex, double re,
                     double im);
void complex_scale_d_scalar(double* interleaved, std::size_t n_complex,
                            double re, double im);

/// Batched signed parity reduction: sum of parity(i & mask) ? -a[i] :
/// a[i] over i in [0, n) — the Walsh-style angle transform of
/// circuit/lowering.cpp. Both variants accumulate four lane sums
/// (element i feeds lane i % 4) and combine them as
/// (l0 + l2) + (l1 + l3), so scalar and AVX2 round identically.
double parity_signed_sum_d(const double* a, std::size_t n,
                           std::uint32_t mask);
double parity_signed_sum_d_scalar(const double* a, std::size_t n,
                                  std::uint32_t mask);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QSP_WIDEOPS_HAVE_AVX2 1
void copy_xor_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n, std::uint32_t mask);
void permute_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n, const int* perm, int num_bits);
void shl1_high32_avx2(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);
void or_bit_from_high32_avx2(std::uint64_t* dst, const std::uint64_t* base,
                             const std::uint64_t* words, std::size_t n,
                             int bit);
ColumnBits bit_column_or_and_avx2(const std::uint64_t* words, std::size_t n,
                                  int bit);
std::uint64_t weight_sum_if_bit_avx2(const std::uint64_t* words,
                                     std::size_t n, int bit);
std::uint64_t weight_sum_if_bits_avx2(const std::uint64_t* words,
                                      std::size_t n, int bit_a, int bit_b);
void rotate_pairs_d_avx2(double* a, double* b, std::size_t n, double co,
                         double si);
void swap_ranges_d_avx2(double* a, double* b, std::size_t n);
void complex_scale_d_avx2(double* interleaved, std::size_t n_complex,
                          double re, double im);
double parity_signed_sum_d_avx2(const double* a, std::size_t n,
                                std::uint32_t mask);
#else
#define QSP_WIDEOPS_HAVE_AVX2 0
#endif

}  // namespace wideops

}  // namespace qsp
