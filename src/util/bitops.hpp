#pragma once
// Bit-level helpers for basis indices. A basis state of an n-qubit register
// is a BasisIndex whose bit q holds the value of qubit q (qubit 0 = LSB).

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace qsp {

/// Basis state of up to 32 qubits; bit q is qubit q's value.
using BasisIndex = std::uint32_t;

/// Maximum register width supported by the library.
inline constexpr int kMaxQubits = 24;

/// Value of qubit `q` in basis index `x`.
constexpr int get_bit(BasisIndex x, int q) { return (x >> q) & 1u; }

/// `x` with qubit `q` set to `v`.
constexpr BasisIndex set_bit(BasisIndex x, int q, int v) {
  return (x & ~(BasisIndex{1} << q)) |
         (static_cast<BasisIndex>(v & 1) << q);
}

/// `x` with qubit `q` flipped.
constexpr BasisIndex flip_bit(BasisIndex x, int q) {
  return x ^ (BasisIndex{1} << q);
}

/// Number of set bits.
constexpr int popcount(BasisIndex x) { return std::popcount(x); }

/// Hamming distance between two basis indices.
constexpr int hamming(BasisIndex a, BasisIndex b) { return popcount(a ^ b); }

/// `x` with bits `a` and `b` exchanged.
BasisIndex swap_bits(BasisIndex x, int a, int b);

/// Apply a qubit permutation: bit `perm[q]` of the result is bit `q` of `x`.
BasisIndex permute_bits(BasisIndex x, const std::vector<int>& perm);

/// Binary string of `x` on `n` qubits, most significant qubit first
/// (e.g. n=3, x=0b011 -> "011", qubit 2 is the leading character).
std::string to_bitstring(BasisIndex x, int n);

/// Parse a bitstring produced by `to_bitstring`.
BasisIndex from_bitstring(const std::string& s);

/// Gray code of `i`.
constexpr std::uint32_t gray_code(std::uint32_t i) { return i ^ (i >> 1); }

/// Position of the single bit that differs between gray_code(i) and
/// gray_code(i+1).
int gray_change_bit(std::uint32_t i);

/// Parity (XOR of bits) of `x & mask`.
constexpr int parity(BasisIndex x, BasisIndex mask) {
  return std::popcount(x & mask) & 1;
}

}  // namespace qsp
