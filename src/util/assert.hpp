#pragma once
// Internal invariant checking. QSP_ASSERT fires in all build types: the
// synthesis algorithms rely on nontrivial invariants (slot-weight
// conservation, canonical-form idempotence) whose violation must never be
// silently ignored, and the checks are cheap relative to search work.

#include <cstdio>
#include <cstdlib>

namespace qsp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "QSP_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace qsp

#define QSP_ASSERT(expr)                                            \
  do {                                                              \
    if (!(expr)) ::qsp::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define QSP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) ::qsp::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)
