#pragma once
// Flow-sensitive circuit dataflow: a forward abstract interpreter over
// Circuit x Target whose per-wire abstract state is an affine GF(2) form
// (an XOR of symbolic variables plus a constant) together with a may-be-
// entangled wire grouping. The lattice, per wire:
//
//   bottom            unreachable (never materializes: every analysis
//                     starts from the concrete |0...0> state)
//   known-|0> / |1>   form is the constant 0 / 1: the wire measures that
//                     value with probability 1 in every reachable state
//   known-basis       non-constant form sharing its variable mask (or its
//                     complement) with another wire: an exact parity
//                     linkage between the two wires on every reachable
//                     basis state
//   separable-unknown non-constant form, wire provably in a pure
//                     single-wire state (never entangled by any gate)
//   entangled-group   top: non-constant form in a may-entangled group
//
// Transfer functions: X and CNOT are exact GF(2) algebra on the forms;
// the diagonal family (CZ, Rz, RZZ, UCRz) never moves basis support, so
// forms pass through unchanged; iSwap permutes the two wires' forms; the
// Ry family widens its target with a fresh variable (the conservative
// join over every rotation outcome). Entangled groups are merged (the
// lattice join) whenever a gate can couple two non-constant wires.
//
// The exported invariant — checked against the statevector simulators on
// seeded random corpora in tests/test_dataflow.cpp — is: for every
// reachable basis state of the circuit run from |0...0>, there exists one
// assignment of the symbolic variables under which every wire's bit
// equals its form. Constants, pairwise parity links and separability
// claims all follow from it.
//
// Three consumers:
//   * dataflow_lint: the flow-sensitive rules QL011..QL014 (catalog in
//     circuit/lint.hpp) — dead controls, constant-|1> controls,
//     parity-redundant CNOTs, and workspace wires not provably restored
//     to |0> at circuit end. Solver::prepare enforces QL014 on routed
//     outputs in release builds; SynthesisService surfaces the
//     diagnostics on every response.
//   * the dataflow-simplify O2 pass (pass_pipeline.cpp), which applies
//     exactly the rewrites the verdicts justify.
//   * tools/qsplint --dataflow, which prints the fact table and the
//     diagnostics for QASM files and bench JSONL artifacts.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/lint.hpp"

namespace qsp {

struct DataflowOptions {
  /// Wires at or above this index are workspace/ancilla wires expected to
  /// end provably |0> (QL014). Negative: no workspace, QL014 never fires.
  int num_data_wires = -1;
  /// Rotations with every |angle| at or below this are the identity (the
  /// transfer function then skips the widening).
  double angle_epsilon = 1e-12;
};

/// An affine GF(2) form: XOR of the variables in `mask` plus `offset`.
/// Variables are materialized by the engine at widening points (one per
/// Ry-family application), so the all-zero mask means a known constant.
struct AffineForm {
  std::vector<std::uint64_t> mask;
  bool offset = false;

  bool is_constant() const;
  /// Constant value; only meaningful when is_constant().
  bool constant_value() const { return offset; }
  void flip() { offset = !offset; }
  void xor_with(const AffineForm& other);
  /// True when the two forms agree on every variable assignment.
  friend bool operator==(const AffineForm&, const AffineForm&);
  /// True when the masks agree (the forms are equal or complementary).
  bool same_mask(const AffineForm& other) const;
  /// "0", "1", "v0^v2", "v0^v2^1".
  std::string to_string() const;
};

/// Lattice classification of one wire (docs above; `bottom` is omitted —
/// it never materializes for a circuit run from |0...0>).
enum class WireKind : int {
  kZero = 0,       ///< provably |0>
  kOne = 1,        ///< provably |1>
  kBasis = 2,      ///< parity-linked to another wire
  kSeparable = 3,  ///< pure single-wire state, value unknown
  kEntangled = 4,  ///< top: may share entanglement with its group
};

/// "zero" / "one" / "basis-parity" / "separable" / "entangled".
std::string_view wire_kind_name(WireKind kind);

struct WireFact {
  int wire = 0;
  WireKind kind = WireKind::kZero;
  AffineForm form;
  /// Union-find representative of the wire's may-entangled group and the
  /// group's wire count (1 = provably separable).
  int group = 0;
  int group_size = 1;
  /// A wire whose form shares this wire's variable mask, if any (-1:
  /// none). `parity_equal` says whether the linkage is equality (equal
  /// forms) or anti-equality (complementary forms).
  int parity_partner = -1;
  bool parity_equal = true;

  /// "q2: basis-parity form=v0^1 group=g0(3) partner=q0 (anti)".
  std::string to_string() const;
};

/// The stable exported fact table (JSON-serializable like LintReport).
struct WireFacts {
  int num_qubits = 0;
  /// Variables materialized by widening during the analysis.
  int num_variables = 0;
  std::vector<WireFact> wires;

  /// One wire per line.
  std::string to_string() const;
  /// {"num_qubits":N,"num_variables":V,"wires":[{...},...]}.
  std::string to_json() const;
};

/// The engine's verdict on one gate, computed against the abstract state
/// *before* the gate's transfer is applied. Consumers that only want the
/// facts ignore it; dataflow_lint turns it into QL011..QL013 diagnostics
/// and the dataflow-simplify pass applies exactly the rewrite it names.
struct GateVerdict {
  enum class Action {
    kKeep,        ///< no fact justifies a rewrite
    kDrop,        ///< provably the identity on every reachable state
    kReplace,     ///< provably equivalent to `replacement` (demotion)
    kCancelPair,  ///< CNOT cancelled against gate `cancel_with`
  };
  Action action = Action::kKeep;
  std::optional<Gate> replacement;
  /// Index of the earlier CNOT of a cancelled pair (kCancelPair).
  std::int64_t cancel_with = -1;
  /// Human-readable justification for kDrop/kReplace/kCancelPair.
  std::string reason;
};

/// The forward interpreter. Starts at |0...0> (every wire known-|0>) and
/// consumes gates one at a time; facts() snapshots the current table.
class DataflowEngine {
 public:
  explicit DataflowEngine(int num_qubits, double angle_epsilon = 1e-12);

  /// Apply one gate's transfer function and return the verdict computed
  /// against the pre-transfer state. `index` is the gate's position in
  /// the enclosing walk (recorded for pair cancellation); monotonically
  /// increasing indices are required, gaps are fine.
  GateVerdict apply(const Gate& gate, std::int64_t index);

  /// Snapshot of the current per-wire facts.
  WireFacts facts() const;

  /// Constant value of wire q, if provable.
  std::optional<bool> wire_constant(int q) const;

  int num_qubits() const { return static_cast<int>(forms_.size()); }
  int num_variables() const { return num_variables_; }

 private:
  struct CnotRecord {
    std::int64_t gate_index = -1;
    AffineForm flip;  // control form xor polarity at record time
    bool alive = false;
  };

  AffineForm fresh_variable();
  int find(int node) const;
  void merge(int a, int b);
  void invalidate_records(const Gate& gate);
  GateVerdict controlled_rotation_verdict(const Gate& gate) const;

  double angle_epsilon_;
  std::vector<AffineForm> forms_;
  /// Wire -> union-find node (one level of indirection so iSwap can hand
  /// a wire's entanglement status to its partner by swapping node ids).
  std::vector<int> wire_node_;
  mutable std::vector<int> parent_;
  int num_variables_ = 0;
  /// Per target wire: the latest CNOT onto it, for pair cancellation.
  /// A record dies as soon as any later gate touches its target wire.
  std::vector<CnotRecord> records_;
};

/// Run the engine over the whole circuit and return the final fact table.
WireFacts analyze_circuit(const Circuit& circuit,
                          const DataflowOptions& options = {});

/// Flow-sensitive lint: QL011 (dead control / provably-identity gate),
/// QL012 (constant-|1> control, gate should be demoted), QL013
/// (parity-redundant CNOT pair) over every gate, plus QL014
/// (ancilla-released-dirty) for each workspace wire — those at or above
/// DataflowOptions::num_data_wires — whose final form is not the
/// constant 0.
LintReport dataflow_lint(const Circuit& circuit,
                         const DataflowOptions& options = {});

}  // namespace qsp
