#pragma once
// Static circuit/IR linter: a no-simulation rule engine over
// Circuit x Target x CouplingGraph x pass preserve-declarations. Every
// rule is a cheap structural scan — wire bounds, duplicate/overlapping
// controls, symmetric-gate canonical wire order, native-gate-set and
// coupling conformance, degenerate rotations and known identities,
// pass-contract consistency — producing coded (QL000..QL010),
// severity-ranked diagnostics with JSON output. Three consumers:
//   * PassPipeline runs the error rules after every productive pass
//     application, release builds included (the always-on complement to
//     the debug-only statevector re-verify);
//   * SynthesisService lints QASM requests at the front door, so a
//     malformed request is rejected before any search spends budget;
//   * tools/qsplint lints QASM files and bench JSONL outputs standalone.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/pass.hpp"
#include "circuit/target.hpp"

namespace qsp {

class CouplingGraph;

enum class LintSeverity : int {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// "info" / "warning" / "error".
std::string_view lint_severity_name(LintSeverity severity);

/// The rule catalog. Codes are stable ("QL" + three digits, the enum
/// value); severities are fixed per rule (lint_rule_severity).
enum class LintRule : int {
  kParseError = 0,             ///< QL000: QASM text failed to parse.
  kWireBounds = 1,             ///< QL001: wire outside [0, num_qubits).
  kOverlappingControls = 2,    ///< QL002: duplicate control, or control
                               ///<        on the target wire.
  kNoncanonicalSymmetric = 3,  ///< QL003: CZ/iSWAP/RZZ stored against the
                               ///<        canonical (lower, positive)
                               ///<        wire-order convention.
  kNonNativeGate = 4,          ///< QL004: gate outside the target's
                               ///<        native set.
  kCouplingViolation = 5,      ///< QL005: native two-qubit gate off the
                               ///<        device's edge set.
  kDegenerateRotation = 6,     ///< QL006: rotation that is the identity
                               ///<        at angle_epsilon (warning).
  kIdentityPair = 7,           ///< QL007: adjacent self-inverse pair the
                               ///<        optimizer should have removed
                               ///<        (warning).
  kPassContract = 8,           ///< QL008: pass output inconsistent with
                               ///<        its preserves() declaration.
  kMalformedAngles = 9,        ///< QL009: non-finite angle, or a
                               ///<        multiplexor angle table of the
                               ///<        wrong size.
  kUnsupportedGate = 10,       ///< QL010: gate kind outside the caller's
                               ///<        allowed set (policy mask).
  // QL011..QL014 are the flow-sensitive rules: they need facts that flow
  // *through* the circuit (per-wire basis/parity abstract state), so their
  // scan lives in the dataflow engine (circuit/dataflow.hpp ->
  // dataflow_lint), not in the structural lint_circuit walk. The catalog
  // entries live here so codes, names and severities stay in one place.
  kDeadControl = 11,           ///< QL011: gate provably the identity on
                               ///<        every reachable basis state
                               ///<        (e.g. a control provably |0>)
                               ///<        (warning).
  kConstantOneControl = 12,    ///< QL012: control provably satisfied on
                               ///<        every reachable basis state —
                               ///<        the gate should be demoted to
                               ///<        its uncontrolled form (warning).
  kRedundantCnot = 13,         ///< QL013: CNOT provably cancelled by an
                               ///<        earlier CNOT onto the same
                               ///<        target with the same parity
                               ///<        effect (warning).
  kAncillaReleasedDirty = 14,  ///< QL014: workspace/ancilla wire not
                               ///<        provably restored to |0> at
                               ///<        circuit end.
};

/// Stable code, e.g. "QL003".
std::string_view lint_rule_code(LintRule rule);
/// Stable kebab-case name, e.g. "canonical-wire-order".
std::string_view lint_rule_name(LintRule rule);
/// Fixed severity class of the rule.
LintSeverity lint_rule_severity(LintRule rule);

struct LintDiagnostic {
  LintRule rule = LintRule::kParseError;
  LintSeverity severity = LintSeverity::kError;
  /// Index of the offending gate in the linted gate list; -1 for
  /// circuit-level diagnostics (parse errors, pass contracts).
  std::int64_t gate_index = -1;
  std::string message;

  /// "error[QL001] gate 3: <message>".
  std::string to_string() const;
};

/// Bit for one GateKind in LintOptions::allowed_kinds.
constexpr std::uint32_t lint_kind_bit(GateKind kind) {
  return 1u << static_cast<int>(kind);
}

struct LintOptions {
  /// Check native-set conformance (QL004) against this target. Unset, the
  /// rule is skipped — pre-lowering circuits are legitimately composite.
  std::optional<Target> target;
  /// Check native two-qubit gates sit on device edges (QL005). Composite
  /// gates are skipped (they are routed during lowering, not here).
  std::shared_ptr<const CouplingGraph> coupling;
  /// Rotations with every |angle| at or below this are degenerate.
  double angle_epsilon = 1e-12;
  /// QL003: symmetric-gate canonical wire order.
  bool canonical_wire_order = true;
  /// QL006: degenerate rotations (warning). Off in the pipeline gate —
  /// gray-code lowering legitimately emits zero rotations unless
  /// PassOptions::elide_zero_rotations is set.
  bool degenerate_rotations = true;
  /// QL007: adjacent self-inverse identity pairs (warning).
  bool identity_pairs = true;
  /// QL010 policy mask: bit lint_kind_bit(kind) set = kind allowed.
  /// 0 disables the rule (every kind allowed).
  std::uint32_t allowed_kinds = 0;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;

  bool has_errors() const;
  bool has_warnings() const;
  std::size_t count(LintSeverity severity) const;
  /// One diagnostic per line; "" when clean.
  std::string to_string() const;
  /// JSON array of {code, name, severity, gate, message} objects.
  std::string to_json() const;
};

/// Gate fields before Gate-factory validation. The factories reject
/// malformed gates at construction, so rules like QL001/QL002 can only
/// fire on gates that never went through them — QASM-like front ends and
/// the linter's own tests use this seam.
struct RawGate {
  GateKind kind = GateKind::kX;
  int target = 0;
  double theta = 0.0;
  std::vector<ControlLiteral> controls;
  std::vector<double> angles;

  static RawGate from(const Gate& gate);
};

/// Lint one raw gate against a register of `num_qubits` wires, appending
/// diagnostics to `report`.
void lint_raw_gate(const RawGate& gate, std::int64_t index, int num_qubits,
                   const LintOptions& options, LintReport& report);

/// Lint a circuit: every per-gate rule plus the adjacency patterns.
LintReport lint_circuit(const Circuit& circuit,
                        const LintOptions& options = {});

/// The facts about a pre-pass circuit the contract check needs, cheap to
/// record up front (one linear scan) so the pipeline's release-mode gate
/// never copies the circuit the way the debug simulation verify does.
struct CircuitFacts {
  std::size_t num_gates = 0;
  /// lint_kind_bit mask of the gate kinds present.
  std::uint32_t kinds = 0;
  /// Every native two-qubit gate sat on a device edge (false when no
  /// coupling was supplied — the conformance precondition then never
  /// activates the QL005/QL008 coupling checks).
  bool coupling_conforms = false;
};

CircuitFacts circuit_facts(const Circuit& circuit,
                           const CouplingGraph* coupling);

/// Pass-contract consistency (QL008) for one pass application: a pass
/// claiming kPreservesGateSet must not introduce a gate kind or grow the
/// gate count; one claiming kPreservesCoupling must keep native two-qubit
/// gates on device edges when `before` conformed (checked only when
/// `options.coupling` is set). Purely structural — the simulation-based
/// preparation check stays in the pipeline's debug verify.
LintReport lint_pass_application(const Pass& pass, const CircuitFacts& before,
                                 const Circuit& after,
                                 const LintOptions& options = {});
LintReport lint_pass_application(const Pass& pass, const Circuit& before,
                                 const Circuit& after,
                                 const LintOptions& options = {});

/// Lint OpenQASM 2.0 text: parse (QL000 on failure) then lint_circuit.
/// With `parsed` non-null, the parsed circuit is stored there on success
/// so callers (the service front door) do not parse twice.
LintReport lint_qasm(const std::string& qasm, const LintOptions& options = {},
                     std::optional<Circuit>* parsed = nullptr);

}  // namespace qsp
