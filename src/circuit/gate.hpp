#pragma once
// Gate IR. The library of the paper (Table I): Ry, CNOT, controlled-Ry and
// multi-controlled Ry, plus X (a zero-cost single-qubit gate used by the
// canonicalization) and the uniformly-controlled Ry multiplexor (UCRy) used
// both by the n-flow baseline and as the lowering vehicle for MCRy.

#include <cstdint>
#include <string>
#include <vector>

namespace qsp {

enum class GateKind : std::uint8_t {
  kX,     ///< Pauli-X on the target.
  kRy,    ///< Ry(theta) on the target.
  kCNOT,  ///< Controlled-X, one control literal.
  kCRy,   ///< Controlled-Ry(theta), one control literal.
  kMCRy,  ///< Multi-controlled Ry(theta), >= 2 control literals.
  kUCRy,  ///< Uniformly controlled Ry: one rotation per control pattern.
  // Z-axis rotations for the phase-oracle extension (complex amplitudes,
  // paper Section VI-A). They leave the measurement distribution alone and
  // are simulated by the complex statevector only.
  kRz,    ///< Rz(theta) = diag(e^{-i theta/2}, e^{i theta/2}).
  kUCRz,  ///< Uniformly controlled Rz: one rotation per control pattern.
  // Device-native two-qubit gates for backend legalization (target.hpp).
  // Symmetric on their two wires; stored with the lower wire as a positive
  // "control" literal so the Gate layout is reused, but neither wire is a
  // control in the circuit-semantics sense.
  kCZ,     ///< Controlled-Z: diag(1, 1, 1, -1) on the wire pair.
  kISwap,  ///< iSWAP: |01> -> i|10>, |10> -> i|01>, |00>/|11> fixed.
  kRZZ,    ///< exp(-i theta/2 Z(x)Z): e^{-i theta/2} on equal bits,
           ///< e^{+i theta/2} on unequal bits.
};

/// A control literal: gate fires when `qubit` holds `positive ? 1 : 0`.
struct ControlLiteral {
  int qubit = 0;
  bool positive = true;

  friend bool operator==(const ControlLiteral&,
                         const ControlLiteral&) = default;
};

/// One gate instance. Use the static factories; they validate arguments.
class Gate {
 public:
  static Gate x(int target);
  static Gate ry(int target, double theta);
  static Gate cnot(int control, int target, bool positive = true);
  static Gate cry(int control, int target, double theta,
                  bool positive = true);
  /// Controls must name distinct qubits, none equal to the target.
  static Gate mcry(std::vector<ControlLiteral> controls, int target,
                   double theta);
  /// `angles.size()` must equal 2^controls.size(); angles[s] applies when
  /// the control qubits (controls[i] = bit i of s) read pattern s.
  static Gate ucry(std::vector<int> controls, int target,
                   std::vector<double> angles);
  static Gate rz(int target, double theta);
  /// Uniformly controlled Rz; same pattern convention as ucry.
  static Gate ucrz(std::vector<int> controls, int target,
                   std::vector<double> angles);
  /// Symmetric device natives: the wire pair is canonicalized (the lower
  /// wire is stored as the positive control literal), so cz(a, b) ==
  /// cz(b, a) and adjacent duplicates cancel/fuse under the passes.
  static Gate cz(int a, int b);
  static Gate iswap(int a, int b);
  static Gate rzz(int a, int b, double theta);

  GateKind kind() const { return kind_; }
  int target() const { return target_; }
  double theta() const { return theta_; }
  const std::vector<ControlLiteral>& controls() const { return controls_; }
  const std::vector<double>& angles() const { return angles_; }
  int num_controls() const;

  /// Inverse gate (same kind; rotations get negated angles). Throws
  /// std::logic_error for kISwap, whose inverse is not in the gate set
  /// (iSwap^2 = Z(x)Z, not the identity); iSwap only appears in terminal
  /// legalized circuits, which are never adjointed.
  Gate adjoint() const;

  /// Gate with every qubit id q replaced by qubit_map[q] (used to embed
  /// narrow sub-circuits into a wider register).
  Gate remapped(const std::vector<int>& qubit_map) const;

  /// All qubits the gate touches (target + controls).
  std::vector<int> qubits() const;

  /// Largest qubit id referenced.
  int max_qubit() const;

  std::string to_string() const;

  friend bool operator==(const Gate&, const Gate&) = default;

 private:
  Gate() = default;

  GateKind kind_ = GateKind::kX;
  int target_ = 0;
  double theta_ = 0.0;
  std::vector<ControlLiteral> controls_;
  std::vector<double> angles_;  // UCRy only
};

}  // namespace qsp
