#include "circuit/optimizer.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"

namespace qsp {
namespace {

bool is_trivial_rotation(const Gate& g, double eps) {
  switch (g.kind()) {
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kRz:
      return std::abs(g.theta()) <= eps;
    case GateKind::kUCRy:
    case GateKind::kUCRz: {
      for (const double a : g.angles()) {
        if (std::abs(a) > eps) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

/// One optimization sweep; returns true if anything changed.
bool sweep(std::vector<std::optional<Gate>>& gates,
           const OptimizerOptions& options, int num_qubits) {
  bool changed = false;
  // last_on[q]: index of the latest surviving gate touching wire q.
  std::vector<int> last_on(static_cast<std::size_t>(num_qubits), -1);

  auto erase = [&](int idx) {
    gates[static_cast<std::size_t>(idx)].reset();
    changed = true;
  };

  for (int i = 0; i < static_cast<int>(gates.size()); ++i) {
    if (!gates[static_cast<std::size_t>(i)].has_value()) continue;
    Gate& g = *gates[static_cast<std::size_t>(i)];

    if (is_trivial_rotation(g, options.angle_epsilon)) {
      erase(i);
      continue;
    }

    // The candidate predecessor: the latest gate on any touched wire. The
    // pair is adjacent (commutation-safe) iff it is the latest on *every*
    // touched wire.
    int prev = -1;
    bool adjacent = true;
    for (const int q : g.qubits()) {
      const int lq = last_on[static_cast<std::size_t>(q)];
      if (prev == -1) prev = lq;
      if (lq != prev) adjacent = false;
      prev = std::max(prev, lq);
    }
    if (adjacent && prev >= 0 &&
        gates[static_cast<std::size_t>(prev)].has_value()) {
      Gate& p = *gates[static_cast<std::size_t>(prev)];
      const bool same_wires =
          p.target() == g.target() && p.controls() == g.controls();
      if (same_wires && p.kind() == g.kind()) {
        switch (g.kind()) {
          case GateKind::kX:
          case GateKind::kCNOT:
            // Self-inverse pair cancels.
            erase(prev);
            erase(i);
            continue;
          case GateKind::kRz: {
            const double theta = p.theta() + g.theta();
            const int target = g.target();
            erase(prev);
            erase(i);
            if (std::abs(theta) > options.angle_epsilon) {
              gates[static_cast<std::size_t>(i)] = Gate::rz(target, theta);
            } else {
              continue;
            }
            break;
          }
          case GateKind::kRy:
          case GateKind::kCRy:
          case GateKind::kMCRy: {
            // Fuse rotations; drop if the sum vanishes. Copy the fields
            // before erasing: g aliases the slot being cleared.
            const double theta = p.theta() + g.theta();
            const int target = g.target();
            const std::vector<ControlLiteral> controls = g.controls();
            erase(prev);
            erase(i);
            if (std::abs(theta) > options.angle_epsilon) {
              gates[static_cast<std::size_t>(i)] =
                  Gate::mcry(controls, target, theta);
            } else {
              continue;
            }
            break;
          }
          case GateKind::kUCRy:
          case GateKind::kUCRz: {
            const bool z_axis = g.kind() == GateKind::kUCRz;
            if (p.angles().size() == g.angles().size()) {
              std::vector<double> sum = g.angles();
              for (std::size_t j = 0; j < sum.size(); ++j) {
                sum[j] += p.angles()[j];
              }
              const int target = g.target();
              std::vector<int> controls;
              for (const auto& c : g.controls()) controls.push_back(c.qubit);
              erase(prev);
              erase(i);
              Gate fused = z_axis
                               ? Gate::ucrz(controls, target, std::move(sum))
                               : Gate::ucry(controls, target, std::move(sum));
              if (!is_trivial_rotation(fused, options.angle_epsilon)) {
                gates[static_cast<std::size_t>(i)] = std::move(fused);
              } else {
                continue;
              }
            }
            break;
          }
        }
      }
    }
    if (gates[static_cast<std::size_t>(i)].has_value()) {
      for (const int q : gates[static_cast<std::size_t>(i)]->qubits()) {
        last_on[static_cast<std::size_t>(q)] = i;
      }
    }
  }
  return changed;
}

}  // namespace

Circuit optimize(const Circuit& circuit, const OptimizerOptions& options,
                 OptimizerStats* stats) {
  std::vector<std::optional<Gate>> gates;
  gates.reserve(circuit.size());
  for (const Gate& g : circuit.gates()) gates.emplace_back(g);

  int passes = 0;
  while (passes < options.max_passes &&
         sweep(gates, options, circuit.num_qubits())) {
    ++passes;
  }

  Circuit out(circuit.num_qubits());
  for (const auto& g : gates) {
    if (g.has_value()) out.append(*g);
  }
  if (stats != nullptr) {
    stats->gates_before = circuit.size();
    stats->gates_after = out.size();
    stats->cnots_removed = circuit.cnot_cost() - out.cnot_cost();
    stats->passes = passes;
  }
  return out;
}

}  // namespace qsp
