#include "circuit/optimizer.hpp"

namespace qsp {

Circuit optimize(const Circuit& circuit, const OptimizerOptions& options,
                 OptimizerStats* stats) {
  PipelineOptions pipeline;
  pipeline.level = OptLevel::kO1;
  pipeline.pass.angle_epsilon = options.angle_epsilon;
  pipeline.max_iterations = options.max_passes;
  PipelineReport report;
  Circuit out = PassPipeline(pipeline).run(circuit, &report);
  if (stats != nullptr) {
    stats->gates_before = report.gates_before;
    stats->gates_after = report.gates_after;
    stats->cnots_removed = circuit.cnot_cost() - out.cnot_cost();
    stats->passes = report.iterations;
  }
  return out;
}

}  // namespace qsp
