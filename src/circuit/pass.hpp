#pragma once
// Compiler-grade pass framework for circuits. Each optimization is a named
// Pass object that declares which properties it preserves and rewrites a
// circuit in place; the pipeline (pass_pipeline.hpp) composes registered
// passes into -O style levels, records per-pass gate/depth/CNOT deltas, and
// re-verifies preparation equivalence after every application in debug
// builds. Modeled on the fold/ir/opts split of classic compilers: passes
// are small, individually testable, and safe to grow because the
// differential harness (tests/pass_test_util.hpp) checks every registered
// pass against random-circuit corpora.

#include <cstdint>
#include <string>
#include <string_view>

#include "circuit/circuit.hpp"
#include "circuit/target.hpp"

namespace qsp {

/// Optimization levels in the -O tradition. O0 runs nothing, O1 the
/// conservative cleanup the workflow has always applied (dead rotations,
/// wire-adjacent cancellation/fusion), O2 adds the commutation-aware
/// peepholes (CNOT folding and rotation merging across control structure).
enum class OptLevel : int {
  kO0 = 0,
  kO1 = 1,
  kO2 = 2,
};

/// "O0" / "O1" / "O2" (bench rows, logs).
std::string opt_level_name(OptLevel level);

/// Properties a pass guarantees to preserve, declared up front so the
/// pipeline (and reviewers of new passes) know what may be assumed:
///  * kPreservesPreparation: the state prepared from |0...0> is unchanged
///    up to global phase (checked by the debug verification hook).
///  * kPreservesCoupling: if respects_coupling(c, g) held before the pass
///    it holds after (the pass never adds gates or moves them to new
///    wires).
///  * kPreservesGateSet: the set of gate kinds in the output is a subset
///    of the input's (no new kinds introduced; lowering stays valid).
inline constexpr unsigned kPreservesPreparation = 1u << 0;
inline constexpr unsigned kPreservesCoupling = 1u << 1;
inline constexpr unsigned kPreservesGateSet = 1u << 2;
inline constexpr unsigned kPreservesAll =
    kPreservesPreparation | kPreservesCoupling | kPreservesGateSet;

struct PassOptions {
  /// Rotations with every |angle| at or below this are dead.
  double angle_epsilon = 1e-12;
  /// Commutation-aware passes walk at most this many surviving gates
  /// backward per candidate, bounding worst-case quadratic scans.
  int commute_window = 128;
  /// Backend descriptor read by the lowering stages (lowering.hpp): the
  /// native-legalize pass rewrites every CNOT into this target's native
  /// two-qubit gate. The default CNOT target makes legalization a no-op.
  Target target = Target::cnot();
  /// Lowering stages: skip zero rotations in multiplexors and fuse the
  /// freed CNOT pairs (LoweringOptions::elide_zero_rotations semantics).
  /// Off, a UCRy over c controls costs exactly 2^c CNOTs (Table I).
  bool elide_zero_rotations = false;
};

/// Accounting for one pass application. Deltas are before - after, so
/// positive numbers mean the pass removed work; the pipeline's summed
/// per-pass deltas equal the whole-pipeline delta exactly (tested).
struct PassReport {
  std::string pass;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t depth_before = 0;
  std::size_t depth_after = 0;
  std::int64_t cnot_cost_before = 0;
  std::int64_t cnot_cost_after = 0;
  bool changed = false;

  std::int64_t gates_delta() const {
    return static_cast<std::int64_t>(gates_before) -
           static_cast<std::int64_t>(gates_after);
  }
  std::int64_t depth_delta() const {
    return static_cast<std::int64_t>(depth_before) -
           static_cast<std::int64_t>(depth_after);
  }
  std::int64_t cnot_cost_delta() const {
    return cnot_cost_before - cnot_cost_after;
  }
};

/// One rewriting pass. Implementations are stateless (options arrive per
/// run), so a single registered instance serves every pipeline.
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable kebab-case identity ("dead-rotation", "cnot-commute-fold").
  virtual std::string_view name() const = 0;

  /// Bitmask of kPreserves* flags. Every built-in optimization pass
  /// preserves all three; the lowering stages (lowering.hpp) legitimately
  /// drop kPreservesGateSet — they exist to change the gate set.
  virtual unsigned preserves() const = 0;

  /// Rewrite `circuit` in place; returns true if anything changed.
  virtual bool run(Circuit& circuit, const PassOptions& options) const = 0;
};

/// Conservative sufficient commutation test used by the commutation-aware
/// peepholes: true only when gate `a` and gate `b` provably commute.
///
/// Per shared wire, each gate acts in one of three compatible modes:
/// diagonally (a control literal, or any wire of the z-axis Rz/UCRz
/// family), as a Pauli-X (target of X/CNOT), or as a y-rotation (target of
/// Ry/CRy/MCRy/UCRy). Two gates commute when on every shared wire the
/// modes agree: diagonal meets diagonal, X meets X, or Ry meets Ry.
///
/// The MCRy-control case is the classic trap this predicate pins down
/// (regression-tested in tests/test_peephole.cpp): a CNOT whose *control*
/// sits on an MCRy control wire commutes (both only read the wire), but a
/// CNOT whose *target* sits on that control wire does not — it flips the
/// value the MCRy reads, so reordering a rotation past it would corrupt
/// the prepared state.
bool gates_commute(const Gate& a, const Gate& b);

}  // namespace qsp
