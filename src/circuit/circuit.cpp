#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "circuit/cost_model.hpp"
#include "util/bitops.hpp"

namespace qsp {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("Circuit: qubit count out of range");
  }
}

void Circuit::append(Gate gate) {
  if (gate.max_qubit() >= num_qubits_) {
    throw std::invalid_argument("Circuit::append: gate exceeds register");
  }
  gates_.push_back(std::move(gate));
}

void Circuit::append(const Circuit& other) {
  if (other.num_qubits_ > num_qubits_) {
    throw std::invalid_argument("Circuit::append: register too narrow");
  }
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

Circuit Circuit::adjoint() const {
  Circuit out(num_qubits_);
  out.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    out.gates_.push_back(it->adjoint());
  }
  return out;
}

std::int64_t Circuit::cnot_cost() const {
  std::int64_t total = 0;
  for (const Gate& g : gates_) total += gate_cnot_cost(g);
  return total;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> wire(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    std::size_t layer = 0;
    for (const int q : g.qubits()) {
      layer = std::max(layer, wire[static_cast<std::size_t>(q)]);
    }
    ++layer;
    for (const int q : g.qubits()) {
      wire[static_cast<std::size_t>(q)] = layer;
    }
    depth = std::max(depth, layer);
  }
  return depth;
}

std::map<GateKind, std::size_t> Circuit::gate_counts() const {
  std::map<GateKind, std::size_t> counts;
  for (const Gate& g : gates_) ++counts[g.kind()];
  return counts;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const Gate& g : gates_) os << g.to_string() << '\n';
  return os.str();
}

std::string Circuit::draw() const {
  // One column per gate; wires as '-', controls as 'o'/'x' (positive /
  // negative), targets labelled per kind.
  std::vector<std::string> rows(static_cast<std::size_t>(num_qubits_));
  auto pad_all = [&](std::size_t w) {
    for (auto& r : rows) r.resize(w, '-');
  };
  for (const Gate& g : gates_) {
    const std::size_t col = rows[0].size() + 1;  // leave a wire gap
    std::string label;
    switch (g.kind()) {
      case GateKind::kX:
        label = "[X]";
        break;
      case GateKind::kRy:
      case GateKind::kCRy:
      case GateKind::kMCRy: {
        std::ostringstream ls;
        ls.setf(std::ios::fixed);
        ls.precision(2);
        ls << "[Ry " << g.theta() << ']';
        label = ls.str();
        break;
      }
      case GateKind::kCNOT:
        label = "(+)";
        break;
      case GateKind::kUCRy:
        label = "[UCRy]";
        break;
      case GateKind::kRz: {
        std::ostringstream ls;
        ls.setf(std::ios::fixed);
        ls.precision(2);
        ls << "[Rz " << g.theta() << ']';
        label = ls.str();
        break;
      }
      case GateKind::kUCRz:
        label = "[UCRz]";
        break;
      case GateKind::kCZ:
        label = "[CZ]";
        break;
      case GateKind::kISwap:
        label = "[iSW]";
        break;
      case GateKind::kRZZ: {
        std::ostringstream ls;
        ls.setf(std::ios::fixed);
        ls.precision(2);
        ls << "[RZZ " << g.theta() << ']';
        label = ls.str();
        break;
      }
    }
    pad_all(col);
    const std::size_t width = label.size();
    pad_all(col + width);
    auto& target_row = rows[static_cast<std::size_t>(g.target())];
    target_row.replace(col, width, label);
    for (const auto& c : g.controls()) {
      auto& crow = rows[static_cast<std::size_t>(c.qubit)];
      const char mark = (g.kind() == GateKind::kUCRy) ? 'u'
                        : c.positive                  ? 'o'
                                                      : 'x';
      crow[col + width / 2] = mark;
    }
  }
  pad_all(rows[0].size() + 1);
  std::ostringstream os;
  for (int q = 0; q < num_qubits_; ++q) {
    os << 'q' << q << ": " << rows[static_cast<std::size_t>(q)] << '\n';
  }
  return os.str();
}

}  // namespace qsp
