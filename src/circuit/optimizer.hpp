#pragma once
// Peephole circuit optimizer for lowered circuits: removes the local
// redundancies that composition of synthesis stages leaves behind
// (zero rotations, adjacent self-inverse pairs, fusible rotations).
// Used by the workflow before final counting; sound for any circuit.

#include "circuit/circuit.hpp"

namespace qsp {

struct OptimizerOptions {
  /// Rotations with |theta| below this are dropped.
  double angle_epsilon = 1e-12;
  /// Maximum fixpoint sweeps (each sweep is linear in circuit size).
  int max_passes = 8;
};

struct OptimizerStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::int64_t cnots_removed = 0;
  int passes = 0;
};

/// Apply peephole rules until fixpoint:
///  * drop Ry(theta ~ 0) and empty rotations;
///  * cancel adjacent X-X and identical CNOT-CNOT pairs (adjacency on the
///    touched wires, not in the raw list);
///  * fuse adjacent Ry rotations on the same wire (angles add; a fused
///    zero drops).
/// The rewritten circuit implements the same unitary.
Circuit optimize(const Circuit& circuit, const OptimizerOptions& options = {},
                 OptimizerStats* stats = nullptr);

}  // namespace qsp
