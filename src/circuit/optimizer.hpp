#pragma once
// Legacy peephole entry point, kept for source compatibility. The
// optimizer is now the registered-pass pipeline (pass_pipeline.hpp);
// optimize() runs it at OptLevel::kO1, which reproduces the historical
// cleanup exactly (dead rotations, wire-adjacent cancellation/fusion).
// New code should use optimize_circuit() / PassPipeline directly, which
// expose -O levels, per-pass reports and the debug verification hook.

#include "circuit/circuit.hpp"
#include "circuit/pass_pipeline.hpp"

namespace qsp {

struct OptimizerOptions {
  /// Rotations with |theta| below this are dropped.
  double angle_epsilon = 1e-12;
  /// Maximum fixpoint sweeps (each sweep is linear in circuit size).
  int max_passes = 8;
};

struct OptimizerStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::int64_t cnots_removed = 0;
  int passes = 0;
};

/// Run the pass pipeline at O1 until fixpoint (capped at max_passes
/// productive sweeps). The rewritten circuit implements the same unitary.
Circuit optimize(const Circuit& circuit, const OptimizerOptions& options = {},
                 OptimizerStats* stats = nullptr);

}  // namespace qsp
