#include "circuit/qasm.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace qsp {

std::string to_qasm(const Circuit& circuit, const LoweringOptions& options) {
  const Circuit lowered = lower(circuit, options);
  std::ostringstream os;
  os.precision(17);
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << lowered.num_qubits() << "];\n";
  for (const Gate& g : lowered.gates()) {
    switch (g.kind()) {
      case GateKind::kX:
        os << "x q[" << g.target() << "];\n";
        break;
      case GateKind::kRy:
        os << "ry(" << g.theta() << ") q[" << g.target() << "];\n";
        break;
      case GateKind::kRz:
        os << "rz(" << g.theta() << ") q[" << g.target() << "];\n";
        break;
      case GateKind::kCNOT:
        QSP_ASSERT(g.controls()[0].positive);
        os << "cx q[" << g.controls()[0].qubit << "],q[" << g.target()
           << "];\n";
        break;
      default:
        QSP_ASSERT_MSG(false, "lower() must remove composite gates");
    }
  }
  return os.str();
}

}  // namespace qsp
