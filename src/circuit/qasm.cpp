#include "circuit/qasm.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {

std::string to_qasm(const Circuit& circuit, const LoweringOptions& options) {
  return to_qasm(circuit, Target::cnot(), options);
}

std::string to_qasm(const Circuit& circuit, const Target& target,
                    const LoweringOptions& options) {
  const Circuit lowered = lower_onto(circuit, target, options);
  std::ostringstream os;
  os.precision(17);
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << lowered.num_qubits() << "];\n";
  for (const Gate& g : lowered.gates()) {
    switch (g.kind()) {
      case GateKind::kX:
        os << "x q[" << g.target() << "];\n";
        break;
      case GateKind::kRy:
        os << "ry(" << g.theta() << ") q[" << g.target() << "];\n";
        break;
      case GateKind::kRz:
        os << "rz(" << g.theta() << ") q[" << g.target() << "];\n";
        break;
      case GateKind::kCNOT:
        QSP_ASSERT(g.controls()[0].positive);
        os << "cx q[" << g.controls()[0].qubit << "],q[" << g.target()
           << "];\n";
        break;
      case GateKind::kCZ:
        os << "cz q[" << g.controls()[0].qubit << "],q[" << g.target()
           << "];\n";
        break;
      case GateKind::kISwap:
        os << "iswap q[" << g.controls()[0].qubit << "],q[" << g.target()
           << "];\n";
        break;
      case GateKind::kRZZ:
        os << "rzz(" << g.theta() << ") q[" << g.controls()[0].qubit
           << "],q[" << g.target() << "];\n";
        break;
      default:
        QSP_ASSERT_MSG(false, "lower_onto() must remove composite gates");
    }
  }
  return os.str();
}

namespace {

/// Cursor over one statement line; methods throw with the line attached.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  void skip_spaces() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_spaces();
    return pos_ >= line_.size();
  }

  /// Consume `token` (after spaces) or report failure.
  bool try_consume(const std::string& token) {
    skip_spaces();
    if (line_.compare(pos_, token.size(), token) != 0) return false;
    pos_ += token.size();
    return true;
  }

  void consume(const std::string& token) {
    if (!try_consume(token)) fail("expected '" + token + "'");
  }

  /// Lowercase identifier (gate mnemonic).
  std::string identifier() {
    skip_spaces();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           std::isalpha(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an identifier");
    return line_.substr(start, pos_ - start);
  }

  int qubit_ref() {
    consume("q");
    consume("[");
    skip_spaces();
    std::size_t start = pos_;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a qubit index");
    const long idx = std::strtol(line_.c_str() + start, nullptr, 10);
    consume("]");
    return static_cast<int>(idx);
  }

  double angle() {
    skip_spaces();
    const char* begin = line_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected an angle");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("from_qasm: " + what + " in line: " + line_);
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

Circuit from_qasm(const std::string& qasm) {
  std::istringstream is(qasm);
  std::optional<Circuit> circuit;
  std::string line;
  while (std::getline(is, line)) {
    // Strip comments; skip blank lines and the fixed headers.
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line.erase(comment);
    LineParser p(line);
    if (p.at_end()) continue;
    if (p.try_consume("OPENQASM")) continue;
    if (p.try_consume("include")) continue;
    if (p.try_consume("qreg")) {
      if (circuit.has_value()) p.fail("duplicate qreg");
      const int n = p.qubit_ref();
      p.consume(";");
      if (n < 1) p.fail("empty register");
      circuit.emplace(n);
      continue;
    }
    if (!circuit.has_value()) {
      p.fail("gate statement before qreg");
    }
    const std::string mnemonic = p.identifier();
    if (mnemonic == "x") {
      circuit->append(Gate::x(p.qubit_ref()));
    } else if (mnemonic == "ry" || mnemonic == "rz") {
      p.consume("(");
      const double theta = p.angle();
      p.consume(")");
      const int target = p.qubit_ref();
      circuit->append(mnemonic == "ry" ? Gate::ry(target, theta)
                                       : Gate::rz(target, theta));
    } else if (mnemonic == "cx") {
      const int control = p.qubit_ref();
      p.consume(",");
      const int target = p.qubit_ref();
      circuit->append(Gate::cnot(control, target));
    } else if (mnemonic == "cz" || mnemonic == "iswap") {
      const int a = p.qubit_ref();
      p.consume(",");
      const int b = p.qubit_ref();
      circuit->append(mnemonic == "cz" ? Gate::cz(a, b) : Gate::iswap(a, b));
    } else if (mnemonic == "rzz") {
      p.consume("(");
      const double theta = p.angle();
      p.consume(")");
      const int a = p.qubit_ref();
      p.consume(",");
      const int b = p.qubit_ref();
      circuit->append(Gate::rzz(a, b, theta));
    } else {
      p.fail("unsupported gate '" + mnemonic + "'");
    }
    p.consume(";");
    if (!p.at_end()) p.fail("trailing characters");
  }
  if (!circuit.has_value()) {
    throw std::invalid_argument("from_qasm: no qreg declaration");
  }
  return *circuit;
}

}  // namespace qsp
