#pragma once
// CNOT cost model of Table I. Costs are those of the standard ancilla-free
// decompositions: Ry/X are free single-qubit gates, CNOT costs 1, CRy lowers
// to 2 CNOTs, and an MCRy/UCRy over c controls lowers to 2^c CNOTs via the
// gray-code multiplexor (Mottonen et al. 2004).

#include <cstdint>

#include "circuit/gate.hpp"

namespace qsp {

/// Model cost of one gate. For UCRy this is the worst-case 2^c; the
/// zero-angle-eliding lowering may realize fewer (see lowering.hpp), which
/// benches account for by costing the *lowered* circuit.
std::int64_t gate_cnot_cost(const Gate& gate);

/// Model cost of a rotation/relabel arc with `num_controls` control
/// literals: 0 -> 0 (Ry), 1 -> 2 (CRy), c -> 2^c (MCRy).
std::int64_t rotation_cost(int num_controls);

}  // namespace qsp
