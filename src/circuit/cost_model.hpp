#pragma once
// Gate cost models. The CNOT-count model of Table I (rotation_cost,
// gate_cnot_cost: standard ancilla-free decompositions — Ry/X free, CNOT
// 1, CRy 2, MCRy/UCRy over c controls 2^c via the gray-code multiplexor,
// Mottonen et al. 2004) plus the target-aware generalizations: a
// two-qubit gate counter for legalized circuits on any built-in backend
// (target.hpp) and a weighted circuit cost under a Target's per-gate
// model.

#include <cstdint>

#include "circuit/circuit.hpp"
#include "circuit/target.hpp"

namespace qsp {

/// Model cost of one gate, in two-qubit-gate units of the CNOT target.
/// For UCRy this is the worst-case 2^c; the zero-angle-eliding lowering
/// may realize fewer (see lowering.hpp), which benches account for by
/// costing the *lowered* circuit. Device-native two-qubit gates (CZ,
/// iSWAP, RZZ) contribute 1 each: the value is a two-qubit gate count,
/// not an emulation cost — Target::gate_cost carries the per-backend
/// weighting.
std::int64_t gate_cnot_cost(const Gate& gate);

/// Model cost of a rotation/relabel arc with `num_controls` control
/// literals: 0 -> 0 (Ry), 1 -> 2 (CRy), c -> 2^c (MCRy).
std::int64_t rotation_cost(int num_controls);

/// Number of native two-qubit gates in a circuit legalized for `target`.
/// Native single-qubit gates contribute 0; any gate outside the target's
/// native set — a composite rotation, or a two-qubit gate of the wrong
/// kind — throws std::invalid_argument naming the offending gate, so a
/// circuit counted against the wrong backend fails loudly instead of
/// silently miscounting (the historical lowered_cnot_count footgun).
std::int64_t two_qubit_gate_count(const Circuit& circuit,
                                  const Target& target);

/// Weighted model cost of a circuit under the target's per-gate model:
/// sum of Target::gate_cost over all gates. Total for any circuit
/// (non-native gates are estimated at their post-lowering native count),
/// so it can rank candidates before and after legalization.
double circuit_cost(const Circuit& circuit, const Target& target);

}  // namespace qsp
