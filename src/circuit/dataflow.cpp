#include "circuit/dataflow.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <utility>

namespace qsp {
namespace {

void add_diagnostic(LintReport& report, LintRule rule, std::int64_t index,
                    std::string message) {
  LintDiagnostic d;
  d.rule = rule;
  d.severity = lint_rule_severity(rule);
  d.gate_index = index;
  d.message = std::move(message);
  report.diagnostics.push_back(std::move(d));
}

bool trivial_angle(double theta, double eps) {
  return std::abs(theta) <= eps;
}

bool all_trivial(const std::vector<double>& angles, double eps) {
  return std::all_of(angles.begin(), angles.end(),
                     [eps](double a) { return trivial_angle(a, eps); });
}

}  // namespace

// ---------------------------------------------------------------------------
// AffineForm
// ---------------------------------------------------------------------------

bool AffineForm::is_constant() const {
  for (const std::uint64_t word : mask) {
    if (word != 0) return false;
  }
  return true;
}

void AffineForm::xor_with(const AffineForm& other) {
  if (other.mask.size() > mask.size()) mask.resize(other.mask.size(), 0);
  for (std::size_t i = 0; i < other.mask.size(); ++i) mask[i] ^= other.mask[i];
  offset = offset != other.offset;
}

bool AffineForm::same_mask(const AffineForm& other) const {
  const std::size_t n = std::max(mask.size(), other.mask.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < mask.size() ? mask[i] : 0;
    const std::uint64_t b = i < other.mask.size() ? other.mask[i] : 0;
    if (a != b) return false;
  }
  return true;
}

bool operator==(const AffineForm& a, const AffineForm& b) {
  return a.offset == b.offset && a.same_mask(b);
}

std::string AffineForm::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t word = mask[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      if (!first) os << "^";
      os << "v" << (64 * w + static_cast<std::size_t>(bit));
      first = false;
    }
  }
  if (first) return offset ? "1" : "0";
  if (offset) os << "^1";
  return os.str();
}

// ---------------------------------------------------------------------------
// DataflowEngine
// ---------------------------------------------------------------------------

DataflowEngine::DataflowEngine(int num_qubits, double angle_epsilon)
    : angle_epsilon_(angle_epsilon),
      forms_(static_cast<std::size_t>(num_qubits)),
      wire_node_(static_cast<std::size_t>(num_qubits)),
      parent_(static_cast<std::size_t>(num_qubits)),
      records_(static_cast<std::size_t>(num_qubits)) {
  for (int q = 0; q < num_qubits; ++q) {
    wire_node_[static_cast<std::size_t>(q)] = q;
    parent_[static_cast<std::size_t>(q)] = q;
  }
}

AffineForm DataflowEngine::fresh_variable() {
  const int v = num_variables_++;
  AffineForm form;
  form.mask.assign(static_cast<std::size_t>(v / 64) + 1, 0);
  form.mask[static_cast<std::size_t>(v / 64)] = std::uint64_t{1}
                                                << (v % 64);
  return form;
}

int DataflowEngine::find(int node) const {
  while (parent_[static_cast<std::size_t>(node)] != node) {
    parent_[static_cast<std::size_t>(node)] =
        parent_[static_cast<std::size_t>(
            parent_[static_cast<std::size_t>(node)])];
    node = parent_[static_cast<std::size_t>(node)];
  }
  return node;
}

void DataflowEngine::merge(int a, int b) {
  const int ra = find(wire_node_[static_cast<std::size_t>(a)]);
  const int rb = find(wire_node_[static_cast<std::size_t>(b)]);
  if (ra != rb) parent_[static_cast<std::size_t>(ra)] = rb;
}

void DataflowEngine::invalidate_records(const Gate& gate) {
  for (const int q : gate.qubits()) {
    records_[static_cast<std::size_t>(q)].alive = false;
  }
}

std::optional<bool> DataflowEngine::wire_constant(int q) const {
  const AffineForm& form = forms_[static_cast<std::size_t>(q)];
  if (!form.is_constant()) return std::nullopt;
  return form.constant_value();
}

/// Verdict for the Ry-family controlled rotations (CRy/MCRy): dead when
/// any control literal is provably unsatisfied, demoted when one or more
/// literals are provably satisfied (the survivors keep the rotation
/// conditional).
GateVerdict DataflowEngine::controlled_rotation_verdict(
    const Gate& gate) const {
  GateVerdict verdict;
  std::vector<ControlLiteral> remaining;
  std::ostringstream reason;
  for (const ControlLiteral& c : gate.controls()) {
    const std::optional<bool> value = wire_constant(c.qubit);
    if (!value.has_value()) {
      remaining.push_back(c);
      continue;
    }
    if (*value != c.positive) {
      reason.str("");
      reason << "control wire " << c.qubit << " provably |" << (*value ? 1 : 0)
             << ">; the gate is the identity on every reachable state";
      verdict.action = GateVerdict::Action::kDrop;
      verdict.reason = reason.str();
      return verdict;
    }
    if (reason.tellp() > 0) reason << ", ";
    reason << "control wire " << c.qubit << " provably |" << (*value ? 1 : 0)
           << ">";
  }
  if (remaining.size() < gate.controls().size()) {
    verdict.action = GateVerdict::Action::kReplace;
    verdict.replacement =
        Gate::mcry(std::move(remaining), gate.target(), gate.theta());
    reason << "; demote to '" << verdict.replacement->to_string() << "'";
    verdict.reason = reason.str();
  }
  return verdict;
}

GateVerdict DataflowEngine::apply(const Gate& gate, std::int64_t index) {
  GateVerdict verdict;
  const int t = gate.target();
  switch (gate.kind()) {
    case GateKind::kX: {
      forms_[static_cast<std::size_t>(t)].flip();
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kCNOT: {
      const ControlLiteral& c = gate.controls()[0];
      // The CNOT's effect on the target is the XOR of this flip
      // expression: the control's form, complemented for a negative
      // literal (the gate fires when the wire reads 0).
      AffineForm flip = forms_[static_cast<std::size_t>(c.qubit)];
      if (!c.positive) flip.flip();
      std::ostringstream reason;
      if (flip.is_constant()) {
        forms_[static_cast<std::size_t>(t)].xor_with(flip);
        if (!flip.constant_value()) {
          reason << "control wire " << c.qubit << " provably |"
                 << (c.positive ? 0 : 1)
                 << ">; the gate is the identity on every reachable state";
          verdict.action = GateVerdict::Action::kDrop;
        } else {
          reason << "control wire " << c.qubit << " provably |"
                 << (c.positive ? 1 : 0) << ">; demote to 'x q" << t << "'";
          verdict.action = GateVerdict::Action::kReplace;
          verdict.replacement = Gate::x(t);
        }
        verdict.reason = reason.str();
        invalidate_records(gate);
        return verdict;
      }
      CnotRecord& record = records_[static_cast<std::size_t>(t)];
      forms_[static_cast<std::size_t>(t)].xor_with(flip);
      merge(c.qubit, t);
      if (record.alive && record.flip == flip) {
        reason << "provably cancels gate " << record.gate_index
               << " (same parity effect on wire " << t
               << ", target untouched in between)";
        verdict.action = GateVerdict::Action::kCancelPair;
        verdict.cancel_with = record.gate_index;
        verdict.reason = reason.str();
        invalidate_records(gate);
        return verdict;
      }
      invalidate_records(gate);
      record.gate_index = index;
      record.flip = std::move(flip);
      record.alive = true;
      return verdict;
    }
    case GateKind::kRy: {
      if (!trivial_angle(gate.theta(), angle_epsilon_)) {
        forms_[static_cast<std::size_t>(t)] = fresh_variable();
      }
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kCRy:
    case GateKind::kMCRy: {
      if (!trivial_angle(gate.theta(), angle_epsilon_)) {
        verdict = controlled_rotation_verdict(gate);
      }
      if (verdict.action != GateVerdict::Action::kDrop &&
          !trivial_angle(gate.theta(), angle_epsilon_)) {
        forms_[static_cast<std::size_t>(t)] = fresh_variable();
        for (const ControlLiteral& c : gate.controls()) {
          if (!wire_constant(c.qubit).has_value()) merge(c.qubit, t);
        }
      }
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kUCRy:
    case GateKind::kUCRz: {
      const bool y_axis = gate.kind() == GateKind::kUCRy;
      if (all_trivial(gate.angles(), angle_epsilon_)) {
        invalidate_records(gate);
        return verdict;  // identity: leave it to dead-rotation
      }
      // Constant controls select half the angle table each; fully
      // constant controls select the one effective rotation.
      std::vector<int> remaining;
      std::vector<std::size_t> fixed_bit;
      std::size_t fixed_pattern = 0;
      std::ostringstream reason;
      for (std::size_t i = 0; i < gate.controls().size(); ++i) {
        const ControlLiteral& c = gate.controls()[i];
        const std::optional<bool> value = wire_constant(c.qubit);
        if (!value.has_value()) {
          remaining.push_back(c.qubit);
          continue;
        }
        if (*value) fixed_pattern |= std::size_t{1} << fixed_bit.size();
        fixed_bit.push_back(i);
        if (reason.tellp() > 0) reason << ", ";
        reason << "control wire " << c.qubit << " provably |"
               << (*value ? 1 : 0) << ">";
      }
      if (fixed_bit.size() < gate.controls().size() || fixed_bit.empty()) {
        if (!fixed_bit.empty()) {
          // Partially constant: restrict the table to the reachable rows.
          std::vector<double> angles(std::size_t{1} << remaining.size());
          for (std::size_t s = 0; s < angles.size(); ++s) {
            std::size_t full = 0;
            std::size_t free_bit = 0;
            std::size_t fixed_i = 0;
            for (std::size_t i = 0; i < gate.controls().size(); ++i) {
              bool bit;
              if (fixed_i < fixed_bit.size() && fixed_bit[fixed_i] == i) {
                bit = ((fixed_pattern >> fixed_i) & 1) != 0;
                ++fixed_i;
              } else {
                bit = ((s >> free_bit) & 1) != 0;
                ++free_bit;
              }
              if (bit) full |= std::size_t{1} << i;
            }
            angles[s] = gate.angles()[full];
          }
          verdict.replacement =
              y_axis ? Gate::ucry(remaining, t, std::move(angles))
                     : Gate::ucrz(remaining, t, std::move(angles));
          verdict.action = GateVerdict::Action::kReplace;
          reason << "; restrict the multiplexor to the reachable rows: '"
                 << verdict.replacement->to_string() << "'";
          verdict.reason = reason.str();
        }
        if (y_axis) {
          forms_[static_cast<std::size_t>(t)] = fresh_variable();
        }
        // Non-constant participants may become entangled with each other
        // (for UCRz the phases alone can entangle the control register).
        int prev = y_axis || !wire_constant(t).has_value() ? t : -1;
        for (const int q : remaining) {
          if (prev >= 0) merge(prev, q);
          prev = q;
        }
        invalidate_records(gate);
        return verdict;
      }
      // Every control constant: one row of the table survives.
      const double theta = gate.angles()[fixed_pattern];
      if (trivial_angle(theta, angle_epsilon_)) {
        reason << "; the selected multiplexor angle is zero — the gate is "
                  "the identity on every reachable state";
        verdict.action = GateVerdict::Action::kDrop;
        verdict.reason = reason.str();
        invalidate_records(gate);
        return verdict;
      }
      verdict.action = GateVerdict::Action::kReplace;
      verdict.replacement = y_axis ? Gate::ry(t, theta) : Gate::rz(t, theta);
      reason << "; demote to '" << verdict.replacement->to_string() << "'";
      verdict.reason = reason.str();
      if (y_axis) forms_[static_cast<std::size_t>(t)] = fresh_variable();
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kRz: {
      // Diagonal: no basis support moves, no entanglement with anything.
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kCZ: {
      const int a = gate.controls()[0].qubit;
      const AffineForm& fa = forms_[static_cast<std::size_t>(a)];
      const AffineForm& fb = forms_[static_cast<std::size_t>(t)];
      std::ostringstream reason;
      if (fa.is_constant() && !fa.constant_value()) {
        reason << "wire " << a << " provably |0>; cz is the identity on "
                                  "every reachable state";
      } else if (fb.is_constant() && !fb.constant_value()) {
        reason << "wire " << t << " provably |0>; cz is the identity on "
                                  "every reachable state";
      } else if (fa.is_constant() && fb.is_constant()) {
        reason << "wires " << a << " and " << t
               << " provably |1>; cz is a global phase";
      } else if (fa.same_mask(fb) && fa.offset != fb.offset) {
        reason << "wires " << a << " and " << t
               << " provably carry opposite values; cz is the identity on "
                  "every reachable state";
      } else {
        if (!fa.is_constant() && !fb.is_constant()) merge(a, t);
        invalidate_records(gate);
        return verdict;
      }
      verdict.action = GateVerdict::Action::kDrop;
      verdict.reason = reason.str();
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kRZZ: {
      const int a = gate.controls()[0].qubit;
      if (!trivial_angle(gate.theta(), angle_epsilon_) &&
          !forms_[static_cast<std::size_t>(a)].is_constant() &&
          !forms_[static_cast<std::size_t>(t)].is_constant()) {
        merge(a, t);
      }
      invalidate_records(gate);
      return verdict;
    }
    case GateKind::kISwap: {
      const int a = gate.controls()[0].qubit;
      AffineForm& fa = forms_[static_cast<std::size_t>(a)];
      AffineForm& fb = forms_[static_cast<std::size_t>(t)];
      if (fa == fb) {
        // |01> and |10> are unreachable and iSwap fixes |00> and |11>.
        std::ostringstream reason;
        reason << "wires " << a << " and " << t
               << " provably carry equal values; iswap is the identity on "
                  "every reachable state";
        verdict.action = GateVerdict::Action::kDrop;
        verdict.reason = reason.str();
        invalidate_records(gate);
        return verdict;
      }
      const bool both_unknown = !fa.is_constant() && !fb.is_constant();
      std::swap(fa, fb);
      // The wires trade states, so they trade entanglement status too;
      // when both are in superposition the iSwap phases may additionally
      // entangle them.
      std::swap(wire_node_[static_cast<std::size_t>(a)],
                wire_node_[static_cast<std::size_t>(t)]);
      if (both_unknown) merge(a, t);
      invalidate_records(gate);
      return verdict;
    }
  }
  invalidate_records(gate);
  return verdict;
}

WireFacts DataflowEngine::facts() const {
  WireFacts facts;
  facts.num_qubits = num_qubits();
  facts.num_variables = num_variables_;
  const int n = num_qubits();
  // Group representative: the smallest wire id sharing the root (stable
  // across union orders), plus member counts.
  std::vector<int> group_of(static_cast<std::size_t>(n));
  std::vector<int> group_size(static_cast<std::size_t>(n), 0);
  std::vector<int> representative(static_cast<std::size_t>(n), -1);
  for (int q = 0; q < n; ++q) {
    const int root = find(wire_node_[static_cast<std::size_t>(q)]);
    if (representative[static_cast<std::size_t>(root)] < 0) {
      representative[static_cast<std::size_t>(root)] = q;
    }
    group_of[static_cast<std::size_t>(q)] =
        representative[static_cast<std::size_t>(root)];
  }
  for (int q = 0; q < n; ++q) {
    ++group_size[static_cast<std::size_t>(group_of[static_cast<std::size_t>(q)])];
  }
  facts.wires.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    WireFact fact;
    fact.wire = q;
    fact.form = forms_[static_cast<std::size_t>(q)];
    fact.group = group_of[static_cast<std::size_t>(q)];
    fact.group_size =
        group_size[static_cast<std::size_t>(fact.group)];
    if (fact.form.is_constant()) {
      fact.kind = fact.form.constant_value() ? WireKind::kOne : WireKind::kZero;
    } else {
      for (int p = 0; p < n; ++p) {
        if (p == q) continue;
        const AffineForm& other = forms_[static_cast<std::size_t>(p)];
        if (!other.is_constant() && other.same_mask(fact.form)) {
          fact.parity_partner = p;
          fact.parity_equal = other.offset == fact.form.offset;
          break;
        }
      }
      if (fact.parity_partner >= 0) {
        fact.kind = WireKind::kBasis;
      } else {
        fact.kind = fact.group_size == 1 ? WireKind::kSeparable
                                         : WireKind::kEntangled;
      }
    }
    facts.wires.push_back(std::move(fact));
  }
  return facts;
}

// ---------------------------------------------------------------------------
// WireFact / WireFacts
// ---------------------------------------------------------------------------

std::string_view wire_kind_name(WireKind kind) {
  switch (kind) {
    case WireKind::kZero:
      return "zero";
    case WireKind::kOne:
      return "one";
    case WireKind::kBasis:
      return "basis-parity";
    case WireKind::kSeparable:
      return "separable";
    case WireKind::kEntangled:
      return "entangled";
  }
  return "?";
}

std::string WireFact::to_string() const {
  std::ostringstream os;
  os << "q" << wire << ": " << wire_kind_name(kind)
     << " form=" << form.to_string() << " group=g" << group << "("
     << group_size << ")";
  if (parity_partner >= 0) {
    os << " partner=q" << parity_partner << (parity_equal ? " (equal)"
                                                          : " (anti)");
  }
  return os.str();
}

std::string WireFacts::to_string() const {
  std::string out;
  for (const WireFact& fact : wires) {
    out += fact.to_string();
    out += '\n';
  }
  return out;
}

std::string WireFacts::to_json() const {
  std::ostringstream os;
  os << "{\"num_qubits\":" << num_qubits
     << ",\"num_variables\":" << num_variables << ",\"wires\":[";
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const WireFact& fact = wires[i];
    if (i > 0) os << ",";
    os << "{\"wire\":" << fact.wire << ",\"kind\":\""
       << wire_kind_name(fact.kind) << "\",\"form\":\""
       << fact.form.to_string() << "\",\"group\":" << fact.group
       << ",\"group_size\":" << fact.group_size
       << ",\"parity_partner\":" << fact.parity_partner
       << ",\"parity_equal\":" << (fact.parity_equal ? "true" : "false")
       << "}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Whole-circuit drivers
// ---------------------------------------------------------------------------

WireFacts analyze_circuit(const Circuit& circuit,
                          const DataflowOptions& options) {
  DataflowEngine engine(circuit.num_qubits(), options.angle_epsilon);
  const std::vector<Gate>& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    engine.apply(gates[i], static_cast<std::int64_t>(i));
  }
  return engine.facts();
}

LintReport dataflow_lint(const Circuit& circuit,
                         const DataflowOptions& options) {
  LintReport report;
  DataflowEngine engine(circuit.num_qubits(), options.angle_epsilon);
  const std::vector<Gate>& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const GateVerdict verdict =
        engine.apply(gates[i], static_cast<std::int64_t>(i));
    const auto index = static_cast<std::int64_t>(i);
    switch (verdict.action) {
      case GateVerdict::Action::kKeep:
        break;
      case GateVerdict::Action::kDrop:
        add_diagnostic(report, LintRule::kDeadControl, index, verdict.reason);
        break;
      case GateVerdict::Action::kReplace:
        add_diagnostic(report, LintRule::kConstantOneControl, index,
                       verdict.reason);
        break;
      case GateVerdict::Action::kCancelPair:
        add_diagnostic(report, LintRule::kRedundantCnot, index,
                       verdict.reason);
        break;
    }
  }
  if (options.num_data_wires >= 0) {
    for (int q = options.num_data_wires; q < circuit.num_qubits(); ++q) {
      const std::optional<bool> value = engine.wire_constant(q);
      if (value.has_value() && !*value) continue;
      std::ostringstream os;
      os << "workspace wire " << q;
      if (value.has_value()) {
        os << " provably |1> at circuit end";
      } else {
        os << " not provably restored to |0> at circuit end (form "
           << engine.facts().wires[static_cast<std::size_t>(q)]
                  .form.to_string()
           << ")";
      }
      add_diagnostic(report, LintRule::kAncillaReleasedDirty, -1, os.str());
    }
  }
  return report;
}

}  // namespace qsp
