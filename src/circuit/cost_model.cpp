#include "circuit/cost_model.hpp"

#include "util/assert.hpp"

namespace qsp {

std::int64_t rotation_cost(int num_controls) {
  QSP_ASSERT(num_controls >= 0 && num_controls < 63);
  if (num_controls == 0) return 0;
  if (num_controls == 1) return 2;
  return std::int64_t{1} << num_controls;
}

std::int64_t gate_cnot_cost(const Gate& gate) {
  switch (gate.kind()) {
    case GateKind::kX:
    case GateKind::kRy:
      return 0;
    case GateKind::kCNOT:
      return 1;
    case GateKind::kCRy:
      return 2;
    case GateKind::kRz:
      return 0;
    case GateKind::kMCRy:
    case GateKind::kUCRy:
    case GateKind::kUCRz:
      return rotation_cost(gate.num_controls());
  }
  QSP_ASSERT_MSG(false, "unreachable gate kind");
  return 0;
}

}  // namespace qsp
