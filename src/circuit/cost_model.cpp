#include "circuit/cost_model.hpp"

#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace qsp {

std::int64_t rotation_cost(int num_controls) {
  QSP_ASSERT(num_controls >= 0 && num_controls < 63);
  if (num_controls == 0) return 0;
  if (num_controls == 1) return 2;
  return std::int64_t{1} << num_controls;
}

std::int64_t gate_cnot_cost(const Gate& gate) {
  switch (gate.kind()) {
    case GateKind::kX:
    case GateKind::kRy:
      return 0;
    case GateKind::kCNOT:
      return 1;
    case GateKind::kCRy:
      return 2;
    case GateKind::kRz:
      return 0;
    case GateKind::kMCRy:
    case GateKind::kUCRy:
    case GateKind::kUCRz:
      return rotation_cost(gate.num_controls());
    case GateKind::kCZ:
    case GateKind::kISwap:
    case GateKind::kRZZ:
      // One two-qubit gate each; backend-specific weighting (e.g. the
      // 2-iSwap CNOT emulation) lives in Target::gate_cost.
      return 1;
  }
  QSP_ASSERT_MSG(false, "unreachable gate kind");
  return 0;
}

std::int64_t two_qubit_gate_count(const Circuit& circuit,
                                  const Target& target) {
  std::int64_t count = 0;
  for (const Gate& g : circuit.gates()) {
    if (!target.is_native(g)) {
      throw std::invalid_argument(
          "two_qubit_gate_count: gate not native for target '" +
          std::string(target.name()) + "': " + g.to_string());
    }
    if (g.kind() == target.two_qubit_kind()) ++count;
  }
  return count;
}

double circuit_cost(const Circuit& circuit, const Target& target) {
  double total = 0.0;
  for (const Gate& g : circuit.gates()) total += target.gate_cost(g);
  return total;
}

}  // namespace qsp
