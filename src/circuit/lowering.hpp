#pragma once
// Lowering to the primitive set {X, Ry, CNOT} ("mapping the circuit to
// {U(2), CNOT}" in the paper's terminology, Section VI-A). The CNOT count
// of the lowered circuit is what all benchmark tables report.

#include "circuit/circuit.hpp"

namespace qsp {

struct LoweringOptions {
  /// Skip zero rotations in multiplexors and fuse the freed CNOT pairs.
  /// With elision a UCRy over c controls may cost fewer than 2^c CNOTs;
  /// without it the count is exactly 2^c, matching the Table-I model.
  bool elide_zero_rotations = false;
  /// Angles with |theta| below this are treated as zero during elision.
  double angle_epsilon = 1e-12;
};

/// Rewrite `circuit` using only {X, Ry, CNOT} gates (positive controls).
Circuit lower(const Circuit& circuit, const LoweringOptions& options = {});

/// Number of CNOT gates in an already-lowered circuit.
std::int64_t lowered_cnot_count(const Circuit& lowered);

/// Convenience: lower then count CNOTs.
std::int64_t count_cnots_after_lowering(const Circuit& circuit,
                                        const LoweringOptions& options = {});

/// The multiplexor rotation angles phi such that the gray-code circuit with
/// rotations phi[j] realizes pattern angles a[s]; exposed for testing.
/// phi[j] = 2^-c * sum_s (-1)^{popcount(s & gray(j)) mod 2} a[s].
std::vector<double> ucry_multiplexor_angles(const std::vector<double>& a);

/// Embed an MCRy into the equivalent UCRy (one-hot pattern angle table);
/// UCRy gates pass through unchanged.
Gate mcry_to_ucry(const Gate& gate);

/// Equivalent UCRy whose control wires are listed in `new_order` (a
/// permutation of the gate's control qubits), with the pattern-angle table
/// re-indexed to match. The gray-code lowering uses control bit b for
/// 2^(c-1-b) CNOTs, so callers can put cheap (e.g. coupling-near) wires
/// first. Accepts MCRy (embedded first) or UCRy.
Gate reorder_ucry_controls(const Gate& gate,
                           const std::vector<int>& new_order);

}  // namespace qsp
