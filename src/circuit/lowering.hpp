#pragma once
// Staged lowering to a backend's native gate set. What used to be one
// monolithic lower() call is three registered passes (pass.hpp) that plug
// into the pass pipeline and legitimately drop kPreservesGateSet:
//
//   mcry-expand      MCRy -> UCRy (one-hot pattern-angle embedding)
//   ucr-gray-lower   UCRy/UCRz/CRy and negative-control CNOT ->
//                    {X, Ry, Rz, CNOT} via the gray-code multiplexor
//   native-legalize  CNOT -> the Target's native two-qubit gate
//                    (CZ / iSWAP / RZZ; no-op on the CNOT target)
//
// lower() runs the stages against the identity (CNOT) target and is
// gate-for-gate identical to the historical monolithic implementation
// ("mapping the circuit to {U(2), CNOT}" in the paper's terminology,
// Section VI-A); the CNOT count of that stream is what all benchmark
// tables report. lower_onto() legalizes for any built-in Target, and the
// pipeline (pass_pipeline.hpp, PipelineOptions::lower_to_target) composes
// the stages with the -O optimization levels in one fixpoint loop.

#include "circuit/circuit.hpp"
#include "circuit/pass.hpp"
#include "circuit/target.hpp"

namespace qsp {

struct LoweringOptions {
  /// Skip zero rotations in multiplexors and fuse the freed CNOT pairs.
  /// With elision a UCRy over c controls may cost fewer than 2^c CNOTs;
  /// without it the count is exactly 2^c, matching the Table-I model.
  bool elide_zero_rotations = false;
  /// Angles with |theta| below this are treated as zero during elision.
  double angle_epsilon = 1e-12;
};

/// The three lowering stages in order, as registered Pass objects (they
/// also appear in PassPipeline::registry()). Each preserves preparation
/// and coupling but not the gate set; ucr-gray-lower and native-legalize
/// read PassOptions::elide_zero_rotations / PassOptions::target.
const std::vector<const Pass*>& lowering_pass_sequence();

/// Rewrite `circuit` using only {X, Ry, CNOT} gates (positive controls;
/// plus Rz from the phase extension). Identity-target shim over the
/// staged passes.
Circuit lower(const Circuit& circuit, const LoweringOptions& options = {});

/// Rewrite `circuit` using only the target's native set: {X, Ry, Rz} plus
/// its native two-qubit gate. Runs the three lowering stages in order;
/// Target::is_native_circuit holds on the result.
Circuit lower_onto(const Circuit& circuit, const Target& target,
                   const LoweringOptions& options = {});

/// Number of CNOT gates in an already-lowered circuit. CNOT-target shim
/// over two_qubit_gate_count (cost_model.hpp), kept so benches stay
/// diffable; throws on anything outside {X, Ry, Rz, CNOT}.
std::int64_t lowered_cnot_count(const Circuit& lowered);

/// Convenience: lower then count CNOTs.
std::int64_t count_cnots_after_lowering(const Circuit& circuit,
                                        const LoweringOptions& options = {});

/// Convenience: lower_onto then count native two-qubit gates.
std::int64_t count_two_qubit_after_lowering(
    const Circuit& circuit, const Target& target,
    const LoweringOptions& options = {});

/// The multiplexor rotation angles phi such that the gray-code circuit with
/// rotations phi[j] realizes pattern angles a[s]; exposed for testing.
/// phi[j] = 2^-c * sum_s (-1)^{popcount(s & gray(j)) mod 2} a[s].
std::vector<double> ucry_multiplexor_angles(const std::vector<double>& a);

/// Embed an MCRy into the equivalent UCRy (one-hot pattern angle table);
/// UCRy gates pass through unchanged.
Gate mcry_to_ucry(const Gate& gate);

/// Equivalent UCRy whose control wires are listed in `new_order` (a
/// permutation of the gate's control qubits), with the pattern-angle table
/// re-indexed to match. The gray-code lowering uses control bit b for
/// 2^(c-1-b) CNOTs, so callers can put cheap (e.g. coupling-near) wires
/// first. Accepts MCRy (embedded first) or UCRy.
Gate reorder_ucry_controls(const Gate& gate,
                           const std::vector<int>& new_order);

}  // namespace qsp
