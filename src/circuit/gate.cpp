#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qsp {
namespace {

void check_target(int target) {
  if (target < 0) throw std::invalid_argument("Gate: negative target");
}

void check_controls(const std::vector<ControlLiteral>& controls, int target) {
  for (std::size_t i = 0; i < controls.size(); ++i) {
    if (controls[i].qubit < 0) {
      throw std::invalid_argument("Gate: negative control qubit");
    }
    if (controls[i].qubit == target) {
      throw std::invalid_argument("Gate: control equals target");
    }
    for (std::size_t j = i + 1; j < controls.size(); ++j) {
      if (controls[i].qubit == controls[j].qubit) {
        throw std::invalid_argument("Gate: duplicate control qubit");
      }
    }
  }
}

}  // namespace

Gate Gate::x(int target) {
  check_target(target);
  Gate g;
  g.kind_ = GateKind::kX;
  g.target_ = target;
  return g;
}

Gate Gate::ry(int target, double theta) {
  check_target(target);
  Gate g;
  g.kind_ = GateKind::kRy;
  g.target_ = target;
  g.theta_ = theta;
  return g;
}

Gate Gate::cnot(int control, int target, bool positive) {
  check_target(target);
  Gate g;
  g.kind_ = GateKind::kCNOT;
  g.target_ = target;
  g.controls_ = {ControlLiteral{control, positive}};
  check_controls(g.controls_, target);
  return g;
}

Gate Gate::cry(int control, int target, double theta, bool positive) {
  check_target(target);
  Gate g;
  g.kind_ = GateKind::kCRy;
  g.target_ = target;
  g.theta_ = theta;
  g.controls_ = {ControlLiteral{control, positive}};
  check_controls(g.controls_, target);
  return g;
}

Gate Gate::mcry(std::vector<ControlLiteral> controls, int target,
                double theta) {
  check_target(target);
  check_controls(controls, target);
  if (controls.empty()) return ry(target, theta);
  if (controls.size() == 1) {
    return cry(controls[0].qubit, target, theta, controls[0].positive);
  }
  Gate g;
  g.kind_ = GateKind::kMCRy;
  g.target_ = target;
  g.theta_ = theta;
  g.controls_ = std::move(controls);
  std::sort(g.controls_.begin(), g.controls_.end(),
            [](const ControlLiteral& a, const ControlLiteral& b) {
              return a.qubit < b.qubit;
            });
  return g;
}

Gate Gate::ucry(std::vector<int> controls, int target,
                std::vector<double> angles) {
  check_target(target);
  if (angles.size() != (std::size_t{1} << controls.size())) {
    throw std::invalid_argument("ucry: angles size must be 2^controls");
  }
  std::vector<ControlLiteral> literals;
  literals.reserve(controls.size());
  for (const int c : controls) literals.push_back(ControlLiteral{c, true});
  check_controls(literals, target);
  Gate g;
  g.kind_ = GateKind::kUCRy;
  g.target_ = target;
  g.controls_ = std::move(literals);
  g.angles_ = std::move(angles);
  return g;
}

Gate Gate::rz(int target, double theta) {
  check_target(target);
  Gate g;
  g.kind_ = GateKind::kRz;
  g.target_ = target;
  g.theta_ = theta;
  return g;
}

Gate Gate::ucrz(std::vector<int> controls, int target,
                std::vector<double> angles) {
  Gate g = ucry(std::move(controls), target, std::move(angles));
  g.kind_ = GateKind::kUCRz;
  return g;
}

// Symmetric two-qubit natives: canonical wire order (the lower wire is
// stored as the positive control literal) so cz(a, b) == cz(b, a); the
// cnot factory validates the pair.
Gate Gate::cz(int a, int b) {
  Gate g = cnot(std::min(a, b), std::max(a, b));
  g.kind_ = GateKind::kCZ;
  return g;
}

Gate Gate::iswap(int a, int b) {
  Gate g = cnot(std::min(a, b), std::max(a, b));
  g.kind_ = GateKind::kISwap;
  return g;
}

Gate Gate::rzz(int a, int b, double theta) {
  Gate g = cnot(std::min(a, b), std::max(a, b));
  g.kind_ = GateKind::kRZZ;
  g.theta_ = theta;
  return g;
}

int Gate::num_controls() const { return static_cast<int>(controls_.size()); }

Gate Gate::adjoint() const {
  if (kind_ == GateKind::kISwap) {
    // iSwap's inverse (iSwap^3, or iSwap with -i phases) is not in the
    // gate set; negating nothing would silently return the wrong gate.
    throw std::logic_error("Gate::adjoint: iSwap has no in-set inverse");
  }
  Gate g = *this;
  g.theta_ = -theta_;
  for (double& a : g.angles_) a = -a;
  return g;
}

Gate Gate::remapped(const std::vector<int>& qubit_map) const {
  auto map = [&qubit_map](int q) {
    if (q < 0 || q >= static_cast<int>(qubit_map.size())) {
      throw std::invalid_argument("Gate::remapped: qubit outside map");
    }
    return qubit_map[static_cast<std::size_t>(q)];
  };
  Gate g = *this;
  g.target_ = map(target_);
  for (ControlLiteral& c : g.controls_) c.qubit = map(c.qubit);
  check_controls(g.controls_, g.target_);
  return g;
}

std::vector<int> Gate::qubits() const {
  std::vector<int> qs;
  qs.reserve(controls_.size() + 1);
  for (const auto& c : controls_) qs.push_back(c.qubit);
  qs.push_back(target_);
  return qs;
}

int Gate::max_qubit() const {
  int m = target_;
  for (const auto& c : controls_) m = std::max(m, c.qubit);
  return m;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  auto controls_str = [&]() {
    std::string s;
    for (const auto& c : controls_) {
      if (!s.empty()) s += ',';
      if (!c.positive) s += '!';
      s += std::to_string(c.qubit);
    }
    return s;
  };
  switch (kind_) {
    case GateKind::kX:
      os << "X(q" << target_ << ')';
      break;
    case GateKind::kRy:
      os << "Ry(q" << target_ << ", " << theta_ << ')';
      break;
    case GateKind::kCNOT:
      os << "CNOT(" << controls_str() << " -> q" << target_ << ')';
      break;
    case GateKind::kCRy:
      os << "CRy(" << controls_str() << " -> q" << target_ << ", " << theta_
         << ')';
      break;
    case GateKind::kMCRy:
      os << "MCRy(" << controls_str() << " -> q" << target_ << ", " << theta_
         << ')';
      break;
    case GateKind::kUCRy:
      os << "UCRy(" << controls_str() << " -> q" << target_ << ", "
         << angles_.size() << " angles)";
      break;
    case GateKind::kRz:
      os << "Rz(q" << target_ << ", " << theta_ << ')';
      break;
    case GateKind::kUCRz:
      os << "UCRz(" << controls_str() << " -> q" << target_ << ", "
         << angles_.size() << " angles)";
      break;
    case GateKind::kCZ:
      os << "CZ(q" << controls_[0].qubit << ", q" << target_ << ')';
      break;
    case GateKind::kISwap:
      os << "iSWAP(q" << controls_[0].qubit << ", q" << target_ << ')';
      break;
    case GateKind::kRZZ:
      os << "RZZ(q" << controls_[0].qubit << ", q" << target_ << ", "
         << theta_ << ')';
      break;
  }
  return os.str();
}

}  // namespace qsp
