#pragma once
// Ordered gate list over an n-qubit register. Gates are applied left to
// right: state' = U_l ... U_2 U_1 |state>.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qsp {

class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  /// Append one gate; it must fit the register.
  void append(Gate gate);

  /// Append every gate of `other` (register widths must match; a narrower
  /// circuit may be appended onto a wider register).
  void append(const Circuit& other);

  /// Reversed circuit of adjoint gates; undoes this circuit.
  Circuit adjoint() const;

  /// Total CNOT cost under the Table-I cost model (see cost_model.hpp).
  std::int64_t cnot_cost() const;

  /// Wire-parallel circuit depth: gates on disjoint wires share a layer,
  /// gates sharing any wire (target or control) stack. 0 when empty.
  std::size_t depth() const;

  /// Gate-count histogram by kind.
  std::map<GateKind, std::size_t> gate_counts() const;

  /// One gate per line.
  std::string to_string() const;

  /// ASCII circuit diagram (one wire per qubit); intended for small
  /// circuits in examples and figure reproductions.
  std::string draw() const;

  friend bool operator==(const Circuit&, const Circuit&) = default;

 private:
  int num_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace qsp
