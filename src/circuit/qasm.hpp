#pragma once
// OpenQASM 2.0 export and import. Circuits are lowered to {X, Ry, CNOT}
// (plus the phase extension's Rz) before emission so the output uses only
// `x`, `ry`, `rz` and `cx`; from_qasm() parses exactly that emitted
// subset back into a Circuit, so emit -> parse is the identity on lowered
// gate lists (property-tested over the random-circuit corpus).

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"

namespace qsp {

/// Serialize as an OpenQASM 2.0 program over register q[num_qubits].
std::string to_qasm(const Circuit& circuit,
                    const LoweringOptions& options = {});

/// Parse the OpenQASM 2.0 subset emitted by to_qasm: one `qreg q[n];`
/// declaration and `x`/`ry`/`rz`/`cx` statements over it (OPENQASM /
/// include headers and `//` comments are skipped). Angles are read with
/// full double precision, so to_qasm -> from_qasm reproduces the lowered
/// gate list exactly. Throws std::invalid_argument on anything outside
/// the subset, with the offending line in the message.
Circuit from_qasm(const std::string& qasm);

}  // namespace qsp
