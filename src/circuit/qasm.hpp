#pragma once
// OpenQASM 2.0 export and import. Circuits are lowered onto a Target's
// native set before emission, so the output uses only `x`, `ry`, `rz`
// plus the target's two-qubit mnemonic (`cx`, `cz`, `iswap` or `rzz`);
// from_qasm() parses exactly that emitted subset back into a Circuit, so
// emit -> parse is the identity on lowered gate lists (property-tested
// over the random-circuit corpus, per target).

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"
#include "circuit/target.hpp"

namespace qsp {

/// Serialize as an OpenQASM 2.0 program over register q[num_qubits],
/// lowered to {X, Ry, Rz, CNOT} (the CNOT target).
std::string to_qasm(const Circuit& circuit,
                    const LoweringOptions& options = {});

/// Serialize lowered onto `target`'s native gate set.
std::string to_qasm(const Circuit& circuit, const Target& target,
                    const LoweringOptions& options = {});

/// Parse the OpenQASM 2.0 subset emitted by to_qasm: one `qreg q[n];`
/// declaration and `x`/`ry`/`rz`/`cx`/`cz`/`iswap`/`rzz` statements over
/// it (OPENQASM / include headers and `//` comments are skipped). Angles
/// are read with full double precision, so to_qasm -> from_qasm
/// reproduces the lowered gate list exactly. Throws std::invalid_argument
/// on anything outside the subset, with the offending line in the
/// message.
Circuit from_qasm(const std::string& qasm);

}  // namespace qsp
