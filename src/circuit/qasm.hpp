#pragma once
// OpenQASM 2.0 export. Circuits are lowered to {X, Ry, CNOT} first so the
// output uses only `x`, `ry` and `cx`.

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/lowering.hpp"

namespace qsp {

/// Serialize as an OpenQASM 2.0 program over register q[num_qubits].
std::string to_qasm(const Circuit& circuit,
                    const LoweringOptions& options = {});

}  // namespace qsp
