#pragma once
// First-class backend descriptor: which two-qubit gate the device executes
// natively (CNOT, CZ, iSWAP or RZZ), what each gate costs, and optionally
// which coupling graph constrains it. The lowering pipeline's final stage
// (native-legalize, lowering.hpp) rewrites every CNOT into the target's
// native set, and the per-gate cost model here replaces the fixed
// CNOT-count stub for anything cost-aware: benches report
// two_qubit_gate_count(circuit, target) per gate set instead of aliasing
// everything into the CNOT column.

#include <memory>
#include <string_view>
#include <vector>

#include "circuit/gate.hpp"

namespace qsp {

class Circuit;
class CouplingGraph;

class Target {
 public:
  /// The built-in gate sets. CNOT is the identity target: lowering onto
  /// it reproduces the paper's {X, Ry, Rz, CNOT} stream bit-for-bit.
  static Target cnot();
  static Target cz();
  static Target iswap();
  static Target rzz();

  /// All built-in targets, CNOT first (test/bench sweeps).
  static const std::vector<Target>& builtin();

  /// Target by its name() ("cnot", "cz", "iswap", "rzz"); throws
  /// std::invalid_argument on anything else, naming the valid set.
  static Target by_name(std::string_view name);

  /// Stable lowercase identity, usable as a bench JSON field and an
  /// environment-variable value (QSP_TARGET).
  std::string_view name() const { return name_; }

  /// Gate kind of the native two-qubit gate.
  GateKind two_qubit_kind() const { return two_qubit_kind_; }

  /// True for the identity (CNOT) target, where legalization is a no-op.
  bool is_cnot() const { return two_qubit_kind_ == GateKind::kCNOT; }

  /// Native two-qubit gates emitted per logical CNOT by the legalizer:
  /// 1 for CNOT/CZ/RZZ, 2 for iSWAP (no single-iSwap CNOT exists).
  int natives_per_cnot() const { return natives_per_cnot_; }

  /// True when the gate is directly executable on this target: the
  /// single-qubit set {X, Ry, Rz} (shared by every built-in target), the
  /// native two-qubit kind (CNOT requires a positive control), and
  /// nothing composite.
  bool is_native(const Gate& gate) const;

  /// True when every gate of the circuit is_native: the contract the
  /// staged lowering establishes for this target.
  bool is_native_circuit(const Circuit& circuit) const;

  /// Model cost of one gate on this target. Native two-qubit gates cost
  /// two_qubit_cost, native single-qubit gates single_qubit_cost, and
  /// anything not yet legal (CNOT on a non-CNOT target, composite
  /// rotations) is estimated as its post-lowering native count:
  /// gate_cnot_cost(gate) * natives_per_cnot() * two_qubit_cost.
  double gate_cost(const Gate& gate) const;

  friend bool operator==(const Target& a, const Target& b) {
    return a.two_qubit_kind_ == b.two_qubit_kind_ &&
           a.two_qubit_cost == b.two_qubit_cost &&
           a.single_qubit_cost == b.single_qubit_cost &&
           a.coupling == b.coupling;
  }

  /// Cost of one native two-qubit gate (relative units; tune per device).
  double two_qubit_cost = 1.0;
  /// Cost of one native single-qubit gate. Defaults to 0 so the default
  /// model degenerates to the paper's two-qubit count.
  double single_qubit_cost = 0.0;
  /// Optional device coupling the target is constrained by; consumers
  /// that route (flow/Solver) read WorkflowOptions::coupling as before —
  /// this reference lets a Target bundle gate set and topology as one
  /// deployable descriptor.
  std::shared_ptr<const CouplingGraph> coupling;

 private:
  Target(GateKind two_qubit_kind, const char* name, int natives_per_cnot)
      : two_qubit_kind_(two_qubit_kind),
        name_(name),
        natives_per_cnot_(natives_per_cnot) {}

  GateKind two_qubit_kind_ = GateKind::kCNOT;
  const char* name_ = "cnot";
  int natives_per_cnot_ = 1;
};

}  // namespace qsp
