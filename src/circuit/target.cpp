#include "circuit/target.hpp"

#include <stdexcept>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/cost_model.hpp"

namespace qsp {

Target Target::cnot() { return Target(GateKind::kCNOT, "cnot", 1); }

Target Target::cz() { return Target(GateKind::kCZ, "cz", 1); }

Target Target::iswap() { return Target(GateKind::kISwap, "iswap", 2); }

Target Target::rzz() { return Target(GateKind::kRZZ, "rzz", 1); }

const std::vector<Target>& Target::builtin() {
  static const std::vector<Target> targets = {cnot(), cz(), iswap(), rzz()};
  return targets;
}

Target Target::by_name(std::string_view name) {
  for (const Target& t : builtin()) {
    if (t.name() == name) return t;
  }
  throw std::invalid_argument("Target::by_name: unknown target '" +
                              std::string(name) +
                              "' (valid: cnot, cz, iswap, rzz)");
}

bool Target::is_native(const Gate& gate) const {
  switch (gate.kind()) {
    case GateKind::kX:
    case GateKind::kRy:
    case GateKind::kRz:
      return true;
    case GateKind::kCNOT:
      return two_qubit_kind_ == GateKind::kCNOT &&
             gate.controls()[0].positive;
    case GateKind::kCZ:
    case GateKind::kISwap:
    case GateKind::kRZZ:
      return gate.kind() == two_qubit_kind_;
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kUCRy:
    case GateKind::kUCRz:
      return false;
  }
  return false;
}

bool Target::is_native_circuit(const Circuit& circuit) const {
  for (const Gate& g : circuit.gates()) {
    if (!is_native(g)) return false;
  }
  return true;
}

double Target::gate_cost(const Gate& gate) const {
  if (is_native(gate)) {
    switch (gate.kind()) {
      case GateKind::kX:
      case GateKind::kRy:
      case GateKind::kRz:
        return single_qubit_cost;
      default:
        return two_qubit_cost;
    }
  }
  return static_cast<double>(gate_cnot_cost(gate)) *
         static_cast<double>(natives_per_cnot_) * two_qubit_cost;
}

}  // namespace qsp
