#include "circuit/pass_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "arch/coupling.hpp"
#include "circuit/cost_model.hpp"
#include "circuit/dataflow.hpp"
#include "circuit/lint.hpp"
#include "circuit/lowering.hpp"
#include "phase/complex_statevector.hpp"
#include "sim/statevector.hpp"

namespace qsp {
namespace {

bool is_trivial_rotation(const Gate& g, double eps) {
  switch (g.kind()) {
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kRz:
    case GateKind::kRZZ:
      return std::abs(g.theta()) <= eps;
    case GateKind::kUCRy:
    case GateKind::kUCRz: {
      for (const double a : g.angles()) {
        if (std::abs(a) > eps) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool is_rotation_kind(GateKind kind) {
  switch (kind) {
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kRz:
    case GateKind::kUCRy:
    case GateKind::kUCRz:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

/// Same kind on the same wires (target, controls with polarity): the
/// precondition for cancelling or fusing a gate pair.
bool same_kind_and_wires(const Gate& a, const Gate& b) {
  return a.kind() == b.kind() && a.target() == b.target() &&
         a.controls() == b.controls();
}

/// The fused rotation p+g (same kind and wires); angles add.
Gate fuse_rotations(const Gate& p, const Gate& g) {
  switch (g.kind()) {
    case GateKind::kRz:
      return Gate::rz(g.target(), p.theta() + g.theta());
    case GateKind::kRZZ:
      return Gate::rzz(g.controls()[0].qubit, g.target(),
                       p.theta() + g.theta());
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
      return Gate::mcry(g.controls(), g.target(), p.theta() + g.theta());
    case GateKind::kUCRy:
    case GateKind::kUCRz: {
      std::vector<double> sum = g.angles();
      for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += p.angles()[j];
      std::vector<int> controls;
      controls.reserve(g.controls().size());
      for (const auto& c : g.controls()) controls.push_back(c.qubit);
      return g.kind() == GateKind::kUCRz
                 ? Gate::ucrz(std::move(controls), g.target(), std::move(sum))
                 : Gate::ucry(std::move(controls), g.target(), std::move(sum));
    }
    default:
      throw std::logic_error("fuse_rotations: not a rotation");
  }
}

/// Sparse gate list used by the in-place passes: erased slots stay so gate
/// indices remain stable within one scan.
using Slots = std::vector<std::optional<Gate>>;

Slots to_slots(const Circuit& circuit) {
  Slots slots;
  slots.reserve(circuit.size());
  for (const Gate& g : circuit.gates()) slots.emplace_back(g);
  return slots;
}

void from_slots(Circuit& circuit, const Slots& slots) {
  Circuit out(circuit.num_qubits());
  for (const auto& g : slots) {
    if (g.has_value()) out.append(*g);
  }
  circuit = std::move(out);
}

// ---------------------------------------------------------------------------
// dead-rotation: drop rotations that are the identity (all angles ~ 0).
// ---------------------------------------------------------------------------
class DeadRotationPass final : public Pass {
 public:
  std::string_view name() const override { return "dead-rotation"; }
  unsigned preserves() const override { return kPreservesAll; }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    bool changed = false;
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      if (is_trivial_rotation(g, options.angle_epsilon)) {
        changed = true;
        continue;
      }
      out.append(g);
    }
    if (changed) circuit = std::move(out);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// adjacent-fuse: cancel self-inverse pairs (X-X, identical CNOT-CNOT) and
// fuse same-kind rotation pairs that are adjacent on every touched wire
// (the conservative legacy cleanup: a pair is mergeable iff the earlier
// gate is the latest survivor on *all* of the later gate's wires, so the
// gates in between touch disjoint wires and commute trivially).
// ---------------------------------------------------------------------------
class AdjacentFusePass final : public Pass {
 public:
  std::string_view name() const override { return "adjacent-fuse"; }
  unsigned preserves() const override { return kPreservesAll; }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    Slots slots = to_slots(circuit);
    bool changed = false;
    // last_on[q]: index of the latest surviving gate touching wire q.
    std::vector<int> last_on(static_cast<std::size_t>(circuit.num_qubits()),
                             -1);
    auto erase = [&](int idx) {
      slots[static_cast<std::size_t>(idx)].reset();
      changed = true;
    };

    for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
      if (!slots[static_cast<std::size_t>(i)].has_value()) continue;
      const Gate& g = *slots[static_cast<std::size_t>(i)];

      // Candidate predecessor: the pair is wire-adjacent iff the same
      // gate is the latest survivor on every touched wire.
      int prev = -1;
      bool adjacent = true;
      for (const int q : g.qubits()) {
        const int lq = last_on[static_cast<std::size_t>(q)];
        if (prev == -1) prev = lq;
        if (lq != prev) adjacent = false;
        prev = std::max(prev, lq);
      }
      if (adjacent && prev >= 0 &&
          slots[static_cast<std::size_t>(prev)].has_value()) {
        const Gate& p = *slots[static_cast<std::size_t>(prev)];
        if (same_kind_and_wires(p, g)) {
          if (g.kind() == GateKind::kX || g.kind() == GateKind::kCNOT ||
              g.kind() == GateKind::kCZ) {
            erase(prev);
            erase(i);
            continue;
          }
          if (is_rotation_kind(g.kind())) {
            const Gate fused = fuse_rotations(p, g);
            erase(prev);
            erase(i);
            if (!is_trivial_rotation(fused, options.angle_epsilon)) {
              slots[static_cast<std::size_t>(i)] = fused;
            } else {
              continue;
            }
          }
        }
      }
      if (slots[static_cast<std::size_t>(i)].has_value()) {
        for (const int q : slots[static_cast<std::size_t>(i)]->qubits()) {
          last_on[static_cast<std::size_t>(q)] = i;
        }
      }
    }
    if (changed) from_slots(circuit, slots);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// cnot-commute-fold: cancel self-inverse pairs (X, CNOT, CZ) separated by
// gates that provably commute with them. Walking a CNOT backward past a
// commuting gate is sound exactly when gates_commute says so — the
// MCRy-control case (a CNOT targeting a wire some MCRy reads) is the
// non-commuting trap the predicate pins down.
// ---------------------------------------------------------------------------
class CnotCommuteFoldPass final : public Pass {
 public:
  std::string_view name() const override { return "cnot-commute-fold"; }
  unsigned preserves() const override { return kPreservesAll; }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    Slots slots = to_slots(circuit);
    bool changed = false;
    for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
      if (!slots[static_cast<std::size_t>(i)].has_value()) continue;
      const Gate& g = *slots[static_cast<std::size_t>(i)];
      if (g.kind() != GateKind::kX && g.kind() != GateKind::kCNOT &&
          g.kind() != GateKind::kCZ) {
        continue;
      }
      int window = 0;
      for (int j = i - 1; j >= 0; --j) {
        if (!slots[static_cast<std::size_t>(j)].has_value()) continue;
        const Gate& p = *slots[static_cast<std::size_t>(j)];
        if (p == g) {
          // g commutes with everything in (j, i): slide it next to p and
          // cancel the self-inverse pair.
          slots[static_cast<std::size_t>(j)].reset();
          slots[static_cast<std::size_t>(i)].reset();
          changed = true;
          break;
        }
        if (!gates_commute(g, p)) break;
        if (++window >= options.commute_window) break;
      }
    }
    if (changed) from_slots(circuit, slots);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// rotation-commute-merge: fuse same-kind, same-wire rotation pairs
// separated by commuting gates (angles add; a fused identity drops). This
// merges rotations across control structure the adjacency-based pass
// cannot see — e.g. Rz(q) across a CNOT controlled on q, or a CRy across
// a CNOT that only reads the shared control wire.
// ---------------------------------------------------------------------------
class RotationCommuteMergePass final : public Pass {
 public:
  std::string_view name() const override { return "rotation-commute-merge"; }
  unsigned preserves() const override { return kPreservesAll; }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    Slots slots = to_slots(circuit);
    bool changed = false;
    for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
      if (!slots[static_cast<std::size_t>(i)].has_value()) continue;
      const Gate& g = *slots[static_cast<std::size_t>(i)];
      if (!is_rotation_kind(g.kind())) continue;
      int window = 0;
      for (int j = i - 1; j >= 0; --j) {
        if (!slots[static_cast<std::size_t>(j)].has_value()) continue;
        const Gate& p = *slots[static_cast<std::size_t>(j)];
        if (same_kind_and_wires(p, g)) {
          // g commutes with everything in (j, i): slide it back onto p
          // and fuse in place.
          const Gate fused = fuse_rotations(p, g);
          slots[static_cast<std::size_t>(i)].reset();
          if (is_trivial_rotation(fused, options.angle_epsilon)) {
            slots[static_cast<std::size_t>(j)].reset();
          } else {
            slots[static_cast<std::size_t>(j)] = fused;
          }
          changed = true;
          break;
        }
        if (!gates_commute(g, p)) break;
        if (++window >= options.commute_window) break;
      }
    }
    if (changed) from_slots(circuit, slots);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// dataflow-simplify: apply exactly the rewrites the dataflow engine's
// verdicts justify — drop gates provably the identity on every reachable
// state (dead controls, provably-cancelled CZ/iSwap), demote gates whose
// controls are provably satisfied (CNOT -> X, MCRy -> fewer controls,
// multiplexor table halving), and cancel parity-redundant CNOT pairs.
// Demotions introduce new gate kinds, so kPreservesGateSet cannot be
// claimed; no rewrite adds a two-qubit gate, so coupling is preserved.
// ---------------------------------------------------------------------------
class DataflowSimplifyPass final : public Pass {
 public:
  std::string_view name() const override { return "dataflow-simplify"; }
  unsigned preserves() const override {
    return kPreservesPreparation | kPreservesCoupling;
  }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    Slots slots = to_slots(circuit);
    bool changed = false;
    DataflowEngine engine(circuit.num_qubits(), options.angle_epsilon);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const GateVerdict verdict =
          engine.apply(*slots[i], static_cast<std::int64_t>(i));
      switch (verdict.action) {
        case GateVerdict::Action::kKeep:
          break;
        case GateVerdict::Action::kDrop:
          slots[i].reset();
          changed = true;
          break;
        case GateVerdict::Action::kReplace:
          slots[i] = *verdict.replacement;
          changed = true;
          break;
        case GateVerdict::Action::kCancelPair:
          slots[i].reset();
          slots[static_cast<std::size_t>(verdict.cancel_with)].reset();
          changed = true;
          break;
      }
    }
    if (changed) from_slots(circuit, slots);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// Verification hook: preparation-equivalence check after a pass.
// ---------------------------------------------------------------------------

bool has_phase_gates(const Circuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (g.kind() == GateKind::kRz || g.kind() == GateKind::kUCRz ||
        g.kind() == GateKind::kISwap || g.kind() == GateKind::kRZZ) {
      return true;
    }
  }
  return false;
}

/// |<before|after>| of the two prepared states from |0...0>, conjugate
/// inner product (phased states score correctly on the complex path).
double preparation_overlap(const Circuit& before, const Circuit& after) {
  const int n = before.num_qubits();
  if (has_phase_gates(before) || has_phase_gates(after)) {
    ComplexStatevector a(n);
    ComplexStatevector b(n);
    a.apply(before);
    b.apply(after);
    std::complex<double> ip = 0.0;
    for (std::size_t i = 0; i < a.amplitudes().size(); ++i) {
      ip += std::conj(a.amplitudes()[i]) * b.amplitudes()[i];
    }
    return std::abs(ip);
  }
  Statevector a(n);
  Statevector b(n);
  a.apply(before);
  b.apply(after);
  return std::abs(a.inner_product(b));
}

std::set<GateKind> gate_kinds(const Circuit& circuit) {
  std::set<GateKind> kinds;
  for (const Gate& g : circuit.gates()) kinds.insert(g.kind());
  return kinds;
}

[[noreturn]] void contract_violation(const Pass& pass, const std::string& what) {
  std::ostringstream os;
  os << "PassPipeline: pass '" << pass.name() << "' violated its contract: "
     << what;
  throw std::logic_error(os.str());
}

/// Debug re-verification of one pass application against the declared
/// preserves() contract: preparation equivalence (simulated), monotone
/// cost, and gate-set membership.
void verify_pass_application(const Pass& pass, const Circuit& before,
                             const Circuit& after,
                             const PipelineOptions& options) {
  if ((pass.preserves() & kPreservesGateSet) != 0) {
    // Gate-set-preserving passes only erase or fuse, so size and CNOT
    // cost are monotone for them. The lowering stages drop this flag
    // precisely because they trade composite gates for longer native
    // streams.
    if (after.size() > before.size()) {
      contract_violation(pass, "gate count increased");
    }
    if (after.cnot_cost() > before.cnot_cost()) {
      contract_violation(pass, "CNOT cost increased");
    }
    const std::set<GateKind> kb = gate_kinds(before);
    for (const GateKind k : gate_kinds(after)) {
      if (kb.find(k) == kb.end()) {
        contract_violation(pass, "introduced a new gate kind");
      }
    }
  }
  if ((pass.preserves() & kPreservesPreparation) != 0 &&
      before.num_qubits() <= options.verify_max_qubits) {
    const double overlap = preparation_overlap(before, after);
    if (std::abs(overlap - 1.0) > options.verify_tolerance) {
      std::ostringstream os;
      os << "preparation changed (overlap " << overlap << ")";
      contract_violation(pass, os.str());
    }
  }
}

/// Release-mode lint gate after one productive pass application: the
/// structural error rules over the rewritten circuit plus pass-contract
/// consistency against the recorded pre-pass facts. Warning-severity
/// style rules stay off here — gray-code lowering legitimately emits
/// zero-angle rotations unless elide_zero_rotations is set — so a clean
/// pipeline produces zero diagnostics and any diagnostic is an error.
void lint_pass_gate(const Pass& pass, const CircuitFacts& before,
                    const Circuit& after, const PipelineOptions& options) {
  LintOptions lint_options;
  lint_options.degenerate_rotations = false;
  lint_options.identity_pairs = false;
  lint_options.coupling = options.pass.target.coupling;
  LintReport report = lint_pass_application(pass, before, after, lint_options);
  // Per-gate coupling conformance only when the input already conformed:
  // standalone pipelines over unrouted circuits are not an error.
  if (!before.coupling_conforms) lint_options.coupling = nullptr;
  LintReport structural = lint_circuit(after, lint_options);
  report.diagnostics.insert(report.diagnostics.end(),
                            structural.diagnostics.begin(),
                            structural.diagnostics.end());
  if (report.has_errors()) {
    std::ostringstream os;
    os << "PassPipeline: lint failed after pass '" << pass.name() << "':\n"
       << report.to_string();
    throw std::logic_error(os.str());
  }
}

}  // namespace

PassPipeline::PassPipeline(PipelineOptions options)
    : options_(options), passes_(level_passes(options.level)) {
  if (options_.lower_to_target) {
    for (const Pass* pass : lowering_pass_sequence()) {
      passes_.push_back(pass);
    }
  }
}

PassPipeline::PassPipeline(std::vector<const Pass*> passes,
                           PipelineOptions options)
    : options_(options), passes_(std::move(passes)) {}

const std::vector<const Pass*>& PassPipeline::registry() {
  static const DeadRotationPass dead_rotation;
  static const AdjacentFusePass adjacent_fuse;
  static const CnotCommuteFoldPass cnot_commute_fold;
  static const RotationCommuteMergePass rotation_commute_merge;
  static const DataflowSimplifyPass dataflow_simplify;
  static const std::vector<const Pass*> passes = [] {
    std::vector<const Pass*> all = {
        &dead_rotation,
        &adjacent_fuse,
        &cnot_commute_fold,
        &rotation_commute_merge,
        &dataflow_simplify,
    };
    for (const Pass* pass : lowering_pass_sequence()) all.push_back(pass);
    return all;
  }();
  return passes;
}

const Pass* PassPipeline::find(std::string_view name) {
  for (const Pass* pass : registry()) {
    if (pass->name() == name) return pass;
  }
  return nullptr;
}

std::vector<const Pass*> PassPipeline::level_passes(OptLevel level) {
  std::vector<const Pass*> out;
  if (level == OptLevel::kO0) return out;
  out.push_back(find("dead-rotation"));
  out.push_back(find("adjacent-fuse"));
  if (level == OptLevel::kO2) {
    out.push_back(find("cnot-commute-fold"));
    out.push_back(find("rotation-commute-merge"));
    out.push_back(find("dataflow-simplify"));
  }
  return out;
}

Circuit PassPipeline::run(const Circuit& circuit,
                          PipelineReport* report) const {
  Circuit current = circuit;
  if (report != nullptr) {
    *report = PipelineReport{};
    report->gates_before = circuit.size();
    report->depth_before = circuit.depth();
    report->cnot_cost_before = circuit.cnot_cost();
  }
  // Every productive optimization pass application strictly decreases
  // the gate count (they only erase or fuse), so size() + 1 iterations
  // always reach the fixed point. The lowering stages may *grow* the
  // circuit (each is productive at most once), so the default cap is
  // recomputed from the current size every iteration; max_iterations is
  // an additional explicit cap.
  int cap = options_.max_iterations > 0
                ? options_.max_iterations
                : static_cast<int>(circuit.size()) + 1;
  int iterations = 0;
  for (int iter = 0; iter < cap; ++iter) {
    if (options_.max_iterations <= 0) {
      cap = std::max(cap, iter + static_cast<int>(current.size()) + 2);
    }
    bool iteration_changed = false;
    for (const Pass* pass : passes_) {
      PassReport pr;
      pr.pass = std::string(pass->name());
      pr.gates_before = current.size();
      pr.depth_before = current.depth();
      pr.cnot_cost_before = current.cnot_cost();
      std::optional<Circuit> before;
      if (options_.verify_each_pass) before = current;
      std::optional<CircuitFacts> facts;
      if (options_.lint_each_pass) {
        facts = circuit_facts(current, options_.pass.target.coupling.get());
      }
      const bool changed = pass->run(current, options_.pass);
      pr.changed = changed;
      pr.gates_after = current.size();
      pr.depth_after = current.depth();
      pr.cnot_cost_after = current.cnot_cost();
      if (changed && options_.lint_each_pass) {
        lint_pass_gate(*pass, *facts, current, options_);
      }
      if (changed && options_.verify_each_pass) {
        verify_pass_application(*pass, *before, current, options_);
      }
      if (report != nullptr) report->passes.push_back(std::move(pr));
      iteration_changed |= changed;
    }
    if (!iteration_changed) break;
    ++iterations;
  }
  if (report != nullptr) {
    report->iterations = iterations;
    report->gates_after = current.size();
    report->depth_after = current.depth();
    report->cnot_cost_after = current.cnot_cost();
  }
  return current;
}

Circuit optimize_circuit(const Circuit& circuit, const PipelineOptions& options,
                         PipelineReport* report) {
  return PassPipeline(options).run(circuit, report);
}

}  // namespace qsp
