#include "circuit/pass.hpp"

namespace qsp {
namespace {

/// How a gate acts on one of its wires, for the commutation test.
enum class WireRole {
  kNone,      ///< gate does not touch the wire
  kDiagonal,  ///< control literal, or any wire of Rz/UCRz/CZ/RZZ
  kXAction,   ///< Pauli-X on the wire (target of X/CNOT)
  kRyAction,  ///< y-rotation on the wire (target of Ry/CRy/MCRy/UCRy)
  kOpaque,    ///< no commuting structure exposed (either wire of iSwap)
};

bool is_control_wire(const Gate& g, int wire) {
  for (const ControlLiteral& c : g.controls()) {
    if (c.qubit == wire) return true;
  }
  return false;
}

WireRole role_on(const Gate& g, int wire) {
  switch (g.kind()) {
    case GateKind::kRz:
      return wire == g.target() ? WireRole::kDiagonal : WireRole::kNone;
    case GateKind::kUCRz:
      // Diagonal on every wire it touches: pattern controls select which
      // phase lands on the target, and the target action is diagonal too.
      if (wire == g.target() || is_control_wire(g, wire)) {
        return WireRole::kDiagonal;
      }
      return WireRole::kNone;
    case GateKind::kX:
      return wire == g.target() ? WireRole::kXAction : WireRole::kNone;
    case GateKind::kCNOT:
      if (wire == g.target()) return WireRole::kXAction;
      if (is_control_wire(g, wire)) return WireRole::kDiagonal;
      return WireRole::kNone;
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kUCRy:
      if (wire == g.target()) return WireRole::kRyAction;
      if (is_control_wire(g, wire)) return WireRole::kDiagonal;
      return WireRole::kNone;
    case GateKind::kCZ:
    case GateKind::kRZZ:
      // Diagonal on both wires (diag(1,1,1,-1) / the Z(x)Z exponential),
      // so they commute with anything else diagonal on the shared wires.
      if (wire == g.target() || is_control_wire(g, wire)) {
        return WireRole::kDiagonal;
      }
      return WireRole::kNone;
    case GateKind::kISwap:
      // Swaps amplitude between its wires: neither diagonal, X-like nor
      // y-rotation-like. Opaque wires never commute past anything.
      if (wire == g.target() || is_control_wire(g, wire)) {
        return WireRole::kOpaque;
      }
      return WireRole::kNone;
  }
  return WireRole::kNone;
}

}  // namespace

std::string opt_level_name(OptLevel level) {
  switch (level) {
    case OptLevel::kO0:
      return "O0";
    case OptLevel::kO1:
      return "O1";
    case OptLevel::kO2:
      return "O2";
  }
  return "O?";
}

bool gates_commute(const Gate& a, const Gate& b) {
  // Each gate has at most one non-diagonal wire (its target), so checking
  // mode compatibility per shared wire is sufficient: within every shared
  // diagonal block the residual actions are same-type single-qubit
  // operators on the one shared action wire (X with X, or same-axis Ry
  // with Ry), which commute, and everything else lives on disjoint wires.
  for (const int w : a.qubits()) {
    const WireRole rb = role_on(b, w);
    if (rb == WireRole::kNone) continue;  // wire not shared
    const WireRole ra = role_on(a, w);
    if (ra == WireRole::kDiagonal && rb == WireRole::kDiagonal) continue;
    if (ra == WireRole::kXAction && rb == WireRole::kXAction) continue;
    if (ra == WireRole::kRyAction && rb == WireRole::kRyAction) continue;
    // Mixed modes on a shared wire: one gate rewrites the value the other
    // reads (the MCRy-control trap: a CNOT *targeting* an MCRy control
    // wire), the single-qubit actions differ in axis, or a wire is opaque
    // (iSwap). Not provably commuting — report false.
    return false;
  }
  return true;
}

}  // namespace qsp
