#include "circuit/lowering.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis);

void emit_ucry(Circuit& out, const std::vector<int>& controls, int target,
               const std::vector<double>& pattern_angles,
               const LoweringOptions& options) {
  emit_ucr(out, controls, target, pattern_angles, options, /*z_axis=*/false);
}

void emit_cry(Circuit& out, const ControlLiteral& c, int target,
              double theta) {
  // Standard 2-CNOT realization. With the circuit [Ry(a); CX; Ry(b); CX]
  // the control=1 branch sees Ry(a - b) and the control=0 branch Ry(a+b):
  //   positive literal: a =  theta/2, b = -theta/2
  //   negative literal: a =  theta/2, b = +theta/2
  const double a = theta / 2;
  const double b = c.positive ? -theta / 2 : theta / 2;
  out.append(Gate::ry(target, a));
  out.append(Gate::cnot(c.qubit, target));
  out.append(Gate::ry(target, b));
  out.append(Gate::cnot(c.qubit, target));
}

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis) {
  auto rotation = [&](double theta) {
    return z_axis ? Gate::rz(target, theta) : Gate::ry(target, theta);
  };
  const std::size_t c = controls.size();
  if (c == 0) {
    if (std::abs(pattern_angles[0]) > options.angle_epsilon ||
        !options.elide_zero_rotations) {
      out.append(rotation(pattern_angles[0]));
    }
    return;
  }
  const std::vector<double> phi = ucry_multiplexor_angles(pattern_angles);
  const std::uint32_t slots = std::uint32_t{1} << c;
  // Gray-code walk: rotation j, then CNOT whose control is the bit that
  // changes between gray(j) and gray(j+1); the last CNOT closes the cycle
  // with the top control so the accumulated X-parity cancels.
  std::uint32_t pending_mask = 0;  // control bits of postponed CNOTs
  auto flush = [&] {
    for (std::size_t b = 0; b < c; ++b) {
      if ((pending_mask >> b) & 1u) {
        out.append(Gate::cnot(controls[b], target));
      }
    }
    pending_mask = 0;
  };
  for (std::uint32_t j = 0; j < slots; ++j) {
    const bool zero = std::abs(phi[j]) <= options.angle_epsilon;
    if (!options.elide_zero_rotations || !zero) {
      flush();
      out.append(rotation(phi[j]));
    }
    const int change =
        (j + 1 == slots) ? static_cast<int>(c) - 1 : gray_change_bit(j);
    pending_mask ^= std::uint32_t{1} << change;
  }
  flush();
}

LoweringOptions lowering_view(const PassOptions& options) {
  LoweringOptions view;
  view.elide_zero_rotations = options.elide_zero_rotations;
  view.angle_epsilon = options.angle_epsilon;
  return view;
}

// ---------------------------------------------------------------------------
// mcry-expand: MCRy -> UCRy via the one-hot pattern-angle embedding. The
// Walsh transform of a one-hot angle vector is dense, so no elision
// applies downstream and the lowered cost is exactly 2^c (Table I).
// ---------------------------------------------------------------------------
class McryExpandPass final : public Pass {
 public:
  std::string_view name() const override { return "mcry-expand"; }
  unsigned preserves() const override {
    return kPreservesPreparation | kPreservesCoupling;
  }

  bool run(Circuit& circuit, const PassOptions&) const override {
    bool changed = false;
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      if (g.kind() == GateKind::kMCRy) {
        out.append(mcry_to_ucry(g));
        changed = true;
      } else {
        out.append(g);
      }
    }
    if (changed) circuit = std::move(out);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// ucr-gray-lower: multiplexors and controlled rotations down to the
// primitive {X, Ry, Rz, CNOT} stream — UCRy/UCRz via the gray-code walk,
// CRy via the 2-CNOT form, negative-control CNOTs via X conjugation, and
// (with PassOptions::elide_zero_rotations) trivial rotations dropped.
// MCRy is accepted too (embedded first) so the pass is total even when
// run outside the staged sequence.
// ---------------------------------------------------------------------------
class UcrGrayLowerPass final : public Pass {
 public:
  std::string_view name() const override { return "ucr-gray-lower"; }
  unsigned preserves() const override {
    return kPreservesPreparation | kPreservesCoupling;
  }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    const LoweringOptions lowering = lowering_view(options);
    auto trivial = [&](const Gate& g) {
      return lowering.elide_zero_rotations &&
             std::abs(g.theta()) <= lowering.angle_epsilon;
    };
    bool changed = false;
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      switch (g.kind()) {
        case GateKind::kX:
        case GateKind::kCZ:
        case GateKind::kISwap:
        case GateKind::kRZZ:
          out.append(g);
          break;
        case GateKind::kRy:
        case GateKind::kRz:
          if (trivial(g)) {
            changed = true;
          } else {
            out.append(g);
          }
          break;
        case GateKind::kCNOT: {
          const ControlLiteral c = g.controls()[0];
          if (c.positive) {
            out.append(g);
          } else {
            out.append(Gate::x(c.qubit));
            out.append(Gate::cnot(c.qubit, g.target()));
            out.append(Gate::x(c.qubit));
            changed = true;
          }
          break;
        }
        case GateKind::kCRy:
          emit_cry(out, g.controls()[0], g.target(), g.theta());
          changed = true;
          break;
        case GateKind::kMCRy:
        case GateKind::kUCRy: {
          const Gate u = mcry_to_ucry(g);
          std::vector<int> controls;
          for (const auto& c : u.controls()) controls.push_back(c.qubit);
          emit_ucry(out, controls, u.target(), u.angles(), lowering);
          changed = true;
          break;
        }
        case GateKind::kUCRz: {
          std::vector<int> controls;
          for (const auto& c : g.controls()) controls.push_back(c.qubit);
          emit_ucr(out, controls, g.target(), g.angles(), lowering,
                   /*z_axis=*/true);
          changed = true;
          break;
        }
      }
    }
    if (changed) circuit = std::move(out);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// native-legalize: every CNOT becomes the PassOptions::target's native
// two-qubit gate plus single-qubit dressing; other gates pass through
// (composites are the earlier stages' business). The decompositions stay
// on the CNOT's own wire pair, so routed circuits stay on device edges.
// All three were verified against the CNOT unitary up to global phase.
// ---------------------------------------------------------------------------
class NativeLegalizePass final : public Pass {
 public:
  std::string_view name() const override { return "native-legalize"; }
  unsigned preserves() const override {
    return kPreservesPreparation | kPreservesCoupling;
  }

  bool run(Circuit& circuit, const PassOptions& options) const override {
    if (options.target.is_cnot()) return false;
    bool changed = false;
    Circuit out(circuit.num_qubits());
    for (const Gate& g : circuit.gates()) {
      if (g.kind() != GateKind::kCNOT) {
        out.append(g);
        continue;
      }
      const ControlLiteral c = g.controls()[0];
      if (!c.positive) out.append(Gate::x(c.qubit));
      emit_native_cnot(out, c.qubit, g.target(), options.target);
      if (!c.positive) out.append(Gate::x(c.qubit));
      changed = true;
    }
    if (changed) circuit = std::move(out);
    return changed;
  }

 private:
  static void emit_native_cnot(Circuit& out, int c, int t,
                               const Target& target) {
    switch (target.two_qubit_kind()) {
      case GateKind::kCZ:
        // CNOT = H_t CZ H_t with H = X * Ry(pi/2) as an operator
        // product; in circuit order the Ry precedes the X. Exact.
        out.append(Gate::ry(t, kPi / 2));
        out.append(Gate::x(t));
        out.append(Gate::cz(c, t));
        out.append(Gate::ry(t, kPi / 2));
        out.append(Gate::x(t));
        break;
      case GateKind::kRZZ:
        // CZ = Rz_c(pi/2) Rz_t(pi/2) RZZ(-pi/2) up to a global
        // e^{-i pi/4} (all diagonal, so the order is free), wrapped in
        // the same Hadamard conjugation as the CZ case.
        out.append(Gate::ry(t, kPi / 2));
        out.append(Gate::x(t));
        out.append(Gate::rz(c, kPi / 2));
        out.append(Gate::rz(t, kPi / 2));
        out.append(Gate::rzz(c, t, -kPi / 2));
        out.append(Gate::ry(t, kPi / 2));
        out.append(Gate::x(t));
        break;
      case GateKind::kISwap:
        // Two-iSwap realization, up to global phase, with
        // Rx(th) = [Rz(pi/2); Ry(th); Rz(-pi/2)] in circuit order and
        // the two adjacent target Rz(pi/2) pre-fused into Rz(pi):
        //   [Rz_t(pi/2); iSwap; Rx_c(pi/2); iSwap; Rz_t(pi);
        //    Ry_t(pi/2); Rz_t(-pi/2); Rz_c(-pi/2)]
        out.append(Gate::rz(t, kPi / 2));
        out.append(Gate::iswap(c, t));
        out.append(Gate::rz(c, kPi / 2));
        out.append(Gate::ry(c, kPi / 2));
        out.append(Gate::rz(c, -kPi / 2));
        out.append(Gate::iswap(c, t));
        out.append(Gate::rz(t, kPi));
        out.append(Gate::ry(t, kPi / 2));
        out.append(Gate::rz(t, -kPi / 2));
        out.append(Gate::rz(c, -kPi / 2));
        break;
      case GateKind::kCNOT:
      default:
        QSP_ASSERT_MSG(false, "native-legalize: not a two-qubit target");
    }
  }
};

}  // namespace

const std::vector<const Pass*>& lowering_pass_sequence() {
  static const McryExpandPass mcry_expand;
  static const UcrGrayLowerPass ucr_gray_lower;
  static const NativeLegalizePass native_legalize;
  static const std::vector<const Pass*> passes = {
      &mcry_expand,
      &ucr_gray_lower,
      &native_legalize,
  };
  return passes;
}

Gate mcry_to_ucry(const Gate& gate) {
  if (gate.kind() == GateKind::kUCRy) return gate;
  QSP_ASSERT(gate.kind() == GateKind::kMCRy ||
             gate.kind() == GateKind::kCRy);
  std::vector<int> controls;
  std::uint32_t pattern = 0;
  for (std::size_t i = 0; i < gate.controls().size(); ++i) {
    controls.push_back(gate.controls()[i].qubit);
    if (gate.controls()[i].positive) pattern |= std::uint32_t{1} << i;
  }
  std::vector<double> angles(std::size_t{1} << controls.size(), 0.0);
  angles[pattern] = gate.theta();
  return Gate::ucry(std::move(controls), gate.target(), std::move(angles));
}

Gate reorder_ucry_controls(const Gate& gate,
                           const std::vector<int>& new_order) {
  const Gate u = mcry_to_ucry(gate);
  const std::size_t c = u.controls().size();
  if (new_order.size() != c) {
    throw std::invalid_argument("reorder_ucry_controls: order size");
  }
  // position_of[q] = bit position of control qubit q in the current gate.
  std::vector<int> old_bit(c);
  for (std::size_t j = 0; j < c; ++j) {
    int found = -1;
    for (std::size_t i = 0; i < c; ++i) {
      if (u.controls()[i].qubit == new_order[j]) found = static_cast<int>(i);
    }
    if (found < 0) {
      throw std::invalid_argument(
          "reorder_ucry_controls: order must permute the controls");
    }
    old_bit[j] = found;
  }
  std::vector<double> angles(u.angles().size());
  for (std::uint32_t s_new = 0; s_new < angles.size(); ++s_new) {
    std::uint32_t s_old = 0;
    for (std::size_t j = 0; j < c; ++j) {
      if ((s_new >> j) & 1u) {
        s_old |= std::uint32_t{1} << old_bit[j];
      }
    }
    angles[s_new] = u.angles()[s_old];
  }
  return Gate::ucry(new_order, u.target(), std::move(angles));
}

std::vector<double> ucry_multiplexor_angles(const std::vector<double>& a) {
  const std::size_t slots = a.size();
  QSP_ASSERT(slots > 0 && (slots & (slots - 1)) == 0);
  std::vector<double> phi(slots, 0.0);
  for (std::uint32_t j = 0; j < slots; ++j) {
    const std::uint32_t g = gray_code(j);
    phi[j] = wideops::parity_signed_sum_d(a.data(), slots, g) /
             static_cast<double>(slots);
  }
  return phi;
}

Circuit lower_onto(const Circuit& circuit, const Target& target,
                   const LoweringOptions& options) {
  PassOptions pass_options;
  pass_options.angle_epsilon = options.angle_epsilon;
  pass_options.elide_zero_rotations = options.elide_zero_rotations;
  pass_options.target = target;
  Circuit out = circuit;
  for (const Pass* pass : lowering_pass_sequence()) {
    pass->run(out, pass_options);
  }
  return out;
}

Circuit lower(const Circuit& circuit, const LoweringOptions& options) {
  // Identity-target staged lowering. Every stage rewrites gates locally
  // and in order, so the composition is gate-for-gate identical to the
  // historical monolithic walk (regression-pinned in tests/test_lowering).
  return lower_onto(circuit, Target::cnot(), options);
}

std::int64_t lowered_cnot_count(const Circuit& lowered) {
  return two_qubit_gate_count(lowered, Target::cnot());
}

std::int64_t count_cnots_after_lowering(const Circuit& circuit,
                                        const LoweringOptions& options) {
  return lowered_cnot_count(lower(circuit, options));
}

std::int64_t count_two_qubit_after_lowering(const Circuit& circuit,
                                            const Target& target,
                                            const LoweringOptions& options) {
  return two_qubit_gate_count(lower_onto(circuit, target, options), target);
}

}  // namespace qsp
