#include "circuit/lowering.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {
namespace {

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis);

void emit_ucry(Circuit& out, const std::vector<int>& controls, int target,
               const std::vector<double>& pattern_angles,
               const LoweringOptions& options) {
  emit_ucr(out, controls, target, pattern_angles, options, /*z_axis=*/false);
}

void emit_cry(Circuit& out, const ControlLiteral& c, int target,
              double theta) {
  // Standard 2-CNOT realization. With the circuit [Ry(a); CX; Ry(b); CX]
  // the control=1 branch sees Ry(a - b) and the control=0 branch Ry(a+b):
  //   positive literal: a =  theta/2, b = -theta/2
  //   negative literal: a =  theta/2, b = +theta/2
  const double a = theta / 2;
  const double b = c.positive ? -theta / 2 : theta / 2;
  out.append(Gate::ry(target, a));
  out.append(Gate::cnot(c.qubit, target));
  out.append(Gate::ry(target, b));
  out.append(Gate::cnot(c.qubit, target));
}

void emit_ucr(Circuit& out, const std::vector<int>& controls, int target,
              const std::vector<double>& pattern_angles,
              const LoweringOptions& options, bool z_axis) {
  auto rotation = [&](double theta) {
    return z_axis ? Gate::rz(target, theta) : Gate::ry(target, theta);
  };
  const std::size_t c = controls.size();
  if (c == 0) {
    if (std::abs(pattern_angles[0]) > options.angle_epsilon ||
        !options.elide_zero_rotations) {
      out.append(rotation(pattern_angles[0]));
    }
    return;
  }
  const std::vector<double> phi = ucry_multiplexor_angles(pattern_angles);
  const std::uint32_t slots = std::uint32_t{1} << c;
  // Gray-code walk: rotation j, then CNOT whose control is the bit that
  // changes between gray(j) and gray(j+1); the last CNOT closes the cycle
  // with the top control so the accumulated X-parity cancels.
  std::uint32_t pending_mask = 0;  // control bits of postponed CNOTs
  auto flush = [&] {
    for (std::size_t b = 0; b < c; ++b) {
      if ((pending_mask >> b) & 1u) {
        out.append(Gate::cnot(controls[b], target));
      }
    }
    pending_mask = 0;
  };
  for (std::uint32_t j = 0; j < slots; ++j) {
    const bool zero = std::abs(phi[j]) <= options.angle_epsilon;
    if (!options.elide_zero_rotations || !zero) {
      flush();
      out.append(rotation(phi[j]));
    }
    const int change =
        (j + 1 == slots) ? static_cast<int>(c) - 1 : gray_change_bit(j);
    pending_mask ^= std::uint32_t{1} << change;
  }
  flush();
}

}  // namespace

Gate mcry_to_ucry(const Gate& gate) {
  if (gate.kind() == GateKind::kUCRy) return gate;
  QSP_ASSERT(gate.kind() == GateKind::kMCRy ||
             gate.kind() == GateKind::kCRy);
  std::vector<int> controls;
  std::uint32_t pattern = 0;
  for (std::size_t i = 0; i < gate.controls().size(); ++i) {
    controls.push_back(gate.controls()[i].qubit);
    if (gate.controls()[i].positive) pattern |= std::uint32_t{1} << i;
  }
  std::vector<double> angles(std::size_t{1} << controls.size(), 0.0);
  angles[pattern] = gate.theta();
  return Gate::ucry(std::move(controls), gate.target(), std::move(angles));
}

Gate reorder_ucry_controls(const Gate& gate,
                           const std::vector<int>& new_order) {
  const Gate u = mcry_to_ucry(gate);
  const std::size_t c = u.controls().size();
  if (new_order.size() != c) {
    throw std::invalid_argument("reorder_ucry_controls: order size");
  }
  // position_of[q] = bit position of control qubit q in the current gate.
  std::vector<int> old_bit(c);
  for (std::size_t j = 0; j < c; ++j) {
    int found = -1;
    for (std::size_t i = 0; i < c; ++i) {
      if (u.controls()[i].qubit == new_order[j]) found = static_cast<int>(i);
    }
    if (found < 0) {
      throw std::invalid_argument(
          "reorder_ucry_controls: order must permute the controls");
    }
    old_bit[j] = found;
  }
  std::vector<double> angles(u.angles().size());
  for (std::uint32_t s_new = 0; s_new < angles.size(); ++s_new) {
    std::uint32_t s_old = 0;
    for (std::size_t j = 0; j < c; ++j) {
      if ((s_new >> j) & 1u) {
        s_old |= std::uint32_t{1} << old_bit[j];
      }
    }
    angles[s_new] = u.angles()[s_old];
  }
  return Gate::ucry(new_order, u.target(), std::move(angles));
}

std::vector<double> ucry_multiplexor_angles(const std::vector<double>& a) {
  const std::size_t slots = a.size();
  QSP_ASSERT(slots > 0 && (slots & (slots - 1)) == 0);
  std::vector<double> phi(slots, 0.0);
  for (std::uint32_t j = 0; j < slots; ++j) {
    const std::uint32_t g = gray_code(j);
    phi[j] = wideops::parity_signed_sum_d(a.data(), slots, g) /
             static_cast<double>(slots);
  }
  return phi;
}

Circuit lower(const Circuit& circuit, const LoweringOptions& options) {
  Circuit out(circuit.num_qubits());
  auto trivial = [&](const Gate& g) {
    return options.elide_zero_rotations &&
           std::abs(g.theta()) <= options.angle_epsilon;
  };
  for (const Gate& g : circuit.gates()) {
    switch (g.kind()) {
      case GateKind::kX:
        out.append(g);
        break;
      case GateKind::kRy:
        if (!trivial(g)) out.append(g);
        break;
      case GateKind::kCNOT: {
        const ControlLiteral c = g.controls()[0];
        if (c.positive) {
          out.append(g);
        } else {
          out.append(Gate::x(c.qubit));
          out.append(Gate::cnot(c.qubit, g.target()));
          out.append(Gate::x(c.qubit));
        }
        break;
      }
      case GateKind::kCRy:
        emit_cry(out, g.controls()[0], g.target(), g.theta());
        break;
      case GateKind::kMCRy: {
        // Embed into a UCRy whose only nonzero pattern angle sits at the
        // pattern selected by the control polarities. The Walsh transform
        // of a one-hot angle vector is dense, so no elision applies and the
        // lowered cost is exactly 2^c, matching the Table-I model.
        const Gate u = mcry_to_ucry(g);
        std::vector<int> controls;
        for (const auto& c : u.controls()) controls.push_back(c.qubit);
        emit_ucry(out, controls, u.target(), u.angles(), options);
        break;
      }
      case GateKind::kUCRy: {
        std::vector<int> controls;
        for (const auto& c : g.controls()) controls.push_back(c.qubit);
        emit_ucry(out, controls, g.target(), g.angles(), options);
        break;
      }
      case GateKind::kRz:
        if (!trivial(g)) out.append(g);
        break;
      case GateKind::kUCRz: {
        std::vector<int> controls;
        for (const auto& c : g.controls()) controls.push_back(c.qubit);
        emit_ucr(out, controls, g.target(), g.angles(), options,
                 /*z_axis=*/true);
        break;
      }
    }
  }
  return out;
}

std::int64_t lowered_cnot_count(const Circuit& lowered) {
  std::int64_t count = 0;
  for (const Gate& g : lowered.gates()) {
    switch (g.kind()) {
      case GateKind::kCNOT:
        ++count;
        break;
      case GateKind::kX:
      case GateKind::kRy:
      case GateKind::kRz:
        break;
      default:
        throw std::invalid_argument(
            "lowered_cnot_count: circuit contains non-primitive gates");
    }
  }
  return count;
}

std::int64_t count_cnots_after_lowering(const Circuit& circuit,
                                        const LoweringOptions& options) {
  return lowered_cnot_count(lower(circuit, options));
}

}  // namespace qsp
