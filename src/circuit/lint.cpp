#include "circuit/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "arch/coupling.hpp"
#include "circuit/qasm.hpp"

namespace qsp {
namespace {

std::string_view kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
      return "x";
    case GateKind::kRy:
      return "ry";
    case GateKind::kCNOT:
      return "cnot";
    case GateKind::kCRy:
      return "cry";
    case GateKind::kMCRy:
      return "mcry";
    case GateKind::kUCRy:
      return "ucry";
    case GateKind::kRz:
      return "rz";
    case GateKind::kUCRz:
      return "ucrz";
    case GateKind::kCZ:
      return "cz";
    case GateKind::kISwap:
      return "iswap";
    case GateKind::kRZZ:
      return "rzz";
  }
  return "?";
}

bool is_symmetric_two_qubit(GateKind kind) {
  return kind == GateKind::kCZ || kind == GateKind::kISwap ||
         kind == GateKind::kRZZ;
}

bool is_native_two_qubit(GateKind kind) {
  return kind == GateKind::kCNOT || is_symmetric_two_qubit(kind);
}

bool is_self_inverse(GateKind kind) {
  return kind == GateKind::kX || kind == GateKind::kCNOT ||
         kind == GateKind::kCZ;
}

bool uses_theta(GateKind kind) {
  switch (kind) {
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kRz:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

bool is_multiplexor(GateKind kind) {
  return kind == GateKind::kUCRy || kind == GateKind::kUCRz;
}

/// Mirror of Target::is_native over raw fields (a RawGate may be
/// unconstructible through the validating factories).
bool raw_is_native(const RawGate& gate, const Target& target) {
  switch (gate.kind) {
    case GateKind::kX:
    case GateKind::kRy:
    case GateKind::kRz:
      return gate.controls.empty();
    case GateKind::kCNOT:
      return target.two_qubit_kind() == GateKind::kCNOT &&
             gate.controls.size() == 1 && gate.controls[0].positive;
    case GateKind::kCZ:
    case GateKind::kISwap:
    case GateKind::kRZZ:
      return gate.kind == target.two_qubit_kind();
    default:
      return false;
  }
}

/// All rotation angles at or below epsilon: the gate is the identity.
bool raw_is_degenerate_rotation(const RawGate& gate, double eps) {
  if (uses_theta(gate.kind)) return std::abs(gate.theta) <= eps;
  if (is_multiplexor(gate.kind)) {
    if (gate.angles.empty()) return true;
    return std::all_of(gate.angles.begin(), gate.angles.end(),
                       [eps](double a) { return std::abs(a) <= eps; });
  }
  return false;
}

void add(LintReport& report, LintRule rule, std::int64_t gate_index,
         std::string message) {
  LintDiagnostic d;
  d.rule = rule;
  d.severity = lint_rule_severity(rule);
  d.gate_index = gate_index;
  d.message = std::move(message);
  report.diagnostics.push_back(std::move(d));
}

/// Every native two-qubit gate sits on a device edge (composites skipped:
/// they are routed during lowering, not here). The precondition side of
/// the kPreservesCoupling contract check.
bool native_two_qubit_conforms(const Circuit& circuit,
                               const CouplingGraph& coupling) {
  for (const Gate& g : circuit.gates()) {
    if (!is_native_two_qubit(g.kind()) || g.controls().size() != 1) continue;
    const int a = g.controls()[0].qubit;
    const int b = g.target();
    if (a < 0 || a >= coupling.num_qubits() || b < 0 ||
        b >= coupling.num_qubits() || !coupling.has_edge(a, b)) {
      return false;
    }
  }
  return true;
}

std::string escape_json_string(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo:
      return "info";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

std::string_view lint_rule_code(LintRule rule) {
  switch (rule) {
    case LintRule::kParseError:
      return "QL000";
    case LintRule::kWireBounds:
      return "QL001";
    case LintRule::kOverlappingControls:
      return "QL002";
    case LintRule::kNoncanonicalSymmetric:
      return "QL003";
    case LintRule::kNonNativeGate:
      return "QL004";
    case LintRule::kCouplingViolation:
      return "QL005";
    case LintRule::kDegenerateRotation:
      return "QL006";
    case LintRule::kIdentityPair:
      return "QL007";
    case LintRule::kPassContract:
      return "QL008";
    case LintRule::kMalformedAngles:
      return "QL009";
    case LintRule::kUnsupportedGate:
      return "QL010";
    case LintRule::kDeadControl:
      return "QL011";
    case LintRule::kConstantOneControl:
      return "QL012";
    case LintRule::kRedundantCnot:
      return "QL013";
    case LintRule::kAncillaReleasedDirty:
      return "QL014";
  }
  return "QL???";
}

std::string_view lint_rule_name(LintRule rule) {
  switch (rule) {
    case LintRule::kParseError:
      return "parse-error";
    case LintRule::kWireBounds:
      return "wire-bounds";
    case LintRule::kOverlappingControls:
      return "overlapping-controls";
    case LintRule::kNoncanonicalSymmetric:
      return "canonical-wire-order";
    case LintRule::kNonNativeGate:
      return "non-native-gate";
    case LintRule::kCouplingViolation:
      return "coupling-violation";
    case LintRule::kDegenerateRotation:
      return "degenerate-rotation";
    case LintRule::kIdentityPair:
      return "identity-pair";
    case LintRule::kPassContract:
      return "pass-contract";
    case LintRule::kMalformedAngles:
      return "malformed-angles";
    case LintRule::kUnsupportedGate:
      return "unsupported-gate";
    case LintRule::kDeadControl:
      return "dead-control";
    case LintRule::kConstantOneControl:
      return "constant-one-control";
    case LintRule::kRedundantCnot:
      return "redundant-cnot";
    case LintRule::kAncillaReleasedDirty:
      return "ancilla-released-dirty";
  }
  return "?";
}

LintSeverity lint_rule_severity(LintRule rule) {
  switch (rule) {
    case LintRule::kDegenerateRotation:
    case LintRule::kIdentityPair:
    // The flow-sensitive redundancy rules are warnings: the circuit is
    // still correct, it merely carries work the dataflow-simplify pass
    // would remove. QL014 stays an error — a dirty workspace wire breaks
    // the register contract (spare device qubits return to |0>).
    case LintRule::kDeadControl:
    case LintRule::kConstantOneControl:
    case LintRule::kRedundantCnot:
      return LintSeverity::kWarning;
    default:
      return LintSeverity::kError;
  }
}

std::string LintDiagnostic::to_string() const {
  std::ostringstream os;
  os << lint_severity_name(severity) << "[" << lint_rule_code(rule) << "]";
  if (gate_index >= 0) os << " gate " << gate_index;
  os << ": " << message;
  return os.str();
}

bool LintReport::has_errors() const {
  return count(LintSeverity::kError) > 0;
}

bool LintReport::has_warnings() const {
  return count(LintSeverity::kWarning) > 0;
}

std::size_t LintReport::count(LintSeverity severity) const {
  std::size_t n = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintDiagnostic& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const LintDiagnostic& d = diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"code\":\"" << lint_rule_code(d.rule) << "\",\"name\":\""
       << lint_rule_name(d.rule) << "\",\"severity\":\""
       << lint_severity_name(d.severity) << "\",\"gate\":" << d.gate_index
       << ",\"message\":\"" << escape_json_string(d.message) << "\"}";
  }
  os << "]";
  return os.str();
}

RawGate RawGate::from(const Gate& gate) {
  RawGate raw;
  raw.kind = gate.kind();
  raw.target = gate.target();
  raw.theta = gate.theta();
  raw.controls = gate.controls();
  raw.angles = gate.angles();
  return raw;
}

void lint_raw_gate(const RawGate& gate, std::int64_t index, int num_qubits,
                   const LintOptions& options, LintReport& report) {
  std::ostringstream os;

  // QL010: policy mask first — an excluded kind makes the structural
  // findings below secondary, but they are still reported.
  if (options.allowed_kinds != 0 &&
      (options.allowed_kinds & lint_kind_bit(gate.kind)) == 0) {
    os << "gate kind '" << kind_name(gate.kind)
       << "' is not in the allowed set";
    add(report, LintRule::kUnsupportedGate, index, os.str());
    os.str("");
  }

  // QL001: every referenced wire inside [0, num_qubits).
  if (gate.target < 0 || gate.target >= num_qubits) {
    os << "target wire " << gate.target << " outside register [0, "
       << num_qubits << ")";
    add(report, LintRule::kWireBounds, index, os.str());
    os.str("");
  }
  for (const ControlLiteral& c : gate.controls) {
    if (c.qubit < 0 || c.qubit >= num_qubits) {
      os << "control wire " << c.qubit << " outside register [0, "
         << num_qubits << ")";
      add(report, LintRule::kWireBounds, index, os.str());
      os.str("");
    }
  }

  // QL002: controls must name distinct wires, none the target.
  for (std::size_t i = 0; i < gate.controls.size(); ++i) {
    if (gate.controls[i].qubit == gate.target) {
      os << "control on the target wire " << gate.target;
      add(report, LintRule::kOverlappingControls, index, os.str());
      os.str("");
    }
    for (std::size_t j = i + 1; j < gate.controls.size(); ++j) {
      if (gate.controls[i].qubit == gate.controls[j].qubit) {
        os << "duplicate control wire " << gate.controls[i].qubit;
        add(report, LintRule::kOverlappingControls, index, os.str());
        os.str("");
      }
    }
  }

  // QL009: angles must be finite; multiplexor tables sized 2^controls.
  if (uses_theta(gate.kind) && !std::isfinite(gate.theta)) {
    os << "non-finite angle " << gate.theta;
    add(report, LintRule::kMalformedAngles, index, os.str());
    os.str("");
  }
  if (is_multiplexor(gate.kind)) {
    const std::size_t expected = std::size_t{1} << gate.controls.size();
    if (gate.angles.size() != expected) {
      os << "multiplexor over " << gate.controls.size() << " controls needs "
         << expected << " angles, has " << gate.angles.size();
      add(report, LintRule::kMalformedAngles, index, os.str());
      os.str("");
    }
    for (const double a : gate.angles) {
      if (!std::isfinite(a)) {
        os << "non-finite multiplexor angle " << a;
        add(report, LintRule::kMalformedAngles, index, os.str());
        os.str("");
        break;
      }
    }
  }

  // QL003: symmetric natives store the lower wire as a positive control
  // (the Gate-factory canonical form adjacency passes rely on to cancel
  // cz(a,b) against cz(b,a)).
  if (options.canonical_wire_order && is_symmetric_two_qubit(gate.kind) &&
      gate.controls.size() == 1) {
    const ControlLiteral& c = gate.controls[0];
    if (!c.positive || c.qubit > gate.target) {
      os << kind_name(gate.kind) << " wire pair (" << c.qubit << ", "
         << gate.target << ") not in canonical (lower, positive) order";
      add(report, LintRule::kNoncanonicalSymmetric, index, os.str());
      os.str("");
    }
  }

  // QL004: native-set conformance against the declared target.
  if (options.target.has_value() && !raw_is_native(gate, *options.target)) {
    os << "gate '" << kind_name(gate.kind) << "' is not native to target '"
       << options.target->name() << "'";
    add(report, LintRule::kNonNativeGate, index, os.str());
    os.str("");
  }

  // QL005: native two-qubit gates must sit on device edges. Composite
  // gates are exempt — routing legalizes them during lowering.
  if (options.coupling != nullptr && is_native_two_qubit(gate.kind) &&
      gate.controls.size() == 1) {
    const int a = gate.controls[0].qubit;
    const int b = gate.target;
    const int n = options.coupling->num_qubits();
    if (a >= 0 && a < n && b >= 0 && b < n &&
        !options.coupling->has_edge(a, b)) {
      os << kind_name(gate.kind) << " on (" << a << ", " << b
         << ") is not a device edge";
      add(report, LintRule::kCouplingViolation, index, os.str());
      os.str("");
    }
  }

  // QL006 (warning): the gate is the identity at angle_epsilon.
  if (options.degenerate_rotations &&
      raw_is_degenerate_rotation(gate, options.angle_epsilon)) {
    os << "rotation '" << kind_name(gate.kind)
       << "' is the identity at epsilon " << options.angle_epsilon;
    add(report, LintRule::kDegenerateRotation, index, os.str());
    os.str("");
  }
}

LintReport lint_circuit(const Circuit& circuit, const LintOptions& options) {
  LintReport report;
  const std::vector<Gate>& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    lint_raw_gate(RawGate::from(gates[i]), static_cast<std::int64_t>(i),
                  circuit.num_qubits(), options, report);
  }
  // QL007 (warning): adjacent self-inverse pairs are known identities the
  // optimizer removes; their survival means cleanup never ran (or a
  // generator is emitting dead work).
  if (options.identity_pairs) {
    for (std::size_t i = 0; i + 1 < gates.size(); ++i) {
      if (is_self_inverse(gates[i].kind()) && gates[i] == gates[i + 1]) {
        std::ostringstream os;
        os << "adjacent identical self-inverse '" << kind_name(gates[i].kind())
           << "' pair is the identity";
        add(report, LintRule::kIdentityPair, static_cast<std::int64_t>(i + 1),
            os.str());
      }
    }
  }
  return report;
}

CircuitFacts circuit_facts(const Circuit& circuit,
                           const CouplingGraph* coupling) {
  CircuitFacts facts;
  facts.num_gates = circuit.size();
  for (const Gate& g : circuit.gates()) {
    facts.kinds |= lint_kind_bit(g.kind());
  }
  facts.coupling_conforms =
      coupling != nullptr && native_two_qubit_conforms(circuit, *coupling);
  return facts;
}

LintReport lint_pass_application(const Pass& pass, const CircuitFacts& before,
                                 const Circuit& after,
                                 const LintOptions& options) {
  LintReport report;
  std::ostringstream os;
  if ((pass.preserves() & kPreservesGateSet) != 0) {
    // Gate-set-preserving passes only erase or fuse, so the gate count is
    // monotone for them and the output kinds are a subset of the input's.
    if (after.size() > before.num_gates) {
      os << "pass '" << pass.name() << "' claims kPreservesGateSet but grew "
         << before.num_gates << " gates to " << after.size();
      add(report, LintRule::kPassContract, -1, os.str());
      os.str("");
    }
    std::uint32_t known_kinds = before.kinds;
    for (const Gate& g : after.gates()) {
      if ((known_kinds & lint_kind_bit(g.kind())) == 0) {
        os << "pass '" << pass.name()
           << "' claims kPreservesGateSet but introduced gate kind '"
           << kind_name(g.kind()) << "'";
        add(report, LintRule::kPassContract, -1, os.str());
        os.str("");
        known_kinds |= lint_kind_bit(g.kind());  // report each kind once
      }
    }
  }
  if ((pass.preserves() & kPreservesCoupling) != 0 &&
      options.coupling != nullptr && before.coupling_conforms &&
      !native_two_qubit_conforms(after, *options.coupling)) {
    os << "pass '" << pass.name()
       << "' claims kPreservesCoupling but moved a native two-qubit gate "
          "off the device's edge set";
    add(report, LintRule::kPassContract, -1, os.str());
    os.str("");
  }
  return report;
}

LintReport lint_pass_application(const Pass& pass, const Circuit& before,
                                 const Circuit& after,
                                 const LintOptions& options) {
  return lint_pass_application(pass, circuit_facts(before, options.coupling.get()),
                               after, options);
}

LintReport lint_qasm(const std::string& qasm, const LintOptions& options,
                     std::optional<Circuit>* parsed) {
  if (parsed != nullptr) parsed->reset();
  Circuit circuit(1);
  try {
    circuit = from_qasm(qasm);
  } catch (const std::invalid_argument& e) {
    LintReport report;
    add(report, LintRule::kParseError, -1, e.what());
    return report;
  }
  LintReport report = lint_circuit(circuit, options);
  if (parsed != nullptr) *parsed = std::move(circuit);
  return report;
}

}  // namespace qsp
