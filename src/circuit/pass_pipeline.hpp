#pragma once
// Registered-pass pipeline over the Pass framework (pass.hpp). Built-in
// passes self-register into a global registry; -O levels select ordered
// subsets and iterate them to a fixed point. The pipeline reports per-pass
// gate/depth/CNOT deltas and, with verification enabled (default in debug
// builds), re-simulates the circuit after every pass application and
// aborts on any preparation drift — so a buggy pass fails loudly at the
// exact application that broke the circuit instead of corrupting results
// downstream.

#include <cstdint>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/pass.hpp"

namespace qsp {

struct PipelineOptions {
  OptLevel level = OptLevel::kO1;
  PassOptions pass;
  /// Append the staged lowering passes (lowering.hpp: mcry-expand,
  /// ucr-gray-lower, native-legalize) after the level's optimization
  /// passes, so one fixpoint loop both optimizes and legalizes onto
  /// `pass.target`. The lowering stages are productive exactly once;
  /// later iterations only run the cleanup passes over the native
  /// stream. At O0 this degenerates to plain lower_onto().
  bool lower_to_target = false;
  /// Fixpoint iterations over the pass list. Every productive
  /// optimization pass application strictly decreases the gate count
  /// (the lowering stages may grow it, but each is productive at most
  /// once), so this is a safety cap, not a tuning knob; 0 means iterate
  /// until no change.
  int max_iterations = 0;
  /// Lint after every productive pass application — always on, release
  /// builds included (the no-simulation complement to verify_each_pass):
  /// structural rules (wire bounds, overlapping controls, canonical
  /// symmetric wire order, coupling conformance when the before-circuit
  /// conformed to pass.target.coupling) plus pass-contract consistency
  /// against the pass's preserves() declaration. Any error-severity
  /// diagnostic throws std::logic_error naming the pass and the rule.
  bool lint_each_pass = true;
  /// Re-verify preparation equivalence after every pass application:
  /// simulate the circuit before and after the pass from |0...0> (complex
  /// statevector when z-axis gates are present, real otherwise) and
  /// require conjugate-inner-product overlap 1 up to tolerance. Throws
  /// std::logic_error naming the offending pass. Defaults on in debug
  /// builds (NDEBUG unset), off in release.
  bool verify_each_pass =
#ifdef NDEBUG
      false;
#else
      true;
#endif
  /// Verification simulates only registers at most this wide (memory for
  /// the dense statevector is 16 * 2^n bytes).
  int verify_max_qubits = 14;
  double verify_tolerance = 1e-7;
};

/// Whole-pipeline accounting: one PassReport per pass application, in
/// order, plus end-to-end figures. The per-pass deltas sum exactly to the
/// end-to-end delta (tested by the differential harness).
struct PipelineReport {
  std::vector<PassReport> passes;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t depth_before = 0;
  std::size_t depth_after = 0;
  std::int64_t cnot_cost_before = 0;
  std::int64_t cnot_cost_after = 0;
  /// Productive fixpoint iterations (iterations that changed something).
  int iterations = 0;

  std::int64_t gates_delta() const {
    return static_cast<std::int64_t>(gates_before) -
           static_cast<std::int64_t>(gates_after);
  }
  std::int64_t depth_delta() const {
    return static_cast<std::int64_t>(depth_before) -
           static_cast<std::int64_t>(depth_after);
  }
  std::int64_t cnot_cost_delta() const {
    return cnot_cost_before - cnot_cost_after;
  }
};

class PassPipeline {
 public:
  /// Pipeline over the registered passes selected by `options.level`.
  explicit PassPipeline(PipelineOptions options = {});

  /// Pipeline over an explicit pass sequence (tests, custom flows). The
  /// passes must outlive the pipeline; `options.level` is ignored.
  PassPipeline(std::vector<const Pass*> passes, PipelineOptions options);

  const PipelineOptions& options() const { return options_; }
  const std::vector<const Pass*>& passes() const { return passes_; }

  /// Run the pass sequence to a fixed point and return the rewritten
  /// circuit. With `report` non-null, per-pass and end-to-end accounting
  /// is filled in (the report is reset first).
  Circuit run(const Circuit& circuit, PipelineReport* report = nullptr) const;

  /// All registered passes, in registration (= pipeline) order.
  static const std::vector<const Pass*>& registry();

  /// Registered pass by name; nullptr when absent.
  static const Pass* find(std::string_view name);

  /// The ordered pass subset a level runs.
  static std::vector<const Pass*> level_passes(OptLevel level);

 private:
  PipelineOptions options_;
  std::vector<const Pass*> passes_;
};

/// Convenience: run the registered pipeline at `options.level`.
Circuit optimize_circuit(const Circuit& circuit,
                         const PipelineOptions& options = {},
                         PipelineReport* report = nullptr);

}  // namespace qsp
