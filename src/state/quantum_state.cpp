#include "state/quantum_state.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {
namespace {

void check_qubit_count(int n) {
  if (n < 1 || n > kMaxQubits) {
    throw std::invalid_argument("QuantumState: qubit count out of range");
  }
}

/// Remove bit `q` from x, shifting higher bits down.
BasisIndex drop_bit(BasisIndex x, int q) {
  const BasisIndex low = x & ((BasisIndex{1} << q) - 1);
  const BasisIndex high = x >> (q + 1);
  return low | (high << q);
}

}  // namespace

QuantumState::QuantumState(int num_qubits) : num_qubits_(num_qubits) {
  check_qubit_count(num_qubits);
  terms_.push_back(Term{0, 1.0});
}

QuantumState::QuantumState(int num_qubits, std::vector<Term> terms)
    : num_qubits_(num_qubits), terms_(std::move(terms)) {
  check_qubit_count(num_qubits);
  for (const Term& t : terms_) {
    if ((t.index >> num_qubits_) != 0) {
      throw std::invalid_argument("QuantumState: index exceeds register");
    }
  }
  normalize_and_check();
}

QuantumState QuantumState::from_dense(int num_qubits,
                                      const std::vector<double>& amplitudes) {
  check_qubit_count(num_qubits);
  if (amplitudes.size() != (std::size_t{1} << num_qubits)) {
    throw std::invalid_argument("from_dense: wrong vector size");
  }
  std::vector<Term> terms;
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    if (std::abs(amplitudes[i]) > kAmplitudeEpsilon) {
      terms.push_back(Term{static_cast<BasisIndex>(i), amplitudes[i]});
    }
  }
  return QuantumState(num_qubits, std::move(terms));
}

void QuantumState::normalize_and_check() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.index < b.index; });
  // Merge duplicate indices (amplitudes add coherently).
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (const Term& t : terms_) {
    if (!merged.empty() && merged.back().index == t.index) {
      merged.back().amplitude += t.amplitude;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) {
    return std::abs(t.amplitude) <= kAmplitudeEpsilon;
  });
  terms_ = std::move(merged);
  if (terms_.empty()) {
    throw std::invalid_argument("QuantumState: empty support");
  }
  double norm2 = 0.0;
  for (const Term& t : terms_) norm2 += t.amplitude * t.amplitude;
  if (norm2 <= kAmplitudeEpsilon) {
    throw std::invalid_argument("QuantumState: zero norm");
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (Term& t : terms_) t.amplitude *= inv;
}

double QuantumState::amplitude(BasisIndex x) const {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), x,
      [](const Term& t, BasisIndex v) { return t.index < v; });
  if (it != terms_.end() && it->index == x) return it->amplitude;
  return 0.0;
}

bool QuantumState::is_ground() const {
  return terms_.size() == 1 && terms_[0].index == 0;
}

bool QuantumState::is_uniform(double tol) const {
  const double expected =
      1.0 / std::sqrt(static_cast<double>(terms_.size()));
  return std::all_of(terms_.begin(), terms_.end(), [&](const Term& t) {
    return std::abs(t.amplitude - expected) <= tol;
  });
}

double QuantumState::inner_product(const QuantumState& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("inner_product: qubit count mismatch");
  }
  double acc = 0.0;
  auto it_a = terms_.begin();
  auto it_b = other.terms_.begin();
  while (it_a != terms_.end() && it_b != other.terms_.end()) {
    if (it_a->index < it_b->index) {
      ++it_a;
    } else if (it_b->index < it_a->index) {
      ++it_b;
    } else {
      acc += it_a->amplitude * it_b->amplitude;
      ++it_a;
      ++it_b;
    }
  }
  return acc;
}

double QuantumState::fidelity(const QuantumState& other) const {
  const double ip = inner_product(other);
  return ip * ip;
}

bool QuantumState::approx_equal(const QuantumState& other, double tol) const {
  if (other.num_qubits_ != num_qubits_) return false;
  return fidelity(other) >= 1.0 - tol;
}

std::vector<BasisIndex> QuantumState::cofactor_indices(int qubit,
                                                       int value) const {
  QSP_ASSERT(qubit >= 0 && qubit < num_qubits_);
  std::vector<BasisIndex> out;
  for (const Term& t : terms_) {
    if (get_bit(t.index, qubit) == value) {
      out.push_back(drop_bit(t.index, qubit));
    }
  }
  return out;
}

bool QuantumState::qubit_separable(int qubit, double tol) const {
  QSP_ASSERT(qubit >= 0 && qubit < num_qubits_);
  // Collect (rest-index, amplitude) for each branch of the qubit.
  std::vector<std::pair<BasisIndex, double>> zero, one;
  for (const Term& t : terms_) {
    auto& side = (get_bit(t.index, qubit) == 0) ? zero : one;
    side.emplace_back(drop_bit(t.index, qubit), t.amplitude);
  }
  if (zero.empty() || one.empty()) return true;  // constant qubit
  if (zero.size() != one.size()) return false;
  // Separable iff one[i].amplitude = r * zero[i].amplitude for a fixed r on
  // identical rest supports (both sides are sorted by construction).
  const double r = one.front().second / zero.front().second;
  for (std::size_t i = 0; i < zero.size(); ++i) {
    if (zero[i].first != one[i].first) return false;
    if (std::abs(one[i].second - r * zero[i].second) > tol) return false;
  }
  return true;
}

std::vector<double> QuantumState::to_dense() const {
  std::vector<double> dense(std::size_t{1} << num_qubits_, 0.0);
  for (const Term& t : terms_) dense[t.index] = t.amplitude;
  return dense;
}

std::string QuantumState::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  bool first = true;
  for (const Term& t : terms_) {
    if (!first) os << (t.amplitude < 0 ? " - " : " + ");
    if (first && t.amplitude < 0) os << '-';
    os << std::abs(t.amplitude) << '|' << to_bitstring(t.index, num_qubits_)
       << '>';
    first = false;
  }
  return os.str();
}

}  // namespace qsp
