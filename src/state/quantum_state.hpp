#pragma once
// Sparse real-amplitude quantum states. This is the public API type of the
// library: the paper restricts transitions to the X-Z plane, so every state
// handled here has real (possibly signed) amplitudes.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bitops.hpp"

namespace qsp {

/// One nonzero term `amplitude * |index>` of a state.
struct Term {
  BasisIndex index = 0;
  double amplitude = 0.0;

  friend bool operator==(const Term&, const Term&) = default;
};

/// An n-qubit pure state with real amplitudes, stored as the sorted list of
/// its nonzero terms (the "index set" S(psi) of the paper plus amplitudes).
///
/// Invariants: terms sorted by index, no duplicate indices, no zero
/// amplitudes, L2 norm == 1 (within kNormTolerance).
class QuantumState {
 public:
  static constexpr double kNormTolerance = 1e-9;
  /// Amplitudes below this magnitude are treated as zero.
  static constexpr double kAmplitudeEpsilon = 1e-12;

  /// The n-qubit ground state |0...0>.
  explicit QuantumState(int num_qubits);

  /// Build from terms; normalizes, merges duplicate indices (amplitudes add)
  /// and drops zero terms. Throws std::invalid_argument on empty support or
  /// out-of-range indices.
  QuantumState(int num_qubits, std::vector<Term> terms);

  /// Build from a dense amplitude vector of size 2^n.
  static QuantumState from_dense(int num_qubits,
                                 const std::vector<double>& amplitudes);

  int num_qubits() const { return num_qubits_; }

  /// Cardinality |S(psi)|: number of basis states with nonzero amplitude.
  int cardinality() const { return static_cast<int>(terms_.size()); }

  const std::vector<Term>& terms() const { return terms_; }

  /// Amplitude of |x> (0 if x is not in the support).
  double amplitude(BasisIndex x) const;

  /// True if this is |0...0>.
  bool is_ground() const;

  /// True if every amplitude equals +1/sqrt(m) (the paper's uniform states).
  bool is_uniform(double tol = 1e-9) const;

  /// Inner product <this|other>; states must have equal qubit counts.
  double inner_product(const QuantumState& other) const;

  /// Fidelity |<this|other>|^2.
  double fidelity(const QuantumState& other) const;

  /// True when fidelity with `other` is within `tol` of 1 (sign-insensitive,
  /// as a global -1 is unobservable).
  bool approx_equal(const QuantumState& other, double tol = 1e-7) const;

  /// The cofactor index set {x restricted to other qubits : x in S, x_q = v}.
  /// Returned indices have qubit q removed (higher bits shifted down).
  std::vector<BasisIndex> cofactor_indices(int qubit, int value) const;

  /// True if qubit q is in a product state with the rest: either constant
  /// across the support or S = S0 x {0,1} with proportional amplitudes.
  bool qubit_separable(int qubit, double tol = 1e-9) const;

  /// Dense amplitude vector of size 2^n (n <= 24 enforced).
  std::vector<double> to_dense() const;

  /// Human-readable rendering, e.g. "0.500|000> + 0.500|011> + ...".
  std::string to_string() const;

  friend bool operator==(const QuantumState&, const QuantumState&) = default;

 private:
  int num_qubits_;
  std::vector<Term> terms_;

  void normalize_and_check();
};

}  // namespace qsp
