#include "state/state_factory.hpp"

#include <cmath>
#include <stdexcept>

namespace qsp {

QuantumState make_ghz(int num_qubits) {
  const BasisIndex ones = (num_qubits >= 32)
                              ? ~BasisIndex{0}
                              : ((BasisIndex{1} << num_qubits) - 1);
  return QuantumState(num_qubits, {Term{0, 1.0}, Term{ones, 1.0}});
}

QuantumState make_w(int num_qubits) { return make_dicke(num_qubits, 1); }

QuantumState make_dicke(int num_qubits, int k) {
  if (k < 0 || k > num_qubits) {
    throw std::invalid_argument("make_dicke: k out of range");
  }
  std::vector<Term> terms;
  const BasisIndex limit = BasisIndex{1} << num_qubits;
  for (BasisIndex x = 0; x < limit; ++x) {
    if (popcount(x) == k) terms.push_back(Term{x, 1.0});
  }
  return QuantumState(num_qubits, std::move(terms));
}

QuantumState make_uniform(int num_qubits, std::vector<BasisIndex> indices) {
  std::vector<Term> terms;
  terms.reserve(indices.size());
  for (const BasisIndex x : indices) terms.push_back(Term{x, 1.0});
  QuantumState state(num_qubits, std::move(terms));
  if (state.cardinality() != static_cast<int>(indices.size())) {
    throw std::invalid_argument("make_uniform: duplicate indices");
  }
  return state;
}

QuantumState make_random_uniform(int num_qubits, int m, Rng& rng) {
  if (m < 1 || (num_qubits < kMaxQubits &&
                static_cast<std::uint64_t>(m) >
                    (std::uint64_t{1} << num_qubits))) {
    throw std::invalid_argument("make_random_uniform: bad cardinality");
  }
  const auto sampled = rng.sample_distinct(std::uint64_t{1} << num_qubits,
                                           static_cast<std::size_t>(m));
  std::vector<BasisIndex> indices;
  indices.reserve(sampled.size());
  for (const auto v : sampled) indices.push_back(static_cast<BasisIndex>(v));
  return make_uniform(num_qubits, std::move(indices));
}

QuantumState make_random_real(int num_qubits, int m, Rng& rng,
                              bool allow_negative) {
  const auto sampled = rng.sample_distinct(std::uint64_t{1} << num_qubits,
                                           static_cast<std::size_t>(m));
  std::vector<Term> terms;
  terms.reserve(sampled.size());
  for (const auto v : sampled) {
    // Avoid amplitudes too close to zero so cardinality is exactly m.
    double a = rng.next_double(0.1, 1.0);
    if (allow_negative && rng.next_bool()) a = -a;
    terms.push_back(Term{static_cast<BasisIndex>(v), a});
  }
  return QuantumState(num_qubits, std::move(terms));
}

}  // namespace qsp
