#pragma once
// Factories for the benchmark families of the paper: GHZ, W, Dicke states
// and the random uniform dense/sparse states of Table V.

#include "state/quantum_state.hpp"
#include "util/rng.hpp"

namespace qsp {

/// |GHZ_n> = (|0...0> + |1...1>)/sqrt(2).
QuantumState make_ghz(int num_qubits);

/// |W_n> = Dicke state with exactly one qubit set.
QuantumState make_w(int num_qubits);

/// Dicke state |D^k_n>: uniform superposition of all n-bit strings of
/// Hamming weight k. Throws for k outside [0, n].
QuantumState make_dicke(int num_qubits, int k);

/// Uniform superposition over `indices` (each amplitude 1/sqrt(m)).
/// Indices must be distinct.
QuantumState make_uniform(int num_qubits, std::vector<BasisIndex> indices);

/// Random uniform state with `m` distinct basis states (Table V workloads:
/// dense m = 2^{n-1}, sparse m = n).
QuantumState make_random_uniform(int num_qubits, int m, Rng& rng);

/// Random state with `m` distinct basis states and i.i.d. signed random
/// amplitudes (generality beyond the paper's uniform benchmarks).
QuantumState make_random_real(int num_qubits, int m, Rng& rng,
                              bool allow_negative = true);

}  // namespace qsp
