#include "core/parallel_beam.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/beam_core.hpp"
#include "core/parallel_astar.hpp"
#include "core/search_cache.hpp"
#include "core/search_core.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

/// Reusable rendezvous for the level-synchronous phases: the last arriver
/// runs `completion` exclusively (every other worker is blocked on the
/// condition variable), then the cycle is released. A mutex + CV rather
/// than std::barrier so the level merge has a plain lock-based
/// happens-before story under TSan, and so the merge can mutate shared
/// level state without any atomics.
class LevelBarrier {
 public:
  explicit LevelBarrier(int parties) : parties_(parties) {}

  template <class Completion>
  void arrive_and_wait(Completion&& completion) {
    MutexLock lock(mutex_);
    if (++arrived_ == parties_) {
      completion();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    // Explicit wait loop: a predicate lambda would read the guarded
    // generation counter outside annotated scope.
    const std::uint64_t generation = generation_;
    while (generation_ == generation) cv_.wait(lock);
  }

  void arrive_and_wait() {
    arrive_and_wait([] {});
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  const int parties_;
  int arrived_ QSP_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ QSP_GUARDED_BY(mutex_) = 0;
};

/// A child routed to the shard owning its canonical class.
struct BeamMail {
  CanonicalKey key;
  BeamPending pending;
};

struct alignas(64) BeamShard {
  /// Append-only node arena (ids are (shard, offset) gids): truncated
  /// ancestors must stay intact for path reconstruction, so the beam
  /// never rebinds like ClassedArena does. Chunked (NodeArena) so cross-
  /// shard parent reads in generate() can borrow by reference.
  NodeArena nodes;
  /// Best g per owned class across all levels (the duplicate-detection
  /// table; lock-free because only the owner touches it, like the HDA*
  /// per-shard arenas).
  ClassIndex<std::int64_t> best_g;
  Mutex inbox_mutex;
  std::vector<BeamMail> inbox QSP_GUARDED_BY(inbox_mutex);
  /// This level's per-owned-class winners (local children merged during
  /// generation, mailed children merged after the generation barrier).
  ClassIndex<BeamPending> level_map;
  /// This level's local top-k, sorted by (score, h, key).
  std::vector<BeamCandidate> selected;
  /// This level's best (g2, seq) goal among owned classes.
  std::optional<BeamPending> goal;
  // Owner-thread-only counters, harvested after the join.
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
};

class ParallelBeam {
 public:
  ParallelBeam(const BeamOptions& options, const SlotState& target)
      : options_(options),
        target_(target),
        h_(search_heuristic(options.heuristic, options.coupling.get())),
        level_(effective_canonical_level(options.canonical,
                                         options.coupling.get())),
        move_options_([&] {
          MoveGenOptions mo = search_move_gen_options(
              options.max_controls, options.full_candidate_cap,
              options.coupling.get(),
              effective_canonical_level(options.canonical,
                                        options.coupling.get()));
          // As in the serial beam: the descent never runs
          // uncanonicalized, so zero-cost arcs are always absorbed.
          mo.include_zero_cost = false;
          return mo;
        }()),
        deadline_(options.time_budget_seconds),
        num_shards_(resolve_num_threads(options.num_threads)),
        shards_(static_cast<std::size_t>(num_shards_)),
        gen_barrier_(num_shards_),
        level_barrier_(num_shards_) {}

  SynthesisResult run() {
    const Timer timer;
    SynthesisResult result;

    CanonicalKey root_key = canonical_key(target_, level_);
    const int root_shard = owner_of(root_key);
    BeamShard& root_home = shards_[static_cast<std::size_t>(root_shard)];
    root_home.best_g.emplace(std::move(root_key), 0);
    root_home.nodes.append(SearchNode{target_, 0, h_(target_),
                                      SearchNode::kNoParent, Move{}});
    const std::int64_t root_gid = make_shard_gid(root_shard, 0);

    const bool root_is_goal = free_reducible(target_, level_);
    if (root_is_goal) {
      goal_gid_ = root_gid;
      goal_g_ = 0;
    }

    beam_.push_back(root_gid);
    frozen_goal_g_ = goal_g_;
    done_ = root_is_goal || options_.max_levels <= 0;
    if (deadline_.expired() && !done_) {
      budget_exhausted_.store(true);
      done_ = true;
    }

    if (!done_) {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(num_shards_ - 1));
      for (int s = 1; s < num_shards_; ++s) {
        workers.emplace_back([this, s] { work(s); });
      }
      work(0);  // the calling thread is shard 0
      for (std::thread& w : workers) w.join();
    }

    for (const BeamShard& shard : shards_) {
      result.stats.nodes_expanded += shard.expanded;
      result.stats.nodes_generated += shard.generated;
      result.stats.classes_stored += shard.best_g.size();
      result.stats.arena_blocks += shard.nodes.blocks();
      result.stats.arena_bytes_peak += shard.nodes.bytes_peak();
    }
    result.stats.budget_exhausted = budget_exhausted_.load();
    result.stats.seconds = timer.seconds();
    if (goal_gid_ >= 0) {
      result.found = true;
      result.optimal = false;  // beam search gives no certificate
      result.cnot_cost = node_at(goal_gid_).g;
      result.circuit = build_goal_circuit(
          [this](std::int64_t gid) -> const SearchNode& {
            return node_at(gid);
          },
          goal_gid_, target_.num_qubits());
    }
    return result;
  }

 private:
  const SearchNode& node_at(std::int64_t gid) const {
    return shards_[static_cast<std::size_t>(shard_of_gid(gid))].nodes.node(
        local_of_gid(gid));
  }

  int owner_of(const CanonicalKey& key) const {
    return static_cast<int>(CanonicalKeyHash{}(key) %
                            static_cast<std::size_t>(num_shards_));
  }

  /// All shared level state (beam_, frozen_goal_g_, done_, goal_*) is
  /// written only inside the level barrier's completion and read by
  /// workers after the barrier releases them, so the barrier's mutex
  /// provides the happens-before edges; no atomics needed beyond the
  /// deadline flag, which generation threads may set concurrently.
  void work(int s) {
    while (!done_) {
      generate(s);
      gen_barrier_.arrive_and_wait();
      resolve_and_select(s);
      level_barrier_.arrive_and_wait([this] { merge_level(); });
    }
  }

  void generate(int s) {
    BeamShard& shard = shards_[static_cast<std::size_t>(s)];
    // Contiguous static slice of the level frontier; seq stamps use the
    // *global* frontier position, so the partition never shows in the
    // result.
    const std::size_t n = beam_.size();
    const std::size_t chunk =
        (n + static_cast<std::size_t>(num_shards_) - 1) /
        static_cast<std::size_t>(num_shards_);
    const std::size_t begin = std::min(n, static_cast<std::size_t>(s) * chunk);
    const std::size_t end = std::min(n, begin + chunk);

    // Worker-local winner staging: a class's owner is a function of its
    // key, so one map dedups this worker's children for every
    // destination before anything is mailed.
    ClassIndex<BeamPending> staged;
    for (std::size_t pos = begin; pos < end; ++pos) {
      if (deadline_.expired()) {  // wide levels must not overshoot
        budget_exhausted_.store(true);
        break;
      }
      const std::int64_t parent_gid = beam_[pos];
      // Borrowed across shards: arenas only append during the resolve
      // phase (after the generation barrier), and NodeArena references
      // are stable across appends anyway.
      const SlotState& state = node_at(parent_gid).state;
      const std::int64_t g = node_at(parent_gid).g;
      std::uint64_t move_index = 0;
      for (const Move& mv : enumerate_moves(state, move_options_)) {
        const std::uint64_t seq = beam_seq(pos, move_index++);
        ++shard.generated;
        SlotState child = apply_move(state, mv);
        if (!options_.allow_splits &&
            child.cardinality() > state.cardinality()) {
          continue;
        }
        const std::int64_t g2 = g + mv.cost;
        if (g2 >= frozen_goal_g_) continue;  // cannot improve the incumbent
        CanonicalKey key = canonical_key(child, level_);
        beam_offer(staged, std::move(key),
                   BeamPending{std::move(child), g2, seq, parent_gid, mv});
      }
      ++shard.expanded;
    }

    // Route every staged winner to its owner: own classes merge straight
    // into this shard's level map, the rest go through the mailboxes
    // (one batched append per destination, like the HDA* outbox flush).
    std::vector<std::vector<BeamMail>> outbox(
        static_cast<std::size_t>(num_shards_));
    while (!staged.empty()) {
      auto entry = staged.extract(staged.begin());
      const int owner = owner_of(entry.key());
      if (owner == s) {
        beam_offer(shard.level_map, std::move(entry.key()),
                   std::move(entry.mapped()));
      } else {
        outbox[static_cast<std::size_t>(owner)].push_back(
            BeamMail{std::move(entry.key()), std::move(entry.mapped())});
      }
    }
    for (int dest = 0; dest < num_shards_; ++dest) {
      std::vector<BeamMail>& out = outbox[static_cast<std::size_t>(dest)];
      if (out.empty()) continue;
      BeamShard& target = shards_[static_cast<std::size_t>(dest)];
      // One bulk append per destination, like the HDA* outbox flush.
      const MutexLock lock(target.inbox_mutex);
      target.inbox.insert(target.inbox.end(),
                          std::make_move_iterator(out.begin()),
                          std::make_move_iterator(out.end()));
    }
  }

  void resolve_and_select(int s) {
    BeamShard& shard = shards_[static_cast<std::size_t>(s)];
    std::vector<BeamMail> mail;
    {
      const MutexLock lock(shard.inbox_mutex);
      mail.swap(shard.inbox);
    }
    for (BeamMail& m : mail) {
      beam_offer(shard.level_map, std::move(m.key), std::move(m.pending));
    }

    // Resolve owned-class winners against the cross-level best_g, exactly
    // like the serial resolution loop (beam.cpp).
    shard.selected.clear();
    shard.goal.reset();
    while (!shard.level_map.empty()) {
      auto entry = shard.level_map.extract(shard.level_map.begin());
      BeamPending& pending = entry.mapped();
      auto [it, inserted] =
          shard.best_g.try_emplace(std::move(entry.key()), pending.g2);
      if (!inserted) {
        if (it->second <= pending.g2) continue;
        it->second = pending.g2;
      }
      if (free_reducible(pending.state, level_)) {
        if (!shard.goal.has_value() ||
            beam_pending_wins(pending, *shard.goal)) {
          shard.goal = std::move(pending);
        }
        continue;  // goals need no further expansion
      }
      const std::int64_t h = h_(pending.state);
      const int cardinality = pending.state.cardinality();
      const std::int64_t local =
          shard.nodes.append(SearchNode{std::move(pending.state), pending.g2,
                                        h, pending.parent, pending.via});
      shard.selected.push_back(BeamCandidate{
          beam_score(pending.g2, h, cardinality, options_.cardinality_weight),
          h, pending.g2, &it->first, make_shard_gid(s, local)});
    }
    // Per-shard top-k: the global top beam_width is contained in the
    // union of per-shard top beam_widths, so truncating locally first
    // shrinks the serial merge below without changing it.
    std::sort(shard.selected.begin(), shard.selected.end(),
              beam_candidate_less);
    if (static_cast<int>(shard.selected.size()) > options_.beam_width) {
      shard.selected.resize(static_cast<std::size_t>(options_.beam_width));
    }
  }

  /// Runs exclusively on the last thread into the level barrier while
  /// every other worker is parked: adopt the level's goal, k-select the
  /// next frontier from the per-shard top-k lists, and decide whether to
  /// descend further.
  void merge_level() {
    int goal_shard = -1;
    for (int s = 0; s < num_shards_; ++s) {
      const auto& offer = shards_[static_cast<std::size_t>(s)].goal;
      if (!offer.has_value()) continue;
      if (goal_shard < 0 ||
          beam_pending_wins(
              *offer, *shards_[static_cast<std::size_t>(goal_shard)].goal)) {
        goal_shard = s;
      }
    }
    if (goal_shard >= 0) {
      BeamShard& home = shards_[static_cast<std::size_t>(goal_shard)];
      BeamPending& offer = *home.goal;
      if (offer.g2 < goal_g_) {
        // The goal node lives with the shard that resolved its class.
        const std::int64_t local =
            home.nodes.append(SearchNode{std::move(offer.state), offer.g2, 0,
                                         offer.parent, offer.via});
        goal_gid_ = make_shard_gid(goal_shard, local);
        goal_g_ = offer.g2;
      }
    }

    // Merge the per-shard top-k lists (each already sorted and at most
    // beam_width long) and truncate — identical to the serial global
    // sort because (score, h, key) is a total order over class winners.
    std::vector<BeamCandidate> merged;
    for (BeamShard& shard : shards_) {
      merged.insert(merged.end(), shard.selected.begin(),
                    shard.selected.end());
      shard.selected.clear();
    }
    std::sort(merged.begin(), merged.end(), beam_candidate_less);
    if (static_cast<int>(merged.size()) > options_.beam_width) {
      merged.resize(static_cast<std::size_t>(options_.beam_width));
    }
    // Keep only states that can still beat the incumbent (h admissible).
    if (goal_gid_ >= 0) {
      std::erase_if(merged, [&](const BeamCandidate& c) {
        return c.g + c.h >= goal_g_;
      });
    }
    beam_.clear();
    beam_.reserve(merged.size());
    for (const BeamCandidate& c : merged) beam_.push_back(c.id);

    frozen_goal_g_ = goal_g_;
    ++depth_;
    const bool more_levels =
        depth_ < options_.max_levels && !beam_.empty();
    if (more_levels && deadline_.expired()) {
      budget_exhausted_.store(true);
    }
    done_ = !more_levels || deadline_.expired();
  }

  const BeamOptions& options_;
  const SlotState& target_;
  /// The shared searcher heuristic (search_core::search_heuristic); the
  /// beam always prices against the device (no certificate to protect).
  const decltype(search_heuristic(HeuristicMode::kZero, nullptr)) h_;
  const CanonicalLevel level_;
  const MoveGenOptions move_options_;
  const Deadline deadline_;
  const int num_shards_;
  std::vector<BeamShard> shards_;
  LevelBarrier gen_barrier_;
  LevelBarrier level_barrier_;

  // Level state: written by merge_level() (and run() before the spawn),
  // read by workers after the barrier releases them.
  std::vector<std::int64_t> beam_;
  std::int64_t goal_gid_ = -1;
  std::int64_t goal_g_ = kInfiniteCost;
  std::int64_t frozen_goal_g_ = kInfiniteCost;
  int depth_ = 0;
  bool done_ = false;
  std::atomic<bool> budget_exhausted_{false};
};

}  // namespace

ParallelBeamSynthesizer::ParallelBeamSynthesizer(BeamOptions options)
    : options_(options) {
  validate_search_coupling("ParallelBeamSynthesizer",
                           options_.coupling.get());
}

SynthesisResult ParallelBeamSynthesizer::synthesize(
    const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "ParallelBeamSynthesizer: target has no slot decomposition");
  }
  return synthesize(*slot);
}

SynthesisResult ParallelBeamSynthesizer::synthesize(
    const SlotState& target) const {
  // Direct entry point (tests/benches): consult-only cache probe, same
  // rationale as the serial beam — a stored certified-optimal circuit
  // beats any descent, but beam results can never populate the cache.
  // The BeamSynthesizer dispatch path clears `cache` first so one search
  // never probes twice.
  ScopedCacheProbe probe(options_.cache.get(), target,
                         options_.coupling.get(), options_.max_controls,
                         options_.time_budget_seconds,
                         /*consult_only=*/true);
  if (probe.hit()) return probe.result();
  ParallelBeam descent(options_, target);
  return descent.run();
}

}  // namespace qsp
