#pragma once
// The A* shortest-path solver of paper Section V (Algorithm 1). Searches
// from the target state toward the ground-state equivalence class; the
// returned circuit is the adjoint of the discovered arc sequence plus a
// zero-cost disentangling suffix, and provably CNOT-optimal whenever the
// search completes (admissible heuristic + node reopening).

#include <cstdint>
#include <memory>

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "core/slot_state.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

class SearchCache;

struct SearchOptions {
  HeuristicMode heuristic = HeuristicMode::kComponent;
  CanonicalLevel canonical = CanonicalLevel::kPU2Exact;
  /// Rotation-arc control budget; -1 means unrestricted (n - 1).
  int max_controls = -1;
  /// Abort after generating this many arcs (0 = unlimited).
  std::uint64_t node_budget = 5'000'000;
  /// Abort after this many seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
  /// Rotation-candidate enumeration cap (see MoveGenOptions); searches on
  /// states whose slot total exceeds this lose the optimality certificate.
  std::uint64_t full_candidate_cap = 4096;
  /// Optional coupling constraint: arc costs become routed CNOT costs and
  /// qubit-permutation canonicalization is disabled unless the graph is
  /// complete (relabeling is only free on a symmetric coupling, as the
  /// paper notes). The graph must be connected (searcher constructors
  /// throw otherwise). Route the result with arch/routing.hpp to realize
  /// the reported cost on hardware.
  std::shared_ptr<const CouplingGraph> coupling;
  /// Price the admissible heuristic against the coupling's routed-cost
  /// surface (Steiner-connection bound, core/heuristic.hpp). Turning this
  /// off reproduces the coupling-blind unit-merge bound — still
  /// admissible, so the optimum is unchanged, but the search expands more
  /// nodes on restricted topologies (ablation_coupling quantifies it).
  bool routed_heuristic = true;
  /// Worker shards for the exact search: 1 runs the serial kernel, larger
  /// values run the sharded HDA* kernel (core/parallel_astar.hpp) with
  /// that many threads, 0 uses all hardware threads. The parallel kernel
  /// keeps the optimality certificate (see docs/ARCHITECTURE.md).
  int num_threads = 1;
  /// Optional cross-request equivalence cache (core/search_cache.hpp).
  /// When set, the search first consults the cache for the target's
  /// canonical class (possibly waiting on another thread's in-flight
  /// search of the same class) and publishes certified-optimal results
  /// back into it. nullptr = no caching (the default; all one-shot paths
  /// are unchanged).
  std::shared_ptr<SearchCache> cache;
};

struct SearchStats {
  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_generated = 0;
  std::uint64_t classes_stored = 0;
  /// Queue-pressure signal tracked by micro_core and fig7_runtime: the
  /// sum over shards of each shard's own peak open-list population. For
  /// the serial kernels (one shard) this is the true peak; for the
  /// sharded kernels it is an upper bound on the instantaneous global
  /// peak, since shard peaks need not coincide in time.
  std::uint64_t sum_shard_peak_open_size = 0;
  /// Lazy-deletion discards: popped entries whose pushed g was already
  /// beaten by a rebind (summed over shards in the parallel kernel).
  std::uint64_t stale_pops = 0;
  /// Allocation-pressure signals from the node arena (core/search_core):
  /// blocks allocated and peak resident bytes (node blocks plus slot-entry
  /// heap storage), summed over shards. Visible in micro_core JSON so
  /// allocator wins show up next to wall time.
  std::uint64_t arena_blocks = 0;
  std::uint64_t arena_bytes_peak = 0;
  double seconds = 0.0;
  /// True if the search ran to completion (goal popped, and for the
  /// sharded kernel: certified against every shard's frontier) within
  /// budget.
  bool completed = false;
  /// True if the search stopped early because its node or wall-clock
  /// budget ran out (A*/HDA*: aborted before certifying; beam: a level
  /// was truncated or skipped on deadline expiry). Distinguishes a
  /// budget-truncated result — which might improve with more budget —
  /// from a genuinely finished descent or an exhausted search space.
  bool budget_exhausted = false;
};

struct SynthesisResult {
  bool found = false;
  /// True when the result is provably CNOT-optimal (A* completion).
  bool optimal = false;
  std::int64_t cnot_cost = -1;
  Circuit circuit{1};
  SearchStats stats;
};

class AStarSynthesizer {
 public:
  explicit AStarSynthesizer(SearchOptions options = {});

  /// Synthesize a preparation circuit for the slot-encoded target.
  SynthesisResult synthesize(const SlotState& target) const;

  /// Convenience: decompose a sparse state into slots first. Throws
  /// std::invalid_argument if the state has no slot decomposition.
  SynthesisResult synthesize(const QuantumState& target) const;

  const SearchOptions& options() const { return options_; }

 private:
  SearchOptions options_;
};

}  // namespace qsp
