#include "core/heuristic.hpp"

#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace qsp {
namespace {

/// Union-find over qubit ids.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

/// True if qubits p and q are statistically dependent in the measurement
/// distribution. With binary marginals a single cell check suffices:
/// m * n11 != n1. * n.1  <=>  dependent. Counts fit 64 bits; the products
/// are compared in 128 bits.
bool correlated(const SlotState& state, int p, int q) {
  std::uint64_t n11 = 0, n1_ = 0, n_1 = 0;
  for (const SlotEntry& e : state.entries()) {
    const std::uint64_t bp = static_cast<std::uint64_t>(get_bit(e.index, p));
    const std::uint64_t bq = static_cast<std::uint64_t>(get_bit(e.index, q));
    n1_ += bp * e.count;
    n_1 += bq * e.count;
    n11 += (bp & bq) * e.count;
  }
  const std::uint64_t m = state.total();
  return static_cast<unsigned __int128>(n11) * m !=
         static_cast<unsigned __int128>(n1_) * n_1;
}

}  // namespace

std::int64_t heuristic_lower_bound(const SlotState& state,
                                   HeuristicMode mode) {
  if (mode == HeuristicMode::kZero) return 0;

  const int n = state.num_qubits();
  std::vector<int> entangled;
  for (int q = 0; q < n; ++q) {
    if (!state.qubit_separable(q)) entangled.push_back(q);
  }
  if (entangled.empty()) return 0;

  if (mode == HeuristicMode::kPair) {
    return (static_cast<std::int64_t>(entangled.size()) + 1) / 2;
  }

  // kComponent: connected components of the correlation graph restricted to
  // entangled qubits.
  DisjointSets sets(n);
  for (std::size_t i = 0; i < entangled.size(); ++i) {
    for (std::size_t j = i + 1; j < entangled.size(); ++j) {
      if (correlated(state, entangled[i], entangled[j])) {
        sets.unite(entangled[i], entangled[j]);
      }
    }
  }
  std::vector<int> size(static_cast<std::size_t>(n), 0);
  for (const int q : entangled) ++size[static_cast<std::size_t>(sets.find(q))];
  std::int64_t bound = 0;
  std::int64_t singletons = 0;
  for (int r = 0; r < n; ++r) {
    const int k = size[static_cast<std::size_t>(r)];
    if (k >= 2) bound += k - 1;
    if (k == 1) ++singletons;
  }
  bound += (singletons + 1) / 2;
  return bound;
}

}  // namespace qsp
