#include "core/heuristic.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace qsp {
namespace {

/// Union-find over qubit ids (array-backed: n <= kMaxQubits, and this is
/// built once per heuristic evaluation).
class DisjointSets {
 public:
  explicit DisjointSets(int n) {
    std::iota(parent_.begin(), parent_.begin() + n, 0);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::array<int, kMaxQubits> parent_;
};

/// True if qubits p and q are statistically dependent in the measurement
/// distribution. With binary marginals a single cell check suffices:
/// m * n11 != n1. * n.1  <=>  dependent. Counts fit 64 bits; the products
/// are compared in 128 bits. The three cell counts are weighted column
/// sums over the entry words (wide primitives, util/bitops).
bool correlated(const SlotState& state, int p, int q) {
  const std::uint64_t* words = entry_words(state.entries());
  const std::size_t n = state.entries().size();
  const std::uint64_t n1_ = wideops::weight_sum_if_bit(words, n, p);
  const std::uint64_t n_1 = wideops::weight_sum_if_bit(words, n, q);
  const std::uint64_t n11 = wideops::weight_sum_if_bits(words, n, p, q);
  const std::uint64_t m = state.total();
  return static_cast<unsigned __int128>(n11) * m !=
         static_cast<unsigned __int128>(n1_) * n_1;
}

/// Grouping DP cap: beyond this many correlation parts the coupling-aware
/// refinement falls back to the unit bound (still admissible). Exact-search
/// states stay far below it.
constexpr std::size_t kMaxGroupedParts = 8;

/// Coupling-priced component bound: minimize, over every partition of the
/// correlation parts (components as qubit masks, singletons as one-bit
/// masks), the summed Steiner size of each group's union — the fewest
/// device edges any circuit realizing that grouping must spend. A lone
/// singleton still needs one incident edge (cost 1, its Steiner size is 0).
std::int64_t grouped_steiner_bound(const CouplingGraph& coupling,
                                   const std::uint32_t* parts,
                                   std::size_t j) {
  const std::uint32_t all = (1u << j) - 1;
  // Stack buffers: this runs once per generated search node, and j is
  // capped at kMaxGroupedParts.
  std::array<std::uint32_t, std::size_t{1} << kMaxGroupedParts> unions;
  unions[0] = 0;
  for (std::uint32_t s = 1; s <= all; ++s) {
    unions[s] = unions[s & (s - 1)] |
                parts[static_cast<std::size_t>(std::countr_zero(s))];
  }
  constexpr std::int64_t kBig = std::numeric_limits<std::int64_t>::max() / 2;
  std::array<std::int64_t, std::size_t{1} << kMaxGroupedParts> best;
  best.fill(kBig);
  best[0] = 0;
  for (std::uint32_t s = 1; s <= all; ++s) {
    const std::uint32_t low = s & (0u - s);
    for (std::uint32_t group = s; group != 0; group = (group - 1) & s) {
      if ((group & low) == 0) continue;  // anchor groups on the lowest part
      const std::uint32_t mask = unions[group];
      const std::int64_t cost = (mask & (mask - 1)) == 0
                                    ? 1
                                    : coupling.steiner_edges(mask);
      best[s] = std::min(best[s], cost + best[s ^ group]);
    }
  }
  return best[all];
}

}  // namespace

std::int64_t heuristic_lower_bound(const SlotState& state, HeuristicMode mode,
                                   const CouplingGraph* coupling) {
  if (mode == HeuristicMode::kZero) return 0;

  // This runs once per generated search node; qubit-indexed scratch lives
  // in fixed stack arrays (n <= kMaxQubits) instead of per-call vectors.
  const int n = state.num_qubits();
  std::array<int, kMaxQubits> entangled;
  std::size_t num_entangled = 0;
  for (int q = 0; q < n; ++q) {
    if (!state.qubit_separable(q)) entangled[num_entangled++] = q;
  }
  if (num_entangled == 0) return 0;

  if (mode == HeuristicMode::kPair) {
    return (static_cast<std::int64_t>(num_entangled) + 1) / 2;
  }

  // kComponent: connected components of the correlation graph restricted to
  // entangled qubits.
  DisjointSets sets(n);
  for (std::size_t i = 0; i < num_entangled; ++i) {
    for (std::size_t j = i + 1; j < num_entangled; ++j) {
      if (correlated(state, entangled[i], entangled[j])) {
        sets.unite(entangled[i], entangled[j]);
      }
    }
  }
  std::array<std::uint32_t, kMaxQubits> mask;
  mask.fill(0);
  for (std::size_t i = 0; i < num_entangled; ++i) {
    const int q = entangled[i];
    mask[static_cast<std::size_t>(sets.find(q))] |= std::uint32_t{1} << q;
  }
  std::int64_t unit_bound = 0;
  std::int64_t singletons = 0;
  std::array<std::uint32_t, kMaxQubits> parts;
  std::size_t num_parts = 0;
  for (int r = 0; r < n; ++r) {
    const std::uint32_t part = mask[static_cast<std::size_t>(r)];
    if (part == 0) continue;
    parts[num_parts++] = part;
    const int k = popcount(part);
    if (k >= 2) unit_bound += k - 1;
    if (k == 1) ++singletons;
  }
  unit_bound += (singletons + 1) / 2;

  if (coupling == nullptr || coupling->is_complete() ||
      coupling->num_qubits() < n || num_parts > kMaxGroupedParts) {
    return unit_bound;
  }
  // The grouped bound can never fall below the unit bound (device Steiner
  // sizes dominate their complete-graph counterparts), but the max keeps
  // the guarantee explicit.
  return std::max(unit_bound,
                  grouped_steiner_bound(*coupling, parts.data(), num_parts));
}

}  // namespace qsp
