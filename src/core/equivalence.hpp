#pragma once
// Brute-force equivalence-class counting for uniform states (paper
// Table III). A uniform n-qubit state is identified with its nonempty index
// set S, encoded as a bitmask over the 2^n basis positions. Zero-cost
// generators connect equivalent states:
//   X(t)            translate every index by e_t
//   merge(t)        when S is closed under xor e_t: keep the t=0 half
//   split(t)        when qubit t is constant on S: S union (S xor e_t)
//   swap(p, q)      qubit permutation generators (P U(2) level only)
// Connected components under these generators are the equivalence classes
// V_G / U(2) and V_G / P U(2); a class is attributed to the cardinality of
// its smallest member (its canonical representative).

#include <cstdint>
#include <vector>

namespace qsp {

struct ClassCounts {
  int m = 0;                       ///< cardinality (row of Table III)
  std::uint64_t total_states = 0;  ///< |V_G| = C(2^n, m)
  std::uint64_t u2_classes = 0;    ///< classes with minimal cardinality m
  std::uint64_t pu2_classes = 0;   ///< same, with qubit permutations
  std::uint64_t u2_touching = 0;   ///< classes containing any m-state
  std::uint64_t pu2_touching = 0;
};

/// Count equivalence classes of uniform n-qubit states for cardinalities
/// 1..max_m. Enumerates all 2^(2^n)-1 nonempty subsets: n <= 4 enforced.
std::vector<ClassCounts> count_uniform_equivalence_classes(int n, int max_m);

}  // namespace qsp
