#include "core/slot_state.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {

SlotState::SlotState(int num_qubits, std::vector<SlotEntry> entries)
    : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("SlotState: qubit count out of range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const SlotEntry& a, const SlotEntry& b) {
              return a.index < b.index;
            });
  entries_.reserve(entries.size());
  for (const SlotEntry& e : entries) {
    if ((e.index >> num_qubits_) != 0) {
      throw std::invalid_argument("SlotState: index exceeds register");
    }
    if (e.count == 0) continue;
    if (!entries_.empty() && entries_.back().index == e.index) {
      entries_.back().count += e.count;
    } else {
      entries_.push_back(e);
    }
    total_ += e.count;
  }
  if (entries_.empty()) {
    throw std::invalid_argument("SlotState: no slots");
  }
}

SlotState SlotState::from_indices(int num_qubits,
                                  const std::vector<BasisIndex>& slots) {
  std::vector<SlotEntry> entries;
  entries.reserve(slots.size());
  for (const BasisIndex x : slots) entries.push_back(SlotEntry{x, 1});
  return SlotState(num_qubits, std::move(entries));
}

SlotState SlotState::ground(int num_qubits, std::uint32_t total) {
  return SlotState(num_qubits, {SlotEntry{0, total}});
}

std::optional<SlotState> SlotState::from_state(const QuantumState& state,
                                               std::uint32_t max_total) {
  const auto& terms = state.terms();
  for (const Term& t : terms) {
    if (t.amplitude < 0) return std::nullopt;
  }
  const auto m0 = static_cast<std::uint32_t>(state.cardinality());
  for (std::uint64_t m = m0; m <= max_total; ++m) {
    std::vector<SlotEntry> entries;
    entries.reserve(terms.size());
    bool ok = true;
    std::uint64_t used = 0;
    for (const Term& t : terms) {
      const double exact = t.amplitude * t.amplitude * static_cast<double>(m);
      const auto count = static_cast<std::uint64_t>(std::llround(exact));
      if (count < 1 || std::abs(exact - static_cast<double>(count)) > 1e-6) {
        ok = false;
        break;
      }
      used += count;
      entries.push_back(SlotEntry{t.index, static_cast<std::uint32_t>(count)});
    }
    if (ok && used == m) {
      return SlotState(state.num_qubits(), std::move(entries));
    }
  }
  return std::nullopt;
}

QuantumState SlotState::to_state() const {
  std::vector<Term> terms;
  terms.reserve(entries_.size());
  const double m = static_cast<double>(total_);
  for (const SlotEntry& e : entries_) {
    terms.push_back(Term{e.index, std::sqrt(static_cast<double>(e.count) / m)});
  }
  return QuantumState(num_qubits_, std::move(terms));
}

bool SlotState::is_ground() const {
  return entries_.size() == 1 && entries_[0].index == 0;
}

SlotState SlotState::with_x(int target) const {
  QSP_ASSERT(target >= 0 && target < num_qubits_);
  std::vector<SlotEntry> out(entries_);
  for (SlotEntry& e : out) e.index = flip_bit(e.index, target);
  return SlotState(num_qubits_, std::move(out));
}

SlotState SlotState::with_cnot(int control, bool positive,
                               int target) const {
  QSP_ASSERT(control >= 0 && control < num_qubits_ && control != target);
  QSP_ASSERT(target >= 0 && target < num_qubits_);
  const int want = positive ? 1 : 0;
  std::vector<SlotEntry> out(entries_);
  for (SlotEntry& e : out) {
    if (get_bit(e.index, control) == want) e.index = flip_bit(e.index, target);
  }
  return SlotState(num_qubits_, std::move(out));
}

SlotState SlotState::with_permutation(const std::vector<int>& perm) const {
  QSP_ASSERT(static_cast<int>(perm.size()) == num_qubits_);
  std::vector<SlotEntry> out(entries_);
  for (SlotEntry& e : out) e.index = permute_bits(e.index, perm);
  return SlotState(num_qubits_, std::move(out));
}

SlotState SlotState::with_translation(BasisIndex mask) const {
  QSP_ASSERT((mask >> num_qubits_) == 0);
  std::vector<SlotEntry> out(entries_);
  for (SlotEntry& e : out) e.index ^= mask;
  return SlotState(num_qubits_, std::move(out));
}

bool SlotState::qubit_constant(int qubit, int* value) const {
  QSP_ASSERT(qubit >= 0 && qubit < num_qubits_);
  const wideops::ColumnBits cb =
      wideops::bit_column_or_and(entry_words(entries_), entries_.size(), qubit);
  if (cb.any != cb.all) return false;  // column is mixed
  if (value != nullptr) *value = cb.any ? 1 : 0;
  return true;
}

bool SlotState::qubit_separable(int qubit) const {
  QSP_ASSERT(qubit >= 0 && qubit < num_qubits_);
  // Group entries by rest-index (bit `qubit` cleared); separable iff the
  // count ratios k_r/j_r agree across groups (cross-multiplication test).
  // Entries are index-sorted and unique, so the bit-clear and bit-set
  // subsequences are each rest-sorted with at most one member per group:
  // a two-pointer merge-join walks the groups in ascending rest order
  // without materializing a rest-keyed map.
  const BasisIndex bit = BasisIndex{1} << qubit;
  const std::size_t m = entries_.size();
  const auto next_clear = [&](std::size_t i) {
    while (i < m && (entries_[i].index & bit) != 0) ++i;
    return i;
  };
  const auto next_set = [&](std::size_t i) {
    while (i < m && (entries_[i].index & bit) == 0) ++i;
    return i;
  };
  constexpr BasisIndex kNoRest = ~BasisIndex{0};  // > any real index
  std::size_t a = next_clear(0);
  std::size_t b = next_set(0);
  std::uint64_t j0 = 0, k0 = 0;
  bool have_first = false;
  while (a < m || b < m) {
    const BasisIndex ra = a < m ? entries_[a].index : kNoRest;
    const BasisIndex rb = b < m ? (entries_[b].index ^ bit) : kNoRest;
    const bool take_a = ra <= rb;
    const bool take_b = rb <= ra;
    std::uint64_t j = 0, k = 0;
    if (take_a) {
      j = entries_[a].count;
      a = next_clear(a + 1);
    }
    if (take_b) {
      k = entries_[b].count;
      b = next_set(b + 1);
    }
    if (!have_first) {
      j0 = j;
      k0 = k;
      have_first = true;
      continue;
    }
    // Counts are bounded by 2^32, so the cross products fit in 128 bits.
    if (static_cast<unsigned __int128>(k) * j0 !=
        static_cast<unsigned __int128>(k0) * j) {
      return false;
    }
  }
  return true;
}

std::size_t SlotState::hash() const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(num_qubits_));
  for (const SlotEntry& e : entries_) {
    mix((static_cast<std::uint64_t>(e.index) << 32) | e.count);
  }
  return h;
}

std::string SlotState::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) os << ',';
    os << to_bitstring(entries_[i].index, num_qubits_);
    if (entries_[i].count != 1) os << "x" << entries_[i].count;
  }
  os << '}';
  return os.str();
}

}  // namespace qsp
