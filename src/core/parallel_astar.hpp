#pragma once
// Sharded parallel exact search (HDA*-style, Kishimoto et al.): the open
// list is partitioned across SearchOptions::num_threads workers by hashing
// each node's canonical key, so every equivalence class has exactly one
// owning shard and the duplicate-detection table needs no global locking.
// Successors are routed to their owner through mutex-striped mailboxes.
//
// The optimality certificate survives parallelization: the search only
// terminates when an incumbent goal's g is <= the minimum f over every
// shard's frontier AND no successor message is still in flight (tracked
// with monotonic sent/received counters and a double-read of the idle
// state). With the admissible heuristic, any undiscovered path to a
// cheaper goal would have to pass through a frontier node of smaller f,
// which cannot exist at that point — the same argument as serial A*
// completion (termination proof sketch in docs/ARCHITECTURE.md).
//
// `AStarSynthesizer` dispatches here automatically when
// SearchOptions::num_threads != 1; this header is the direct entry point
// used by the determinism tests and the thread-scaling benches.

#include "core/astar.hpp"

namespace qsp {

/// Resolve a SearchOptions::num_threads request: 0 means all hardware
/// threads, anything else is clamped to at least 1.
int resolve_num_threads(int requested);

class ParallelAStarSynthesizer {
 public:
  explicit ParallelAStarSynthesizer(SearchOptions options = {});

  /// Synthesize a preparation circuit for the slot-encoded target. Returns
  /// the same cnot_cost and `optimal` certificate as the serial kernel on
  /// every instance the serial kernel certifies; if the budget runs out
  /// after an incumbent goal was found, the incumbent is returned as an
  /// anytime result with `optimal == false` (the serial kernel reports
  /// not-found in that situation, as it has no incumbent before the goal
  /// pop).
  SynthesisResult synthesize(const SlotState& target) const;

  /// Convenience: decompose a sparse state into slots first. Throws
  /// std::invalid_argument if the state has no slot decomposition.
  SynthesisResult synthesize(const QuantumState& target) const;

  const SearchOptions& options() const { return options_; }

 private:
  SearchOptions options_;
};

}  // namespace qsp
