#pragma once
// State compression by canonicalization (paper Section V-B). States are
// grouped into equivalence classes under zero-CNOT-cost operations:
//   U(2):   single-qubit gates  -> X-translations + free merges of
//           separable qubits (which also "filter out separable qubits")
//   P U(2): additionally qubit permutations (symmetric coupling assumed)
//
// The search stores one raw state per class; keys are canonical slot
// vectors, so collisions are impossible by construction.

#include <cstddef>
#include <vector>

#include "circuit/gate.hpp"
#include "core/slot_state.hpp"

namespace qsp {

enum class CanonicalLevel {
  kNone,       ///< identity (ablation; zero-cost arcs must be searched)
  kU2,         ///< free merges + X-translation minimization
  kPU2Greedy,  ///< + deterministic greedy qubit ordering (sound, may split
               ///<   an orbit into several classes; used for larger n)
  kPU2Exact,   ///< + exact lex-min over all qubit permutations (n <= 8)
};

/// Canonical form: sorted (index << 32 | count) entries after compression
/// and transform minimization. Equal keys <=> same equivalence class
/// (kNone/kU2/kPU2Exact) or same sub-class (kPU2Greedy).
using CanonicalKey = std::vector<std::uint64_t>;

struct CanonicalKeyHash {
  std::size_t operator()(const CanonicalKey& key) const;
};

/// Apply all zero-cost merges: clear every separable non-constant qubit to
/// 0, repeating to a fixed point. Slot count is preserved. When
/// `merge_gates` is non-null, the Ry gates realizing each merge on the
/// statevector are appended to it (in application order).
SlotState compress_free(const SlotState& state,
                        std::vector<Gate>* merge_gates = nullptr);

/// Canonical key of the state's equivalence class at the given level.
CanonicalKey canonical_key(const SlotState& state, CanonicalLevel level);

/// A canonical key together with the zero-cost transformation that reaches
/// it: applying `merge_gates` (in order), then an X on every set bit of
/// `translation`, then relabeling qubits (bit permutation[q] of the new
/// index is bit q of the old one) maps the state's vector exactly onto the
/// amplitudes of the canonical form read as a slot state. The equivalence
/// cache uses this to rewire one class representative's optimal circuit
/// onto another member of the same class at zero extra CNOT cost.
struct CanonicalWitness {
  CanonicalKey key;
  std::vector<Gate> merge_gates;
  BasisIndex translation = 0;
  std::vector<int> permutation;
};

/// Witness variant of canonical_key: `result.key` equals
/// canonical_key(state, level) bit for bit (both run the same candidate
/// scan), plus the transformation that realizes it.
CanonicalWitness canonical_witness(const SlotState& state,
                                   CanonicalLevel level);

/// True if the state is reducible to ground by zero-cost gates alone.
bool free_reducible(const SlotState& state, CanonicalLevel level);

/// Zero-cost gate sequence (Ry merges and X flips) mapping `state` to the
/// ground state. Throws std::invalid_argument if the state is not fully
/// separable. If `reached` is non-null it receives the final slot state.
std::vector<Gate> free_disentangle_gates(const SlotState& state,
                                         SlotState* reached = nullptr);

/// Like free_disentangle_gates but stops instead of throwing when only
/// entangled qubits remain: peels all separable structure (Ry merges, X
/// flips) and returns the gates; `state` is updated to the peeled form,
/// whose qubits are each either constant 0 or entangled.
std::vector<Gate> free_peel_gates(SlotState& state);

}  // namespace qsp
