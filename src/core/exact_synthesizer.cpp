#include "core/exact_synthesizer.hpp"

#include <stdexcept>

#include "core/search_core.hpp"
#include "util/timer.hpp"

namespace qsp {

ExactSynthesizer::ExactSynthesizer(ExactSynthesisOptions options)
    : options_(options) {
  validate_search_coupling("ExactSynthesizer", options_.astar.coupling.get());
  validate_search_coupling("ExactSynthesizer", options_.beam.coupling.get());
}

SynthesisResult ExactSynthesizer::synthesize(const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "ExactSynthesizer: target has no slot decomposition");
  }
  return synthesize(*slot);
}

SynthesisResult ExactSynthesizer::synthesize(const SlotState& target) const {
  const Deadline deadline(options_.time_budget_seconds);
  SearchOptions astar_options = options_.astar;
  astar_options.time_budget_seconds =
      clamp_budget(astar_options.time_budget_seconds, deadline);
  const AStarSynthesizer astar(astar_options);
  SynthesisResult result = astar.synthesize(target);
  if (result.found || !options_.enable_beam_fallback) return result;

  BeamOptions beam_options = options_.beam;
  beam_options.time_budget_seconds =
      clamp_budget(beam_options.time_budget_seconds, deadline);
  const BeamSynthesizer beam(beam_options);
  SynthesisResult fallback = beam.synthesize(target);
  // Keep the A* statistics visible: the fallback happened because the
  // exact search ran out of budget. That includes budget_exhausted — a
  // fallback result is budget-shaped even when the beam itself finished
  // its descent, so the flag tells callers more budget could improve it.
  fallback.stats.nodes_expanded += result.stats.nodes_expanded;
  fallback.stats.nodes_generated += result.stats.nodes_generated;
  fallback.stats.seconds += result.stats.seconds;
  fallback.stats.budget_exhausted |= result.stats.budget_exhausted;
  return fallback;
}

}  // namespace qsp
