#include "core/moves.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "circuit/cost_model.hpp"
#include "util/assert.hpp"

namespace qsp {
namespace {

constexpr double kCountEpsilon = 1e-6;
constexpr double kAngleEpsilon = 1e-9;

/// Rotate the count pair (j, k) by theta/2 in amplitude space; returns
/// false unless both images are (near-)non-negative integers summing to
/// j + k.
bool rotate_counts(std::uint64_t j, std::uint64_t k, double co, double si,
                   std::uint64_t* j_out, std::uint64_t* k_out) {
  const double a = std::sqrt(static_cast<double>(j));
  const double b = std::sqrt(static_cast<double>(k));
  const double a2 = co * a - si * b;
  const double b2 = si * a + co * b;
  if (a2 < -kCountEpsilon || b2 < -kCountEpsilon) return false;
  const double j2 = a2 * a2;
  const double k2 = b2 * b2;
  const auto ji = static_cast<std::uint64_t>(std::llround(j2));
  const auto ki = static_cast<std::uint64_t>(std::llround(k2));
  if (std::abs(j2 - static_cast<double>(ji)) > kCountEpsilon ||
      std::abs(k2 - static_cast<double>(ki)) > kCountEpsilon) {
    return false;
  }
  if (ji + ki != j + k) return false;
  *j_out = ji;
  *k_out = ki;
  return true;
}

/// Angle moving amplitude pair (sqrt(j), sqrt(k)) onto (sqrt(j2), sqrt(k2)).
double rotation_angle(std::uint64_t j, std::uint64_t k, std::uint64_t j2,
                      std::uint64_t k2) {
  const double alpha = std::atan2(std::sqrt(static_cast<double>(k)),
                                  std::sqrt(static_cast<double>(j)));
  const double alpha2 = std::atan2(std::sqrt(static_cast<double>(k2)),
                                   std::sqrt(static_cast<double>(j2)));
  return 2.0 * (alpha2 - alpha);
}

/// Rest-index -> (count at t=0, count at t=1) over satisfying entries.
using GroupMap = std::map<BasisIndex, std::pair<std::uint64_t, std::uint64_t>>;

void enumerate_rotations_for(const SlotState& state, int target,
                             const std::vector<int>& subset,
                             const MoveGenOptions& options,
                             std::vector<Move>& out) {
  const int num_controls = static_cast<int>(subset.size());
  if (num_controls == 0 && !options.include_zero_cost) return;
  const std::uint64_t m = state.total();
  const BasisIndex tbit = BasisIndex{1} << target;

  // Bucket entries by control pattern, then by rest-index.
  std::map<std::uint32_t, GroupMap> by_pattern;
  std::map<std::uint32_t, std::uint64_t> satisfied_weight;
  for (const SlotEntry& e : state.entries()) {
    std::uint32_t pattern = 0;
    for (int b = 0; b < num_controls; ++b) {
      if (get_bit(e.index, subset[static_cast<std::size_t>(b)]) != 0) {
        pattern |= std::uint32_t{1} << b;
      }
    }
    auto& [j, k] = by_pattern[pattern][e.index & ~tbit];
    ((e.index & tbit) == 0 ? j : k) += e.count;
    satisfied_weight[pattern] += e.count;
  }

  for (const auto& [pattern, groups] : by_pattern) {
    // A pattern matching every slot is realizable with fewer controls; the
    // smaller subset enumerates that arc.
    if (num_controls > 0 && satisfied_weight[pattern] == m) continue;

    // Candidate angles come from the lightest group: any valid rotation
    // must map it onto integer counts, so when its weight is within the
    // enumeration cap the candidate list is exhaustive. For heavier groups
    // we fall back to the structured candidates (merges, mirrors, and the
    // merge angles of the other groups), which suffice to reach the ground
    // class; such searches lose the optimality certificate only if the cap
    // is actually hit (reported by the solver via the cap option).
    auto lightest = groups.begin();
    for (auto it = groups.begin(); it != groups.end(); ++it) {
      if (it->second.first + it->second.second <
          lightest->second.first + lightest->second.second) {
        lightest = it;
      }
    }
    const std::uint64_t j0 = lightest->second.first;
    const std::uint64_t k0 = lightest->second.second;
    const std::uint64_t total = j0 + k0;

    std::vector<double> candidates;
    if (total <= options.full_candidate_cap) {
      candidates.reserve(static_cast<std::size_t>(total) + 1);
      for (std::uint64_t j2 = 0; j2 <= total; ++j2) {
        const std::uint64_t k2 = total - j2;
        if (j2 == j0 && k2 == k0) continue;
        candidates.push_back(rotation_angle(j0, k0, j2, k2));
      }
    } else {
      candidates.push_back(rotation_angle(j0, k0, total, 0));  // merge down
      candidates.push_back(rotation_angle(j0, k0, 0, total));  // merge up
      candidates.push_back(rotation_angle(j0, k0, k0, j0));    // mirror
      int extra = 0;
      for (const auto& [rest, jk] : groups) {
        if (extra >= 8) break;
        if (jk.first == j0 && jk.second == k0) continue;
        const std::uint64_t s = jk.first + jk.second;
        candidates.push_back(rotation_angle(jk.first, jk.second, s, 0));
        candidates.push_back(rotation_angle(jk.first, jk.second, 0, s));
        ++extra;
      }
    }
    std::sort(candidates.begin(), candidates.end());
    double last_theta = 1e9;
    for (const double theta : candidates) {
      if (std::abs(theta) < kAngleEpsilon) continue;
      if (std::abs(theta - last_theta) < kAngleEpsilon) continue;
      last_theta = theta;
      const double co = std::cos(theta / 2);
      const double si = std::sin(theta / 2);
      bool ok = true;
      for (const auto& [rest, jk] : groups) {
        std::uint64_t jj = 0, kk = 0;
        if (!rotate_counts(jk.first, jk.second, co, si, &jj, &kk)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      Move mv;
      mv.kind = MoveKind::kRotation;
      mv.target = target;
      mv.theta = theta;
      mv.controls.reserve(static_cast<std::size_t>(num_controls));
      for (int b = 0; b < num_controls; ++b) {
        mv.controls.push_back(
            ControlLiteral{subset[static_cast<std::size_t>(b)],
                           ((pattern >> b) & 1u) != 0});
      }
      mv.cost = options.coupling != nullptr
                    ? options.coupling->routed_rotation_cost(mv.controls,
                                                             target)
                    : rotation_cost(num_controls);
      out.push_back(std::move(mv));
    }
  }
}

void enumerate_subsets(int num_qubits, int target, int max_controls,
                       std::vector<int>& current, int next,
                       const SlotState& state, const MoveGenOptions& options,
                       std::vector<Move>& out) {
  enumerate_rotations_for(state, target, current, options, out);
  if (static_cast<int>(current.size()) >= max_controls) return;
  for (int q = next; q < num_qubits; ++q) {
    if (q == target) continue;
    current.push_back(q);
    enumerate_subsets(num_qubits, target, max_controls, current, q + 1,
                      state, options, out);
    current.pop_back();
  }
}

}  // namespace

Gate Move::to_gate() const {
  switch (kind) {
    case MoveKind::kX:
      return Gate::x(target);
    case MoveKind::kCNOT:
      return Gate::cnot(control, target, control_positive);
    case MoveKind::kRotation:
      return Gate::mcry(controls, target, theta);
  }
  QSP_ASSERT_MSG(false, "unreachable move kind");
  return Gate::x(0);
}

std::string Move::to_string() const {
  std::ostringstream os;
  os << to_gate().to_string() << " [cost " << cost << ']';
  return os.str();
}

std::vector<Move> enumerate_moves(const SlotState& state,
                                  const MoveGenOptions& options) {
  const int n = state.num_qubits();
  const int max_controls =
      options.max_controls < 0 ? n - 1 : options.max_controls;
  std::vector<Move> out;

  for (int t = 0; t < n; ++t) {
    if (options.include_zero_cost) {
      Move mv;
      mv.kind = MoveKind::kX;
      mv.target = t;
      mv.cost = 0;
      out.push_back(mv);
    }
    for (int c = 0; c < n; ++c) {
      if (c == t) continue;
      for (const bool positive : {true, false}) {
        // Skip identities: no entry satisfies the control.
        bool any = false;
        for (const SlotEntry& e : state.entries()) {
          if (get_bit(e.index, c) == (positive ? 1 : 0)) {
            any = true;
            break;
          }
        }
        if (!any) continue;
        Move mv;
        mv.kind = MoveKind::kCNOT;
        mv.target = t;
        mv.control = c;
        mv.control_positive = positive;
        mv.cost = options.coupling != nullptr
                      ? options.coupling->routed_cnot_cost(c, t)
                      : 1;
        out.push_back(mv);
      }
    }
    std::vector<int> subset;
    enumerate_subsets(n, t, max_controls, subset, 0, state, options, out);
  }
  return out;
}

SlotState apply_move(const SlotState& state, const Move& move) {
  switch (move.kind) {
    case MoveKind::kX:
      return state.with_x(move.target);
    case MoveKind::kCNOT:
      return state.with_cnot(move.control, move.control_positive,
                             move.target);
    case MoveKind::kRotation:
      break;
  }

  const BasisIndex tbit = BasisIndex{1} << move.target;
  const double co = std::cos(move.theta / 2);
  const double si = std::sin(move.theta / 2);

  std::vector<SlotEntry> next;
  next.reserve(state.entries().size() + 4);
  GroupMap groups;
  for (const SlotEntry& e : state.entries()) {
    bool satisfied = true;
    for (const ControlLiteral& c : move.controls) {
      if (get_bit(e.index, c.qubit) != (c.positive ? 1 : 0)) {
        satisfied = false;
        break;
      }
    }
    if (!satisfied) {
      next.push_back(e);
      continue;
    }
    auto& [j, k] = groups[e.index & ~tbit];
    ((e.index & tbit) == 0 ? j : k) += e.count;
  }
  for (const auto& [rest, jk] : groups) {
    std::uint64_t jj = 0, kk = 0;
    const bool ok = rotate_counts(jk.first, jk.second, co, si, &jj, &kk);
    QSP_ASSERT_MSG(ok, "apply_move: invalid rotation arc");
    if (jj > 0) next.push_back(SlotEntry{rest, static_cast<std::uint32_t>(jj)});
    if (kk > 0) {
      next.push_back(SlotEntry{rest | tbit, static_cast<std::uint32_t>(kk)});
    }
  }
  return SlotState(state.num_qubits(), std::move(next));
}

}  // namespace qsp
