#include "core/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/moves.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/combinatorics.hpp"

namespace qsp {
namespace {

constexpr std::uint64_t kPackedCountMask = 0x00000000FFFFFFFFull;

std::uint64_t pack(BasisIndex index, std::uint32_t count) {
  return (static_cast<std::uint64_t>(index) << 32) | count;
}

/// Entries packed as (index << 32 | count) in entry order — the base
/// vector every translation/permutation orbit pass operates on via the
/// wide primitives (util/bitops wideops).
void pack_entries(const std::vector<SlotEntry>& entries, CanonicalKey& out) {
  out.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out[i] = pack(entries[i].index, entries[i].count);
  }
}

/// Exact lex-min over all qubit permutations of an (already translated)
/// packed entry vector, written into `best` (`cur` is scratch, reused by
/// the orbit loop across candidates). n <= 8 (guarded by
/// util::permutations). When `argmin` is non-null it receives the first
/// permutation achieving the minimum (the scan keeps first-best, so ties
/// resolve deterministically).
void min_over_permutations(const CanonicalKey& packed, int n,
                           CanonicalKey& best, CanonicalKey& cur,
                           std::vector<int>* argmin = nullptr) {
  best.clear();
  for (const auto& perm : permutations(n)) {
    cur.resize(packed.size());
    wideops::permute_high32(cur.data(), packed.data(), packed.size(),
                            perm.data(), n);
    std::sort(cur.begin(), cur.end());
    if (best.empty() || cur < best) {
      best.swap(cur);
      if (argmin != nullptr) *argmin = perm;
    }
  }
}

/// Reused buffers for greedy_perm_form: the orbit loop calls it once per
/// support index, and before hoisting every call allocated five vectors
/// per *step* inside it.
struct GreedyScratch {
  CanonicalKey work;        ///< pack(prefix, count), aligned with packed
  CanonicalKey shifted;     ///< work with prefix << 1
  CanonicalKey vals;        ///< shifted | extracted column q (entry order)
  CanonicalKey vals_sorted; ///< sorted copy compared across q
  CanonicalKey best_vals;
  CanonicalKey best_vals_sorted;
  std::vector<char> used;
};

/// Greedy deterministic qubit ordering: repeatedly pick the unused qubit
/// that lexicographically minimizes the sorted partial (prefix, count)
/// vector. Sound for deduplication (the result lies in the orbit) though
/// not guaranteed orbit-minimal; used when n is too large for exact
/// permutation search. When `argmin` is non-null it receives the implied
/// permutation (the qubit picked at step s lands at bit n-1-s).
///
/// Bit-sliced: prefixes live in the high half of packed words, so the
/// per-candidate partial key is one shl1_high32 (shared per step) plus
/// one or_bit_from_high32 column extraction per qubit.
void greedy_perm_form(const CanonicalKey& packed, int n, GreedyScratch& gs,
                      CanonicalKey& out,
                      std::vector<int>* argmin = nullptr) {
  const std::size_t m = packed.size();
  gs.work.resize(m);
  for (std::size_t i = 0; i < m; ++i) gs.work[i] = packed[i] & kPackedCountMask;
  gs.used.assign(static_cast<std::size_t>(n), 0);
  if (argmin != nullptr) argmin->assign(static_cast<std::size_t>(n), 0);
  for (int step = 0; step < n; ++step) {
    gs.shifted.resize(m);
    wideops::shl1_high32(gs.shifted.data(), gs.work.data(), m);
    int best_q = -1;
    for (int q = 0; q < n; ++q) {
      if (gs.used[static_cast<std::size_t>(q)] != 0) continue;
      gs.vals.resize(m);
      wideops::or_bit_from_high32(gs.vals.data(), gs.shifted.data(),
                                  packed.data(), m, q);
      gs.vals_sorted.assign(gs.vals.begin(), gs.vals.end());
      std::sort(gs.vals_sorted.begin(), gs.vals_sorted.end());
      if (best_q < 0 || gs.vals_sorted < gs.best_vals_sorted) {
        best_q = q;
        gs.best_vals_sorted.swap(gs.vals_sorted);
        gs.best_vals.swap(gs.vals);  // keep the entry-order form too
      }
    }
    gs.used[static_cast<std::size_t>(best_q)] = 1;
    if (argmin != nullptr) {
      (*argmin)[static_cast<std::size_t>(best_q)] = n - 1 - step;
    }
    // The winner's entry-order column extraction IS the next prefix
    // vector — no per-entry recomputation.
    gs.work.swap(gs.best_vals);
  }
  out.assign(gs.work.begin(), gs.work.end());
  std::sort(out.begin(), out.end());
}

/// Ry angle realizing the free merge of separable qubit q on the
/// statevector: rotates the qubit's product factor (sqrt(j), sqrt(k)) onto
/// (sqrt(j+k), 0), exactly the bit clear compress_free performs. A
/// separable non-constant qubit has j > 0 and k > 0 in every rest-group
/// (a zero on one side of any group breaks the common-ratio test), so any
/// group determines the angle. To stay bitwise stable we always use the
/// minimal-rest group, and by separability its bit-clear member is the
/// first entry: rest_min <= every (index & ~bit) <= every index, and
/// rest_min is itself an entry index (j > 0), so rest_min ==
/// entries[0].index. The bit-set member (rest_min | bit) then resolves
/// with one binary search — no per-call rest-group map.
double merge_angle(const SlotState& state, int q) {
  const BasisIndex bit = BasisIndex{1} << q;
  const std::vector<SlotEntry>& entries = state.entries();
  QSP_ASSERT(!entries.empty());
  const SlotEntry& clear_side = entries.front();
  QSP_ASSERT((clear_side.index & bit) == 0 &&
             "merge_angle: qubit is constant-1 or state not separable");
  const BasisIndex set_index = clear_side.index | bit;
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), set_index,
      [](const SlotEntry& e, BasisIndex x) { return e.index < x; });
  QSP_ASSERT(it != entries.end() && it->index == set_index &&
             "merge_angle: qubit is constant, not mergeable");
  const std::uint64_t j = clear_side.count;
  const std::uint64_t k = it->count;
  return -2.0 * std::atan2(std::sqrt(static_cast<double>(k)),
                           std::sqrt(static_cast<double>(j)));
}

}  // namespace

std::size_t CanonicalKeyHash::operator()(const CanonicalKey& key) const {
  std::size_t h = 1469598103934665603ull;
  for (const std::uint64_t x : key) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

SlotState compress_free(const SlotState& state,
                        std::vector<Gate>* merge_gates) {
  SlotState cur = state;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < cur.num_qubits(); ++q) {
      if (cur.qubit_constant(q)) continue;
      if (!cur.qubit_separable(q)) continue;
      if (merge_gates != nullptr) {
        merge_gates->push_back(Gate::ry(q, merge_angle(cur, q)));
      }
      // Zero-cost merge: clear bit q in every entry (duplicates merge in
      // the constructor).
      std::vector<SlotEntry> entries = cur.entries();
      const BasisIndex bit = BasisIndex{1} << q;
      for (SlotEntry& e : entries) e.index &= ~bit;
      cur = SlotState(cur.num_qubits(), std::move(entries));
      changed = true;
    }
  }
  return cur;
}

CanonicalKey canonical_key(const SlotState& state, CanonicalLevel level) {
  if (level == CanonicalLevel::kNone) {
    CanonicalKey key;
    pack_entries(state.entries(), key);
    return key;
  }
  const SlotState compressed = compress_free(state);
  const int n = compressed.num_qubits();
  const bool exact_perm = level == CanonicalLevel::kPU2Exact && n <= 8;
  const bool greedy_perm_pass =
      level == CanonicalLevel::kPU2Greedy ||
      (level == CanonicalLevel::kPU2Exact && n > 8);

  const std::vector<SlotEntry>& entries = compressed.entries();
  // Packed once; each orbit candidate is one wide XOR pass over it.
  CanonicalKey base;
  pack_entries(entries, base);

  CanonicalKey best;
  CanonicalKey t;
  CanonicalKey candidate;
  CanonicalKey scratch;
  GreedyScratch gs;
  // Lex-minimal translated forms start with index 0, so it suffices to try
  // translations by each support index.
  for (const SlotEntry& e : entries) {
    t.resize(base.size());
    wideops::copy_xor_high32(t.data(), base.data(), base.size(), e.index);
    std::sort(t.begin(), t.end());
    if (exact_perm) {
      min_over_permutations(t, n, candidate, scratch);
    } else if (greedy_perm_pass) {
      greedy_perm_form(t, n, gs, candidate);
    } else {
      candidate.swap(t);
    }
    if (best.empty() || candidate < best) best.swap(candidate);
  }
  return best;
}

CanonicalWitness canonical_witness(const SlotState& state,
                                   CanonicalLevel level) {
  CanonicalWitness w;
  const int n = state.num_qubits();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) identity[static_cast<std::size_t>(q)] = q;
  if (level == CanonicalLevel::kNone) {
    pack_entries(state.entries(), w.key);
    w.permutation = identity;
    return w;
  }
  const SlotState compressed = compress_free(state, &w.merge_gates);
  const bool exact_perm = level == CanonicalLevel::kPU2Exact && n <= 8;
  const bool greedy_perm_pass =
      level == CanonicalLevel::kPU2Greedy ||
      (level == CanonicalLevel::kPU2Exact && n > 8);

  const std::vector<SlotEntry>& entries = compressed.entries();
  CanonicalKey base;
  pack_entries(entries, base);

  // Mirror canonical_key's candidate scan exactly (same iteration order,
  // same strict-< first-best tie break) so the two stay bit-identical.
  CanonicalKey best;
  CanonicalKey t;
  CanonicalKey candidate;
  CanonicalKey scratch;
  GreedyScratch gs;
  std::vector<int> perm;
  w.permutation = identity;
  for (const SlotEntry& e : entries) {
    t.resize(base.size());
    wideops::copy_xor_high32(t.data(), base.data(), base.size(), e.index);
    std::sort(t.begin(), t.end());
    perm.assign(identity.begin(), identity.end());
    if (exact_perm) {
      min_over_permutations(t, n, candidate, scratch, &perm);
    } else if (greedy_perm_pass) {
      greedy_perm_form(t, n, gs, candidate, &perm);
    } else {
      candidate.swap(t);
    }
    if (best.empty() || candidate < best) {
      best.swap(candidate);
      w.translation = e.index;
      w.permutation = perm;
    }
  }
  w.key = std::move(best);
  return w;
}

bool free_reducible(const SlotState& state, CanonicalLevel level) {
  if (level == CanonicalLevel::kNone) return state.is_ground();
  const SlotState compressed = compress_free(state);
  // After compression every separable qubit is constant; reducible iff all
  // qubits are constant (constant-1 clears with a free X).
  for (int q = 0; q < compressed.num_qubits(); ++q) {
    if (!compressed.qubit_constant(q)) return false;
  }
  return true;
}

std::vector<Gate> free_peel_gates(SlotState& state) {
  std::vector<Gate> gates;
  bool progress = true;
  while (!state.is_ground() && progress) {
    progress = false;
    for (int q = 0; q < state.num_qubits(); ++q) {
      int value = 0;
      if (state.qubit_constant(q, &value)) {
        if (value == 1) {
          gates.push_back(Gate::x(q));
          state = state.with_x(q);
          progress = true;
        }
        continue;
      }
      if (!state.qubit_separable(q)) continue;
      // Same minimal-rest-group angle compress_free records (merge_angle
      // used to be duplicated inline here).
      const double theta = merge_angle(state, q);
      QSP_ASSERT(theta != 0.0);
      Move mv;
      mv.kind = MoveKind::kRotation;
      mv.target = q;
      mv.theta = theta;
      state = apply_move(state, mv);
      gates.push_back(Gate::ry(q, theta));
      progress = true;
    }
  }
  return gates;
}

std::vector<Gate> free_disentangle_gates(const SlotState& state,
                                         SlotState* reached) {
  SlotState cur = state;
  std::vector<Gate> gates = free_peel_gates(cur);
  if (!cur.is_ground()) {
    throw std::invalid_argument(
        "free_disentangle_gates: state is not fully separable");
  }
  if (reached != nullptr) *reached = cur;
  return gates;
}

}  // namespace qsp
