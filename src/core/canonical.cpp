#include "core/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/moves.hpp"
#include "util/assert.hpp"
#include "util/combinatorics.hpp"

namespace qsp {
namespace {

std::uint64_t pack(BasisIndex index, std::uint32_t count) {
  return (static_cast<std::uint64_t>(index) << 32) | count;
}

/// Sorted packed entry vector after XOR-translating indices by `mask`.
CanonicalKey translated_sorted(const std::vector<SlotEntry>& entries,
                               BasisIndex mask) {
  CanonicalKey out;
  out.reserve(entries.size());
  for (const SlotEntry& e : entries) out.push_back(pack(e.index ^ mask, e.count));
  std::sort(out.begin(), out.end());
  return out;
}

/// Exact lex-min over all qubit permutations of an (already translated)
/// packed entry vector. n <= 8 (guarded by util::permutations). When
/// `argmin` is non-null it receives the first permutation achieving the
/// minimum (the scan keeps first-best, so ties resolve deterministically).
CanonicalKey min_over_permutations(const CanonicalKey& packed, int n,
                                   std::vector<int>* argmin = nullptr) {
  CanonicalKey best;
  for (const auto& perm : permutations(n)) {
    CanonicalKey cur;
    cur.reserve(packed.size());
    for (const std::uint64_t pe : packed) {
      cur.push_back(pack(permute_bits(static_cast<BasisIndex>(pe >> 32), perm),
                         static_cast<std::uint32_t>(pe)));
    }
    std::sort(cur.begin(), cur.end());
    if (best.empty() || cur < best) {
      best = std::move(cur);
      if (argmin != nullptr) *argmin = perm;
    }
  }
  return best;
}

/// Greedy deterministic qubit ordering: repeatedly pick the unused qubit
/// that lexicographically minimizes the sorted partial (prefix, count)
/// vector. Sound for deduplication (the result lies in the orbit) though
/// not guaranteed orbit-minimal; used when n is too large for exact
/// permutation search. When `argmin` is non-null it receives the implied
/// permutation (the qubit picked at step s lands at bit n-1-s).
CanonicalKey greedy_perm_form(const CanonicalKey& packed, int n,
                              std::vector<int>* argmin = nullptr) {
  const std::size_t m = packed.size();
  std::vector<std::uint32_t> prefix(m, 0);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  if (argmin != nullptr) argmin->assign(static_cast<std::size_t>(n), 0);
  auto partial_key = [&](int q) {
    CanonicalKey vals(m);
    for (std::size_t i = 0; i < m; ++i) {
      const auto index = static_cast<BasisIndex>(packed[i] >> 32);
      const auto count = static_cast<std::uint32_t>(packed[i]);
      vals[i] = pack((prefix[i] << 1) |
                         static_cast<std::uint32_t>(get_bit(index, q)),
                     count);
    }
    std::sort(vals.begin(), vals.end());
    return vals;
  };
  for (int step = 0; step < n; ++step) {
    int best_q = -1;
    CanonicalKey best_vals;
    for (int q = 0; q < n; ++q) {
      if (used[static_cast<std::size_t>(q)]) continue;
      CanonicalKey vals = partial_key(q);
      if (best_q < 0 || vals < best_vals) {
        best_q = q;
        best_vals = std::move(vals);
      }
    }
    used[static_cast<std::size_t>(best_q)] = true;
    if (argmin != nullptr) {
      (*argmin)[static_cast<std::size_t>(best_q)] = n - 1 - step;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const auto index = static_cast<BasisIndex>(packed[i] >> 32);
      prefix[i] = (prefix[i] << 1) |
                  static_cast<std::uint32_t>(get_bit(index, best_q));
    }
  }
  CanonicalKey out(m);
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = pack(prefix[i], static_cast<std::uint32_t>(packed[i]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Ry angle realizing the free merge of separable qubit q on the
/// statevector: rotates the qubit's product factor (sqrt(j), sqrt(k)) onto
/// (sqrt(j+k), 0), exactly the bit clear compress_free performs. A
/// separable non-constant qubit has j > 0 and k > 0 in every rest-group
/// (a zero on one side of any group breaks the common-ratio test), so any
/// group determines the angle.
double merge_angle(const SlotState& state, int q) {
  const BasisIndex bit = BasisIndex{1} << q;
  std::map<BasisIndex, std::pair<std::uint64_t, std::uint64_t>> groups;
  for (const SlotEntry& e : state.entries()) {
    auto& [j, k] = groups[e.index & ~bit];
    ((e.index & bit) == 0 ? j : k) += e.count;
  }
  for (const auto& [rest, jk] : groups) {
    if (jk.second > 0) {
      return -2.0 * std::atan2(std::sqrt(static_cast<double>(jk.second)),
                               std::sqrt(static_cast<double>(jk.first)));
    }
  }
  QSP_ASSERT(false && "merge_angle: qubit is constant, not mergeable");
  return 0.0;
}

}  // namespace

std::size_t CanonicalKeyHash::operator()(const CanonicalKey& key) const {
  std::size_t h = 1469598103934665603ull;
  for (const std::uint64_t x : key) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

SlotState compress_free(const SlotState& state,
                        std::vector<Gate>* merge_gates) {
  SlotState cur = state;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < cur.num_qubits(); ++q) {
      if (cur.qubit_constant(q)) continue;
      if (!cur.qubit_separable(q)) continue;
      if (merge_gates != nullptr) {
        merge_gates->push_back(Gate::ry(q, merge_angle(cur, q)));
      }
      // Zero-cost merge: clear bit q in every entry (duplicates merge in
      // the constructor).
      std::vector<SlotEntry> entries = cur.entries();
      const BasisIndex bit = BasisIndex{1} << q;
      for (SlotEntry& e : entries) e.index &= ~bit;
      cur = SlotState(cur.num_qubits(), std::move(entries));
      changed = true;
    }
  }
  return cur;
}

CanonicalKey canonical_key(const SlotState& state, CanonicalLevel level) {
  if (level == CanonicalLevel::kNone) {
    CanonicalKey key;
    key.reserve(state.entries().size());
    for (const SlotEntry& e : state.entries()) key.push_back(pack(e.index, e.count));
    return key;
  }
  const SlotState compressed = compress_free(state);
  const int n = compressed.num_qubits();
  const bool exact_perm = level == CanonicalLevel::kPU2Exact && n <= 8;
  const bool greedy_perm =
      level == CanonicalLevel::kPU2Greedy ||
      (level == CanonicalLevel::kPU2Exact && n > 8);

  CanonicalKey best;
  // Lex-minimal translated forms start with index 0, so it suffices to try
  // translations by each support index.
  for (const SlotEntry& e : compressed.entries()) {
    CanonicalKey t = translated_sorted(compressed.entries(), e.index);
    CanonicalKey candidate;
    if (exact_perm) {
      candidate = min_over_permutations(t, n);
    } else if (greedy_perm) {
      candidate = greedy_perm_form(t, n);
    } else {
      candidate = std::move(t);
    }
    if (best.empty() || candidate < best) best = std::move(candidate);
  }
  return best;
}

CanonicalWitness canonical_witness(const SlotState& state,
                                   CanonicalLevel level) {
  CanonicalWitness w;
  const int n = state.num_qubits();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) identity[static_cast<std::size_t>(q)] = q;
  if (level == CanonicalLevel::kNone) {
    w.key.reserve(state.entries().size());
    for (const SlotEntry& e : state.entries()) {
      w.key.push_back(pack(e.index, e.count));
    }
    w.permutation = identity;
    return w;
  }
  const SlotState compressed = compress_free(state, &w.merge_gates);
  const bool exact_perm = level == CanonicalLevel::kPU2Exact && n <= 8;
  const bool greedy_perm =
      level == CanonicalLevel::kPU2Greedy ||
      (level == CanonicalLevel::kPU2Exact && n > 8);

  // Mirror canonical_key's candidate scan exactly (same iteration order,
  // same strict-< first-best tie break) so the two stay bit-identical.
  CanonicalKey best;
  w.permutation = identity;
  for (const SlotEntry& e : compressed.entries()) {
    CanonicalKey t = translated_sorted(compressed.entries(), e.index);
    CanonicalKey candidate;
    std::vector<int> perm = identity;
    if (exact_perm) {
      candidate = min_over_permutations(t, n, &perm);
    } else if (greedy_perm) {
      candidate = greedy_perm_form(t, n, &perm);
    } else {
      candidate = std::move(t);
    }
    if (best.empty() || candidate < best) {
      best = std::move(candidate);
      w.translation = e.index;
      w.permutation = std::move(perm);
    }
  }
  w.key = std::move(best);
  return w;
}

bool free_reducible(const SlotState& state, CanonicalLevel level) {
  if (level == CanonicalLevel::kNone) return state.is_ground();
  const SlotState compressed = compress_free(state);
  // After compression every separable qubit is constant; reducible iff all
  // qubits are constant (constant-1 clears with a free X).
  for (int q = 0; q < compressed.num_qubits(); ++q) {
    if (!compressed.qubit_constant(q)) return false;
  }
  return true;
}

std::vector<Gate> free_peel_gates(SlotState& state) {
  std::vector<Gate> gates;
  bool progress = true;
  while (!state.is_ground() && progress) {
    progress = false;
    for (int q = 0; q < state.num_qubits(); ++q) {
      int value = 0;
      if (state.qubit_constant(q, &value)) {
        if (value == 1) {
          gates.push_back(Gate::x(q));
          state = state.with_x(q);
          progress = true;
        }
        continue;
      }
      if (!state.qubit_separable(q)) continue;
      // Merge angle from any group with slots on both sides of qubit q:
      // rotate (sqrt(j), sqrt(k)) onto (sqrt(j+k), 0).
      const BasisIndex bit = BasisIndex{1} << q;
      std::map<BasisIndex, std::pair<std::uint64_t, std::uint64_t>> groups;
      for (const SlotEntry& e : state.entries()) {
        auto& [j, k] = groups[e.index & ~bit];
        ((e.index & bit) == 0 ? j : k) += e.count;
      }
      double theta = 0.0;
      for (const auto& [rest, jk] : groups) {
        if (jk.second > 0) {
          theta = -2.0 * std::atan2(std::sqrt(static_cast<double>(jk.second)),
                                    std::sqrt(static_cast<double>(jk.first)));
          break;
        }
      }
      QSP_ASSERT(theta != 0.0);
      Move mv;
      mv.kind = MoveKind::kRotation;
      mv.target = q;
      mv.theta = theta;
      state = apply_move(state, mv);
      gates.push_back(Gate::ry(q, theta));
      progress = true;
    }
  }
  return gates;
}

std::vector<Gate> free_disentangle_gates(const SlotState& state,
                                         SlotState* reached) {
  SlotState cur = state;
  std::vector<Gate> gates = free_peel_gates(cur);
  if (!cur.is_ground()) {
    throw std::invalid_argument(
        "free_disentangle_gates: state is not fully separable");
  }
  if (reached != nullptr) *reached = cur;
  return gates;
}

}  // namespace qsp
