#include "core/parallel_astar.hpp"

#include <atomic>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/search_cache.hpp"
#include "core/search_core.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

/// A successor routed to the shard owning its canonical key. The owner
/// computes h lazily (only for classes it has never seen).
struct Mail {
  CanonicalKey key;
  SlotState child;
  std::int64_t g2 = 0;
  std::int64_t parent = SearchNode::kNoParent;
  Move via;
};

struct alignas(64) Shard {
  ClassedArena arena;
  OpenQueue open;
  Mutex inbox_mutex;
  std::vector<Mail> inbox QSP_GUARDED_BY(inbox_mutex);
  /// f of the shard's best frontier entry, (re)published every time the
  /// worker is about to go idle; kInfiniteCost when the queue is empty.
  std::atomic<std::int64_t> published_min_f{0};
  /// True only while the worker has verified it holds no useful work.
  std::atomic<bool> idle{false};
  // Owner-thread-only counters, harvested after the join.
  std::uint64_t expanded = 0;
  std::uint64_t stale_pops = 0;
};

struct SharedState {
  std::atomic<std::uint64_t> nodes_generated{0};
  /// Monotonic mailbox counters: sent is incremented before a message is
  /// appended, received only after the message's effect (arena relax and
  /// min-f republication) is visible. sent == received therefore proves
  /// no successor is in flight or unprocessed.
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::int64_t> incumbent_g{kInfiniteCost};
  Mutex incumbent_mutex;
  std::int64_t incumbent_gid QSP_GUARDED_BY(incumbent_mutex) =
      SearchNode::kNoParent;
  std::atomic<bool> done{false};
  std::atomic<bool> aborted{false};
};

class HdaStar {
 public:
  HdaStar(const SearchOptions& options, const SlotState& target)
      : options_(options),
        target_(target),
        h_(search_heuristic(
            options.heuristic,
            options.routed_heuristic ? options.coupling.get() : nullptr)),
        level_(effective_canonical_level(options.canonical,
                                         options.coupling.get())),
        move_options_(search_move_gen_options(
            options.max_controls, options.full_candidate_cap,
            options.coupling.get(), level_)),
        budget_(options.time_budget_seconds, options.node_budget),
        num_shards_(resolve_num_threads(options.num_threads)),
        shards_(static_cast<std::size_t>(num_shards_)) {}

  SynthesisResult run() {
    const Timer timer;
    SynthesisResult result;

    CanonicalKey root_key = canonical_key(target_, level_);
    const int root_shard = owner_of(root_key);
    const std::int64_t root_h = h_of(target_);
    shards_[static_cast<std::size_t>(root_shard)].arena.add_root(
        std::move(root_key), target_, root_h);
    shards_[static_cast<std::size_t>(root_shard)].open.push(root_h, root_h,
                                                            0, 0);

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s) {
      workers.emplace_back([this, s] { work(s); });
    }
    for (std::thread& w : workers) w.join();

    for (const Shard& shard : shards_) {
      result.stats.nodes_expanded += shard.expanded;
      result.stats.stale_pops += shard.stale_pops;
      result.stats.classes_stored += shard.arena.size();
      result.stats.sum_shard_peak_open_size += shard.open.peak_size();
      result.stats.arena_blocks += shard.arena.arena_blocks();
      result.stats.arena_bytes_peak += shard.arena.arena_bytes_peak();
    }
    result.stats.nodes_generated = shared_.nodes_generated.load();
    result.stats.seconds = timer.seconds();
    // Post-join harvest of the goal id. The join is a happens-before
    // edge, but the read was unguarded until the thread-safety
    // annotations flagged it — take the (now uncontended) lock so the
    // access is provable rather than merely argued.
    std::int64_t goal = SearchNode::kNoParent;
    {
      const MutexLock lock(shared_.incumbent_mutex);
      goal = shared_.incumbent_gid;
    }
    result.stats.completed =
        !shared_.aborted.load() && goal != SearchNode::kNoParent;
    result.stats.budget_exhausted = shared_.aborted.load();

    if (goal != SearchNode::kNoParent) {
      result.found = true;
      // Certified optimal only on a clean termination with an exhaustive
      // arc set; a budget abort downgrades the incumbent to an anytime
      // result.
      result.optimal = result.stats.completed &&
                       target_.total() <= options_.full_candidate_cap;
      result.cnot_cost = node_at(goal).g;
      result.circuit = build_goal_circuit(
          [this](std::int64_t gid) -> const SearchNode& {
            return node_at(gid);
          },
          goal, target_.num_qubits());
    }
    return result;
  }

 private:
  const SearchNode& node_at(std::int64_t gid) const {
    return shards_[static_cast<std::size_t>(shard_of_gid(gid))].arena.node(
        local_of_gid(gid));
  }

  std::int64_t h_of(const SlotState& s) const { return h_(s); }

  int owner_of(const CanonicalKey& key) const {
    return static_cast<int>(CanonicalKeyHash{}(key) %
                            static_cast<std::size_t>(num_shards_));
  }

  void work(int s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    auto h = [this](const SlotState& state) { return h_of(state); };
    auto g_of = [&shard](std::int64_t id) { return shard.arena.node(id).g; };
    // Reused outgoing buffers, one per destination shard.
    std::vector<std::vector<Mail>> outbox(
        static_cast<std::size_t>(num_shards_));
    std::vector<Mail> batch;

    while (!shared_.done.load()) {
      if (budget_.exhausted(shared_.nodes_generated.load())) {
        // If another worker already certified termination, the budget
        // expiring a moment later must not downgrade the certificate.
        if (!shared_.done.exchange(true)) shared_.aborted.store(true);
        break;
      }

      // 1. Drain the mailbox. idle goes false before any effect so the
      // termination check can never observe a half-processed message.
      batch.clear();
      {
        const MutexLock lock(shard.inbox_mutex);
        batch.swap(shard.inbox);
      }
      if (!batch.empty()) {
        shard.idle.store(false);
        for (Mail& mail : batch) {
          relax_into_open(shard.arena, shard.open, std::move(mail.key),
                          std::move(mail.child), mail.g2, mail.parent,
                          mail.via, h);
        }
        shard.published_min_f.store(shard.open.min_f());
        shared_.received.fetch_add(batch.size());
        continue;
      }

      // 2. Expand the best local node that can still beat the incumbent.
      const std::int64_t incumbent = shared_.incumbent_g.load();
      if (shard.open.min_f() < incumbent) {
        shard.idle.store(false);
        const auto top = shard.open.pop_best(g_of, shard.stale_pops);
        if (top.has_value() && top->f < incumbent) {
          if (free_reducible(shard.arena.node(top->id).state, level_)) {
            offer_incumbent(top->g_at_push, make_shard_gid(s, top->id));
          } else {
            expand(s, shard, top->id, outbox);
          }
        }
        shard.published_min_f.store(shard.open.min_f());
        continue;
      }

      // 3. Nothing useful locally: publish the frontier bound, declare
      // idle, and try to certify global termination.
      shard.published_min_f.store(shard.open.min_f());
      shard.idle.store(true);
      if (try_terminate()) break;
      std::this_thread::yield();
    }
  }

  void expand(int s, Shard& shard, std::int64_t id,
              std::vector<std::vector<Mail>>& outbox) {
    ++shard.expanded;
    // Expand by reference: NodeArena references survive appends, and only
    // this worker mutates its own shard's arena. A relax cannot rebind the
    // expanded node itself (children have g2 = g + cost >= g).
    const SlotState& state = shard.arena.node(id).state;
    const std::int64_t g = shard.arena.node(id).g;
    const std::int64_t parent_gid = make_shard_gid(s, id);
    auto h = [this](const SlotState& child) { return h_of(child); };

    std::uint64_t generated = 0;
    for (const Move& mv : enumerate_moves(state, move_options_)) {
      if (budget_.deadline_expired()) break;  // child work can dominate
      ++generated;
      SlotState child = apply_move(state, mv);
      const std::int64_t g2 = g + mv.cost;
      CanonicalKey key = canonical_key(child, level_);
      const int owner = owner_of(key);
      if (owner == s) {
        relax_into_open(shard.arena, shard.open, std::move(key),
                        std::move(child), g2, parent_gid, mv, h);
      } else {
        outbox[static_cast<std::size_t>(owner)].push_back(
            Mail{std::move(key), std::move(child), g2, parent_gid, mv});
      }
    }
    shared_.nodes_generated.fetch_add(generated);

    for (int dest = 0; dest < num_shards_; ++dest) {
      std::vector<Mail>& out = outbox[static_cast<std::size_t>(dest)];
      if (out.empty()) continue;
      // sent must lead the append: a checker that observes sent ==
      // received has proof these messages were already processed.
      shared_.sent.fetch_add(out.size());
      Shard& target = shards_[static_cast<std::size_t>(dest)];
      {
        // One bulk append per destination keeps the critical section to a
        // single grow-and-move instead of per-message push_backs.
        const MutexLock lock(target.inbox_mutex);
        target.inbox.insert(target.inbox.end(),
                            std::make_move_iterator(out.begin()),
                            std::make_move_iterator(out.end()));
      }
      out.clear();
    }
  }

  void offer_incumbent(std::int64_t g, std::int64_t gid) {
    const MutexLock lock(shared_.incumbent_mutex);
    if (g < shared_.incumbent_g.load()) {
      shared_.incumbent_gid = gid;
      shared_.incumbent_g.store(g);
    }
  }

  /// Certify termination: the incumbent's g is a true optimum once every
  /// shard is idle with frontier min f >= incumbent and no message is in
  /// flight. The counters are read before and after the per-shard pass;
  /// any concurrent send or delivery changes them and voids the attempt.
  /// (With no incumbent the same condition — every frontier empty, no
  /// mail — certifies exhaustion without a goal.)
  bool try_terminate() {
    const std::int64_t incumbent = shared_.incumbent_g.load();
    const std::uint64_t sent_before = shared_.sent.load();
    const std::uint64_t received_before = shared_.received.load();
    if (sent_before != received_before) return false;
    for (const Shard& shard : shards_) {
      if (!shard.idle.load()) return false;
      if (shard.published_min_f.load() < incumbent) return false;
    }
    if (shared_.sent.load() != sent_before ||
        shared_.received.load() != received_before) {
      return false;
    }
    for (const Shard& shard : shards_) {
      if (!shard.idle.load()) return false;
    }
    shared_.done.store(true);
    return true;
  }

  const SearchOptions& options_;
  const SlotState& target_;
  /// The shared searcher heuristic (search_core::search_heuristic), so
  /// the kernels cannot drift apart on how h is constructed.
  const decltype(search_heuristic(HeuristicMode::kZero, nullptr)) h_;
  const CanonicalLevel level_;
  const MoveGenOptions move_options_;
  const SearchBudget budget_;
  const int num_shards_;
  std::vector<Shard> shards_;
  SharedState shared_;
};

}  // namespace

int resolve_num_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelAStarSynthesizer::ParallelAStarSynthesizer(SearchOptions options)
    : options_(options) {
  validate_search_coupling("ParallelAStarSynthesizer",
                           options_.coupling.get());
}

SynthesisResult ParallelAStarSynthesizer::synthesize(
    const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "ParallelAStarSynthesizer: target has no slot decomposition "
        "(negative or irrational amplitudes); use the workflow solver "
        "instead");
  }
  return synthesize(*slot);
}

SynthesisResult ParallelAStarSynthesizer::synthesize(
    const SlotState& target) const {
  // Direct entry point (tests/benches): probe the equivalence cache here;
  // the AStarSynthesizer dispatch path clears `cache` first so one search
  // never probes twice. As there, in-flight wait time counts against the
  // search budget.
  const Deadline overall(options_.time_budget_seconds);
  ScopedCacheProbe probe(options_.cache.get(), target,
                         options_.coupling.get(), options_.max_controls,
                         options_.time_budget_seconds);
  if (probe.hit()) return probe.result();
  SearchOptions adjusted = options_;
  adjusted.time_budget_seconds = clamp_budget(0.0, overall);
  HdaStar search(adjusted, target);
  const SynthesisResult result = search.run();
  probe.publish(result);
  return result;
}

}  // namespace qsp
