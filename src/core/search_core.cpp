#include "core/search_core.hpp"

#include <stdexcept>
#include <string>

namespace qsp {

CanonicalLevel effective_canonical_level(CanonicalLevel requested,
                                         const CouplingGraph* coupling) {
  if (coupling != nullptr && !coupling->is_complete() &&
      (requested == CanonicalLevel::kPU2Greedy ||
       requested == CanonicalLevel::kPU2Exact)) {
    return CanonicalLevel::kU2;
  }
  return requested;
}

void validate_search_coupling(const char* context,
                              const CouplingGraph* coupling) {
  if (coupling != nullptr && !coupling->is_connected()) {
    throw std::invalid_argument(
        std::string(context) +
        ": coupling graph is disconnected — routed CNOT costs are "
        "undefined between unreachable qubits; pass a connected device "
        "graph (or synthesize each fragment against its own subgraph)");
  }
}

MoveGenOptions search_move_gen_options(int max_controls,
                                       std::uint64_t full_candidate_cap,
                                       const CouplingGraph* coupling,
                                       CanonicalLevel level) {
  MoveGenOptions options;
  options.max_controls = max_controls;
  options.full_candidate_cap = full_candidate_cap;
  options.coupling = coupling;
  options.include_zero_cost = level == CanonicalLevel::kNone;
  return options;
}

}  // namespace qsp
