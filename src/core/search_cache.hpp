#pragma once
// Cross-request equivalence-cache hook for the exact-search family. The
// searchers (serial A*, sharded HDA*, beam) stay cache-agnostic: they talk
// to this abstract interface through a ScopedCacheProbe, and the concrete
// sharded LRU cache lives in src/service/equivalence_cache.hpp. Keys are
// the canonical form of the searched subproblem plus a fingerprint of
// everything else that determines the certified optimum: register width,
// the coupling graph's routed-cost surface, the cost-model id, and the
// rotation-control budget. Only *certified-optimal* results are ever
// stored, which is what makes a hit sound under differing search options:
// the optimal CNOT cost of an equivalence class on a given device is a
// fact about the class, not about the search that discovered it.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/astar.hpp"
#include "core/canonical.hpp"
#include "core/slot_state.hpp"

namespace qsp {

/// Everything besides the target's equivalence class that a cached result
/// depends on. `level` is the cache's own canonicalization policy for this
/// device (permutation-aware only where relabeling is free), independent
/// of the requesting search's canonical level.
struct CacheFingerprint {
  /// Cost-model id + register width + coupling fingerprint + control
  /// budget, pre-rendered so shards can hash/compare cheaply.
  std::string id;
  CanonicalLevel level = CanonicalLevel::kPU2Exact;
};

/// Fingerprint for a search over `num_qubits` wires on `coupling`
/// (nullptr = all-to-all Table-I costs). `max_controls` must be the
/// searcher's rotation-control budget: a restricted arc set can certify a
/// restricted optimum only, so it is part of the key.
CacheFingerprint make_cache_fingerprint(int num_qubits,
                                        const CouplingGraph* coupling,
                                        int max_controls);

/// Abstract equivalence cache consulted by every searcher. Thread-safe.
class SearchCache {
 public:
  /// What begin() resolved to. kHit carries a result; kOwner obliges the
  /// caller to call end() exactly once (ScopedCacheProbe enforces this);
  /// kIndependent means another owner ran and did not publish an optimal
  /// result (or the wait timed out) — proceed with a private search.
  enum class Claim : std::uint8_t { kHit, kOwner, kIndependent };

  struct Lookup {
    Claim claim = Claim::kIndependent;
    std::optional<SynthesisResult> result;  ///< set iff claim == kHit
  };

  virtual ~SearchCache() = default;

  /// Consult the cache for `target`, whose canonical witness at fp.level
  /// the caller has already computed (ScopedCacheProbe computes it once
  /// and reuses it for end()). May block up to `max_wait_seconds` (0 =
  /// no limit) while another thread's search of the same class is in
  /// flight — the in-flight deduplication that lets N concurrent
  /// requests for one class pay for one search. With `consult_only` the
  /// call never claims ownership and never blocks: it answers from the
  /// table or returns kIndependent — the mode for searchers that cannot
  /// certify (the beam), so they never make certifying searchers queue
  /// behind them.
  virtual Lookup begin(const SlotState& target,
                       const CanonicalWitness& witness,
                       const CacheFingerprint& fp, double max_wait_seconds,
                       bool consult_only) = 0;

  /// Owner hand-back: publish `result` (stored only when it carries the
  /// optimality certificate) or abandon with nullptr; either way the
  /// in-flight marker is cleared and waiters wake.
  virtual void end(const SlotState& target, const CanonicalWitness& witness,
                   const CacheFingerprint& fp,
                   const SynthesisResult* result) = 0;
};

/// RAII pairing of begin/end around one search: computes the target's
/// canonical witness once, shares it between lookup and publish. Probes
/// with a null cache are inert, so searchers can construct one
/// unconditionally.
class ScopedCacheProbe {
 public:
  ScopedCacheProbe(SearchCache* cache, const SlotState& target,
                   const CouplingGraph* coupling, int max_controls,
                   double max_wait_seconds, bool consult_only = false);
  ~ScopedCacheProbe();

  ScopedCacheProbe(const ScopedCacheProbe&) = delete;
  ScopedCacheProbe& operator=(const ScopedCacheProbe&) = delete;

  /// True when the cache answered; result() is the cached synthesis.
  bool hit() const { return lookup_.claim == SearchCache::Claim::kHit; }
  const SynthesisResult& result() const { return *lookup_.result; }

  /// Publish the search outcome (owner) — no-op on hit/independent
  /// claims. Without a publish, the destructor abandons the claim.
  void publish(const SynthesisResult& result);

 private:
  SearchCache* cache_ = nullptr;
  const SlotState* target_ = nullptr;
  CacheFingerprint fingerprint_;
  CanonicalWitness witness_;
  SearchCache::Lookup lookup_;
  bool open_ = false;  ///< owner claim not yet ended
};

}  // namespace qsp
