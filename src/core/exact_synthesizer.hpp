#pragma once
// Facade over the exact A* solver with an anytime beam fallback. This is
// the "exact CNOT synthesis" entry point used by the workflow (Fig. 5) and
// by the benches; results carry an `optimal` certificate only when A*
// completed.

#include "core/astar.hpp"
#include "core/beam.hpp"

namespace qsp {

struct ExactSynthesisOptions {
  SearchOptions astar;
  BeamOptions beam;
  /// Fall back to beam search when A* exceeds its budget.
  bool enable_beam_fallback = true;
};

class ExactSynthesizer {
 public:
  explicit ExactSynthesizer(ExactSynthesisOptions options = {});

  SynthesisResult synthesize(const SlotState& target) const;
  SynthesisResult synthesize(const QuantumState& target) const;

  const ExactSynthesisOptions& options() const { return options_; }

 private:
  ExactSynthesisOptions options_;
};

}  // namespace qsp
