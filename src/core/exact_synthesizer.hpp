#pragma once
// Facade over the exact A* solver with an anytime beam fallback. This is
// the "exact CNOT synthesis" entry point used by the workflow (Fig. 5) and
// by the benches; results carry an `optimal` certificate only when A*
// completed.

#include "core/astar.hpp"
#include "core/beam.hpp"

namespace qsp {

struct ExactSynthesisOptions {
  SearchOptions astar;
  BeamOptions beam;
  /// Fall back to beam search when A* exceeds its budget.
  bool enable_beam_fallback = true;
  /// Overall wall-clock budget for the exact tail (0 = unlimited). Wired
  /// into every nested search's SearchBudget: A* gets at most the
  /// remaining time, and whatever it leaves bounds the beam fallback —
  /// so a single runaway kernel search can never blow an enclosing
  /// workflow budget (the per-search time_budget_seconds still apply on
  /// top when tighter).
  double time_budget_seconds = 0.0;
};

class ExactSynthesizer {
 public:
  explicit ExactSynthesizer(ExactSynthesisOptions options = {});

  SynthesisResult synthesize(const SlotState& target) const;
  SynthesisResult synthesize(const QuantumState& target) const;

  const ExactSynthesisOptions& options() const { return options_; }

 private:
  ExactSynthesisOptions options_;
};

}  // namespace qsp
