#pragma once
// The arc set of the state transition graph (paper Section IV): all
// single-target amplitude-preserving transitions implementable by the gate
// library {X, Ry, CNOT, CRy, MCRy} of Table I.
//
// Three move kinds cover the library exactly:
//   X(t)                     free relabel (bit flip on all slots)
//   CNOT(c, p, t)            cost 1, flips t where bit c == p
//   Rotation(C, t, theta)    (multi-)controlled Ry; cost 0 / 2 / 2^|C|
//
// A rotation arc exists iff one shared angle theta maps every control-
// satisfying rest-group's slot-count pair (j_r, k_r) onto non-negative
// integer counts: (sqrt(j), sqrt(k)) -> R(theta/2) (sqrt(j'), sqrt(k')).
// This single rule yields the paper's merge arcs (one side zeroed), split
// arcs (their inverses), and direction-consistent relabels (theta = +-pi),
// while correctly excluding transitions that would need a non-rotation
// (e.g. a controlled both-direction swap, which no MCRy implements).

#include <cstdint>
#include <string>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/gate.hpp"
#include "core/slot_state.hpp"

namespace qsp {

enum class MoveKind : std::uint8_t { kX, kCNOT, kRotation };

struct Move {
  MoveKind kind = MoveKind::kX;
  int target = 0;
  // CNOT fields.
  int control = -1;
  bool control_positive = true;
  // Rotation fields.
  std::vector<ControlLiteral> controls;
  double theta = 0.0;

  std::int64_t cost = 0;

  /// The gate realizing this arc in the forward (same) direction.
  Gate to_gate() const;
  std::string to_string() const;
};

struct MoveGenOptions {
  /// Maximum rotation controls; -1 means num_qubits - 1.
  int max_controls = -1;
  /// Emit zero-cost arcs (X moves and uncontrolled rotations). Required
  /// when the search runs without canonicalization, which otherwise
  /// absorbs all zero-cost transitions into the equivalence classes.
  bool include_zero_cost = false;
  /// Full rotation-candidate enumeration while the lightest affected group
  /// carries at most this many slots; heavier groups use the structured
  /// candidate set (merges, mirror, other groups' merge angles). All the
  /// paper's uniform benchmarks stay far below this cap, so their searches
  /// are exhaustive; only the workflow's heavy-count tails use the
  /// structured fallback.
  std::uint64_t full_candidate_cap = 4096;
  /// Optional coupling graph: arc costs become routed CNOT costs
  /// (CouplingGraph::routed_cnot_cost / routed_rotation_cost) instead of
  /// the all-to-all Table-I model. Not owned.
  const CouplingGraph* coupling = nullptr;
};

/// Enumerate all arcs leaving `state`.
std::vector<Move> enumerate_moves(const SlotState& state,
                                  const MoveGenOptions& options);

/// Apply an arc; asserts the arc is valid for `state`.
SlotState apply_move(const SlotState& state, const Move& move);

}  // namespace qsp
