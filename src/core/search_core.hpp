#pragma once
// Shared substrate for the exact-search family (serial A*, the sharded
// HDA* kernel, and the anytime beam): the node-record arena with the
// canonical-key index and A*'s relax/rebind discipline, the lazy-deletion
// open list, budget/deadline accounting, the coupling-aware
// canonicalization demotion, and goal-circuit reconstruction. Extracted
// from astar.cpp / beam.cpp, which used to duplicate this bookkeeping.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "core/canonical.hpp"
#include "core/heuristic.hpp"
#include "core/moves.hpp"
#include "core/slot_state.hpp"
#include "util/timer.hpp"

namespace qsp {

/// Sentinel distance: "no entry" / "queue empty".
inline constexpr std::int64_t kInfiniteCost =
    std::numeric_limits<std::int64_t>::max();

/// One explored node: a raw representative of its equivalence class, the
/// best known arc distance g, the admissible remainder h, and the arc
/// (parent, via) that achieved g. Node ids are searcher-defined: the
/// serial kernels use arena offsets, the sharded kernel packs
/// (shard, local offset) into one id; kNoParent marks the root.
struct SearchNode {
  static constexpr std::int64_t kNoParent = -1;

  SlotState state;
  std::int64_t g = 0;
  std::int64_t h = 0;
  std::int64_t parent = kNoParent;
  Move via;
};

/// Canonical-key map shared by every searcher's class bookkeeping.
template <class V>
using ClassIndex = std::unordered_map<CanonicalKey, V, CanonicalKeyHash>;

/// Global node ids for the sharded kernels (HDA*, parallel beam) pack
/// (shard, arena offset) into one int64 so parent chains may cross
/// shards; SearchNode::kNoParent stays representable (shard -1).
inline constexpr int kShardGidShift = 40;
inline constexpr std::int64_t kShardGidLocalMask =
    (std::int64_t{1} << kShardGidShift) - 1;

inline std::int64_t make_shard_gid(int shard, std::int64_t local) {
  return (static_cast<std::int64_t>(shard) << kShardGidShift) | local;
}
inline int shard_of_gid(std::int64_t gid) {
  return static_cast<int>(gid >> kShardGidShift);
}
inline std::int64_t local_of_gid(std::int64_t gid) {
  return gid & kShardGidLocalMask;
}

/// Qubit relabeling is only free on a symmetric (complete) coupling, so
/// permutation canonicalization must be demoted to U(2) elsewhere.
CanonicalLevel effective_canonical_level(CanonicalLevel requested,
                                         const CouplingGraph* coupling);

/// Move-generation options shared by the searchers: zero-cost arcs are
/// only enumerated when canonicalization does not absorb them.
MoveGenOptions search_move_gen_options(int max_controls,
                                       std::uint64_t full_candidate_cap,
                                       const CouplingGraph* coupling,
                                       CanonicalLevel level);

/// Searchers accept a coupling graph only when routed CNOT costs exist
/// between every qubit pair; a disconnected device would otherwise throw
/// from deep inside move generation. `context` names the thrower.
void validate_search_coupling(const char* context,
                              const CouplingGraph* coupling);

/// The shared h(.) every searcher feeds its open list: the admissible
/// remainder bound of core/heuristic.hpp, priced against the device's
/// routed-cost surface when `coupling` is non-null (pass nullptr for the
/// coupling-blind unit bound, e.g. for the ablation benches).
inline auto search_heuristic(HeuristicMode mode,
                             const CouplingGraph* coupling) {
  return [mode, coupling](const SlotState& state) {
    return heuristic_lower_bound(state, mode, coupling);
  };
}

/// Node-generation and wall-clock budgets shared by all searchers.
class SearchBudget {
 public:
  SearchBudget(double time_budget_seconds, std::uint64_t node_budget)
      : deadline_(time_budget_seconds), node_budget_(node_budget) {}

  bool deadline_expired() const { return deadline_.expired(); }

  /// True once the search must stop: deadline passed or the generated-arc
  /// budget (0 = unlimited) is spent.
  bool exhausted(std::uint64_t nodes_generated) const {
    return deadline_.expired() ||
           (node_budget_ != 0 && nodes_generated >= node_budget_);
  }

 private:
  Deadline deadline_;
  std::uint64_t node_budget_;
};

/// Chunked node storage with stable references: nodes live in
/// fixed-capacity blocks that are never reallocated, so a `SearchNode&`
/// stays valid across appends. That lets the expansion loops hold a
/// reference to the node being expanded instead of copying its SlotState
/// (safe under the relax discipline: a rebind of the expanded node would
/// need g2 < g, and every child has g2 = g + cost >= g). Also tracks
/// allocation pressure: blocks allocated and peak resident bytes (block
/// storage plus slot-entry payload) for SearchStats.
class NodeArena {
 public:
  static constexpr std::size_t kBlockShift = 9;  // 512 nodes per block
  static constexpr std::size_t kBlockNodes = std::size_t{1} << kBlockShift;

  std::int64_t append(SearchNode&& node) {
    if (size_ == blocks_.size() * kBlockNodes) {
      blocks_.emplace_back();
      blocks_.back().reserve(kBlockNodes);  // capacity fixed: refs stable
    }
    payload_bytes_ += payload_bytes(node.state);
    blocks_.back().push_back(std::move(node));
    const auto id = static_cast<std::int64_t>(size_++);
    update_peak();
    return id;
  }

  /// Swap a rebound node's state in place, keeping the byte accounting
  /// truthful (rebinds may shrink or grow the slot payload).
  void replace_state(SearchNode& node, SlotState&& state) {
    payload_bytes_ -= payload_bytes(node.state);
    payload_bytes_ += payload_bytes(state);
    node.state = std::move(state);
    update_peak();
  }

  SearchNode& node(std::int64_t id) {
    const auto i = static_cast<std::size_t>(id);
    return blocks_[i >> kBlockShift][i & (kBlockNodes - 1)];
  }
  const SearchNode& node(std::int64_t id) const {
    const auto i = static_cast<std::size_t>(id);
    return blocks_[i >> kBlockShift][i & (kBlockNodes - 1)];
  }

  std::uint64_t size() const { return size_; }
  std::uint64_t blocks() const { return blocks_.size(); }
  std::uint64_t bytes_peak() const { return bytes_peak_; }

 private:
  static std::uint64_t payload_bytes(const SlotState& state) {
    return state.entries().size() * sizeof(SlotEntry);
  }

  void update_peak() {
    const std::uint64_t bytes =
        blocks_.size() * kBlockNodes * sizeof(SearchNode) + payload_bytes_;
    bytes_peak_ = std::max(bytes_peak_, bytes);
  }

  std::vector<std::vector<SearchNode>> blocks_;
  std::size_t size_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t bytes_peak_ = 0;
};

/// Arena of SearchNodes plus the class index with A*'s relax discipline:
/// a new class appends a record; a cheaper path to a known class rebinds
/// the record in place (implicit reopening keeps optimality under an
/// admissible but possibly inconsistent heuristic). Ids are local arena
/// offsets; `parent` is stored verbatim so callers may use a wider
/// encoding (the sharded kernel stores global ids there).
class ClassedArena {
 public:
  struct Relaxed {
    std::int64_t id = -1;
    bool improved = false;  ///< true => (re)push onto the open list
  };

  /// Seed the arena with the search root (id 0).
  void add_root(CanonicalKey key, SlotState state, std::int64_t h) {
    index_.emplace(std::move(key), 0);
    nodes_.append(SearchNode{std::move(state), 0, h,
                             SearchNode::kNoParent, Move{}});
  }

  /// Relax the arc parent --via--> child with tentative distance g2.
  /// `h_of` is only invoked when the class is new.
  template <class HOf>
  Relaxed relax(CanonicalKey&& key, SlotState&& child, std::int64_t g2,
                std::int64_t parent, const Move& via, HOf&& h_of) {
    auto [it, inserted] = index_.try_emplace(std::move(key), 0);
    if (!inserted) {
      SearchNode& existing = node(it->second);
      if (existing.g <= g2) return {it->second, false};
      nodes_.replace_state(existing, std::move(child));
      existing.g = g2;
      existing.parent = parent;
      existing.via = via;
      return {it->second, true};
    }
    const std::int64_t h = h_of(child);
    const std::int64_t id =
        nodes_.append(SearchNode{std::move(child), g2, h, parent, via});
    it->second = id;
    return {id, true};
  }

  /// References returned here are stable across relax/append (NodeArena).
  SearchNode& node(std::int64_t id) { return nodes_.node(id); }
  const SearchNode& node(std::int64_t id) const { return nodes_.node(id); }
  std::uint64_t size() const { return nodes_.size(); }

  std::uint64_t arena_blocks() const { return nodes_.blocks(); }
  std::uint64_t arena_bytes_peak() const { return nodes_.bytes_peak(); }

 private:
  NodeArena nodes_;
  ClassIndex<std::int64_t> index_;
};

/// Lazy-deletion open list over (f, h, id, g-at-push) entries. Rebinding
/// a class simply pushes a fresh entry; pop_best discards entries whose
/// pushed g no longer matches the record (stale), counting them for
/// SearchStats::stale_pops.
///
/// Implemented as a flat 4-ary implicit min-heap rather than
/// std::priority_queue<tuple>: one contiguous Entry array (no tuple
/// layout), shallower trees, and four children per cache line's worth of
/// entries. Pop order is identical to the old binary heap because the
/// comparator is a total order on the entries it ever holds: (id,
/// g_at_push) pairs are unique (a class is re-pushed only when its g
/// strictly decreases), so ties never reach an arbitrary decision.
class OpenQueue {
 public:
  struct Entry {
    std::int64_t f = 0;
    std::int64_t h = 0;
    std::int64_t id = 0;
    std::int64_t g_at_push = 0;
  };

  void push(std::int64_t f, std::int64_t h, std::int64_t id,
            std::int64_t g_at_push) {
    heap_.push_back(Entry{f, h, id, g_at_push});
    sift_up(heap_.size() - 1);
    peak_ = std::max(peak_, static_cast<std::uint64_t>(heap_.size()));
  }

  /// Pop the best non-stale entry; `g_of(id)` must return the record's
  /// current g so outdated entries can be discarded.
  template <class GOf>
  std::optional<Entry> pop_best(GOf&& g_of, std::uint64_t& stale_pops) {
    while (!heap_.empty()) {
      const Entry best = heap_.front();
      pop_top();
      if (g_of(best.id) != best.g_at_push) {
        ++stale_pops;
        continue;
      }
      return best;
    }
    return std::nullopt;
  }

  /// f of the best entry (stale entries included, which is still a valid
  /// lower bound: a rebind's fresh entry has f no larger than its stale
  /// one), or kInfiniteCost when empty.
  std::int64_t min_f() const {
    return heap_.empty() ? kInfiniteCost : heap_.front().f;
  }

  bool empty() const { return heap_.empty(); }
  std::uint64_t peak_size() const { return peak_; }

 private:
  static bool less(const Entry& a, const Entry& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.h != b.h) return a.h < b.h;
    if (a.id != b.id) return a.id < b.id;
    return a.g_at_push < b.g_at_push;
  }

  void sift_up(std::size_t i) {
    while (i != 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop_top() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t peak_ = 0;
};

/// The shared relax-then-push discipline: relax the arc into the arena
/// and, when the class is new or rebound cheaper, (re)enter it into the
/// open list under f = g + h. Every A*-family consumer (serial kernel,
/// HDA* mail drain, HDA* local expansion) must go through this so the
/// g-at-push staleness contract stays in one place.
template <class HOf>
void relax_into_open(ClassedArena& arena, OpenQueue& open,
                     CanonicalKey&& key, SlotState&& child, std::int64_t g2,
                     std::int64_t parent, const Move& via, HOf&& h_of) {
  const ClassedArena::Relaxed relaxed =
      arena.relax(std::move(key), std::move(child), g2, parent, via, h_of);
  if (relaxed.improved) {
    const std::int64_t h = arena.node(relaxed.id).h;
    open.push(g2 + h, h, relaxed.id, g2);
  }
}

/// Reconstruct the preparation circuit from a goal node: the forward arc
/// chain maps target -> ... -> separable state; appending the free
/// disentangling gates reaches ground, and the adjoint of the whole
/// prepares the target. `node_at(id)` maps a node id to its record,
/// letting searchers keep their own arena layout (one vector, or one
/// arena per shard).
template <class NodeAt>
Circuit build_goal_circuit(NodeAt&& node_at, std::int64_t goal_id,
                           int num_qubits) {
  std::vector<const Move*> chain;
  for (std::int64_t id = goal_id;;) {
    const SearchNode& node = node_at(id);
    if (node.parent == SearchNode::kNoParent) break;
    chain.push_back(&node.via);
    id = node.parent;
  }
  Circuit forward(num_qubits);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    forward.append((*it)->to_gate());
  }
  for (const Gate& g : free_disentangle_gates(node_at(goal_id).state)) {
    forward.append(g);
  }
  return forward.adjoint();
}

}  // namespace qsp
