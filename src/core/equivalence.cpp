#include "core/equivalence.hpp"

#include <numeric>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/combinatorics.hpp"

namespace qsp {
namespace {

/// Index sets as bitmasks over basis positions 0..2^n-1.
using SetMask = std::uint32_t;

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Permute the basis positions of `s` by the index map `map` (position x of
/// the result holds position map[x] of s... here map is an involution so
/// direction does not matter).
SetMask apply_position_map(SetMask s, const std::vector<BasisIndex>& map) {
  SetMask out = 0;
  for (std::size_t x = 0; x < map.size(); ++x) {
    if ((s >> x) & 1u) out |= SetMask{1} << map[x];
  }
  return out;
}

}  // namespace

std::vector<ClassCounts> count_uniform_equivalence_classes(int n, int max_m) {
  if (n < 1 || n > 4) {
    throw std::invalid_argument(
        "count_uniform_equivalence_classes: n must be in [1, 4]");
  }
  const std::uint32_t positions = std::uint32_t{1} << n;        // 2^n
  const std::uint32_t num_sets = (std::uint32_t{1} << positions);  // 2^(2^n)

  // Precompute position maps for the generators.
  std::vector<std::vector<BasisIndex>> xor_maps(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    auto& map = xor_maps[static_cast<std::size_t>(t)];
    map.resize(positions);
    for (BasisIndex x = 0; x < positions; ++x) map[x] = flip_bit(x, t);
  }
  std::vector<std::vector<BasisIndex>> swap_maps;
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) {
      std::vector<BasisIndex> map(positions);
      for (BasisIndex x = 0; x < positions; ++x) map[x] = swap_bits(x, p, q);
      swap_maps.push_back(std::move(map));
    }
  }

  UnionFind u2(num_sets);
  UnionFind pu2(num_sets);

  for (SetMask s = 1; s < num_sets; ++s) {
    for (int t = 0; t < n; ++t) {
      const auto& map = xor_maps[static_cast<std::size_t>(t)];
      const SetMask translated = apply_position_map(s, map);
      u2.unite(s, translated);
      pu2.unite(s, translated);
      if (translated == s) {
        // Closed under xor e_t: zero-cost merge keeps the t=0 half.
        SetMask half = 0;
        for (BasisIndex x = 0; x < positions; ++x) {
          if (((s >> x) & 1u) != 0 && get_bit(x, t) == 0) {
            half |= SetMask{1} << x;
          }
        }
        u2.unite(s, half);
        pu2.unite(s, half);
      }
      // Constant qubit: zero-cost split doubles the set. Its inverse is
      // the merge above, so one direction of union suffices; we add it
      // explicitly for states where qubit t is constant 1 (the merge rule
      // above only fires on closed sets).
      bool constant = true;
      int value = -1;
      for (BasisIndex x = 0; x < positions && constant; ++x) {
        if (((s >> x) & 1u) == 0) continue;
        const int b = get_bit(x, t);
        if (value < 0) value = b;
        constant = (b == value);
      }
      if (constant) {
        const SetMask doubled = s | translated;
        u2.unite(s, doubled);
        pu2.unite(s, doubled);
      }
    }
    for (const auto& map : swap_maps) {
      pu2.unite(s, apply_position_map(s, map));
    }
  }

  // Minimal cardinality per component.
  std::vector<int> u2_min(num_sets, positions + 1);
  std::vector<int> pu2_min(num_sets, positions + 1);
  for (SetMask s = 1; s < num_sets; ++s) {
    const int card = popcount(s);
    auto& mu = u2_min[u2.find(s)];
    mu = std::min(mu, card);
    auto& mp = pu2_min[pu2.find(s)];
    mp = std::min(mp, card);
  }

  std::vector<ClassCounts> out;
  for (int m = 1; m <= max_m; ++m) {
    ClassCounts row;
    row.m = m;
    row.total_states = binomial(positions, static_cast<unsigned>(m));
    out.push_back(row);
  }
  // Count class roots by minimal cardinality.
  for (SetMask s = 1; s < num_sets; ++s) {
    if (u2.find(s) == s) {
      const int m = u2_min[s];
      if (m >= 1 && m <= max_m) ++out[static_cast<std::size_t>(m - 1)].u2_classes;
    }
    if (pu2.find(s) == s) {
      const int m = pu2_min[s];
      if (m >= 1 && m <= max_m) ++out[static_cast<std::size_t>(m - 1)].pu2_classes;
    }
  }
  // Count classes touching each cardinality level (alternative definition).
  for (int m = 1; m <= max_m; ++m) {
    std::vector<bool> seen_u2(num_sets, false), seen_pu2(num_sets, false);
    std::uint64_t cu = 0, cp = 0;
    for (SetMask s = 1; s < num_sets; ++s) {
      if (popcount(s) != m) continue;
      const std::uint32_t ru = u2.find(s);
      if (!seen_u2[ru]) {
        seen_u2[ru] = true;
        ++cu;
      }
      const std::uint32_t rp = pu2.find(s);
      if (!seen_pu2[rp]) {
        seen_pu2[rp] = true;
        ++cp;
      }
    }
    out[static_cast<std::size_t>(m - 1)].u2_touching = cu;
    out[static_cast<std::size_t>(m - 1)].pu2_touching = cp;
  }
  return out;
}

}  // namespace qsp
