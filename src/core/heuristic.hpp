#pragma once
// Admissible lower bounds on the remaining CNOT cost (paper Section V-A).
//
// kPair      The paper's bound: every entangled qubit must be touched by a
//            CNOT and a CNOT touches two qubits -> ceil(E / 2).
// kComponent Stronger and still admissible: statistically correlated qubits
//            must share a connected component of the circuit's interaction
//            graph (light-cone argument from the product ground state), so
//            the lowered circuit needs a spanning set of CNOT edges per
//            correlation component: sum (k_i - 1) over components, plus
//            ceil(s / 2) for entangled qubits with no pairwise correlation
//            (e.g. parity states), which still need an incident edge each.
//
// With a coupling graph the kComponent bound is priced against the device
// instead of counting merges at unit cost. Every routed arc of cost w
// contributes interaction edges whose device shortest paths total at most
// w hops, so the remaining cost is at least the fewest device edges that
// connect each correlation component — a unit Steiner tree
// (CouplingGraph::steiner_edges). Components may share one interaction
// component in the eventual circuit (Steiner sizes are not additive under
// union), so the bound minimizes over every grouping of components and
// singletons, pricing a group by the Steiner size of its union; on a
// complete device this reduces exactly to the unit-cost bound above.

#include <cstdint>

#include "arch/coupling.hpp"
#include "core/slot_state.hpp"

namespace qsp {

enum class HeuristicMode { kZero, kPair, kComponent };

/// Lower bound on gamma(|0>, state) in CNOTs under the chosen mode. With a
/// non-null `coupling`, the bound is on the *routed* CNOT cost (the cost
/// model the coupled search uses) and is never below the coupling-blind
/// bound. kPair ignores the coupling: a single incident device edge always
/// costs at least 1, so its bound is unchanged.
std::int64_t heuristic_lower_bound(const SlotState& state, HeuristicMode mode,
                                   const CouplingGraph* coupling = nullptr);

}  // namespace qsp
