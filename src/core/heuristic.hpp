#pragma once
// Admissible lower bounds on the remaining CNOT cost (paper Section V-A).
//
// kPair      The paper's bound: every entangled qubit must be touched by a
//            CNOT and a CNOT touches two qubits -> ceil(E / 2).
// kComponent Stronger and still admissible: statistically correlated qubits
//            must share a connected component of the circuit's interaction
//            graph (light-cone argument from the product ground state), so
//            the lowered circuit needs a spanning set of CNOT edges per
//            correlation component: sum (k_i - 1) over components, plus
//            ceil(s / 2) for entangled qubits with no pairwise correlation
//            (e.g. parity states), which still need an incident edge each.

#include <cstdint>

#include "core/slot_state.hpp"

namespace qsp {

enum class HeuristicMode { kZero, kPair, kComponent };

/// Lower bound on gamma(|0>, state) in CNOTs under the chosen mode.
std::int64_t heuristic_lower_bound(const SlotState& state,
                                   HeuristicMode mode);

}  // namespace qsp
