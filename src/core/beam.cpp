#include "core/beam.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/beam_core.hpp"
#include "core/parallel_beam.hpp"
#include "core/search_cache.hpp"
#include "core/search_core.hpp"
#include "util/timer.hpp"

namespace qsp {

BeamSynthesizer::BeamSynthesizer(BeamOptions options) : options_(options) {
  validate_search_coupling("BeamSynthesizer", options_.coupling.get());
}

SynthesisResult BeamSynthesizer::synthesize(const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "BeamSynthesizer: target has no slot decomposition");
  }
  return synthesize(*slot);
}

SynthesisResult BeamSynthesizer::synthesize(const SlotState& target) const {
  // Consult the equivalence cache: a stored certified-optimal circuit
  // beats any beam descent. The probe is consult-only — beam results
  // never carry the certificate, so claiming in-flight ownership would
  // only make certifying searchers of the same class queue behind a
  // search that cannot populate the cache.
  ScopedCacheProbe probe(options_.cache.get(), target,
                         options_.coupling.get(), options_.max_controls,
                         options_.time_budget_seconds,
                         /*consult_only=*/true);
  if (probe.hit()) return probe.result();

  if (options_.num_threads != 1) {
    BeamOptions parallel_options = options_;
    parallel_options.cache = nullptr;  // this probe already consulted
    return ParallelBeamSynthesizer(parallel_options).synthesize(target);
  }

  const Timer timer;
  const Deadline deadline(options_.time_budget_seconds);
  SynthesisResult result;

  const CanonicalLevel level =
      effective_canonical_level(options_.canonical, options_.coupling.get());
  MoveGenOptions move_options = search_move_gen_options(
      options_.max_controls, options_.full_candidate_cap,
      options_.coupling.get(), level);
  // Unlike A*, the beam never runs uncanonicalized, so zero-cost arcs are
  // always absorbed into the equivalence classes.
  move_options.include_zero_cost = false;

  // Chunked arena: stable references let the expansion loop borrow the
  // parent state instead of copying it, and blocks/bytes feed SearchStats.
  NodeArena nodes;
  // Best g seen per class across all levels, to prevent revisits. The
  // beam keeps every improved node (no rebinding): truncated ancestors
  // must stay intact for path reconstruction.
  ClassIndex<std::int64_t> best_g;

  // The beam carries no optimality certificate, so it always prices the
  // heuristic against the device when a coupling is set.
  auto h_of = search_heuristic(options_.heuristic, options_.coupling.get());

  nodes.append(SearchNode{target, 0, h_of(target),
                          SearchNode::kNoParent, Move{}});
  best_g.emplace(canonical_key(target, level), 0);

  std::vector<std::int64_t> beam{0};
  // Best goal found anywhere, not just inside the beam: the admissible h
  // underestimates the remaining cost, so a finished state (h = 0, large
  // g) often ranks behind unfinished ones and would be truncated away if
  // goals were only recognized within the surviving beam.
  std::int64_t goal_id = -1;
  std::int64_t goal_g = kInfiniteCost;

  if (free_reducible(target, level)) {
    goal_id = 0;
    goal_g = 0;
  }

  ClassIndex<BeamPending> level_map;
  for (int depth = 0;
       goal_id != 0 && depth < options_.max_levels && !beam.empty();
       ++depth) {
    if (deadline.expired()) {
      result.stats.budget_exhausted = true;
      break;
    }
    // The incumbent bound is frozen at level entry so pruning cannot
    // depend on the order goals are discovered within the level — the
    // property that lets the parallel beam (core/parallel_beam.cpp)
    // partition this loop across shards and still match bit for bit.
    const std::int64_t frozen_goal_g = goal_g;
    level_map.clear();
    for (std::size_t pos = 0; pos < beam.size(); ++pos) {
      if (deadline.expired()) {  // wide levels must not overshoot
        result.stats.budget_exhausted = true;
        break;
      }
      const std::int64_t id = beam[pos];
      // Borrowed, not copied: the arena only appends during a level, and
      // NodeArena references are stable across appends.
      const SlotState& state = nodes.node(id).state;
      const std::int64_t g = nodes.node(id).g;
      std::uint64_t move_index = 0;
      for (const Move& mv : enumerate_moves(state, move_options)) {
        const std::uint64_t seq = beam_seq(pos, move_index++);
        ++result.stats.nodes_generated;
        SlotState child = apply_move(state, mv);
        if (!options_.allow_splits &&
            child.cardinality() > state.cardinality()) {
          continue;
        }
        const std::int64_t g2 = g + mv.cost;
        if (g2 >= frozen_goal_g) continue;  // cannot improve the incumbent
        CanonicalKey key = canonical_key(child, level);
        beam_offer(level_map, std::move(key),
                   BeamPending{std::move(child), g2, seq, id, mv});
      }
      ++result.stats.nodes_expanded;
    }

    // Resolve the level's class winners against the cross-level best_g;
    // resolution order is irrelevant (per-class decisions are
    // independent, the goal adoption takes the (g2, seq) minimum).
    std::vector<BeamCandidate> candidates;
    candidates.reserve(level_map.size());
    std::optional<BeamPending> goal_offer;
    while (!level_map.empty()) {
      auto entry = level_map.extract(level_map.begin());
      BeamPending& pending = entry.mapped();
      auto [it, inserted] =
          best_g.try_emplace(std::move(entry.key()), pending.g2);
      if (!inserted) {
        if (it->second <= pending.g2) continue;
        it->second = pending.g2;
      }
      if (free_reducible(pending.state, level)) {
        if (!goal_offer.has_value() ||
            beam_pending_wins(pending, *goal_offer)) {
          goal_offer = std::move(pending);
        }
        continue;  // goals need no further expansion
      }
      const std::int64_t h = h_of(pending.state);
      const int cardinality = pending.state.cardinality();
      const std::int64_t node_id =
          nodes.append(SearchNode{std::move(pending.state), pending.g2, h,
                                  pending.parent, pending.via});
      candidates.push_back(BeamCandidate{
          beam_score(pending.g2, h, cardinality, options_.cardinality_weight),
          h, pending.g2, &it->first, node_id});
    }
    if (goal_offer.has_value() && goal_offer->g2 < goal_g) {
      goal_g = goal_offer->g2;
      goal_id =
          nodes.append(SearchNode{std::move(goal_offer->state), goal_offer->g2,
                                  0, goal_offer->parent, goal_offer->via});
    }

    std::sort(candidates.begin(), candidates.end(), beam_candidate_less);
    if (static_cast<int>(candidates.size()) > options_.beam_width) {
      candidates.resize(static_cast<std::size_t>(options_.beam_width));
    }
    // Keep only states that can still beat the incumbent (h admissible).
    if (goal_id >= 0) {
      std::erase_if(candidates, [&](const BeamCandidate& c) {
        return c.g + c.h >= goal_g;
      });
    }
    beam.clear();
    beam.reserve(candidates.size());
    for (const BeamCandidate& c : candidates) beam.push_back(c.id);
  }

  result.stats.classes_stored = best_g.size();
  result.stats.arena_blocks = nodes.blocks();
  result.stats.arena_bytes_peak = nodes.bytes_peak();
  result.stats.seconds = timer.seconds();
  if (goal_id >= 0) {
    result.found = true;
    result.optimal = false;  // beam search gives no optimality certificate
    result.cnot_cost = nodes.node(goal_id).g;
    result.circuit = build_goal_circuit(
        [&](std::int64_t id) -> const SearchNode& { return nodes.node(id); },
        goal_id, target.num_qubits());
  }
  return result;
}

}  // namespace qsp
