#include "core/beam.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "core/search_cache.hpp"
#include "core/search_core.hpp"
#include "util/timer.hpp"

namespace qsp {

BeamSynthesizer::BeamSynthesizer(BeamOptions options) : options_(options) {
  validate_search_coupling("BeamSynthesizer", options_.coupling.get());
}

SynthesisResult BeamSynthesizer::synthesize(const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "BeamSynthesizer: target has no slot decomposition");
  }
  return synthesize(*slot);
}

SynthesisResult BeamSynthesizer::synthesize(const SlotState& target) const {
  // Consult the equivalence cache: a stored certified-optimal circuit
  // beats any beam descent. The probe is consult-only — beam results
  // never carry the certificate, so claiming in-flight ownership would
  // only make certifying searchers of the same class queue behind a
  // search that cannot populate the cache.
  ScopedCacheProbe probe(options_.cache.get(), target,
                         options_.coupling.get(), options_.max_controls,
                         options_.time_budget_seconds,
                         /*consult_only=*/true);
  if (probe.hit()) return probe.result();

  const Timer timer;
  const Deadline deadline(options_.time_budget_seconds);
  SynthesisResult result;

  const CanonicalLevel level =
      effective_canonical_level(options_.canonical, options_.coupling.get());
  MoveGenOptions move_options = search_move_gen_options(
      options_.max_controls, options_.full_candidate_cap,
      options_.coupling.get(), level);
  // Unlike A*, the beam never runs uncanonicalized, so zero-cost arcs are
  // always absorbed into the equivalence classes.
  move_options.include_zero_cost = false;

  std::vector<SearchNode> nodes;
  // Best g seen per class across all levels, to prevent revisits. The
  // beam keeps every improved node (no rebinding): truncated ancestors
  // must stay intact for path reconstruction.
  ClassIndex<std::int64_t> best_g;

  // The beam carries no optimality certificate, so it always prices the
  // heuristic against the device when a coupling is set.
  auto h_of = search_heuristic(options_.heuristic, options_.coupling.get());

  nodes.push_back(SearchNode{target, 0, h_of(target),
                             SearchNode::kNoParent, Move{}});
  best_g.emplace(canonical_key(target, level), 0);

  std::vector<std::int64_t> beam{0};
  // Best goal found anywhere, not just inside the beam: the admissible h
  // underestimates the remaining cost, so a finished state (h = 0, large
  // g) often ranks behind unfinished ones and would be truncated away if
  // goals were only recognized within the surviving beam.
  std::int64_t goal_id = -1;
  std::int64_t goal_g = 0;

  if (free_reducible(target, level)) goal_id = 0;

  for (int depth = 0;
       goal_id != 0 && depth < options_.max_levels && !beam.empty();
       ++depth) {
    if (deadline.expired()) break;
    std::vector<std::int64_t> candidates;
    for (const std::int64_t id : beam) {
      if (deadline.expired()) break;  // wide levels must not overshoot
      const SlotState state = nodes[static_cast<std::size_t>(id)].state;
      const std::int64_t g = nodes[static_cast<std::size_t>(id)].g;
      for (const Move& mv : enumerate_moves(state, move_options)) {
        ++result.stats.nodes_generated;
        SlotState child = apply_move(state, mv);
        if (!options_.allow_splits &&
            child.cardinality() > state.cardinality()) {
          continue;
        }
        const std::int64_t g2 = g + mv.cost;
        if (goal_id >= 0 && g2 >= goal_g) continue;  // cannot improve
        CanonicalKey key = canonical_key(child, level);
        auto [it, inserted] = best_g.try_emplace(std::move(key), g2);
        if (!inserted) {
          if (it->second <= g2) continue;
          it->second = g2;
        }
        const std::int64_t hc = h_of(child);
        const auto node_id = static_cast<std::int64_t>(nodes.size());
        if (free_reducible(child, level)) {
          if (goal_id < 0 || g2 < goal_g) {
            nodes.push_back(SearchNode{std::move(child), g2, hc, id, mv});
            goal_id = node_id;
            goal_g = g2;
          }
          continue;  // goals need no further expansion
        }
        nodes.push_back(SearchNode{std::move(child), g2, hc, id, mv});
        candidates.push_back(node_id);
      }
      ++result.stats.nodes_expanded;
    }
    auto score = [&](std::int64_t id) {
      const auto& node = nodes[static_cast<std::size_t>(id)];
      return static_cast<double>(node.g + node.h) +
             options_.cardinality_weight *
                 static_cast<double>(node.state.cardinality() - 1);
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](std::int64_t a, std::int64_t b) {
                const auto& na = nodes[static_cast<std::size_t>(a)];
                const auto& nb = nodes[static_cast<std::size_t>(b)];
                return std::tuple(score(a), na.h) <
                       std::tuple(score(b), nb.h);
              });
    if (static_cast<int>(candidates.size()) > options_.beam_width) {
      candidates.resize(static_cast<std::size_t>(options_.beam_width));
    }
    // Keep only states that can still beat the incumbent (h admissible).
    if (goal_id >= 0) {
      std::erase_if(candidates, [&](std::int64_t id) {
        const auto& node = nodes[static_cast<std::size_t>(id)];
        return node.g + node.h >= goal_g;
      });
    }
    beam = std::move(candidates);
  }

  result.stats.classes_stored = best_g.size();
  result.stats.seconds = timer.seconds();
  if (goal_id >= 0) {
    result.found = true;
    result.optimal = false;  // beam search gives no optimality certificate
    result.cnot_cost = nodes[static_cast<std::size_t>(goal_id)].g;
    result.circuit = build_goal_circuit(
        [&](std::int64_t id) -> const SearchNode& {
          return nodes[static_cast<std::size_t>(id)];
        },
        goal_id, target.num_qubits());
  }
  return result;
}

}  // namespace qsp
