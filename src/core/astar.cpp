#include "core/astar.hpp"

#include <stdexcept>
#include <utility>

#include "core/parallel_astar.hpp"
#include "core/search_cache.hpp"
#include "core/search_core.hpp"
#include "util/timer.hpp"

namespace qsp {

AStarSynthesizer::AStarSynthesizer(SearchOptions options)
    : options_(options) {
  validate_search_coupling("AStarSynthesizer", options_.coupling.get());
}

SynthesisResult AStarSynthesizer::synthesize(const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "AStarSynthesizer: target has no slot decomposition (negative or "
        "irrational amplitudes); use the workflow solver instead");
  }
  return synthesize(*slot);
}

SynthesisResult AStarSynthesizer::synthesize(const SlotState& target) const {
  // The wall clock starts before the cache probe: time spent blocked on
  // another thread's in-flight search of this class counts against this
  // search's own budget, so a timed-out wait can never double the
  // stage's wall clock.
  const Deadline overall(options_.time_budget_seconds);
  // One probe covers both kernels: consult (and possibly wait on an
  // in-flight search of the same class) before dispatch, publish after.
  ScopedCacheProbe probe(options_.cache.get(), target,
                         options_.coupling.get(), options_.max_controls,
                         options_.time_budget_seconds);
  if (probe.hit()) return probe.result();

  if (options_.num_threads != 1) {
    SearchOptions parallel_options = options_;
    parallel_options.cache = nullptr;  // this probe already owns the claim
    parallel_options.time_budget_seconds = clamp_budget(0.0, overall);
    const SynthesisResult parallel_result =
        ParallelAStarSynthesizer(std::move(parallel_options))
            .synthesize(target);
    probe.publish(parallel_result);
    return parallel_result;
  }

  const Timer timer;
  const SearchBudget budget(clamp_budget(0.0, overall),
                            options_.node_budget);
  SynthesisResult result;

  const CanonicalLevel level =
      effective_canonical_level(options_.canonical, options_.coupling.get());
  const MoveGenOptions move_options = search_move_gen_options(
      options_.max_controls, options_.full_candidate_cap,
      options_.coupling.get(), level);
  // The arc set is exhaustive only while every group stays within the
  // candidate cap; above it the structured fallback may omit arcs, so the
  // result keeps `found` but loses the optimality certificate.
  const bool arcs_exhaustive = target.total() <= options_.full_candidate_cap;

  ClassedArena arena;
  OpenQueue open;
  auto h_of = search_heuristic(
      options_.heuristic,
      options_.routed_heuristic ? options_.coupling.get() : nullptr);
  auto g_of = [&](std::int64_t id) { return arena.node(id).g; };

  const std::int64_t root_h = h_of(target);
  arena.add_root(canonical_key(target, level), target, root_h);
  open.push(root_h, root_h, 0, 0);

  std::int64_t goal_id = -1;
  while (!budget.exhausted(result.stats.nodes_generated)) {
    const auto top = open.pop_best(g_of, result.stats.stale_pops);
    if (!top.has_value()) break;
    SearchNode& node = arena.node(top->id);
    if (free_reducible(node.state, level)) {
      goal_id = top->id;
      result.stats.completed = true;
      break;
    }
    ++result.stats.nodes_expanded;

    // Safe to expand by reference: NodeArena references are stable across
    // appends, and a relax of this very class cannot rebind it mid-loop
    // (every child has g2 = g + cost >= g, and relax requires g2 < g).
    const SlotState& state = node.state;
    const std::int64_t g = node.g;
    for (const Move& mv : enumerate_moves(state, move_options)) {
      if (budget.deadline_expired()) break;  // child work can dominate a pop
      ++result.stats.nodes_generated;
      SlotState child = apply_move(state, mv);
      const std::int64_t g2 = g + mv.cost;
      CanonicalKey key = canonical_key(child, level);
      relax_into_open(arena, open, std::move(key), std::move(child), g2,
                      top->id, mv, h_of);
    }
  }

  result.stats.classes_stored = arena.size();
  result.stats.sum_shard_peak_open_size = open.peak_size();
  result.stats.arena_blocks = arena.arena_blocks();
  result.stats.arena_bytes_peak = arena.arena_bytes_peak();
  result.stats.seconds = timer.seconds();
  // Exiting without a completed goal pop is either an exhausted search
  // space (open ran dry — not a budget issue) or a budget abort.
  result.stats.budget_exhausted =
      !result.stats.completed &&
      budget.exhausted(result.stats.nodes_generated);
  if (goal_id >= 0) {
    result.found = true;
    result.optimal = arcs_exhaustive;
    result.cnot_cost = arena.node(goal_id).g;
    result.circuit = build_goal_circuit(
        [&](std::int64_t id) -> const SearchNode& { return arena.node(id); },
        goal_id, target.num_qubits());
  }
  probe.publish(result);
  return result;
}

}  // namespace qsp
