#include "core/astar.hpp"

#include <queue>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

struct NodeRecord {
  SlotState state;       // raw state achieving g (one member of the class)
  std::int64_t g = 0;
  std::int64_t h = 0;
  std::int32_t parent = -1;
  Move via;              // arc from parent's raw state to this raw state
};

/// Build the preparation circuit from the goal node: the forward arc chain
/// maps target -> ... -> separable state; appending the free disentangling
/// gates reaches ground, and the adjoint of the whole prepares the target.
Circuit build_circuit(const std::vector<NodeRecord>& nodes,
                      std::int32_t goal_id, int num_qubits) {
  std::vector<const Move*> chain;
  for (std::int32_t id = goal_id; nodes[static_cast<std::size_t>(id)].parent >= 0;
       id = nodes[static_cast<std::size_t>(id)].parent) {
    chain.push_back(&nodes[static_cast<std::size_t>(id)].via);
  }
  Circuit forward(num_qubits);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    forward.append((*it)->to_gate());
  }
  for (const Gate& g :
       free_disentangle_gates(nodes[static_cast<std::size_t>(goal_id)].state)) {
    forward.append(g);
  }
  return forward.adjoint();
}

}  // namespace

AStarSynthesizer::AStarSynthesizer(SearchOptions options)
    : options_(options) {}

SynthesisResult AStarSynthesizer::synthesize(const QuantumState& target) const {
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    throw std::invalid_argument(
        "AStarSynthesizer: target has no slot decomposition (negative or "
        "irrational amplitudes); use the workflow solver instead");
  }
  return synthesize(*slot);
}

SynthesisResult AStarSynthesizer::synthesize(const SlotState& target) const {
  const Timer timer;
  const Deadline deadline(options_.time_budget_seconds);
  SynthesisResult result;

  MoveGenOptions move_options;
  move_options.max_controls = options_.max_controls;
  move_options.full_candidate_cap = options_.full_candidate_cap;
  move_options.coupling = options_.coupling.get();
  // Qubit relabeling is only free on a symmetric (complete) coupling.
  CanonicalLevel level = options_.canonical;
  if (options_.coupling != nullptr && !options_.coupling->is_complete() &&
      (level == CanonicalLevel::kPU2Greedy ||
       level == CanonicalLevel::kPU2Exact)) {
    level = CanonicalLevel::kU2;
  }
  move_options.include_zero_cost = level == CanonicalLevel::kNone;
  // The arc set is exhaustive only while every group stays within the
  // candidate cap; above it the structured fallback may omit arcs, so the
  // result keeps `found` but loses the optimality certificate.
  const bool arcs_exhaustive = target.total() <= options_.full_candidate_cap;

  std::vector<NodeRecord> nodes;
  std::unordered_map<CanonicalKey, std::int32_t, CanonicalKeyHash> index;

  // Priority queue entries: (f, h, node id, g at push) with lazy deletion.
  using Entry = std::tuple<std::int64_t, std::int64_t, std::int32_t,
                           std::int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;

  auto h_of = [&](const SlotState& s) {
    return heuristic_lower_bound(s, options_.heuristic);
  };

  NodeRecord root{target, 0, h_of(target), -1, Move{}};
  nodes.push_back(root);
  index.emplace(canonical_key(target, level), 0);
  queue.emplace(root.h, root.h, 0, 0);

  std::int32_t goal_id = -1;
  while (!queue.empty()) {
    if (deadline.expired() ||
        (options_.node_budget != 0 &&
         result.stats.nodes_generated >= options_.node_budget)) {
      break;  // budget exhausted; result.found stays false
    }
    const auto [f, h, id, g_at_push] = queue.top();
    queue.pop();
    NodeRecord& node = nodes[static_cast<std::size_t>(id)];
    if (node.g != g_at_push) continue;  // stale entry
    if (free_reducible(node.state, level)) {
      goal_id = id;
      result.stats.completed = true;
      break;
    }
    ++result.stats.nodes_expanded;

    const SlotState state = node.state;  // copy: nodes may reallocate
    const std::int64_t g = node.g;
    for (const Move& mv : enumerate_moves(state, move_options)) {
      if (deadline.expired()) break;  // child work can dominate a pop
      ++result.stats.nodes_generated;
      SlotState child = apply_move(state, mv);
      const std::int64_t g2 = g + mv.cost;
      CanonicalKey key = canonical_key(child, level);
      auto [it, inserted] = index.try_emplace(key, 0);
      if (!inserted) {
        NodeRecord& existing = nodes[static_cast<std::size_t>(it->second)];
        if (existing.g <= g2) continue;
        // Better path to a known class: rebind the record (implicit
        // reopening keeps optimality even if h is inconsistent).
        existing.state = std::move(child);
        existing.g = g2;
        existing.parent = id;
        existing.via = mv;
        queue.emplace(g2 + existing.h, existing.h, it->second, g2);
      } else {
        const std::int64_t hc = h_of(child);
        it->second = static_cast<std::int32_t>(nodes.size());
        nodes.push_back(NodeRecord{std::move(child), g2, hc, id, mv});
        queue.emplace(g2 + hc, hc, it->second, g2);
      }
    }
  }

  result.stats.classes_stored = nodes.size();
  result.stats.seconds = timer.seconds();
  if (goal_id >= 0) {
    result.found = true;
    result.optimal = arcs_exhaustive;
    result.cnot_cost = nodes[static_cast<std::size_t>(goal_id)].g;
    result.circuit = build_circuit(nodes, goal_id, target.num_qubits());
  }
  return result;
}

}  // namespace qsp
