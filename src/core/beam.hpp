#pragma once
// Anytime beam search over the same state-transition graph as the A*
// solver. Used for instances beyond exact reach (e.g. Dicke states with
// n >= 5): returns a valid, verified-by-construction arc path without an
// optimality claim.

#include "core/astar.hpp"

namespace qsp {

struct BeamOptions {
  int beam_width = 512;
  int max_levels = 96;
  HeuristicMode heuristic = HeuristicMode::kComponent;
  CanonicalLevel canonical = CanonicalLevel::kPU2Greedy;
  /// Rotation-arc control budget; -1 allows the m-flow-style merges with
  /// large distinguishing control sets that spread-out supports need.
  int max_controls = -1;
  /// Rotation-candidate enumeration cap (see MoveGenOptions).
  std::uint64_t full_candidate_cap = 4096;
  /// Admit arcs that increase cardinality (splits). Off by default: they
  /// create enormous equal-cost plateaus that defeat beam descent, and
  /// merge/relabel arcs alone always reach the ground class.
  bool allow_splits = false;
  /// Selection-score weight per remaining distinct index. The admissible
  /// f = g + h cannot charge for cardinality (free merges exist), so the
  /// beam would otherwise drown necessary expensive merges under cheap
  /// lateral CNOT relabels. Only the *selection* uses this estimate; the
  /// incumbent pruning stays admissible.
  double cardinality_weight = 3.0;
  /// Optional coupling constraint (see SearchOptions::coupling).
  std::shared_ptr<const CouplingGraph> coupling;
  double time_budget_seconds = 0.0;
  /// Worker shards for the level expansion: 1 runs the serial descent,
  /// larger values run the sharded parallel beam
  /// (core/parallel_beam.hpp) with that many threads, 0 uses all
  /// hardware threads. Results are bit-identical at every thread count
  /// (deterministic (score, h, canonical key) selection).
  int num_threads = 1;
  /// Optional equivalence cache (see SearchOptions::cache). The beam
  /// consults it — a cached certified-optimal circuit beats any beam
  /// descent — but never populates it: beam results carry no certificate.
  std::shared_ptr<SearchCache> cache;
};

class BeamSynthesizer {
 public:
  explicit BeamSynthesizer(BeamOptions options = {});

  SynthesisResult synthesize(const SlotState& target) const;
  SynthesisResult synthesize(const QuantumState& target) const;

  const BeamOptions& options() const { return options_; }

 private:
  BeamOptions options_;
};

}  // namespace qsp
