#pragma once
// Sharded parallel beam descent on the same mailbox substrate as the HDA*
// kernel (core/parallel_astar.hpp): each level's frontier is partitioned
// across BeamOptions::num_threads workers, children are generated and
// canonicalized locally, and every child is routed to the shard owning its
// canonical key (hash of the key, mutex-striped mailboxes), so duplicate
// classes are resolved without global locking against a sharded best_g.
// A per-shard top-k selection followed by a merge of the k sorted lists
// replaces the serial global sort, and a level barrier restores beam
// semantics before the next expansion.
//
// Unlike HDA*, the beam is level-synchronous, so determinism is cheap to
// keep: within a level, a class's winner is the generated child
// minimizing (g2, seq) where seq stamps the serial generation order
// (frontier position, move ordinal), goals are adopted by the same
// (g2, seq) rule, and candidates are ordered by (score, h, canonical
// key) — a total order. Every reduction is a commutative/associative
// minimum, so the result is **bit-identical to the serial beam at every
// thread count** (circuit, cnot_cost, and the deterministic stats
// fields); tests/test_parallel_beam.cpp pins this corpus-wide. The only
// nondeterministic runs are deadline-truncated ones, which both kernels
// flag via SearchStats::budget_exhausted.
//
// `BeamSynthesizer` dispatches here automatically when
// BeamOptions::num_threads != 1; this header is the direct entry point
// used by the determinism tests and the thread-scaling benches.

#include "core/beam.hpp"

namespace qsp {

class ParallelBeamSynthesizer {
 public:
  explicit ParallelBeamSynthesizer(BeamOptions options = {});

  /// Run the sharded beam descent for the slot-encoded target. Returns
  /// exactly what the serial beam returns on the same options (see
  /// above); like the serial beam, the result never carries the
  /// `optimal` certificate.
  SynthesisResult synthesize(const SlotState& target) const;

  /// Convenience: decompose a sparse state into slots first. Throws
  /// std::invalid_argument if the state has no slot decomposition.
  SynthesisResult synthesize(const QuantumState& target) const;

  const BeamOptions& options() const { return options_; }

 private:
  BeamOptions options_;
};

}  // namespace qsp
