#pragma once
// Level semantics shared by the serial beam (core/beam.cpp) and the
// sharded parallel beam (core/parallel_beam.cpp). Bit-identical results
// across thread counts hinge on three rules living in exactly one place:
//
//  - within one level, an equivalence class's winner is the generated
//    child minimizing (g2, seq) — the same entry a serial in-order scan
//    keeps under the strict-improvement rule;
//  - candidate selection orders by (score, h, canonical key), a total
//    order once classes are deduplicated (keys are unique);
//  - the selection score itself (f plus the cardinality estimate).
//
// Everything here is single-threaded; the parallel kernel gets its
// determinism from these rules being order-free (beam_offer is
// commutative and associative over (g2, seq) minimization).

#include <cstdint>
#include <tuple>
#include <utility>

#include "core/moves.hpp"
#include "core/search_core.hpp"

namespace qsp {

/// Generation-order stamp: the parent's position in the level frontier
/// (major) and the move ordinal within the parent's expansion (minor).
/// Unique per generated child, so (g2, seq) is a total order.
inline std::uint64_t beam_seq(std::uint64_t beam_pos,
                              std::uint64_t move_index) {
  return (beam_pos << 32) | move_index;
}

/// A generated child waiting for its class's level resolution. `parent`
/// is searcher-defined (arena offset or sharded gid), like
/// SearchNode::parent.
struct BeamPending {
  SlotState state;
  std::int64_t g2 = 0;
  std::uint64_t seq = 0;
  std::int64_t parent = SearchNode::kNoParent;
  Move via;
};

/// True when `a` beats `b` for its class's slot (or the level's goal).
inline bool beam_pending_wins(const BeamPending& a, const BeamPending& b) {
  return std::tie(a.g2, a.seq) < std::tie(b.g2, b.seq);
}

/// Offer a child to its class's slot in a level map, keeping the
/// (g2, seq) minimum. One class can never occupy two slots of the
/// truncated beam (the duplicate-class bug the level map exists to fix).
inline void beam_offer(ClassIndex<BeamPending>& level_map, CanonicalKey&& key,
                       BeamPending&& pending) {
  auto [it, inserted] =
      level_map.try_emplace(std::move(key), std::move(pending));
  if (!inserted && beam_pending_wins(pending, it->second)) {
    it->second = std::move(pending);
  }
}

/// Selection score: the admissible f = g + h plus the (inadmissible,
/// selection-only) cardinality estimate — see
/// BeamOptions::cardinality_weight.
inline double beam_score(std::int64_t g, std::int64_t h, int cardinality,
                         double cardinality_weight) {
  return static_cast<double>(g + h) +
         cardinality_weight * static_cast<double>(cardinality - 1);
}

/// One class winner surviving resolution, ready for the k-select. `key`
/// points at the searcher's best_g entry for the class (node-based
/// unordered_map ⇒ stable), `id` is the searcher's node id (arena offset
/// or sharded gid).
struct BeamCandidate {
  double score = 0.0;
  std::int64_t h = 0;
  std::int64_t g = 0;
  const CanonicalKey* key = nullptr;
  std::int64_t id = 0;
};

/// The deterministic truncation order: (score, h, canonical key).
inline bool beam_candidate_less(const BeamCandidate& a,
                                const BeamCandidate& b) {
  if (a.score != b.score) return a.score < b.score;
  if (a.h != b.h) return a.h < b.h;
  return *a.key < *b.key;
}

}  // namespace qsp
