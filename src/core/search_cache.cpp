#include "core/search_cache.hpp"

#include <sstream>

#include "core/search_core.hpp"

namespace qsp {

CacheFingerprint make_cache_fingerprint(int num_qubits,
                                        const CouplingGraph* coupling,
                                        int max_controls) {
  CacheFingerprint fp;
  // The cache canonicalizes as aggressively as the device allows:
  // permutation classes where relabeling is free (complete/no coupling),
  // U(2) classes elsewhere — the same demotion rule the searchers apply.
  fp.level = effective_canonical_level(CanonicalLevel::kPU2Exact, coupling);
  std::ostringstream os;
  os << "table1-v1|w" << num_qubits << "|c" << max_controls << '|';
  if (coupling == nullptr) {
    os << "none";
  } else {
    os << coupling->fingerprint();
  }
  fp.id = os.str();
  return fp;
}

ScopedCacheProbe::ScopedCacheProbe(SearchCache* cache,
                                   const SlotState& target,
                                   const CouplingGraph* coupling,
                                   int max_controls,
                                   double max_wait_seconds,
                                   bool consult_only)
    : cache_(cache), target_(&target) {
  if (cache_ == nullptr) return;
  fingerprint_ =
      make_cache_fingerprint(target.num_qubits(), coupling, max_controls);
  witness_ = canonical_witness(target, fingerprint_.level);
  lookup_ = cache_->begin(target, witness_, fingerprint_, max_wait_seconds,
                          consult_only);
  open_ = lookup_.claim == SearchCache::Claim::kOwner;
}

ScopedCacheProbe::~ScopedCacheProbe() {
  if (open_) cache_->end(*target_, witness_, fingerprint_, nullptr);
}

void ScopedCacheProbe::publish(const SynthesisResult& result) {
  if (!open_) return;
  open_ = false;
  cache_->end(*target_, witness_, fingerprint_, &result);
}

}  // namespace qsp
