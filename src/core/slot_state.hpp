#pragma once
// Slot encoding of quantum states for the exact-synthesis search (paper
// Sections IV-B and VI-D). A state of total weight m is represented by m
// *slots* of fixed weight 1/sqrt(m); amplitude-preserving transitions only
// relabel slot indices, and duplicated indices encode merged amplitudes
// c = sqrt(count/m). We store the run-length form: sorted (index, count)
// entries, so all operations scale with the cardinality (number of distinct
// indices), not with m. The paper's n*m-bit encoding is the special case
// where every count is 1.
//
// The encoding covers every state whose squared amplitudes are integer
// multiples of 1/m for some m, which includes all uniform benchmark
// families of the paper and every state the workflow's reductions produce
// from them.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "state/quantum_state.hpp"
#include "util/bitops.hpp"

namespace qsp {

struct SlotEntry {
  BasisIndex index = 0;
  std::uint32_t count = 0;

  friend bool operator==(const SlotEntry&, const SlotEntry&) = default;
};

/// A SlotEntry array viewed in the *entry word* layout of util/bitops
/// wideops: each entry is one 64-bit word with the index in the low half
/// and the count in the high half. The asserts pin the layout this
/// reinterpretation depends on (little-endian x86-64 / aarch64 hosts).
inline const std::uint64_t* entry_words(const std::vector<SlotEntry>& entries) {
  static_assert(sizeof(SlotEntry) == sizeof(std::uint64_t));
  static_assert(offsetof(SlotEntry, index) == 0);
  static_assert(offsetof(SlotEntry, count) == sizeof(std::uint32_t));
  static_assert(std::endian::native == std::endian::little);
  return reinterpret_cast<const std::uint64_t*>(entries.data());
}

class SlotState {
 public:
  /// Build from (index, count) entries; merges duplicates, drops zero
  /// counts, sorts by index. Throws on empty support or bad indices.
  SlotState(int num_qubits, std::vector<SlotEntry> entries);

  /// Build from a flat list of slot indices (count 1 each).
  static SlotState from_indices(int num_qubits,
                                const std::vector<BasisIndex>& slots);

  /// Ground state carrying `total` slots on index 0.
  static SlotState ground(int num_qubits, std::uint32_t total);

  /// Decompose a sparse state into slots: find the smallest M <= max_total
  /// with amplitude(x)^2 ~= count_x / M for positive integers count_x.
  /// Returns nullopt for states with negative amplitudes or no rational
  /// structure within the budget.
  static std::optional<SlotState> from_state(const QuantumState& state,
                                             std::uint32_t max_total = 1u
                                                                       << 20);

  /// Merged sparse view: amplitude(x) = sqrt(count_x / m).
  QuantumState to_state() const;

  int num_qubits() const { return num_qubits_; }
  /// Total slot count m (invariant along all transitions).
  std::uint64_t total() const { return total_; }
  /// Number of distinct indices (the quantum state's cardinality).
  int cardinality() const { return static_cast<int>(entries_.size()); }
  const std::vector<SlotEntry>& entries() const { return entries_; }

  /// True if the only index is 0.
  bool is_ground() const;

  /// X on qubit t: flip bit t of every index.
  SlotState with_x(int target) const;

  /// CNOT: flip bit `target` of entries whose `control` bit equals
  /// `positive`.
  SlotState with_cnot(int control, bool positive, int target) const;

  /// Relabel via a qubit permutation: bit perm[q] of the new index is bit q
  /// of the old one.
  SlotState with_permutation(const std::vector<int>& perm) const;

  /// Translate all indices by XOR with `mask` (a layer of X gates).
  SlotState with_translation(BasisIndex mask) const;

  /// True if qubit q has the same value in every entry (value via
  /// out-param when non-null).
  bool qubit_constant(int qubit, int* value = nullptr) const;

  /// True if qubit q is separable: constant, or each rest-group r carries
  /// counts (j_r, k_r) with a common ratio (exact cross-multiplication).
  bool qubit_separable(int qubit) const;

  std::size_t hash() const;
  std::string to_string() const;

  friend bool operator==(const SlotState&, const SlotState&) = default;

 private:
  int num_qubits_ = 1;
  std::uint64_t total_ = 0;
  std::vector<SlotEntry> entries_;  // ascending by index, unique
};

}  // namespace qsp
