#include "phase/complex_statevector.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {

ComplexStatevector::ComplexStatevector(int num_qubits)
    : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument(
        "ComplexStatevector: qubit count out of range");
  }
  amp_.assign(std::size_t{1} << num_qubits, {0.0, 0.0});
  amp_[0] = {1.0, 0.0};
}

ComplexStatevector::ComplexStatevector(const ComplexState& state)
    : num_qubits_(state.num_qubits()) {
  amp_.assign(std::size_t{1} << num_qubits_, {0.0, 0.0});
  for (const ComplexTerm& t : state.terms()) amp_[t.index] = t.amplitude;
}

void ComplexStatevector::apply_pairs(const Gate& gate, bool z_axis) {
  // Pattern handling covers Ry/Rz (no controls), CRy/MCRy (fixed
  // pattern) and UCRy/UCRz (angle table) uniformly.
  const auto& controls = gate.controls();
  const bool is_uc = gate.kind() == GateKind::kUCRy ||
                     gate.kind() == GateKind::kUCRz;
  BasisIndex mask = 0;
  BasisIndex value = 0;
  if (!is_uc) {
    for (const auto& c : controls) {
      mask |= BasisIndex{1} << c.qubit;
      if (c.positive) value |= BasisIndex{1} << c.qubit;
    }
  }
  const std::size_t stride = std::size_t{1} << gate.target();
  const std::size_t size = amp_.size();
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      double theta = gate.theta();
      if (is_uc) {
        std::uint32_t pattern = 0;
        for (std::size_t b = 0; b < controls.size(); ++b) {
          if (get_bit(static_cast<BasisIndex>(i), controls[b].qubit) != 0) {
            pattern |= std::uint32_t{1} << b;
          }
        }
        theta = gate.angles()[pattern];
      } else if ((static_cast<BasisIndex>(i) & mask) != value) {
        continue;
      }
      const std::complex<double> a = amp_[i];
      const std::complex<double> b = amp_[i + stride];
      if (z_axis) {
        // Rz(theta) = diag(e^{-i theta/2}, e^{+i theta/2}).
        amp_[i] = a * std::polar(1.0, -theta / 2);
        amp_[i + stride] = b * std::polar(1.0, theta / 2);
      } else {
        const double co = std::cos(theta / 2);
        const double si = std::sin(theta / 2);
        amp_[i] = co * a - si * b;
        amp_[i + stride] = si * a + co * b;
      }
    }
  }
}

void ComplexStatevector::apply(const Gate& gate) {
  if (gate.max_qubit() >= num_qubits_) {
    throw std::invalid_argument(
        "ComplexStatevector::apply: gate exceeds register");
  }
  switch (gate.kind()) {
    case GateKind::kX: {
      const std::size_t stride = std::size_t{1} << gate.target();
      for (std::size_t base = 0; base < amp_.size(); base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
          std::swap(amp_[i], amp_[i + stride]);
        }
      }
      break;
    }
    case GateKind::kCNOT: {
      const ControlLiteral c = gate.controls()[0];
      const BasisIndex cbit = BasisIndex{1} << c.qubit;
      const BasisIndex want = c.positive ? cbit : 0;
      const std::size_t stride = std::size_t{1} << gate.target();
      for (std::size_t base = 0; base < amp_.size(); base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
          if ((static_cast<BasisIndex>(i) & cbit) == want) {
            std::swap(amp_[i], amp_[i + stride]);
          }
        }
      }
      break;
    }
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kUCRy:
      apply_pairs(gate, /*z_axis=*/false);
      break;
    case GateKind::kRz:
    case GateKind::kUCRz:
      apply_pairs(gate, /*z_axis=*/true);
      break;
  }
}

void ComplexStatevector::apply(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_) {
    throw std::invalid_argument(
        "ComplexStatevector::apply: register too narrow");
  }
  for (const Gate& g : circuit.gates()) apply(g);
}

double ComplexStatevector::norm() const {
  double acc = 0.0;
  for (const auto& a : amp_) acc += std::norm(a);
  return std::sqrt(acc);
}

double ComplexStatevector::fidelity(const ComplexState& state) const {
  QSP_ASSERT(state.num_qubits() <= num_qubits_);
  std::complex<double> ip{0.0, 0.0};
  for (const ComplexTerm& t : state.terms()) {
    ip += std::conj(t.amplitude) * amp_[t.index];
  }
  return std::norm(ip);
}

ComplexState ComplexStatevector::to_state() const {
  std::vector<ComplexTerm> terms;
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    if (std::abs(amp_[i]) > ComplexState::kAmplitudeEpsilon) {
      terms.push_back(ComplexTerm{static_cast<BasisIndex>(i), amp_[i]});
    }
  }
  return ComplexState(num_qubits_, std::move(terms));
}

bool verify_complex_preparation(const Circuit& circuit,
                                const ComplexState& target,
                                double tolerance) {
  if (circuit.num_qubits() < target.num_qubits()) return false;
  ComplexStatevector sv(circuit.num_qubits());
  sv.apply(circuit);
  return sv.fidelity(target) >= 1.0 - tolerance;
}

}  // namespace qsp
