#include "phase/complex_statevector.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/apply_runs.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace qsp {
namespace {

// See sim/statevector.cpp: short pair runs keep the strided seed-shape
// loop; this TU is compiled with -ffp-contract=off so both paths keep a
// fixed element shape on -march builds.
constexpr std::size_t kMinWideRun = 8;

std::size_t pair_run_length(int target, BasisIndex ctrl_mask) {
  return std::size_t{1}
         << std::countr_zero((std::size_t{1} << target) | ctrl_mask);
}

}  // namespace

ComplexStatevector::ComplexStatevector(int num_qubits)
    : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument(
        "ComplexStatevector: qubit count out of range");
  }
  amp_.assign(std::size_t{1} << num_qubits, {0.0, 0.0});
  amp_[0] = {1.0, 0.0};
}

ComplexStatevector::ComplexStatevector(const ComplexState& state)
    : num_qubits_(state.num_qubits()) {
  amp_.assign(std::size_t{1} << num_qubits_, {0.0, 0.0});
  for (const ComplexTerm& t : state.terms()) amp_[t.index] = t.amplitude;
}

void ComplexStatevector::apply_pairs(const Gate& gate, bool z_axis) {
  // Pattern handling covers Ry/Rz (no controls), CRy/MCRy (fixed
  // pattern) and UCRy/UCRz (angle table) uniformly. Rotation scalars are
  // computed once per pattern instead of once per amplitude pair; long
  // pair runs go through the wide kernels, fragmented index sets (low
  // target or control bit) keep the strided seed-shape loop. Both paths
  // compute the same element shape, and path choice depends only on the
  // gate, never on the ISA.
  const auto& controls = gate.controls();
  const bool is_uc = gate.kind() == GateKind::kUCRy ||
                     gate.kind() == GateKind::kUCRz;
  const std::size_t stride = std::size_t{1} << gate.target();
  const std::size_t size = amp_.size();
  // std::complex<double> is layout-compatible with double[2]; the wide
  // kernels see the interleaved (re, im) stream.
  double* flat = reinterpret_cast<double*>(amp_.data());

  // Per-pattern rotation scalars: for Ry (co, si), for Rz the lower and
  // upper diagonal phases e^{-i theta/2} / e^{+i theta/2}.
  const std::size_t num_patterns = is_uc ? gate.angles().size() : 1;
  std::vector<std::complex<double>> w_lo(num_patterns), w_hi(num_patterns);
  std::vector<double> co(num_patterns), si(num_patterns);
  for (std::size_t s = 0; s < num_patterns; ++s) {
    const double theta = is_uc ? gate.angles()[s] : gate.theta();
    if (z_axis) {
      w_lo[s] = std::polar(1.0, -theta / 2);
      w_hi[s] = std::polar(1.0, theta / 2);
    } else {
      co[s] = std::cos(theta / 2);
      si[s] = std::sin(theta / 2);
    }
  }
  BasisIndex mask = 0;
  BasisIndex fixed_value = 0;
  for (const auto& c : controls) {
    mask |= BasisIndex{1} << c.qubit;
    if (!is_uc && c.positive) fixed_value |= BasisIndex{1} << c.qubit;
  }

  if (pair_run_length(gate.target(), mask) >= kMinWideRun) {
    for (std::size_t pattern = 0; pattern < num_patterns; ++pattern) {
      BasisIndex value = fixed_value;
      if (is_uc) {
        for (std::size_t b = 0; b < controls.size(); ++b) {
          if ((pattern >> b) & 1) value |= BasisIndex{1} << controls[b].qubit;
        }
      }
      runs::for_each_pair_run(
          size, gate.target(), mask, value,
          [&](std::size_t lo, std::size_t len) {
            if (z_axis) {
              wideops::complex_scale_d(flat + 2 * lo, len,
                                       w_lo[pattern].real(),
                                       w_lo[pattern].imag());
              wideops::complex_scale_d(flat + 2 * (lo + stride), len,
                                       w_hi[pattern].real(),
                                       w_hi[pattern].imag());
            } else {
              // Real scalars rotate the re/im components independently:
              // one pair rotation over 2*len interleaved doubles.
              wideops::rotate_pairs_d(flat + 2 * lo,
                                      flat + 2 * (lo + stride), 2 * len,
                                      co[pattern], si[pattern]);
            }
          });
    }
    return;
  }

  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      std::size_t pattern = 0;
      if (is_uc) {
        for (std::size_t b = 0; b < controls.size(); ++b) {
          if (get_bit(static_cast<BasisIndex>(i), controls[b].qubit) != 0) {
            pattern |= std::size_t{1} << b;
          }
        }
      } else if ((static_cast<BasisIndex>(i) & mask) != fixed_value) {
        continue;
      }
      const std::complex<double> a = amp_[i];
      const std::complex<double> b = amp_[i + stride];
      if (z_axis) {
        // Same element shape as wideops::complex_scale_d.
        amp_[i] = {a.real() * w_lo[pattern].real() -
                       a.imag() * w_lo[pattern].imag(),
                   a.imag() * w_lo[pattern].real() +
                       a.real() * w_lo[pattern].imag()};
        amp_[i + stride] = {b.real() * w_hi[pattern].real() -
                                b.imag() * w_hi[pattern].imag(),
                            b.imag() * w_hi[pattern].real() +
                                b.real() * w_hi[pattern].imag()};
      } else {
        amp_[i] = co[pattern] * a - si[pattern] * b;
        amp_[i + stride] = si[pattern] * a + co[pattern] * b;
      }
    }
  }
}

void ComplexStatevector::apply(const Gate& gate) {
  if (gate.max_qubit() >= num_qubits_) {
    throw std::invalid_argument(
        "ComplexStatevector::apply: gate exceeds register");
  }
  const std::size_t stride = std::size_t{1} << gate.target();
  double* flat = reinterpret_cast<double*>(amp_.data());
  const auto swap_runs = [&](BasisIndex mask, BasisIndex value) {
    if (pair_run_length(gate.target(), mask) >= kMinWideRun) {
      runs::for_each_pair_run(
          amp_.size(), gate.target(), mask, value,
          [&](std::size_t lo, std::size_t len) {
            wideops::swap_ranges_d(flat + 2 * lo, flat + 2 * (lo + stride),
                                   2 * len);
          });
      return;
    }
    for (std::size_t base = 0; base < amp_.size(); base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; ++i) {
        if ((static_cast<BasisIndex>(i) & mask) == value) {
          std::swap(amp_[i], amp_[i + stride]);
        }
      }
    }
  };
  switch (gate.kind()) {
    case GateKind::kX:
      swap_runs(0, 0);
      break;
    case GateKind::kCNOT: {
      const ControlLiteral c = gate.controls()[0];
      const BasisIndex cbit = BasisIndex{1} << c.qubit;
      swap_runs(cbit, c.positive ? cbit : 0);
      break;
    }
    case GateKind::kRy:
    case GateKind::kCRy:
    case GateKind::kMCRy:
    case GateKind::kUCRy:
      apply_pairs(gate, /*z_axis=*/false);
      break;
    case GateKind::kRz:
    case GateKind::kUCRz:
      apply_pairs(gate, /*z_axis=*/true);
      break;
    case GateKind::kCZ: {
      // diag(1, 1, 1, -1): negate amplitudes with both wires set.
      const BasisIndex both = (BasisIndex{1} << gate.controls()[0].qubit) |
                              (BasisIndex{1} << gate.target());
      for (std::size_t i = 0; i < amp_.size(); ++i) {
        if ((static_cast<BasisIndex>(i) & both) == both) amp_[i] = -amp_[i];
      }
      break;
    }
    case GateKind::kRZZ: {
      // exp(-i theta/2 Z(x)Z): e^{-i theta/2} on equal wire bits,
      // e^{+i theta/2} on unequal.
      const std::complex<double> eq = std::polar(1.0, -gate.theta() / 2);
      const std::complex<double> ne = std::polar(1.0, gate.theta() / 2);
      const BasisIndex a = BasisIndex{1} << gate.controls()[0].qubit;
      const BasisIndex b = BasisIndex{1} << gate.target();
      for (std::size_t i = 0; i < amp_.size(); ++i) {
        const bool ba = (static_cast<BasisIndex>(i) & a) != 0;
        const bool bb = (static_cast<BasisIndex>(i) & b) != 0;
        amp_[i] *= (ba == bb) ? eq : ne;
      }
      break;
    }
    case GateKind::kISwap: {
      // |01> -> i|10>, |10> -> i|01>; diagonal states untouched.
      const BasisIndex a = BasisIndex{1} << gate.controls()[0].qubit;
      const BasisIndex b = BasisIndex{1} << gate.target();
      const std::complex<double> phase_i{0.0, 1.0};
      for (std::size_t i = 0; i < amp_.size(); ++i) {
        const BasisIndex bi = static_cast<BasisIndex>(i);
        if ((bi & a) != 0 && (bi & b) == 0) {
          const std::size_t j = static_cast<std::size_t>((bi ^ a) | b);
          const std::complex<double> lo = amp_[i];
          amp_[i] = phase_i * amp_[j];
          amp_[j] = phase_i * lo;
        }
      }
      break;
    }
  }
}

void ComplexStatevector::apply(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_) {
    throw std::invalid_argument(
        "ComplexStatevector::apply: register too narrow");
  }
  for (const Gate& g : circuit.gates()) apply(g);
}

double ComplexStatevector::norm() const {
  double acc = 0.0;
  for (const auto& a : amp_) acc += std::norm(a);
  return std::sqrt(acc);
}

double ComplexStatevector::fidelity(const ComplexState& state) const {
  QSP_ASSERT(state.num_qubits() <= num_qubits_);
  std::complex<double> ip{0.0, 0.0};
  for (const ComplexTerm& t : state.terms()) {
    ip += std::conj(t.amplitude) * amp_[t.index];
  }
  return std::norm(ip);
}

ComplexState ComplexStatevector::to_state() const {
  std::vector<ComplexTerm> terms;
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    if (std::abs(amp_[i]) > ComplexState::kAmplitudeEpsilon) {
      terms.push_back(ComplexTerm{static_cast<BasisIndex>(i), amp_[i]});
    }
  }
  return ComplexState(num_qubits_, std::move(terms));
}

bool verify_complex_preparation(const Circuit& circuit,
                                const ComplexState& target,
                                double tolerance) {
  if (circuit.num_qubits() < target.num_qubits()) return false;
  ComplexStatevector sv(circuit.num_qubits());
  sv.apply(circuit);
  return sv.fidelity(target) >= 1.0 - tolerance;
}

}  // namespace qsp
