#include "phase/complex_state.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qsp {

ComplexState::ComplexState(int num_qubits, std::vector<ComplexTerm> terms)
    : num_qubits_(num_qubits), terms_(std::move(terms)) {
  if (num_qubits < 1 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("ComplexState: qubit count out of range");
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const ComplexTerm& a, const ComplexTerm& b) {
              return a.index < b.index;
            });
  std::vector<ComplexTerm> merged;
  merged.reserve(terms_.size());
  for (const ComplexTerm& t : terms_) {
    if ((t.index >> num_qubits_) != 0) {
      throw std::invalid_argument("ComplexState: index exceeds register");
    }
    if (!merged.empty() && merged.back().index == t.index) {
      merged.back().amplitude += t.amplitude;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const ComplexTerm& t) {
    return std::abs(t.amplitude) <= kAmplitudeEpsilon;
  });
  terms_ = std::move(merged);
  if (terms_.empty()) {
    throw std::invalid_argument("ComplexState: empty support");
  }
  double norm2 = 0.0;
  for (const ComplexTerm& t : terms_) norm2 += std::norm(t.amplitude);
  const double inv = 1.0 / std::sqrt(norm2);
  for (ComplexTerm& t : terms_) t.amplitude *= inv;
}

ComplexState::ComplexState(const QuantumState& real)
    : num_qubits_(real.num_qubits()) {
  terms_.reserve(real.terms().size());
  for (const Term& t : real.terms()) {
    terms_.push_back(ComplexTerm{t.index, {t.amplitude, 0.0}});
  }
}

std::complex<double> ComplexState::amplitude(BasisIndex x) const {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), x,
      [](const ComplexTerm& t, BasisIndex v) { return t.index < v; });
  if (it != terms_.end() && it->index == x) return it->amplitude;
  return {0.0, 0.0};
}

QuantumState ComplexState::magnitudes() const {
  std::vector<Term> terms;
  terms.reserve(terms_.size());
  for (const ComplexTerm& t : terms_) {
    terms.push_back(Term{t.index, std::abs(t.amplitude)});
  }
  return QuantumState(num_qubits_, std::move(terms));
}

std::vector<double> ComplexState::phases() const {
  std::vector<double> out;
  out.reserve(terms_.size());
  for (const ComplexTerm& t : terms_) out.push_back(std::arg(t.amplitude));
  return out;
}

bool ComplexState::is_real(double tol) const {
  const double global = std::arg(terms_.front().amplitude);
  for (const ComplexTerm& t : terms_) {
    const std::complex<double> rotated =
        t.amplitude * std::polar(1.0, -global);
    if (std::abs(rotated.imag()) > tol) return false;
  }
  return true;
}

double ComplexState::fidelity(const ComplexState& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("ComplexState::fidelity: width mismatch");
  }
  std::complex<double> ip{0.0, 0.0};
  auto it_a = terms_.begin();
  auto it_b = other.terms_.begin();
  while (it_a != terms_.end() && it_b != other.terms_.end()) {
    if (it_a->index < it_b->index) {
      ++it_a;
    } else if (it_b->index < it_a->index) {
      ++it_b;
    } else {
      ip += std::conj(it_a->amplitude) * it_b->amplitude;
      ++it_a;
      ++it_b;
    }
  }
  return std::norm(ip);
}

std::string ComplexState::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  bool first = true;
  for (const ComplexTerm& t : terms_) {
    if (!first) os << " + ";
    os << '(' << t.amplitude.real() << (t.amplitude.imag() < 0 ? "-" : "+")
       << std::abs(t.amplitude.imag()) << "i)|"
       << to_bitstring(t.index, num_qubits_) << '>';
    first = false;
  }
  return os.str();
}

ComplexState make_random_complex(int num_qubits, int m, Rng& rng) {
  const auto indices = rng.sample_distinct(std::uint64_t{1} << num_qubits,
                                           static_cast<std::size_t>(m));
  std::vector<ComplexTerm> terms;
  terms.reserve(indices.size());
  for (const auto x : indices) {
    const double mag = rng.next_double(0.2, 1.0);
    const double phase = rng.next_double(-3.14159265358979, 3.14159265358979);
    terms.push_back(ComplexTerm{static_cast<BasisIndex>(x),
                                std::polar(mag, phase)});
  }
  return ComplexState(num_qubits, std::move(terms));
}

}  // namespace qsp
