#pragma once
// Diagonal phase-oracle synthesis and the complex-amplitude preparation
// pipeline (paper Section VI-A, citing Amy et al. on CNOT-phase circuits):
// |psi> = D(phi) |mag| with |mag| prepared by the real-amplitude workflow
// and D(phi) a diagonal unitary built from a chain of uniformly-controlled
// Rz multiplexors (<= 2^n - 2 CNOTs; zero-angle elision collapses it
// entirely for real targets).

#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "flow/solver.hpp"
#include "phase/complex_state.hpp"

namespace qsp {

/// Synthesize D with D|x> = e^{i table[x]} |x> up to a global phase.
/// `table.size()` must be 2^num_qubits (num_qubits <= 20).
Circuit synthesize_phase_oracle(int num_qubits,
                                const std::vector<double>& table);

/// Sparse variant: phases on support indices only; off-support phases are
/// don't-cares fixed to zero.
Circuit synthesize_phase_oracle(
    int num_qubits,
    const std::vector<std::pair<BasisIndex, double>>& phases);

struct ComplexPrepResult {
  bool found = false;
  bool timed_out = false;
  Circuit circuit{1};
};

/// Prepare an arbitrary complex-amplitude state: the Fig.-5 workflow
/// prepares the magnitude state, then the phase oracle imprints the
/// support phases. Verify with verify_complex_preparation.
ComplexPrepResult prepare_complex(const ComplexState& target,
                                  const WorkflowOptions& options = {});

}  // namespace qsp
