#include "phase/phase_oracle.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace qsp {

Circuit synthesize_phase_oracle(int num_qubits,
                                const std::vector<double>& table) {
  if (num_qubits < 1 || num_qubits > 20) {
    throw std::invalid_argument(
        "synthesize_phase_oracle: qubit count out of range");
  }
  if (table.size() != (std::size_t{1} << num_qubits)) {
    throw std::invalid_argument("synthesize_phase_oracle: table size");
  }
  Circuit circuit(num_qubits);
  std::vector<double> phi = table;
  // Peel one qubit per stage, top down: the UCRz on qubit k conditioned
  // on the lower bits absorbs the residual phase's dependence on bit k,
  // leaving a table over one fewer qubit:
  //   theta_p = phi[p | 2^k] - phi[p],  phi'[p] = (phi[p] + phi[p|2^k])/2.
  for (int k = num_qubits - 1; k >= 1; --k) {
    const std::size_t half = std::size_t{1} << k;
    std::vector<double> thetas(half);
    for (std::size_t p = 0; p < half; ++p) {
      thetas[p] = phi[p | half] - phi[p];
      phi[p] = 0.5 * (phi[p] + phi[p | half]);
    }
    phi.resize(half);
    std::vector<int> controls(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) controls[static_cast<std::size_t>(c)] = c;
    circuit.append(Gate::ucrz(controls, k, std::move(thetas)));
  }
  circuit.append(Gate::rz(0, phi[1] - phi[0]));
  // The remaining (phi[0] + phi[1]) / 2 is a global phase.
  return circuit;
}

Circuit synthesize_phase_oracle(
    int num_qubits,
    const std::vector<std::pair<BasisIndex, double>>& phases) {
  if (num_qubits < 1 || num_qubits > 20) {
    throw std::invalid_argument(
        "synthesize_phase_oracle: qubit count out of range");
  }
  std::vector<double> table(std::size_t{1} << num_qubits, 0.0);
  for (const auto& [index, phase] : phases) {
    if ((index >> num_qubits) != 0) {
      throw std::invalid_argument("synthesize_phase_oracle: bad index");
    }
    table[index] = phase;
  }
  return synthesize_phase_oracle(num_qubits, table);
}

ComplexPrepResult prepare_complex(const ComplexState& target,
                                  const WorkflowOptions& options) {
  ComplexPrepResult result;
  const Solver solver(options);
  const WorkflowResult mag = solver.prepare(target.magnitudes());
  result.timed_out = mag.timed_out;
  if (!mag.found) return result;

  std::vector<std::pair<BasisIndex, double>> phases;
  phases.reserve(target.terms().size());
  const auto phase_values = target.phases();
  for (std::size_t i = 0; i < target.terms().size(); ++i) {
    phases.emplace_back(target.terms()[i].index, phase_values[i]);
  }
  // The magnitude circuit may carry an ancilla (hybrid fallback paths);
  // the oracle acts on the target register only.
  Circuit circuit(mag.circuit.num_qubits());
  circuit.append(mag.circuit);
  circuit.append(synthesize_phase_oracle(target.num_qubits(), phases));
  result.circuit = std::move(circuit);
  result.found = true;
  return result;
}

}  // namespace qsp
