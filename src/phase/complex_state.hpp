#pragma once
// Complex-amplitude states for the phase-oracle extension. The paper
// (Section VI-A) notes that "employing a phase oracle, we can prepare
// arbitrary states with complex amplitudes" on top of the real-amplitude
// pipeline; this module provides the state type and the decomposition
// |psi> = D(phi) |mag>, where |mag> has the magnitudes (real, positive)
// and D is a diagonal phase oracle.

#include <complex>
#include <string>
#include <vector>

#include "state/quantum_state.hpp"
#include "util/rng.hpp"

namespace qsp {

struct ComplexTerm {
  BasisIndex index = 0;
  std::complex<double> amplitude;

  friend bool operator==(const ComplexTerm&, const ComplexTerm&) = default;
};

/// An n-qubit pure state with complex amplitudes; sorted sparse terms,
/// normalized, duplicate indices merged (amplitudes add coherently).
class ComplexState {
 public:
  static constexpr double kAmplitudeEpsilon = 1e-12;

  ComplexState(int num_qubits, std::vector<ComplexTerm> terms);

  /// Lift a real state (zero phases).
  explicit ComplexState(const QuantumState& real);

  int num_qubits() const { return num_qubits_; }
  int cardinality() const { return static_cast<int>(terms_.size()); }
  const std::vector<ComplexTerm>& terms() const { return terms_; }

  std::complex<double> amplitude(BasisIndex x) const;

  /// The magnitude state |mag>: real positive amplitudes |a_x|.
  QuantumState magnitudes() const;

  /// Phase arg(a_x) per support index, aligned with terms().
  std::vector<double> phases() const;

  /// True if every amplitude is real (within tol), up to a global phase.
  bool is_real(double tol = 1e-9) const;

  /// |<this|other>|^2.
  double fidelity(const ComplexState& other) const;

  std::string to_string() const;

 private:
  int num_qubits_;
  std::vector<ComplexTerm> terms_;
};

/// Random complex state with m distinct support indices, uniform random
/// phases and magnitudes bounded away from zero.
ComplexState make_random_complex(int num_qubits, int m, Rng& rng);

}  // namespace qsp
