#pragma once
// Dense complex statevector simulator: verification substrate for the
// phase-oracle pipeline. Handles every gate kind, including the z-axis
// rotations the real simulator rejects.

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "phase/complex_state.hpp"

namespace qsp {

class ComplexStatevector {
 public:
  /// Start in |0...0>.
  explicit ComplexStatevector(int num_qubits);
  /// Start in a given (sparse) state, densified.
  explicit ComplexStatevector(const ComplexState& state);

  int num_qubits() const { return num_qubits_; }
  const std::vector<std::complex<double>>& amplitudes() const { return amp_; }

  void apply(const Gate& gate);
  void apply(const Circuit& circuit);

  double norm() const;

  /// |<this|state>|^2 (global-phase insensitive).
  double fidelity(const ComplexState& state) const;

  /// Sparsify back to a ComplexState (drops sub-epsilon amplitudes).
  ComplexState to_state() const;

 private:
  void apply_pairs(const Gate& gate, bool z_axis);

  int num_qubits_;
  std::vector<std::complex<double>> amp_;
};

/// Verify that `circuit` maps |0...0> to `target` up to global phase;
/// ancilla qubits above the target register must return to |0>.
bool verify_complex_preparation(const Circuit& circuit,
                                const ComplexState& target,
                                double tolerance = 1e-7);

}  // namespace qsp
