#include "flow/methods.hpp"

#include "circuit/lowering.hpp"
#include "prep/hybrid.hpp"
#include "prep/mflow.hpp"
#include "prep/nflow.hpp"
#include "util/timer.hpp"

namespace qsp {

std::string method_name(Method method) {
  switch (method) {
    case Method::kMFlow:
      return "m-flow";
    case Method::kNFlow:
      return "n-flow";
    case Method::kHybrid:
      return "hybrid";
    case Method::kOurs:
      return "ours";
  }
  return "?";
}

MethodRun run_method(Method method, const QuantumState& target,
                     double time_budget_seconds,
                     const WorkflowOptions& workflow_options) {
  MethodRun run;
  const Timer timer;
  switch (method) {
    case Method::kMFlow: {
      MFlowOptions options;
      options.strategy = MFlowOptions::PairStrategy::kGreedyFirst;
      options.time_budget_seconds = time_budget_seconds;
      const MFlowResult res = mflow_prepare(target, options);
      run.timed_out = res.timed_out;
      if (!res.timed_out) {
        run.circuit = res.circuit;
        run.cnots = count_cnots_after_lowering(res.circuit, {});
        run.ok = true;
      }
      break;
    }
    case Method::kNFlow: {
      const Circuit circuit = nflow_prepare(target);
      run.circuit = circuit;
      run.cnots = count_cnots_after_lowering(circuit, {});
      run.ok = true;
      break;
    }
    case Method::kHybrid: {
      const HybridResult res = hybrid_prepare(target, time_budget_seconds);
      run.timed_out = res.timed_out;
      if (!res.timed_out) {
        run.circuit = res.circuit;
        run.cnots = res.accounted_cnots;
        run.ok = true;
      }
      break;
    }
    case Method::kOurs: {
      WorkflowOptions options = workflow_options;
      if (time_budget_seconds > 0.0) {
        options.time_budget_seconds = time_budget_seconds;
      }
      const Solver solver(options);
      const WorkflowResult res = solver.prepare(target);
      run.timed_out = res.timed_out;
      if (res.found) {
        LoweringOptions lowering;
        lowering.elide_zero_rotations = true;
        // Solver::prepare already ran the pass pipeline on the stitched
        // stages (WorkflowOptions::opt_level), so count it as-is.
        run.circuit = res.circuit;
        run.cnots = count_cnots_after_lowering(run.circuit, lowering);
        run.ok = true;
      }
      break;
    }
  }
  run.seconds = timer.seconds();
  return run;
}

}  // namespace qsp
