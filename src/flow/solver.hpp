#pragma once
// The scalable workflow of paper Fig. 5: dispatch on sparsity, reduce with
// the appropriate divide-and-conquer method until the state fits the exact
// synthesis thresholds (n_eff <= 4 active qubits and cardinality <= 16 by
// default), then finish with the exact kernel.

#include <memory>
#include <string>

#include "arch/coupling.hpp"
#include "circuit/circuit.hpp"
#include "circuit/pass_pipeline.hpp"
#include "circuit/target.hpp"
#include "core/exact_synthesizer.hpp"
#include "prep/mflow.hpp"
#include "state/quantum_state.hpp"
#include "util/timer.hpp"

namespace qsp {

struct WorkflowOptions {
  /// Exact tail activates when the compressed state has at most this many
  /// entangled (non-separable) qubits...
  int exact_max_qubits = 4;
  /// ...and at most this cardinality.
  int exact_max_cardinality = 16;
  /// Budgets for the exact tail searches.
  ExactSynthesisOptions exact;
  /// Pair-selection strategy for the sparse path's cardinality reduction;
  /// the workflow defaults to the cost-aware variant.
  MFlowOptions mflow;
  /// Dense path: only attempt the exact tail while the marginal's slot
  /// total stays below this (count-heavy marginals are generic positive
  /// states where the multiplexor stages are already near-optimal).
  std::uint64_t dense_tail_total_cap = 128;
  /// Dense path: for borderline densities (cardinality at most this), run
  /// the sparse path as well and keep the cheaper circuit.
  int dual_path_max_cardinality = 64;
  /// Abort the whole workflow after this many seconds (0 = unlimited).
  /// Enforced *inside* the exact-tail searches, not just between stages:
  /// the remaining time is wired into every kernel search's SearchBudget
  /// (via ExactSynthesisOptions::time_budget_seconds), so a runaway A*
  /// aborts mid-search and the circuit-producing fallbacks still run.
  double time_budget_seconds = 0.0;
  /// Worker threads for the exact tail's kernel searches. 1 keeps the
  /// serial kernels; any other value (0 = all hardware threads)
  /// overrides exact.astar.num_threads and exact.beam.num_threads, so
  /// every exact-tail search runs the sharded HDA* kernel
  /// (core/parallel_astar.hpp) and the beam fallback runs the sharded
  /// parallel beam (core/parallel_beam.hpp) — beam results stay
  /// bit-identical to the serial descent at every thread count.
  int num_threads = 1;
  /// Optional target device. When set (and not all-to-all), the workflow
  /// becomes coupling-aware end to end: the exact tail hosts the
  /// entangled core on a connected induced subgraph of the device
  /// (CouplingGraph::connected_superset of the core's wires) and searches
  /// against that subgraph's routed costs, circuits are sized by the
  /// device register, and Solver::prepare routes its final output so
  /// respects_coupling holds on the result. Must be connected (the Solver
  /// constructor throws otherwise) and at least as wide as the target
  /// (prepare throws otherwise).
  std::shared_ptr<const CouplingGraph> coupling;
  /// Cap on the connected host register for the exact tail. The
  /// exact_max_qubits threshold counts *entangled* wires, but on a wide
  /// device the connected superset can pull in many connector wires for
  /// a spread-out core; beyond this cap the tail skips the exact kernel
  /// and uses the cardinality-reduction fallback instead of launching a
  /// search the thresholds never meant to allow.
  int exact_max_host_qubits = 8;
  /// Shared-cache mode: an equivalence cache consulted and populated by
  /// every exact-tail search this solver runs (see
  /// service/equivalence_cache.hpp; SynthesisService injects its cache
  /// here). Repeated requests whose compressed cores land in the same
  /// canonical class pay for one kernel search; concurrent requests for
  /// the same class are deduplicated in flight. nullptr = one-shot
  /// behavior, unchanged.
  std::shared_ptr<SearchCache> cache;
  /// Pass-pipeline level applied to the assembled workflow circuit before
  /// prepare() returns (see circuit/pass_pipeline.hpp). O1 reproduces the
  /// historical peephole cleanup; O2 adds the commutation-aware folds;
  /// O0 returns the raw stitched stages. Per-pass accounting lands in
  /// WorkflowResult::passes. The pipeline preserves the prepared state,
  /// coupling conformance and gate-set membership, so routed outputs stay
  /// routed and verification is unaffected.
  OptLevel opt_level = OptLevel::kO1;
  /// Backend descriptor (circuit/target.hpp). The default CNOT target
  /// reproduces the historical behavior exactly: prepare() returns the
  /// optimized {1-qubit, CNOT} circuit (routed when `coupling` is set)
  /// without legalization. A non-CNOT target arms the pipeline's staged
  /// lowering (PipelineOptions::lower_to_target), so the returned circuit
  /// is fully native for the target — composites lowered, every CNOT
  /// rewritten into the native two-qubit gate on the same wire pair (a
  /// routed circuit therefore stays on device edges). Path/tail selection
  /// still compares CNOT-level costs; legalization multiplies every
  /// competitor by the same per-CNOT factor, so the choice is unchanged.
  Target target = Target::cnot();

  WorkflowOptions() {
    mflow.strategy = MFlowOptions::PairStrategy::kCheapest;
    // Tails are tiny (<= 4 entangled qubits); keep budgets tight so the
    // workflow stays fast even when called thousands of times, and cap
    // the rotation-candidate enumeration: the dense path hands the tail
    // count-heavy marginals where full enumeration explodes.
    exact.astar.node_budget = 400'000;
    exact.astar.time_budget_seconds = 1.0;
    exact.astar.full_candidate_cap = 64;
    exact.beam.beam_width = 128;
    exact.beam.max_controls = 3;
    exact.beam.time_budget_seconds = 0.5;
    exact.beam.full_candidate_cap = 64;
  }
};

struct WorkflowResult {
  bool found = false;
  bool timed_out = false;
  /// True if the state went down the sparse path (n*m < 2^n).
  bool sparse_path = false;
  /// True if the exact kernel produced the tail of the circuit.
  bool used_exact_tail = false;
  /// True if some exact-tail kernel search this workflow ran stopped
  /// early on its node or wall-clock budget
  /// (SearchStats::budget_exhausted): the returned circuit is still
  /// valid, but a larger budget could improve it. Distinct from
  /// `timed_out`, which means the workflow produced no circuit at all.
  bool budget_exhausted = false;
  /// The preparation. With WorkflowOptions::coupling set, the register is
  /// the device register (target qubits first, spare device qubits are
  /// ancillas returning to |0>) and the circuit is routed: only 1-qubit
  /// gates and two-qubit natives on device edges. With a non-CNOT
  /// WorkflowOptions::target the circuit is native for that target.
  Circuit circuit{1};
  /// Name of the backend target the circuit was produced for ("cnot",
  /// "cz", "iswap", "rzz") — bench rows carry it alongside opt_level.
  std::string target = "cnot";
  /// Accounting of the pass pipeline run on `circuit` at
  /// WorkflowOptions::opt_level (empty at O0 / when nothing ran).
  PipelineReport passes;
};

class Solver {
 public:
  explicit Solver(WorkflowOptions options = {});

  /// Prepare `target` from |0...0> (Fig. 5 workflow).
  WorkflowResult prepare(const QuantumState& target) const;

  /// Prepare a state that already fits (or nearly fits) the exact
  /// thresholds: peel separable structure, synthesize the entangled core
  /// exactly, re-embed. Falls back to cardinality reduction when the state
  /// has no slot decomposition. With WorkflowOptions::coupling set, the
  /// core is hosted on a connected induced subgraph of the device (the
  /// core's wires plus shortest-path connectors) and the exact search
  /// runs against that subgraph's routed costs; the returned register is
  /// the device register. The output is *not* routed here — prepare()
  /// routes the assembled workflow circuit once at the end. Exposed for
  /// tests and benches. `budget_exhausted`, when non-null, is OR-ed with
  /// SearchStats::budget_exhausted of the kernel search run here.
  Circuit prepare_via_exact_tail(const QuantumState& reduced,
                                 bool* used_exact = nullptr,
                                 bool* budget_exhausted = nullptr) const;

  const WorkflowOptions& options() const { return options_; }

 private:
  /// Deadline-aware body of prepare_via_exact_tail: the enclosing
  /// workflow deadline's remaining time bounds every kernel search run
  /// here; the search-free cardinality-reduction fallback is never
  /// budgeted, so a circuit is always produced. A budget-truncated
  /// kernel search sets *budget_exhausted (OR semantics across calls).
  Circuit exact_tail(const QuantumState& reduced, bool* used_exact,
                     bool* budget_exhausted, const Deadline& deadline) const;

  WorkflowOptions options_;
};

}  // namespace qsp
