#pragma once
// Uniform method registry used by the evaluation harness: runs one of the
// four compared methods on a target and reports the CNOT count under the
// paper's accounting (map to {U(2), CNOT}, Section VI-A).

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "flow/solver.hpp"
#include "state/quantum_state.hpp"

namespace qsp {

enum class Method {
  kMFlow,   ///< cardinality reduction baseline [15]
  kNFlow,   ///< qubit reduction baseline [13]
  kHybrid,  ///< one-ancilla DD surrogate [16]
  kOurs,    ///< Fig. 5 workflow with the exact kernel
};

/// Human-readable name used in the benchmark tables ("m-flow", "ours", ...).
std::string method_name(Method method);

struct MethodRun {
  /// The method produced (and, where feasible, verified) a circuit.
  bool ok = false;
  bool timed_out = false;
  /// CNOT count under the method's accounting; -1 when not ok.
  std::int64_t cnots = -1;
  /// Wall-clock synthesis time.
  double seconds = 0.0;
  Circuit circuit{1};
};

/// Run `method` on `target` with an optional per-instance time budget.
/// Baselines are costed with the plain Table-I lowering (reproducing the
/// published columns); "ours" applies the zero-angle-eliding lowering,
/// which is part of this work's mapping; the hybrid uses its one-ancilla
/// linear-cost accounting (see prep/hybrid.hpp).
MethodRun run_method(Method method, const QuantumState& target,
                     double time_budget_seconds = 0.0,
                     const WorkflowOptions& workflow_options = {});

}  // namespace qsp
