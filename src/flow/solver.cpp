#include "flow/solver.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "arch/routing.hpp"
#include "circuit/dataflow.hpp"
#include "circuit/lowering.hpp"
#include "core/canonical.hpp"
#include "core/search_core.hpp"
#include "prep/nflow.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace qsp {
namespace {

/// Flip an unobservable global -1 so slot decomposition can proceed.
QuantumState normalize_global_sign(const QuantumState& state) {
  const bool all_negative =
      std::all_of(state.terms().begin(), state.terms().end(),
                  [](const Term& t) { return t.amplitude < 0; });
  if (!all_negative) return state;
  std::vector<Term> terms = state.terms();
  for (Term& t : terms) t.amplitude = -t.amplitude;
  return QuantumState(state.num_qubits(), std::move(terms));
}

}  // namespace

Solver::Solver(WorkflowOptions options) : options_(std::move(options)) {
  validate_search_coupling("Solver", options_.coupling.get());
}

Circuit Solver::prepare_via_exact_tail(const QuantumState& reduced,
                                       bool* used_exact,
                                       bool* budget_exhausted) const {
  return exact_tail(reduced, used_exact, budget_exhausted, Deadline(0.0));
}

Circuit Solver::exact_tail(const QuantumState& reduced, bool* used_exact,
                           bool* budget_exhausted,
                           const Deadline& deadline) const {
  if (used_exact != nullptr) *used_exact = false;
  const QuantumState target = normalize_global_sign(reduced);
  const CouplingGraph* device = options_.coupling.get();
  // With a device the register is the device register: connector and
  // spare qubits above the target are ancillas that end in |0>.
  const int width = device != nullptr
                        ? std::max(device->num_qubits(), target.num_qubits())
                        : target.num_qubits();
  const auto widen = [width](Circuit circuit) {
    if (circuit.num_qubits() == width) return circuit;
    Circuit wide(width);
    wide.append(circuit);
    return wide;
  };
  const auto slot = SlotState::from_state(target);
  if (!slot.has_value()) {
    // Signed or irrational tail: finish with cost-aware cardinality
    // reduction, which handles arbitrary real amplitudes.
    MFlowOptions fallback = options_.mflow;
    fallback.strategy = MFlowOptions::PairStrategy::kCheapest;
    const MFlowResult res = mflow_prepare(target, fallback);
    return widen(res.circuit);
  }

  SlotState peeled = *slot;
  const std::vector<Gate> peel = free_peel_gates(peeled);

  Circuit prep(width);
  if (!peeled.is_ground()) {
    // Extract the entangled core onto a narrow register. Coupling-blind,
    // the register is exactly the non-constant wires; with a device it is
    // the smallest connected induced subgraph hosting those wires, so the
    // exact search sees real routed costs (and may use the connector
    // wires as workspace — they are constant |0> in the peeled state).
    std::vector<int> active;
    for (int q = 0; q < peeled.num_qubits(); ++q) {
      if (!peeled.qubit_constant(q)) active.push_back(q);
    }
    QSP_ASSERT(!active.empty());
    std::vector<int> host = active;
    std::shared_ptr<const CouplingGraph> tail_coupling;
    if (device != nullptr && !device->is_complete()) {
      host = device->connected_superset(active);
      if (static_cast<int>(host.size()) > options_.exact_max_host_qubits) {
        // The core is so spread out that connecting it needs more wires
        // than the exact kernel should search over; reduce instead (the
        // final routing still makes the result conformant).
        MFlowOptions fallback = options_.mflow;
        fallback.strategy = MFlowOptions::PairStrategy::kCheapest;
        return widen(mflow_prepare(target, fallback).circuit);
      }
      tail_coupling =
          std::make_shared<const CouplingGraph>(device->induced(host));
    }
    std::vector<SlotEntry> narrow_entries;
    narrow_entries.reserve(peeled.entries().size());
    for (const SlotEntry& e : peeled.entries()) {
      BasisIndex idx = 0;
      for (std::size_t i = 0; i < host.size(); ++i) {
        if (get_bit(e.index, host[i]) != 0) {
          idx |= BasisIndex{1} << i;
        }
      }
      narrow_entries.push_back(SlotEntry{idx, e.count});
    }
    const SlotState narrow(static_cast<int>(host.size()),
                           std::move(narrow_entries));
    ExactSynthesisOptions exact_options = options_.exact;
    if (options_.num_threads != 1) {
      exact_options.astar.num_threads = options_.num_threads;
      exact_options.beam.num_threads = options_.num_threads;
    }
    if (tail_coupling != nullptr) {
      exact_options.astar.coupling = tail_coupling;
      exact_options.beam.coupling = tail_coupling;
    }
    // Shared-cache mode: every kernel search consults/populates the
    // cross-request equivalence cache. A cache configured directly on
    // the nested search options is left alone.
    if (options_.cache != nullptr) {
      exact_options.astar.cache = options_.cache;
      exact_options.beam.cache = options_.cache;
    }
    // The workflow deadline bounds the searches themselves, not just the
    // stage boundaries: a runaway kernel aborts mid-search and the
    // reduction fallback below still returns a circuit.
    exact_options.time_budget_seconds =
        clamp_budget(exact_options.time_budget_seconds, deadline);
    const ExactSynthesizer exact(exact_options);
    const SynthesisResult res = exact.synthesize(narrow);
    if (budget_exhausted != nullptr && res.stats.budget_exhausted) {
      *budget_exhausted = true;
    }
    if (!res.found) {
      MFlowOptions fallback = options_.mflow;
      fallback.strategy = MFlowOptions::PairStrategy::kCheapest;
      return widen(mflow_prepare(target, fallback).circuit);
    }
    for (const Gate& g : res.circuit.gates()) {
      prep.append(g.remapped(host));
    }
    if (used_exact != nullptr) *used_exact = true;
  }
  // Undo the peel: peel maps `target` to the peeled form, so its adjoint
  // maps the prepared peeled state back to `target`.
  Circuit peel_circuit(target.num_qubits());
  for (const Gate& g : peel) peel_circuit.append(g);
  prep.append(peel_circuit.adjoint());
  return prep;
}

WorkflowResult Solver::prepare(const QuantumState& target) const {
  const Deadline deadline(options_.time_budget_seconds);
  WorkflowResult result;
  result.target = std::string(options_.target.name());
  const int n = target.num_qubits();
  const CouplingGraph* device = options_.coupling.get();
  if (device != nullptr && device->num_qubits() < n) {
    throw std::invalid_argument(
        "Solver::prepare: device has fewer qubits than the target");
  }
  // Device register width; equals n when no coupling is set.
  const int nw = device != nullptr ? device->num_qubits() : n;
  // Route the assembled workflow circuit onto the device so the result
  // satisfies respects_coupling (two-qubit gates on edges, composites
  // lowered), then run the pass pipeline at the requested -O level. With
  // a non-CNOT target the pipeline also runs the staged lowering, so
  // optimization and legalization share one fixpoint; the native
  // decompositions stay on each CNOT's own wire pair, so routed circuits
  // stay routed.
  const auto routed_onto_device = [&](Circuit circuit) {
    if (device != nullptr) circuit = route_circuit(circuit, *device);
    // Static ancilla certification (QL014): routed circuits use the spare
    // device wires above the logical register as workspace, and the
    // routing contract says every one of them returns to |0>. Routed
    // output is {X, Ry, CNOT} with rotations only on logical wires, so
    // the dataflow engine proves the contract exactly; run the gate here,
    // before the pass pipeline (the pipeline preserves preparation, so
    // certification transfers to the optimized output). Release builds
    // included — this is static analysis, not simulation.
    if (device != nullptr && nw > n) {
      DataflowOptions dataflow;
      dataflow.num_data_wires = n;
      const LintReport report = dataflow_lint(circuit, dataflow);
      if (report.has_errors()) {
        throw std::logic_error(
            "Solver::prepare: routed circuit failed static ancilla "
            "certification:\n" +
            report.to_string());
      }
    }
    PipelineOptions pipeline;
    pipeline.level = options_.opt_level;
    if (!options_.target.is_cnot()) {
      pipeline.lower_to_target = true;
      pipeline.pass.target = options_.target;
      pipeline.pass.elide_zero_rotations = true;
    }
    // Attach the device to the pipeline's target descriptor: the per-pass
    // lint gate then checks that no pass moves a routed two-qubit gate
    // off the device's edge set.
    if (pipeline.pass.target.coupling == nullptr) {
      pipeline.pass.target.coupling = options_.coupling;
    }
    return optimize_circuit(circuit, pipeline, &result.passes);
  };
  // Selection metric for competing tails/paths: lowered CNOT count,
  // measured after routing when a device is set — a tail with fewer
  // logical CNOTs can still lose once its long-range pairs pay 4(d-1).
  const auto selection_cost = [&](const Circuit& circuit,
                                  const LoweringOptions& lowering) {
    if (device == nullptr) {
      return count_cnots_after_lowering(circuit, lowering);
    }
    return lowered_cnot_count(route_circuit(circuit, *device, lowering));
  };
  const auto m = static_cast<std::uint64_t>(target.cardinality());
  result.sparse_path =
      static_cast<std::uint64_t>(n) * m < (std::uint64_t{1} << n);

  auto fits_thresholds = [this](const QuantumState& state) {
    const QuantumState normalized = normalize_global_sign(state);
    const auto slot = SlotState::from_state(normalized);
    if (!slot.has_value()) return false;
    if (slot->cardinality() > options_.exact_max_cardinality) return false;
    const SlotState compressed = compress_free(*slot);
    int active = 0;
    for (int q = 0; q < compressed.num_qubits(); ++q) {
      if (!compressed.qubit_constant(q)) ++active;
    }
    return active <= options_.exact_max_qubits;
  };

  if (fits_thresholds(target)) {
    result.circuit = routed_onto_device(
        exact_tail(target, &result.used_exact_tail,
                   &result.budget_exhausted, deadline));
    result.found = true;
    return result;
  }

  auto sparse_prepare = [&](bool* used_exact) -> std::optional<Circuit> {
    MFlowOptions mflow = options_.mflow;
    mflow.time_budget_seconds =
        clamp_budget(mflow.time_budget_seconds, deadline);
    const MFlowReduction reduction =
        mflow_reduce(target, fits_thresholds, mflow);
    if (reduction.timed_out) return std::nullopt;
    Circuit circuit = exact_tail(reduction.reduced, used_exact,
                                 &result.budget_exhausted, deadline);
    Circuit forward(n);
    for (const Gate& g : reduction.forward_gates) forward.append(g);
    circuit.append(forward.adjoint());
    return circuit;
  };

  if (result.sparse_path) {
    // Sparse: cardinality reduction until the compressed state fits.
    auto circuit = sparse_prepare(&result.used_exact_tail);
    if (!circuit.has_value()) {
      result.timed_out = true;
      return result;
    }
    result.circuit = routed_onto_device(std::move(*circuit));
    result.found = true;
    return result;
  }

  // Dense: qubit reduction. The multiplexor stages handle qubits
  // exact_max_qubits..n-1; the exact kernel prepares the marginal when it
  // wins over the marginal's own multiplexor stages (the reductions give
  // the tail non-uniform counts, where the exact search is not always the
  // cheaper realization).
  const int t = std::min(options_.exact_max_qubits, n);
  if (t < 1) {
    // Exact tail disabled: plain qubit reduction.
    result.circuit = routed_onto_device(nflow_prepare(target));
    result.found = !deadline.expired();
    result.timed_out = !result.found;
    return result;
  }
  const QuantumState marginal = nflow_marginal(target, t);
  LoweringOptions elide;
  elide.elide_zero_rotations = true;
  bool used_exact = false;
  Circuit tail = nflow_prepare(marginal);
  // Count-heavy marginals are generic positive states where the stages
  // are already near-optimal: only pay for the exact attempt when the
  // slot total is small enough that it can plausibly win.
  const auto marginal_slots = SlotState::from_state(marginal);
  if (marginal_slots.has_value() &&
      marginal_slots->total() <= options_.dense_tail_total_cap) {
    bool exact_used = false;
    Circuit exact_marginal =
        exact_tail(marginal, &exact_used, &result.budget_exhausted, deadline);
    if (exact_used && selection_cost(exact_marginal, elide) <
                          selection_cost(tail, elide)) {
      tail = std::move(exact_marginal);
      used_exact = true;
    }
  }
  result.used_exact_tail = used_exact;
  Circuit circuit(nw);
  circuit.append(tail);
  circuit.append(nflow_stages(target, t));

  // Borderline densities: the sparse machinery sometimes wins outright
  // (e.g. symmetric states like Dicke whose n*m is just above 2^n).
  if (target.cardinality() <= options_.dual_path_max_cardinality) {
    bool sparse_exact = false;
    const auto alt = sparse_prepare(&sparse_exact);
    if (alt.has_value() && selection_cost(*alt, elide) <
                               selection_cost(circuit, elide)) {
      circuit = *alt;
      result.used_exact_tail = sparse_exact;
    }
  }
  if (deadline.expired()) {
    result.timed_out = true;
    return result;
  }
  result.circuit = routed_onto_device(std::move(circuit));
  result.found = true;
  return result;
}

}  // namespace qsp
